"""Service benchmark: kill/resume byte-identity + sustained replay throughput.

Two claims are priced here:

1. **Correctness under crashes.** A federation killed at a checkpoint
   boundary and resumed from its durable snapshot produces *byte-identical*
   outputs — the same telemetry trace, history digest chain, reputation
   state and ledger head — as a process that never died. The differential
   runs both histories in full and compares bytes, and every surviving
   snapshot passes the deep per-component digest check.
2. **Checkpointing is cheap at scale.** The traffic-replay harness pushes
   10^4 rounds of bursty join/leave traffic through the discrete-event
   kernel with periodic checkpoints; snapshot overhead must stay <= 5% of
   round wall time and the monitor's ``rss-growth`` watchdog must stay
   clean (history compaction keeps memory bounded).

CLI (no pytest needed)::

    python benchmarks/bench_service.py             # full: 10^4-round replay
    python benchmarks/bench_service.py --quick     # CI gate scale
    python benchmarks/bench_service.py --json out.json
    python benchmarks/bench_service.py --record    # benchmarks/BENCH_service.json

Under pytest (``pytest benchmarks/bench_service.py``) the quick scale
runs as a regression guard on the identity contract and the overhead bar.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import (
    FederationService,
    ReplayConfig,
    list_snapshots,
    run_replay,
    verify_snapshot,
)
from repro.service.cli import make_preset
from repro.telemetry import (
    MemorySink,
    Telemetry,
    TickClock,
    encode_event,
    get_telemetry,
    run_manifest,
    set_telemetry,
    write_manifest,
)

DIFFERENTIAL_ROUNDS = 10
DIFFERENTIAL_CHECKPOINT = 5
FULL_REPLAY_ROUNDS = 10_000
QUICK_REPLAY_ROUNDS = 300
OVERHEAD_BAR_PCT = 5.0


def _outputs(service, hub) -> dict:
    return {
        "trace": [encode_event(ev) for ev in hub.events()],
        "history": service.history_digest(),
        "reputation": service.reputation_digest(),
        "ledger": (
            service.ledger.head_hash() if service.ledger is not None else None
        ),
    }


def run_differential(workdir: Path, preset: str = "blobs-fifl") -> dict:
    """Kill-at-checkpoint-then-resume vs the uninterrupted run."""
    prev_hub = get_telemetry()
    try:
        # the clean history: one process, never interrupted
        set_telemetry(Telemetry(sinks=[MemorySink(maxlen=None)], clock=TickClock()))
        cfg = make_preset(
            preset,
            rounds=DIFFERENTIAL_ROUNDS,
            checkpoint_every=DIFFERENTIAL_CHECKPOINT,
        )
        clean_svc = FederationService(cfg, workdir / "clean")
        clean_svc.run()
        clean = _outputs(clean_svc, get_telemetry())

        # the crashed history: run to the checkpoint, discard the process
        set_telemetry(Telemetry(sinks=[MemorySink(maxlen=None)], clock=TickClock()))
        cfg = make_preset(
            preset,
            rounds=DIFFERENTIAL_ROUNDS,
            checkpoint_every=DIFFERENTIAL_CHECKPOINT,
        )
        part1 = FederationService(cfg, workdir / "killed")
        part1.run(until_round=DIFFERENTIAL_CHECKPOINT)
        trace1 = [encode_event(ev) for ev in get_telemetry().events()]

        # ...and the "new process": fresh hub, state from the snapshot only
        set_telemetry(Telemetry(sinks=[MemorySink(maxlen=None)], clock=TickClock()))
        part2 = FederationService.resume(workdir / "killed")
        part2.run()
        resumed = _outputs(part2, get_telemetry())
        resumed["trace"] = trace1 + resumed["trace"]
    finally:
        set_telemetry(prev_hub)

    roundtrip_ok = all(
        verify_snapshot(snap) == []
        for snap in list_snapshots(workdir / "killed")
    )
    return {
        "resume_identical": all(
            resumed[k] == clean[k] for k in ("history", "reputation", "ledger")
        ),
        "trace_identical": resumed["trace"] == clean["trace"],
        "roundtrip_ok": roundtrip_ok,
    }


def run_benchmark(replay_rounds: int, workdir: Path, seed: int = 0) -> dict:
    """The differential gate plus one replay throughput measurement."""
    result = run_differential(workdir / "differential")
    replay_cfg = ReplayConfig(
        rounds=replay_rounds,
        seed=seed,
        # scale the checkpoint cadence with the run so both scales price
        # a comparable number of snapshots per round
        checkpoint_every=max(50, replay_rounds // 20),
    )
    report = run_replay(replay_cfg, workdir / "replay")
    result.update(
        {
            "replay_rounds": replay_rounds,
            "rounds_per_sec": report["sustained_rounds_per_sec"],
            "snapshot_overhead_pct": report["snapshot_overhead_pct"],
            "checkpoints": report["checkpoints"],
            "history_rounds_in_memory": report["history_rounds_in_memory"],
            "rss_growth_alerts": report["rss_growth_alerts"],
            "replay_final_accuracy": report["final_accuracy"],
        }
    )
    return result


def format_report(result: dict) -> list[str]:
    def flag(ok):
        return "ok" if ok else "FAILED"

    return [
        f"Service benchmark (replay: {result['replay_rounds']} rounds, "
        f"{result['checkpoints']} checkpoints)",
        f"  kill/resume byte-identity: digests {flag(result['resume_identical'])}, "
        f"trace {flag(result['trace_identical'])}, "
        f"snapshot round-trip {flag(result['roundtrip_ok'])}",
        f"  sustained throughput: {result['rounds_per_sec']:.1f} rounds/s",
        f"  snapshot overhead: {result['snapshot_overhead_pct']:.3f}% "
        f"of round wall time (bar: {OVERHEAD_BAR_PCT}%)",
        f"  memory: {result['history_rounds_in_memory']} round records live, "
        f"{result['rss_growth_alerts']} rss-growth alerts",
    ]


def check_gates(result: dict) -> list[str]:
    problems = []
    if not result["resume_identical"]:
        problems.append("resumed run digests diverged from the clean run")
    if not result["trace_identical"]:
        problems.append("resumed trace bytes diverged from the clean run")
    if not result["roundtrip_ok"]:
        problems.append("a surviving snapshot failed deep verification")
    if result["snapshot_overhead_pct"] > OVERHEAD_BAR_PCT:
        problems.append(
            f"snapshot overhead {result['snapshot_overhead_pct']:.2f}% "
            f"exceeds the {OVERHEAD_BAR_PCT}% bar"
        )
    if result["rss_growth_alerts"]:
        problems.append(
            f"{result['rss_growth_alerts']} rss-growth alerts during replay"
        )
    return problems


def bench_service_resume(benchmark):
    """Pytest entry: the identity contract and the overhead bar, quick scale."""
    with tempfile.TemporaryDirectory() as tmp:
        result = benchmark.pedantic(
            run_benchmark,
            kwargs=dict(replay_rounds=QUICK_REPLAY_ROUNDS, workdir=Path(tmp)),
            iterations=1, rounds=1, warmup_rounds=0,
        )
    for row in format_report(result):
        print(row)
    assert check_gates(result) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI scale ({QUICK_REPLAY_ROUNDS}-round replay instead of "
        f"{FULL_REPLAY_ROUNDS})",
    )
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the replay length")
    parser.add_argument("--workdir", default="",
                        help="keep snapshots/replay state here (default: temp)")
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the manifest to benchmarks/BENCH_service.json",
    )
    args = parser.parse_args(argv)

    rounds = args.rounds
    if rounds is None:
        rounds = QUICK_REPLAY_ROUNDS if args.quick else FULL_REPLAY_ROUNDS

    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        result = run_benchmark(rounds, workdir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            result = run_benchmark(rounds, Path(tmp))
    result["quick"] = bool(args.quick)

    for row in format_report(result):
        print(row)
    problems = check_gates(result)
    for p in problems:
        print(f"ERROR: {p}")
    run_manifest(
        "bench_service",
        config={"replay_rounds": rounds, "quick": args.quick, "seed": 0},
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_service.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
