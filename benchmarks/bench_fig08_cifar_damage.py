"""Regenerates Figure 8: attacker damage on the CIFAR10-like task."""

from repro.experiments import fig08_cifar_damage as f8

from conftest import emit, run_once


def _final(series):
    return next(v for v in reversed(series) if v is not None)


def bench_fig08_cifar(benchmark):
    # reduced rounds keep the bench under a minute; the shape is identical
    cfg = f8.default_config().scaled(rounds=24, eval_every=4)
    result = run_once(benchmark, f8.run, cfg)
    emit("Figure 8: CIFAR10-like damage", f8.format_rows(result))
    acc = {k: _final(s) for k, s in result["accuracy"].items()}
    loss = {k: _final(s) for k, s in result["loss"].items()}
    assert acc["none"] > acc["data_poison"] > acc["sign_flip"]
    assert acc["joint"] <= acc["data_poison"]
    # loss ordering mirrors accuracy
    assert loss["none"] < loss["sign_flip"]
