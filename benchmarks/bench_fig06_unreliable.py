"""Regenerates Figure 6: system revenue under attacks, relative to FIFL."""

from repro.experiments import fig06_unreliable
from repro.market import MECHANISMS

from conftest import emit, run_once


def bench_fig06_unreliable(benchmark):
    result = run_once(
        benchmark, fig06_unreliable.run, repetitions=10, probe_rounds=3
    )
    emit("Figure 6: revenue under attack", fig06_unreliable.format_rows(result))
    rel = result["relative_revenue"]
    degrees = sorted(rel)
    for m in MECHANISMS:
        if m == "fifl":
            continue
        # every baseline declines monotonically with attack degree
        series = [rel[d][m] for d in degrees]
        assert all(a > b for a, b in zip(series, series[1:]))
    # paper headline: at 0.385 FIFL outperforms every baseline by > 40%
    for m, gain in result["fifl_outperforms_by"][0.385].items():
        assert gain > 40.0, m
