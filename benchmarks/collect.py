"""Collect per-PR benchmark headlines into ``BENCH_trajectory.json``.

Every performance-focused PR records its benchmark manifests as
``benchmarks/BENCH_<name>.json``. This tool folds the *headline* metric
of each manifest into a single trajectory file at the repository root,
so the performance story across the PR stack is one diff-able document:

    python benchmarks/collect.py --record --label PR5
    python benchmarks/collect.py --check
    python benchmarks/collect.py --show

``--record`` extracts the current headline metrics from each
``BENCH_*.json`` and appends one row per bench (keyed by bench name,
labelled with ``--label``; re-recording an existing label replaces its
row in place). A row whose metrics are an *exact* copy of the previous
row's is marked ``"stale": true`` — benchmark timings never reproduce
float-for-float, so exact equality means the manifest was carried
forward from the previous PR without re-running the bench. Stale rows
stay in the trajectory (the carry-forward itself is part of the
history) but are skipped when picking the ``--check`` baseline, so a
stale copy can never launder a regression into the new baseline.

``--check`` recomputes the same headlines and fails (exit 1) when any
tracked metric regressed beyond tolerance relative to the *last
non-stale row* — the CI guard that a PR cannot silently degrade a
headline it inherited. The check is direction-aware: speedups must not
fall, overheads must not rise. Near-zero overhead percentages get an
absolute slack floor (``ABS_SLACK``) so timing jitter on a sub-1%
number is not flagged as a 20% "regression".

No benchmark is *run* here: the tool only reads the committed
manifests, so the CI step is cheap and deterministic.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
TRAJECTORY = REPO_ROOT / "BENCH_trajectory.json"

#: default relative tolerance for --check (fraction of the baseline)
DEFAULT_TOLERANCE = 0.20
#: absolute slack (same unit as the metric) added on top of the relative
#: tolerance for percentage metrics that legitimately sit near zero, and
#: for bytes/worker figures whose numerator is a jittery allocator peak
ABS_SLACK = {"pct": 2.0, "bytes_per_worker": 8.0, "speedup": 0.25,
             "seconds": 0.005}


def _max_size_entry(manifest: dict) -> tuple[str, dict]:
    """Largest federation size in a by_size manifest (headline scale)."""
    by_size = manifest.get("by_size") or {}
    if not by_size:
        raise KeyError("manifest has no by_size block")
    key = max(by_size, key=int)
    return key, by_size[key]


def extract_engine(manifest: dict) -> dict:
    """Headlines of BENCH_engine.json (round-engine benchmark)."""
    n, entry = _max_size_entry(manifest)
    metrics = {
        f"speedup_total_n{n}": {
            "value": float(entry["speedup_total"]), "better": "higher",
        },
        f"speedup_kernels_n{n}": {
            "value": float(entry["speedup_kernels"]), "better": "higher",
        },
    }
    for key in ("telemetry_overhead", "monitor_overhead",
                "resource_overhead"):
        block = manifest.get(key)
        if block is not None:
            metrics[f"{key}_pct"] = {
                "value": float(block["overhead_pct"]),
                "better": "lower", "unit": "pct",
            }
    return metrics


def extract_local_step(manifest: dict) -> dict:
    """Headlines of BENCH_local_step.json (fleet local-training)."""
    n, entry = _max_size_entry(manifest)
    return {
        f"speedup_local_n{n}": {
            "value": float(entry["speedup_local"]), "better": "higher",
        },
        f"speedup_total_n{n}": {
            "value": float(entry["speedup_total"]), "better": "higher",
        },
    }


def extract_sim(manifest: dict) -> dict:
    """Headlines of BENCH_sim.json (discrete-event round simulator)."""
    return {
        "sim_overhead_pct": {
            "value": float(manifest["overhead_pct"]),
            "better": "lower", "unit": "pct",
        },
        "bitwise_identical": {
            "value": bool(manifest["bitwise_identical"]), "better": "exact",
        },
    }


def extract_population(manifest: dict) -> dict:
    """Headlines of BENCH_population.json (cross-device scale)."""
    n, entry = _max_size_entry(manifest)
    return {
        f"rounds_per_sec_n{n}": {
            "value": float(entry["rounds_per_sec"]), "better": "higher",
        },
        f"bytes_per_worker_n{n}": {
            "value": float(entry["bytes_per_worker"]),
            "better": "lower", "unit": "bytes_per_worker",
        },
        "cohort_memory_ok": {
            "value": bool(manifest["cohort_memory_ok"]), "better": "exact",
        },
        "bitwise_identical": {
            "value": bool(manifest["bitwise_identical"]), "better": "exact",
        },
    }


def extract_parallel(manifest: dict) -> dict:
    """Headlines of BENCH_parallel.json (execution-backend scaling).

    The speedup headline gets an absolute slack unit: on few-core
    recording machines the parallel best hovers around 1.0x where the
    relative tolerance alone is tighter than scheduler jitter.
    """
    n, entry = _max_size_entry(manifest)
    return {
        f"speedup_parallel_n{n}": {
            "value": float(entry["speedup_best"]),
            "better": "higher", "unit": "speedup",
        },
        "bitwise_identical": {
            "value": bool(manifest["bitwise_identical"]), "better": "exact",
        },
    }


def extract_perf(manifest: dict) -> dict:
    """Headlines of BENCH_perf.json (perf-observability layer).

    The p50 round wall time is the rounds/sec headline (absolute slack
    in seconds: at ~1 ms medians the relative tolerance alone is tighter
    than shared-machine jitter). ``top_phase`` is informational
    (``better: "none"``): which phase dominates is worth tracking in the
    trajectory but a shift is attribution, not a regression.
    """
    return {
        "p50_round_wall_s": {
            "value": float(manifest["p50_round_wall_s"]),
            "better": "lower", "unit": "seconds",
        },
        "top_phase": {
            "value": manifest.get("top_phase"), "better": "none",
        },
        "perfetto_valid": {
            "value": bool(manifest["perfetto_valid"]), "better": "exact",
        },
        "probe_trace_identical": {
            "value": bool(manifest["probe_trace_identical"]),
            "better": "exact",
        },
        "diff_zero": {
            "value": bool(manifest["diff_zero"]), "better": "exact",
        },
    }


def extract_service(manifest: dict) -> dict:
    """Headlines of BENCH_service.json (resumable federation service).

    The booleans are the byte-identity contract (kill/resume differential
    and snapshot round-trip); the throughput and overhead numbers come
    from the traffic-replay harness.
    """
    return {
        "rounds_per_sec": {
            "value": float(manifest["rounds_per_sec"]), "better": "higher",
        },
        "snapshot_overhead_pct": {
            "value": float(manifest["snapshot_overhead_pct"]),
            "better": "lower", "unit": "pct",
        },
        "resume_identical": {
            "value": bool(manifest["resume_identical"]), "better": "exact",
        },
        "trace_identical": {
            "value": bool(manifest["trace_identical"]), "better": "exact",
        },
        "roundtrip_ok": {
            "value": bool(manifest["roundtrip_ok"]), "better": "exact",
        },
        "rss_growth_alerts": {
            "value": int(manifest["rss_growth_alerts"]), "better": "exact",
        },
    }


def extract_audit(manifest: dict) -> dict:
    """Headlines of BENCH_audit.json (incentive audit layer).

    The booleans are the audit layer's correctness contract (offline
    lineage reconstruction byte-identical to live records, trace-level
    verification clean); the overhead percentage is the cost of the
    attribution payload on every ``fifl.round`` event.
    """
    diff = manifest["differential"]
    return {
        "audit_overhead_pct": {
            "value": float(manifest["audit_overhead"]["overhead_pct"]),
            "better": "lower", "unit": "pct",
        },
        "byte_identical": {
            "value": bool(diff["byte_identical"]), "better": "exact",
        },
        "verify_ok": {
            "value": bool(diff["verify_ok"]), "better": "exact",
        },
    }


EXTRACTORS = {
    "audit": extract_audit,
    "engine": extract_engine,
    "local_step": extract_local_step,
    "parallel": extract_parallel,
    "perf": extract_perf,
    "population": extract_population,
    "service": extract_service,
    "sim": extract_sim,
}


def collect_current(bench_dir: Path = BENCH_DIR) -> dict[str, dict]:
    """Headline metrics per bench name, from the committed manifests."""
    current: dict[str, dict] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        extractor = EXTRACTORS.get(name)
        if extractor is None:
            # unknown manifests ride along untracked, but say so — a
            # silently-skipped bench reads as "covered" when it is not
            print(f"[collect] no extractor for {path.name}; skipping",
                  file=sys.stderr)
            continue
        manifest = json.loads(path.read_text())
        current[name] = extractor(manifest)
    return current


def load_trajectory(path: Path = TRAJECTORY) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"benches": {}}


def _mark_stale(rows: list[dict]) -> None:
    """Flag rows whose metrics are byte-copies of the previous row.

    Real benchmark reruns never reproduce timings float-for-float, so an
    exactly-equal metrics dict means the manifest was carried forward
    unchanged from the previous PR. The scan runs over the whole history
    on every record, so carry-forwards that predate this check are
    flagged retroactively.
    """
    for i, row in enumerate(rows):
        stale = i > 0 and row.get("metrics") == rows[i - 1].get("metrics")
        if stale:
            row["stale"] = True
        else:
            row.pop("stale", None)


def record(label: str, path: Path = TRAJECTORY,
           bench_dir: Path = BENCH_DIR) -> dict:
    """Fold the current headlines into the trajectory under ``label``."""
    traj = load_trajectory(path)
    benches = traj.setdefault("benches", {})
    for name, metrics in collect_current(bench_dir).items():
        rows = benches.setdefault(name, [])
        row = {"label": label, "metrics": metrics}
        for i, existing in enumerate(rows):
            if existing.get("label") == label:
                rows[i] = row
                break
        else:
            rows.append(row)
    for rows in benches.values():
        _mark_stale(rows)
    # write-to-temp-then-rename: a crash mid-record (or two concurrent
    # CI jobs) can never leave a truncated trajectory behind
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(traj, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return traj


def _allowed_delta(base: float, spec: dict, tolerance: float) -> float:
    slack = ABS_SLACK.get(spec.get("unit"), 0.0)
    return max(tolerance * abs(base), slack)


def check(tolerance: float = DEFAULT_TOLERANCE, path: Path = TRAJECTORY,
          bench_dir: Path = BENCH_DIR) -> list[str]:
    """Compare current headlines against the last recorded row.

    Returns a list of human-readable regression messages (empty = pass).
    """
    traj = load_trajectory(path)
    benches = traj.get("benches", {})
    problems: list[str] = []
    for name, metrics in collect_current(bench_dir).items():
        rows = benches.get(name)
        if not rows:
            problems.append(
                f"{name}: no recorded trajectory row "
                f"(run collect.py --record --label <PR>)"
            )
            continue
        # stale rows are carried-forward copies, not fresh measurements —
        # regress against the last row that was actually re-run
        baseline = next(
            (r for r in reversed(rows) if not r.get("stale")), rows[-1]
        )
        base_metrics = baseline.get("metrics", {})
        for metric, spec in metrics.items():
            base_spec = base_metrics.get(metric)
            if base_spec is None:
                continue  # metric is new in this PR; nothing to regress
            value, base = spec["value"], base_spec["value"]
            better = spec.get("better", "higher")
            if better == "none":
                continue  # informational metric: tracked, never gated
            if better == "exact":
                if value != base:
                    problems.append(
                        f"{name}.{metric}: {value!r} != recorded {base!r}"
                    )
                continue
            delta = _allowed_delta(base, spec, tolerance)
            if better == "higher" and value < base - delta:
                problems.append(
                    f"{name}.{metric}: {value:.4g} fell below recorded "
                    f"{base:.4g} (allowed slack {delta:.4g})"
                )
            elif better == "lower" and value > base + delta:
                problems.append(
                    f"{name}.{metric}: {value:.4g} rose above recorded "
                    f"{base:.4g} (allowed slack {delta:.4g})"
                )
    return problems


def show(path: Path = TRAJECTORY) -> list[str]:
    """Render the trajectory as per-bench metric tables."""
    traj = load_trajectory(path)
    lines: list[str] = []
    for name, rows in sorted(traj.get("benches", {}).items()):
        lines.append(f"=== {name}")
        for row in rows:
            parts = []
            for metric, spec in sorted(row.get("metrics", {}).items()):
                v = spec["value"]
                parts.append(
                    f"{metric}={v:.4g}" if isinstance(v, float)
                    else f"{metric}={v}"
                )
            if row.get("stale"):
                parts.append("[stale: carried forward]")
            lines.append(f"  {row.get('label', '?'):<8} " + "  ".join(parts))
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record", action="store_true",
        help="fold current BENCH_*.json headlines into the trajectory",
    )
    parser.add_argument(
        "--label", default="",
        help="row label for --record (e.g. PR5); required with --record",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail if current headlines regressed vs the last row",
    )
    parser.add_argument(
        "--show", action="store_true", help="print the trajectory tables"
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative regression tolerance for --check (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not (args.record or args.check or args.show):
        parser.error("pass --record, --check, or --show")

    if args.record:
        if not args.label:
            parser.error("--record requires --label")
        record(args.label)
        print(f"[collect] recorded row {args.label!r} in {TRAJECTORY}")
    if args.check:
        problems = check(tolerance=args.tolerance)
        if problems:
            for p in problems:
                print(f"REGRESSION {p}", file=sys.stderr)
            return 1
        print("[collect] headline metrics within tolerance")
    if args.show:
        for line in show():
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
