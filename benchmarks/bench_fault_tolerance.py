"""Extension: node-failure tolerance across cluster policies (S3.2/S4.5)."""

from repro.experiments import fault_tolerance

from conftest import emit, run_once


def bench_fault_tolerance(benchmark):
    result = run_once(benchmark, fault_tolerance.run)
    emit("Fault tolerance", fault_tolerance.format_rows(result))
    s = result["scenarios"]
    # a dead worker is harmless
    assert s["worker_fails"]["final_acc"] >= s["no_failure"]["final_acc"] - 0.05
    # a dead static-cluster server freezes the model (the paper's crash)
    assert abs(
        s["server_fails"]["final_acc"] - s["server_fails"]["acc_at_failure"]
    ) < 0.02
    # S4.5 re-selection replaces the dead server and recovers fully
    assert (
        s["server_fails_reselect"]["final_acc"]
        >= s["no_failure"]["final_acc"] - 0.05
    )
    assert 1 not in s["server_fails_reselect"]["final_servers"]
