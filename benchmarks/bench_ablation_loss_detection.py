"""Ablation: FIFL's first-order detection vs exact loss-based (Zeno-style).

The paper's S4.1 argument: the exact score L(θ) − L(θ − G_i) needs one
validation inference per worker per round, while the Taylor-approximated
inner product needs none — and the approximation does not lose detection
quality on the attacks studied. This bench measures both claims: decision
agreement between the two scores, and their relative wall-clock cost.
"""

import time

import numpy as np

from repro.core import AttackDetector, DetectionConfig, LossBasedDetector
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import HonestWorker, SignFlippingWorker, split_gradient
from repro.nn import build_logreg

from conftest import emit, run_once

N_FEATURES, N_CLASSES, N_WORKERS = 16, 4, 10
ATTACKERS = (3, 7)


def _gradients(seed=0):
    data = make_blobs(n_samples=2200, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed)
    train, test = train_test_split(data, 0.2, seed=seed)
    shards = iid_partition(train, N_WORKERS, seed=seed)
    model_fn = lambda: build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    theta = model_fn().get_flat_params()
    grads = {}
    for i in range(N_WORKERS):
        cls = SignFlippingWorker if i in ATTACKERS else HonestWorker
        kwargs = {"p_s": 4.0} if i in ATTACKERS else {}
        w = cls(i, shards[i], model_fn, lr=0.1, local_iters=4,
                seed=seed + 100 + i, **kwargs)
        grads[i] = w.compute_update(theta).gradient
    return theta, grads, test, model_fn


def _sweep():
    theta, grads, test, model_fn = _gradients()

    # exact loss-based detection (N+1 validation inferences)
    exact = LossBasedDetector(model_fn, test, step=0.1, threshold=0.0)
    t0 = time.perf_counter()
    for _ in range(5):
        exact_scores, exact_accept = exact.detect(theta, grads)
    exact_time = (time.perf_counter() - t0) / 5

    # FIFL first-order detection over the polycentric protocol (servers
    # 0 and 1 score slices against their own slices; no inference at all)
    bench = {
        srv: split_gradient(grads[srv], 2)[j]
        for j, srv in enumerate((0, 1))
    }
    slices = {
        w: dict(zip((0, 1), split_gradient(g, 2))) for w, g in grads.items()
    }
    fifl = AttackDetector(DetectionConfig(threshold=0.0, mode="cosine"))
    t0 = time.perf_counter()
    for _ in range(5):
        fifl_scores, fifl_accept = fifl.detect(slices, bench)
    fifl_time = (time.perf_counter() - t0) / 5

    agreement = np.mean(
        [exact_accept[w] == fifl_accept[w] for w in grads]
    )
    return {
        "agreement": float(agreement),
        "exact_ms": exact_time * 1e3,
        "fifl_ms": fifl_time * 1e3,
        "speedup": exact_time / fifl_time,
        "exact_accept": exact_accept,
        "fifl_accept": fifl_accept,
    }


def bench_ablation_loss_vs_first_order(benchmark):
    result = run_once(benchmark, _sweep)
    emit(
        "Ablation: exact loss detection vs FIFL first-order",
        [
            f"decision agreement: {result['agreement']:.2f}",
            f"exact (Zeno-style): {result['exact_ms']:.2f} ms/round",
            f"FIFL first-order:   {result['fifl_ms']:.2f} ms/round",
            f"speedup:            {result['speedup']:.0f}x",
        ],
    )
    # identical decisions on this attack mix, at a fraction of the cost
    assert result["agreement"] == 1.0
    for a in ATTACKERS:
        assert result["exact_accept"][a] is False
        assert result["fifl_accept"][a] is False
    assert result["speedup"] > 5.0
