"""Extension: communication bottleneck across architectures (S3.2)."""

from repro.experiments import arch_comm

from conftest import emit, run_once


def bench_arch_comm_load(benchmark):
    result = run_once(benchmark, arch_comm.run)
    emit("Architecture communication load", arch_comm.format_rows(result))
    names = list(result)
    central, poly, decent = (result[n] for n in names)
    # identical learning outcome...
    assert central["final_acc"] == poly["final_acc"] == decent["final_acc"]
    # ...but the per-node bottleneck shrinks as servers are added
    assert central["max_node_load"] > poly["max_node_load"] > decent["max_node_load"]
    # the central server carries ~N x the average node's traffic
    assert central["max_node_load"] > 3 * central["mean_node_load"]
