"""Round-engine benchmark: vectorized vs scalar FIFL kernels.

Times ``FIFLMechanism.process_round`` over synthetic rounds at several
federation sizes, once with the batched (N, D)-matrix engine and once
with the scalar reference loops, and reports per-phase wall-clock from
the telemetry module plus the speedup per phase. Also measures the
always-on telemetry overhead (default in-memory sink vs disabled hub)
and reports both wall-clock numbers; the run's result doubles as a
telemetry run manifest (config + seed + timings + speedups) emitted
through the active sinks.

CLI (no pytest needed)::

    python benchmarks/bench_engine.py            # N in {16, 64, 256}
    python benchmarks/bench_engine.py --quick    # smoke scale
    python benchmarks/bench_engine.py --json out.json
    python benchmarks/bench_engine.py --record   # benchmarks/BENCH_engine.json

Under pytest (``pytest benchmarks/bench_engine.py``) the quick
configuration runs as a regression guard: the vectorized engine must
beat the scalar one on the detection + contribution phases at N = 64.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import make_mechanism
from repro.fl.gradients import split_gradient
from repro.fl.trainer import RoundContext
from repro.fl.workers import WorkerUpdate
from repro.parallel import blas_limits
from repro.profiling import Profiler
from repro.telemetry import Telemetry, run_manifest, write_manifest

#: phases whose vectorization the tentpole targets
KERNEL_PHASES = ("fifl.detect", "fifl.contribution")

DEFAULT_SIZES = (16, 64, 256)
DEFAULT_DIM = 4096
DEFAULT_SERVERS = 4
DEFAULT_ROUNDS = 10


def make_round(
    num_workers: int,
    dim: int,
    num_servers: int,
    round_idx: int,
    seed: int = 0,
    uncertain: int = 0,
) -> RoundContext:
    """One synthetic communication round (servers are workers 0..M-1)."""
    rng = np.random.default_rng(seed * 7919 + round_idx)
    server_ranks = list(range(num_servers))
    honest = rng.standard_normal(dim)
    updates: dict[int, WorkerUpdate] = {}
    slices: dict[int, dict[int, np.ndarray]] = {}
    uncertain_ids = set(range(num_servers, num_servers + uncertain))
    for wid in range(num_workers):
        # mostly honest-ish gradients plus a few deviating uploads, so
        # both accept and reject branches get exercised
        noise = rng.standard_normal(dim)
        grad = honest + 0.3 * noise if wid % 5 else -2.0 * honest + noise
        updates[wid] = WorkerUpdate(
            worker_id=wid, gradient=grad, num_samples=100
        )
        if wid in uncertain_ids:
            continue  # lost a slice: uncertain event, no delivery
        parts = split_gradient(grad, num_servers)
        slices[wid] = {srv: parts[j] for j, srv in enumerate(server_ranks)}
    return RoundContext(
        round_idx=round_idx,
        global_params=np.zeros(dim),
        server_ranks=server_ranks,
        slices=slices,
        updates=updates,
        uncertain=uncertain_ids,
        sample_counts={w: 100 for w in range(num_workers)},
    )


def time_engine(
    engine: str,
    num_workers: int,
    dim: int,
    num_servers: int,
    rounds: int,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> dict:
    """Run ``rounds`` synthetic rounds through one engine; per-phase seconds.

    ``telemetry`` overrides the per-run hub — the overhead check passes
    a disabled hub here to time the mechanism with instrumentation off.
    """
    profiler = telemetry if telemetry is not None else Profiler()
    mech = make_mechanism(
        "fifl", threshold=0.0, gamma=0.2, engine=engine
    )
    mech.profiler = profiler
    contexts = [
        make_round(num_workers, dim, num_servers, t, seed=seed, uncertain=1)
        for t in range(rounds)
    ]
    # Warm up BLAS threads / allocator on a throwaway mechanism so the
    # first timed round isn't paying one-off setup costs.
    warm = make_mechanism("fifl", threshold=0.0, gamma=0.2, engine=engine)
    warm.profiler = Profiler()
    warm.process_round(contexts[0])
    # pin the BLAS pool so a multi-threaded BLAS can't skew the
    # engine-vs-engine comparison machine by machine
    with blas_limits(1):
        t0 = time.perf_counter()
        for ctx in contexts:
            mech.process_round(ctx)
        total = time.perf_counter() - t0
    snap = profiler.snapshot()
    phases = {
        name: entry["seconds"] for name, entry in snap["timings"].items()
    }
    return {"total_s": total, "phases": phases}


def telemetry_overhead(
    num_workers: int,
    dim: int,
    num_servers: int,
    rounds: int,
    seed: int = 0,
    samples: int = 300,
) -> dict:
    """Wall-clock with the default in-memory sink vs telemetry disabled.

    The acceptance bar caps the always-on hot-path cost at 5%, a
    tens-of-microseconds question per round — far below cross-process
    (or even cross-second) timing drift on a shared machine. So this
    times individual rounds, strictly alternating an enabled-hub and a
    disabled-hub mechanism over the *same* prebuilt contexts so both
    sides sample identical scheduler/cache conditions, and compares the
    per-side minima over ``samples`` rounds — the minimum is the
    noise-free estimate of what one round costs. Telemetry defers event
    materialization to flush boundaries; the periodic ``flush()`` calls
    between timed rounds charge that deferred work outside the timed
    regions, so the number reported here is the per-round hot-path cost
    that round-loop callers actually see. ``enabled_s``/``disabled_s``
    are scaled to ``rounds`` rounds to match the engine timings above.
    """
    contexts = [
        make_round(num_workers, dim, num_servers, t, seed=seed, uncertain=1)
        for t in range(rounds)
    ]
    hubs = {"on": Telemetry(), "off": Telemetry(enabled=False)}
    mechs = {}
    for key, hub in hubs.items():
        mech = make_mechanism("fifl", threshold=0.0, gamma=0.2,
                              engine="vectorized")
        mech.profiler = hub
        mechs[key] = mech
    times: dict[str, list[float]] = {"on": [], "off": []}
    with blas_limits(1):
        for i in range(samples + 10):
            ctx = contexts[i % rounds]
            # alternate which side goes first so neither systematically
            # inherits the other's warm caches
            order = ("on", "off") if i % 2 else ("off", "on")
            for key in order:
                mech = mechs[key]
                t0 = time.perf_counter()
                mech.process_round(ctx)
                times[key].append(time.perf_counter() - t0)
            if i % 50 == 0:
                for hub in hubs.values():
                    hub.flush()

    def floor(vals: list[float], k: int = 20) -> float:
        # drop the first few samples (warm-up: BLAS threads, allocator,
        # code paths), then average the k fastest — timing noise is
        # one-sided additive, so the low tail estimates the true cost,
        # and averaging k of them is steadier than the raw minimum
        return sum(sorted(vals[10:])[:k]) / k

    enabled = floor(times["on"]) * rounds
    disabled = floor(times["off"]) * rounds
    return {
        "num_workers": num_workers,
        "enabled_s": enabled,
        "disabled_s": disabled,
        "overhead_pct": 100.0 * (enabled - disabled) / max(disabled, 1e-12),
    }


def monitor_overhead(
    num_workers: int,
    dim: int,
    num_servers: int,
    rounds: int,
    seed: int = 0,
    samples: int = 600,
) -> dict:
    """Wall-clock with a health monitor attached vs a bare enabled hub.

    Same alternating-rounds protocol as :func:`telemetry_overhead`, with
    two deliberate differences. First, the per-round ``flush()`` sits
    *inside* the timed region on both sides: the monitor's rule engine
    runs at flush boundaries (that is exactly where the trainer drives
    it), so that is where its cost must be charged — flushing outside
    the timer would measure an idle sink. Second, the overhead is the
    *median of paired per-iteration differences* (on minus off within
    the same alternating iteration) rather than a ratio of independent
    per-side floors: the true monitor cost is tens of microseconds per
    round, below the run-to-run jitter of two separately-estimated
    floors, and pairing cancels the drift both sides share. The
    synthetic rounds include deviating workers, so the margin rules
    genuinely fire (and latch) — the alert path is part of the measured
    cost, not just the silent fast path.
    """
    from repro.monitor import Monitor, MonitorConfig

    contexts = [
        make_round(num_workers, dim, num_servers, t, seed=seed, uncertain=1)
        for t in range(rounds)
    ]
    hubs = {"on": Telemetry(), "off": Telemetry()}
    Monitor(MonitorConfig()).install(hubs["on"])
    mechs = {}
    for key, hub in hubs.items():
        mech = make_mechanism("fifl", threshold=0.0, gamma=0.2,
                              engine="vectorized")
        mech.profiler = hub
        mechs[key] = mech
    times: dict[str, list[float]] = {"on": [], "off": []}
    with blas_limits(1):
        for i in range(samples + 10):
            ctx = contexts[i % rounds]
            order = ("on", "off") if i % 2 else ("off", "on")
            for key in order:
                mech = mechs[key]
                hub = hubs[key]
                t0 = time.perf_counter()
                mech.process_round(ctx)
                hub.flush()
                times[key].append(time.perf_counter() - t0)

    def floor(vals: list[float], k: int = 20) -> float:
        return sum(sorted(vals[10:])[:k]) / k

    deltas = sorted(
        on - off for on, off in zip(times["on"][10:], times["off"][10:])
    )
    mid = len(deltas) // 2
    delta = (
        deltas[mid] if len(deltas) % 2
        else 0.5 * (deltas[mid - 1] + deltas[mid])
    )
    per_round = floor(times["off"])
    disabled = per_round * rounds
    return {
        "num_workers": num_workers,
        "enabled_s": (per_round + delta) * rounds,
        "disabled_s": disabled,
        "overhead_pct": 100.0 * delta / max(per_round, 1e-12),
    }


def resource_overhead(
    num_workers: int,
    dim: int,
    num_servers: int,
    rounds: int,
    seed: int = 0,
    samples: int = 600,
) -> dict:
    """Per-round cost of one :meth:`ResourceProbe.sample`, vs the round.

    A probe sample is a deterministic constant cost — one ``pread`` of
    ``/proc/self/statm`` plus GC counter loads, single-digit µs — two
    orders of magnitude below the ±1% run-to-run jitter that paired
    wall-clock differencing carries on a shared machine, so the
    monitor/telemetry differencing protocol cannot resolve it. The
    sample call is therefore timed directly (median over ``samples``
    calls, GC callback attached so its bookkeeping is part of the
    context) and reported against the floor of the round time it rides
    on — exactly the one call the trainer adds at each round boundary.
    Acceptance bar: ≤ 1% of a round.
    """
    from repro.perf.resources import ResourceProbe

    contexts = [
        make_round(num_workers, dim, num_servers, t, seed=seed, uncertain=1)
        for t in range(rounds)
    ]
    mech = make_mechanism("fifl", threshold=0.0, gamma=0.2,
                          engine="vectorized")
    mech.profiler = Profiler()
    round_times: list[float] = []
    sample_times: list[float] = []
    with ResourceProbe() as probe, blas_limits(1):
        for i in range(40):
            ctx = contexts[i % rounds]
            t0 = time.perf_counter()
            mech.process_round(ctx)
            round_times.append(time.perf_counter() - t0)
            probe.sample(i)
        for i in range(samples):
            t0 = time.perf_counter()
            probe.sample(i)
            sample_times.append(time.perf_counter() - t0)

    def floor(vals: list[float], k: int = 20) -> float:
        return sum(sorted(vals[10:])[:k]) / k

    ordered = sorted(sample_times)
    mid = len(ordered) // 2
    per_sample = (
        ordered[mid] if len(ordered) % 2
        else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    per_round = floor(round_times)
    return {
        "num_workers": num_workers,
        "enabled_s": (per_round + per_sample) * rounds,
        "disabled_s": per_round * rounds,
        "round_s": per_round,
        "sample_us": per_sample * 1e6,
        "overhead_pct": 100.0 * per_sample / max(per_round, 1e-12),
    }


def run_benchmark(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    dim: int = DEFAULT_DIM,
    num_servers: int = DEFAULT_SERVERS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
) -> dict:
    """Old-vs-new timings per federation size, with per-phase speedups."""
    by_size: dict[int, dict] = {}
    for n in sizes:
        scalar = time_engine("scalar", n, dim, num_servers, rounds, seed)
        vector = time_engine("vectorized", n, dim, num_servers, rounds, seed)
        kernel_scalar = sum(scalar["phases"].get(p, 0.0) for p in KERNEL_PHASES)
        kernel_vector = sum(vector["phases"].get(p, 0.0) for p in KERNEL_PHASES)
        by_size[n] = {
            "scalar": scalar,
            "vectorized": vector,
            "speedup_total": scalar["total_s"] / max(vector["total_s"], 1e-12),
            "speedup_kernels": kernel_scalar / max(kernel_vector, 1e-12),
        }
    overhead_n = max(sizes)
    return {
        "dim": dim,
        "num_servers": num_servers,
        "rounds": rounds,
        "seed": seed,
        "by_size": by_size,
        "telemetry_overhead": telemetry_overhead(
            overhead_n, dim, num_servers, rounds, seed
        ),
        "monitor_overhead": monitor_overhead(
            overhead_n, dim, num_servers, rounds, seed
        ),
        "resource_overhead": resource_overhead(
            overhead_n, dim, num_servers, rounds, seed
        ),
    }


def format_report(result: dict) -> list[str]:
    rows = [
        f"Round-engine benchmark (D={result['dim']}, "
        f"M={result['num_servers']}, {result['rounds']} rounds per timing)"
    ]
    rows.append(
        f"{'N':>5} {'scalar_s':>10} {'vector_s':>10} "
        f"{'speedup':>8} {'detect+contrib':>15}"
    )
    for n, r in result["by_size"].items():
        rows.append(
            f"{n:>5} {r['scalar']['total_s']:>10.4f} "
            f"{r['vectorized']['total_s']:>10.4f} "
            f"{r['speedup_total']:>7.1f}x {r['speedup_kernels']:>14.1f}x"
        )
    for n, r in result["by_size"].items():
        rows.append(f"  per-phase seconds at N={n}:")
        for name in sorted(set(r["scalar"]["phases"]) | set(r["vectorized"]["phases"])):
            s = r["scalar"]["phases"].get(name, 0.0)
            v = r["vectorized"]["phases"].get(name, 0.0)
            rows.append(f"    {name:<20} scalar={s:.4f}  vectorized={v:.4f}")
    ov = result.get("telemetry_overhead")
    if ov:
        rows.append(
            f"telemetry overhead at N={ov['num_workers']} (in-memory sink vs "
            f"disabled): on={ov['enabled_s']:.4f}s off={ov['disabled_s']:.4f}s "
            f"({ov['overhead_pct']:+.1f}%)"
        )
    mv = result.get("monitor_overhead")
    if mv:
        rows.append(
            f"monitor overhead at N={mv['num_workers']} (rule engine vs bare "
            f"hub): on={mv['enabled_s']:.4f}s off={mv['disabled_s']:.4f}s "
            f"({mv['overhead_pct']:+.1f}%)"
        )
    rv = result.get("resource_overhead")
    if rv:
        rows.append(
            f"resource-probe overhead at N={rv['num_workers']} (one sample "
            f"per round boundary): {rv['sample_us']:.2f}us/sample on a "
            f"{rv['round_s'] * 1e3:.1f}ms round floor "
            f"({rv['overhead_pct']:+.2f}%)"
        )
    return rows


def bench_engine_speedup(benchmark):
    """Pytest entry: the batched kernels must beat the scalar loops."""
    result = benchmark.pedantic(
        run_benchmark,
        kwargs=dict(sizes=(64,), dim=2048, rounds=5),
        iterations=1, rounds=1, warmup_rounds=0,
    )
    for row in format_report(result):
        print(row)
    assert result["by_size"][64]["speedup_kernels"] > 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke scale (small sizes/dim, fewer rounds)",
    )
    parser.add_argument(
        "--sizes", default="",
        help="comma-separated federation sizes (default 16,64,256)",
    )
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--servers", type=int, default=DEFAULT_SERVERS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the manifest to benchmarks/BENCH_engine.json",
    )
    args = parser.parse_args(argv)

    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip()) or (
        (16, 64) if args.quick else DEFAULT_SIZES
    )
    dim = min(args.dim, 1024) if args.quick else args.dim
    rounds = min(args.rounds, 3) if args.quick else args.rounds

    result = run_benchmark(
        sizes=sizes, dim=dim, num_servers=args.servers, rounds=rounds
    )
    for row in format_report(result):
        print(row)
    # The result is also a run manifest: emitting it routes the record
    # through whatever telemetry sinks are active (memory/JSONL/console).
    run_manifest(
        "bench_engine",
        config={
            "sizes": list(sizes), "dim": dim, "num_servers": args.servers,
            "rounds": rounds, "seed": 0, "quick": args.quick,
        },
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_engine.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
