"""Regenerates Figure 11: reputation tracks attack probability."""

from repro.experiments import fig11_reputation as f11

from conftest import emit, run_once


def bench_fig11_reputation(benchmark):
    result = run_once(benchmark, f11.run)
    emit("Figure 11: reputation vs p_a", f11.format_rows(result))
    tails = result["tail_means"]
    probs = sorted(tails)
    values = [tails[p] for p in probs]
    # reputations strictly ordered by trustworthiness ...
    assert all(a > b for a, b in zip(values, values[1:]))
    # ... and near the Theorem-1 fixed point 1 - p_a
    for p_a, mean in tails.items():
        assert abs(mean - (1.0 - p_a)) < 0.2
