"""Regenerates Figure 12: contribution separates workers by quality."""

from repro.experiments import fig12_contribution as f12

from conftest import emit, run_once


def bench_fig12_contribution(benchmark):
    result = run_once(benchmark, f12.run)
    emit("Figure 12: contribution by p_d", f12.format_rows(result))
    means = result["means"]
    rates = sorted(means)
    values = [means[r] for r in rates]
    # contribution strictly ordered by data quality; threshold worker at 0
    assert all(a > b for a, b in zip(values, values[1:]))
    assert abs(means[result["threshold_rate"]]) < 0.05
