"""Perf-observability benchmark: round wall-time headline + contracts.

Prices and guards the :mod:`repro.perf` layer (ISSUE 8):

* **round wall-time headline** — a seeded federated run under the real
  wall clock; reports the p50/p90 round wall time and the top phase by
  self time (the ``_meta.perf`` block the experiment runner embeds);
* **probe byte-identity** — the same seeded run under a deterministic
  :class:`~repro.telemetry.TickClock`, once bare and once with a
  :class:`~repro.perf.ResourceProbe` attached: the two encoded hub
  traces must be byte-identical (probes live on a side stream);
* **zero self-diff** — ``diff_traces`` over two identical seeded traces
  must attribute exactly zero regression (the ``--diff`` sign-convention
  anchor);
* **Perfetto validity** — the wall-clock trace must export as
  structurally valid Chrome-trace-event JSON (``validate_trace``).

CLI (no pytest needed)::

    python benchmarks/bench_perf.py            # default scale
    python benchmarks/bench_perf.py --quick    # CI smoke
    python benchmarks/bench_perf.py --json out.json
    python benchmarks/bench_perf.py --record   # benchmarks/BENCH_perf.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import make_mechanism
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import FederatedTrainer, HonestWorker
from repro.nn import build_logreg
from repro.parallel import blas_limits
from repro.perf import ResourceProbe, diff_traces, events_to_perfetto, \
    perf_summary, validate_trace
from repro.population import WorkerPopulation
from repro.telemetry import MemorySink, Telemetry, TickClock, encode_event, \
    run_manifest, set_telemetry, write_manifest

N_FEATURES = 8
N_CLASSES = 3
DEFAULT_WORKERS = 16
DEFAULT_ROUNDS = 30
QUICK_WORKERS = 8
QUICK_ROUNDS = 10


def _build_trainer(num_workers: int, seed: int = 0, probe=None):
    data = make_blobs(
        n_samples=40 * num_workers, n_features=N_FEATURES,
        num_classes=N_CLASSES, seed=seed,
    )
    train, test = train_test_split(data, 0.25, seed=seed)
    shards = iid_partition(train, num_workers, seed=seed)
    workers = [
        HonestWorker(
            i, shards[i], lambda: build_logreg(N_FEATURES, N_CLASSES, seed=seed),
            lr=0.1, batch_size=32, local_iters=1, seed=seed + 100 + i,
        )
        for i in range(num_workers)
    ]
    return FederatedTrainer(
        build_logreg(N_FEATURES, N_CLASSES, seed=seed),
        population=WorkerPopulation.from_workers(workers),
        server_ranks=[0, 1],
        test_data=test,
        mechanism=make_mechanism("fifl", threshold=0.0, gamma=0.2),
        seed=seed,
        probe=probe,
    )


def _traced_run(num_workers: int, rounds: int, seed: int = 0,
                clock=None, probe=None) -> list[dict]:
    """One seeded run under a fresh hub; returns the materialized events."""
    hub = Telemetry(sinks=[MemorySink()], clock=clock)
    set_telemetry(hub)
    try:
        trainer = _build_trainer(num_workers, seed=seed, probe=probe)
        trainer.run(rounds, eval_every=rounds)
        hub.flush()
        return hub.events()
    finally:
        set_telemetry(Telemetry())


def run_benchmark(num_workers: int = DEFAULT_WORKERS,
                  rounds: int = DEFAULT_ROUNDS, seed: int = 0) -> dict:
    """Headline + contract checks; see the module docstring."""
    # 1) wall-clock headline run (BLAS pinned so p50 compares machine
    # to machine the same way the other benches do)
    with blas_limits(1):
        events = _traced_run(num_workers, rounds, seed=seed)
    summary = perf_summary(events)

    # 2) probe byte-identity under a deterministic clock
    def encode(evs):
        return "\n".join(encode_event(e) for e in evs)

    bare = _traced_run(num_workers, rounds, seed=seed, clock=TickClock())
    with ResourceProbe() as probe:
        probed = _traced_run(
            num_workers, rounds, seed=seed, clock=TickClock(), probe=probe
        )
        probe_samples = len(probe.samples)
    probe_trace_identical = encode(bare) == encode(probed)

    # 3) zero self-diff on identical traces
    diff = diff_traces(bare, probed)
    diff_zero = diff["total_delta_s"] == 0.0 and all(
        p["delta_s"] == 0.0 for p in diff["phases"]
    )

    # 4) Perfetto structural validity of the wall-clock trace
    trace = events_to_perfetto(events)
    try:
        validate_trace(trace)
        perfetto_valid = True
    except ValueError:
        perfetto_valid = False

    top = summary["top_phase"]
    return {
        "num_workers": num_workers,
        "rounds": rounds,
        "seed": seed,
        "round_wall_s": summary["round_wall_s"],
        "p50_round_wall_s": summary["round_wall_s"]["p50"],
        "top_phase": top["name"] if top else None,
        "top_phase_share": top["share"] if top else None,
        "perfetto_events": len(trace["traceEvents"]),
        "perfetto_valid": perfetto_valid,
        "probe_samples": probe_samples,
        "probe_trace_identical": probe_trace_identical,
        "diff_zero": diff_zero,
    }


def format_report(result: dict) -> list[str]:
    rw = result["round_wall_s"]
    return [
        f"Perf-observability benchmark (N={result['num_workers']}, "
        f"{result['rounds']} rounds)",
        f"round wall time: p50={rw['p50']*1e3:.2f}ms p90={rw['p90']*1e3:.2f}ms "
        f"max={rw['max']*1e3:.2f}ms",
        f"top phase by self time: {result['top_phase']} "
        f"({result['top_phase_share']:.0%})",
        f"perfetto export: {result['perfetto_events']} events, "
        f"valid={result['perfetto_valid']}",
        f"probe byte-identity (TickClock, {result['probe_samples']} samples): "
        f"{result['probe_trace_identical']}",
        f"zero self-diff on identical traces: {result['diff_zero']}",
    ]


def bench_perf_contracts(benchmark):
    """Pytest entry: the perf layer's determinism contracts must hold."""
    result = benchmark.pedantic(
        run_benchmark,
        kwargs=dict(num_workers=QUICK_WORKERS, rounds=QUICK_ROUNDS),
        iterations=1, rounds=1, warmup_rounds=0,
    )
    for row in format_report(result):
        print(row)
    assert result["perfetto_valid"]
    assert result["probe_trace_identical"]
    assert result["diff_zero"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale"
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the manifest to benchmarks/BENCH_perf.json",
    )
    args = parser.parse_args(argv)

    num_workers = QUICK_WORKERS if args.quick else args.workers
    rounds = QUICK_ROUNDS if args.quick else args.rounds
    result = run_benchmark(num_workers=num_workers, rounds=rounds)
    for row in format_report(result):
        print(row)
    run_manifest(
        "bench_perf",
        config={
            "num_workers": num_workers, "rounds": rounds, "seed": 0,
            "quick": args.quick,
        },
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_perf.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    ok = (result["perfetto_valid"] and result["probe_trace_identical"]
          and result["diff_zero"])
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
