"""Shared benchmark helpers.

Every bench regenerates one paper figure: it runs the experiment driver
once (``benchmark.pedantic`` with a single round — these are end-to-end
experiments, not microbenchmarks) and prints the same rows/series the
paper reports so the output is the reproduction artifact.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark clock."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, iterations=1, rounds=1, warmup_rounds=0
    )


def emit(title: str, rows: list[str]) -> None:
    """Print a figure's reproduction rows (shown with pytest -s)."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print(row)
