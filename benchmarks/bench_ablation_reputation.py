"""Ablation: Eq. 10 time-decay reputation vs classic period-based SLM.

The paper extends the subjective logic model with a time-decay factor so
that "older events carry smaller weights while recent events are given
larger weights" (S4.2). This bench shows why: tracking a worker that
suddenly turns malicious after a long honest history, the decay estimator
flags it within ~1/gamma rounds while cumulative SLM (all events weighted
equally) drags its 50 rounds of banked trust for ~4x longer.
"""

import numpy as np

from repro.core import DecayReputation, SLMReputation

from conftest import emit, run_once

TURN_ROUND = 50
TOTAL = 100


def _sweep(gamma=0.2):
    decay = DecayReputation(gamma=gamma)
    slm = SLMReputation()  # cumulative: no period resets
    decay_curve, slm_curve = [], []
    for t in range(TOTAL):
        honest = t < TURN_ROUND  # worker turns malicious at TURN_ROUND
        decay.update(0, honest)
        slm.record(0, honest)
        decay_curve.append(decay.reputation(0))
        slm_curve.append(slm.reputation(0))

    def rounds_to_distrust(curve):
        for i in range(TURN_ROUND, TOTAL):
            if curve[i] < 0.5:
                return i - TURN_ROUND + 1
        return TOTAL - TURN_ROUND

    return {
        "decay_lag": rounds_to_distrust(decay_curve),
        "slm_lag": rounds_to_distrust(slm_curve),
        "decay_final": decay_curve[-1],
        "slm_final": slm_curve[-1],
    }


def bench_ablation_reputation_estimators(benchmark):
    result = run_once(benchmark, _sweep)
    emit(
        "Ablation: decay (Eq. 10) vs period-SLM reputation",
        [
            f"rounds to flag the turncoat: decay={result['decay_lag']}, "
            f"slm={result['slm_lag']}",
            f"final reputation: decay={result['decay_final']:.3f}, "
            f"slm={result['slm_final']:.3f}",
        ],
    )
    # the decay estimator reacts much faster than cumulative SLM
    assert result["decay_lag"] * 2 <= result["slm_lag"]
    # and both eventually converge on distrust
    assert result["decay_final"] < 0.1
    assert result["slm_final"] < 0.1
