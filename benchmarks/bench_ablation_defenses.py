"""Ablation: FIFL detection vs Krum vs median filtering under attack.

The paper positions FIFL against Byzantine-tolerant aggregation (Krum,
median-style rules). This bench trains the same attacked federation under
each defence and reports final accuracy — all three should protect the
model (the baselines' gap to FIFL is that they produce *no per-worker
assessment*, so they cannot drive an incentive).
"""

import numpy as np

from repro.core import (
    DetectionConfig,
    FIFLConfig,
    FIFLMechanism,
    KrumMechanism,
    MedianMechanism,
)
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import FederatedTrainer, HonestWorker, SignFlippingWorker
from repro.nn import build_logreg

from conftest import emit, run_once

N_FEATURES, N_CLASSES, N_WORKERS = 8, 3, 8
ATTACKERS = (2, 5)


def _federation(seed=0):
    data = make_blobs(n_samples=800, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed)
    train, test = train_test_split(data, 0.25, seed=seed)
    shards = iid_partition(train, N_WORKERS, seed=seed)
    model_fn = lambda: build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    workers = []
    for i in range(N_WORKERS):
        if i in ATTACKERS:
            workers.append(
                SignFlippingWorker(i, shards[i], model_fn, lr=0.1, p_s=8.0,
                                   seed=seed + 100 + i)
            )
        else:
            workers.append(
                HonestWorker(i, shards[i], model_fn, lr=0.1, seed=seed + 100 + i)
            )
    return workers, test, model_fn


def _train(mechanism, seed=0):
    workers, test, model_fn = _federation(seed)
    trainer = FederatedTrainer(
        model_fn(), workers, [0, 1], test_data=test,
        mechanism=mechanism, server_lr=0.1, seed=seed,
    )
    return trainer.run(30, eval_every=30).final_accuracy()


def bench_ablation_defenses(benchmark):
    def sweep():
        return {
            "undefended": _train(None),
            "fifl": _train(
                FIFLMechanism(FIFLConfig(detection=DetectionConfig(threshold=0.0)))
            ),
            "krum": _train(KrumMechanism(num_byzantine=2)),
            "median": _train(MedianMechanism(keep_fraction=0.5)),
        }

    result = run_once(benchmark, sweep)
    emit(
        "Ablation: defences under 2x sign-flip (p_s=8)",
        [f"{name:>12}  final_acc={acc:.3f}" for name, acc in result.items()],
    )
    # every defence beats no defence ...
    for name in ("fifl", "krum", "median"):
        assert result[name] > result["undefended"] + 0.1, name
    # ... and FIFL matches or exceeds the robust-aggregation rules (it
    # keeps sample-weighted averaging over ALL honest workers, while Krum
    # uses a single worker's gradient per round)
    assert result["fifl"] >= result["krum"] - 0.05
