"""Limitation study: the gradient-replay free-rider evades FIFL.

The paper scopes FIFL to disorganized, non-adaptive attackers (S4.1). An
*adaptive* free-rider that replays the previous round's global gradient
produces an upload highly similar to the true global gradient — it sails
through detection, earns near-honest contribution scores, and collects
rewards without owning any data. This bench measures and pins that gap
(it is the mirror image of the paper's "free-riders bring less revenue
but get larger rewards" motivation, solved there only for *noise*
free-riders).
"""

import numpy as np

from repro.core import DetectionConfig, FIFLConfig, FIFLMechanism
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import FederatedTrainer, FreeRiderWorker, HonestWorker, ReplayFreeRider
from repro.nn import build_logreg

from conftest import emit, run_once

N_FEATURES, N_CLASSES, N_WORKERS = 8, 3, 6
SERVER_LR = 0.1


def _run(free_rider_cls, seed=0, **rider_kwargs):
    data = make_blobs(n_samples=700, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed)
    train, test = train_test_split(data, 0.25, seed=seed)
    shards = iid_partition(train, N_WORKERS, seed=seed)
    model_fn = lambda: build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    workers = [
        HonestWorker(i, shards[i], model_fn, lr=0.1, seed=seed + i)
        for i in range(N_WORKERS - 1)
    ]
    workers.append(
        free_rider_cls(
            N_WORKERS - 1, shards[-1], model_fn, lr=0.1, seed=seed + 99,
            **rider_kwargs,
        )
    )
    mech = FIFLMechanism(
        FIFLConfig(detection=DetectionConfig(threshold=0.0), gamma=0.3)
    )
    trainer = FederatedTrainer(
        model_fn(), workers, [0, 1], test_data=test,
        mechanism=mech, server_lr=SERVER_LR, seed=seed,
    )
    trainer.run(20, eval_every=20)
    rewards = mech.cumulative_rewards()
    rider = rewards[N_WORKERS - 1]
    honest = float(np.mean([rewards[w] for w in range(N_WORKERS - 1)]))
    detected = float(
        np.mean([not rec.accepted[N_WORKERS - 1] for rec in mech.records])
    )
    return {"rider_reward": rider, "honest_mean": honest, "reject_rate": detected}


def bench_limitation_replay_freerider(benchmark):
    def sweep():
        return {
            "noise free-rider": _run(FreeRiderWorker, noise_scale=1e-3),
            "replay free-rider": _run(ReplayFreeRider, server_lr=SERVER_LR),
        }

    result = run_once(benchmark, sweep)
    emit(
        "Limitation: adaptive replay free-rider",
        [
            f"{name:>18}  reward={r['rider_reward']:+.3f}  "
            f"honest-mean={r['honest_mean']:+.3f}  "
            f"reject-rate={r['reject_rate']:.2f}"
            for name, r in result.items()
        ],
    )
    noise = result["noise free-rider"]
    replay = result["replay free-rider"]
    # FIFL handles the paper's (noise) free-rider: no reward advantage
    assert noise["rider_reward"] < noise["honest_mean"]
    # ... but the adaptive replay free-rider evades it (documented gap)
    assert replay["reject_rate"] < 0.3
    assert replay["rider_reward"] > 0.5 * replay["honest_mean"]
