"""Local-step benchmark: fleet-batched vs scalar local training.

Times the ``trainer.local_compute`` phase of :class:`FederatedTrainer`
on the fig09-style MLP federation (synthetic blobs, 16 features, 4
classes, one hidden layer of 64) at several federation sizes, once with
``local_engine="fleet"`` (all workers' SGD stacked into single batched
kernels, see ``repro.nn.fleet``) and once with ``local_engine="scalar"``
(the per-worker reference loop), and reports per-phase wall-clock from
the profiling module plus the speedup.

Also reports the evaluation throughput of ``repro.fl.evaluation`` (the
preallocated-scratch batched evaluator) in samples/second, and the
always-on telemetry overhead (default in-memory sink vs disabled hub)
over whole federated rounds; the run's result doubles as a telemetry
run manifest emitted through the active sinks.

CLI (no pytest needed)::

    python benchmarks/bench_local_step.py            # N in {16, 64}
    python benchmarks/bench_local_step.py --quick    # smoke scale + diff check
    python benchmarks/bench_local_step.py --json out.json
    python benchmarks/bench_local_step.py --record   # benchmarks/BENCH_local_step.json

``--quick`` additionally verifies the fleet/scalar differential contract
(agreement to <= 1e-8 over full training histories) and exits non-zero
on a mismatch, so CI runs double as a correctness guard.

Under pytest (``pytest benchmarks/bench_local_step.py``) the quick
configuration runs as a regression guard: the fleet engine must deliver
>= 3x on ``trainer.local_compute`` at N = 64.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import FederatedTrainer, HonestWorker, SignFlippingWorker, evaluate
from repro.nn import build_mlp
from repro.parallel import blas_limits
from repro.profiling import Profiler
from repro.telemetry import Telemetry, run_manifest, write_manifest

#: the phase whose fleet-batching the tentpole targets
LOCAL_PHASE = "trainer.local_compute"
#: fleet sub-phases reported in the per-phase breakdown
FLEET_PHASES = (
    "fleet.load",
    "fleet.sample",
    "fleet.forward",
    "fleet.backward",
    "fleet.step",
    "fleet.finalize",
)

DEFAULT_SIZES = (16, 64)
DEFAULT_ROUNDS = 20
N_FEATURES, N_CLASSES, HIDDEN = 16, 4, (64,)
SAMPLES_PER_WORKER, BATCH_SIZE, LOCAL_ITERS = 100, 8, 1
DIFF_TOL = 1e-8


def make_trainer(
    num_workers: int,
    engine: str,
    seed: int = 0,
    n_attackers: int = 2,
    telemetry: Telemetry | None = None,
) -> FederatedTrainer:
    """Fig09-style MLP federation: blobs data, mostly honest workers.

    The last ``n_attackers`` ranks are sign-flippers so the benchmark
    exercises the post-hoc ``finalize_update`` path, not just the honest
    fast path. ``telemetry`` overrides the per-run hub — the overhead
    check passes a disabled hub here to time rounds with
    instrumentation off.
    """
    total = num_workers * SAMPLES_PER_WORKER + 400
    data = make_blobs(
        n_samples=total, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed
    )
    train, test = train_test_split(data, 400 / len(data), seed=seed)
    shards = iid_partition(train, num_workers, seed=seed)

    def model_fn():
        return build_mlp(N_FEATURES, N_CLASSES, hidden=HIDDEN, seed=seed)

    workers = []
    for wid in range(num_workers):
        cls = SignFlippingWorker if wid >= num_workers - n_attackers else HonestWorker
        kwargs = {"p_s": 4.0} if cls is SignFlippingWorker else {}
        workers.append(
            cls(
                wid,
                shards[wid],
                model_fn,
                lr=0.05,
                batch_size=BATCH_SIZE,
                local_iters=LOCAL_ITERS,
                seed=seed + 1000 + wid,
                **kwargs,
            )
        )
    trainer = FederatedTrainer(
        model_fn(),
        workers,
        server_ranks=[0, 1],
        test_data=test,
        server_lr=0.05,
        seed=seed,
        local_engine=engine,
    )
    # isolate timings from the global profiler
    trainer.profiler = telemetry if telemetry is not None else Profiler()
    return trainer


def time_engine(
    engine: str, num_workers: int, rounds: int, seed: int = 0, repeats: int = 2
) -> dict:
    """Run ``rounds`` federated rounds through one engine; phase seconds.

    Takes the best of ``repeats`` timed runs (fresh federation each) —
    the min filters scheduler noise the same way for both engines.
    """
    # Warm up BLAS threads / allocator on a throwaway federation so the
    # first timed run isn't paying one-off setup costs.
    warm = make_trainer(num_workers, engine, seed=seed + 77)
    warm.run(1, eval_every=1)
    best: dict | None = None
    for _ in range(repeats):
        trainer = make_trainer(num_workers, engine, seed=seed)
        # pin the BLAS pool so a multi-threaded BLAS can't skew the
        # engine-vs-engine comparison machine by machine
        with blas_limits(1):
            t0 = time.perf_counter()
            history = trainer.run(rounds, eval_every=rounds)
            total = time.perf_counter() - t0
        phases = {
            name: entry["seconds"]
            for name, entry in history.profile["timings"].items()
        }
        run = {
            "total_s": total,
            "local_s": phases.get(LOCAL_PHASE, 0.0),
            "phases": phases,
        }
        if best is None or run["local_s"] < best["local_s"]:
            best = run
    return best


def check_differential(
    num_workers: int = 8, rounds: int = 4, seed: int = 0
) -> float:
    """Max |fleet - scalar| over histories and final params (<= 1e-8)."""
    results = {}
    for engine in ("scalar", "fleet"):
        trainer = make_trainer(num_workers, engine, seed=seed)
        history = trainer.run(rounds, eval_every=1)
        results[engine] = (history, trainer.model.get_flat_params())
    (h_s, p_s), (h_f, p_f) = results["scalar"], results["fleet"]
    diffs = [float(np.abs(p_s - p_f).max())]
    for r_s, r_f in zip(h_s.rounds, h_f.rounds):
        diffs.append(abs(r_s.grad_norm - r_f.grad_norm))
        if r_s.test_loss is not None and r_f.test_loss is not None:
            diffs.append(abs(r_s.test_loss - r_f.test_loss))
            diffs.append(abs(r_s.test_acc - r_f.test_acc))
        if r_s.accepted != r_f.accepted:
            diffs.append(float("inf"))
    return max(diffs)


def eval_throughput(n_samples: int = 4096, repeats: int = 5, seed: int = 0) -> dict:
    """Throughput of the batched evaluator in samples/second."""
    data = make_blobs(
        n_samples=n_samples, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed
    )
    model = build_mlp(N_FEATURES, N_CLASSES, hidden=HIDDEN, seed=seed)
    evaluate(model, data)  # warm-up
    with blas_limits(1):
        t0 = time.perf_counter()
        for _ in range(repeats):
            evaluate(model, data)
        elapsed = time.perf_counter() - t0
    return {
        "samples": n_samples,
        "repeats": repeats,
        "seconds": elapsed,
        "samples_per_s": n_samples * repeats / max(elapsed, 1e-12),
    }


def telemetry_overhead(
    num_workers: int, rounds: int, seed: int = 0, samples: int = 120
) -> dict:
    """Wall-clock per federated round: in-memory sink vs telemetry disabled.

    Same protocol as ``bench_engine.telemetry_overhead``: two identical
    fleet-engine federations (one enabled hub, one disabled), strictly
    alternating individually timed ``run_round`` calls so both sides
    sample the same scheduler/cache conditions, compared on the average
    of the k fastest rounds — timing noise is one-sided additive, so the
    low tail estimates the true per-round cost. Telemetry defers event
    materialization to flush boundaries; the periodic ``flush()`` calls
    between timed rounds charge that deferred work outside the timed
    regions. ``enabled_s``/``disabled_s`` are scaled to ``rounds``
    rounds to match the engine timings above.
    """
    hubs = {"on": Telemetry(), "off": Telemetry(enabled=False)}
    trainers = {
        key: make_trainer(num_workers, "fleet", seed=seed, telemetry=hub)
        for key, hub in hubs.items()
    }
    times: dict[str, list[float]] = {"on": [], "off": []}
    with blas_limits(1):
        for i in range(samples + 5):
            order = ("on", "off") if i % 2 else ("off", "on")
            for key in order:
                trainer = trainers[key]
                t0 = time.perf_counter()
                trainer.run_round(i)
                times[key].append(time.perf_counter() - t0)
            if i % 25 == 0:
                for hub in hubs.values():
                    hub.flush()

    def floor(vals: list[float], k: int = 10) -> float:
        # drop warm-up samples, then average the k fastest
        return sum(sorted(vals[5:])[:k]) / k

    enabled = floor(times["on"]) * rounds
    disabled = floor(times["off"]) * rounds
    return {
        "num_workers": num_workers,
        "enabled_s": enabled,
        "disabled_s": disabled,
        "overhead_pct": 100.0 * (enabled - disabled) / max(disabled, 1e-12),
    }


def run_benchmark(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
) -> dict:
    """Old-vs-new local-step timings per federation size."""
    by_size: dict[int, dict] = {}
    for n in sizes:
        scalar = time_engine("scalar", n, rounds, seed)
        fleet = time_engine("fleet", n, rounds, seed)
        by_size[n] = {
            "scalar": scalar,
            "fleet": fleet,
            "speedup_local": scalar["local_s"] / max(fleet["local_s"], 1e-12),
            "speedup_total": scalar["total_s"] / max(fleet["total_s"], 1e-12),
        }
    return {
        "model": f"mlp{list(HIDDEN)}",
        "n_features": N_FEATURES,
        "n_classes": N_CLASSES,
        "batch_size": BATCH_SIZE,
        "local_iters": LOCAL_ITERS,
        "rounds": rounds,
        "by_size": by_size,
        "evaluation": eval_throughput(seed=seed),
        "telemetry_overhead": telemetry_overhead(max(sizes), rounds, seed),
    }


def format_report(result: dict) -> list[str]:
    rows = [
        f"Local-step benchmark ({result['model']}, B={result['batch_size']}, "
        f"{result['rounds']} rounds per timing)"
    ]
    rows.append(
        f"{'N':>5} {'scalar_local_s':>15} {'fleet_local_s':>14} "
        f"{'speedup':>8} {'total':>7}"
    )
    for n, r in result["by_size"].items():
        rows.append(
            f"{n:>5} {r['scalar']['local_s']:>15.4f} "
            f"{r['fleet']['local_s']:>14.4f} "
            f"{r['speedup_local']:>7.1f}x {r['speedup_total']:>6.1f}x"
        )
    for n, r in result["by_size"].items():
        rows.append(f"  fleet per-phase seconds at N={n}:")
        for name in FLEET_PHASES:
            if name in r["fleet"]["phases"]:
                rows.append(f"    {name:<16} {r['fleet']['phases'][name]:.4f}")
    ev = result["evaluation"]
    rows.append(
        f"evaluation throughput: {ev['samples_per_s']:,.0f} samples/s "
        f"({ev['samples']} samples x {ev['repeats']} passes in {ev['seconds']:.4f}s)"
    )
    ov = result.get("telemetry_overhead")
    if ov:
        rows.append(
            f"telemetry overhead at N={ov['num_workers']} (in-memory sink vs "
            f"disabled): on={ov['enabled_s']:.4f}s off={ov['disabled_s']:.4f}s "
            f"({ov['overhead_pct']:+.1f}%)"
        )
    return rows


def bench_local_step_speedup(benchmark):
    """Pytest entry: the fleet engine must beat the scalar loop 3x at N=64."""
    result = benchmark.pedantic(
        run_benchmark,
        kwargs=dict(sizes=(64,), rounds=DEFAULT_ROUNDS),
        iterations=1, rounds=1, warmup_rounds=0,
    )
    for row in format_report(result):
        print(row)
    assert result["by_size"][64]["speedup_local"] > 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke scale (fewer rounds) + fleet/scalar differential check",
    )
    parser.add_argument(
        "--sizes", default="",
        help="comma-separated federation sizes (default 16,64)",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the result to benchmarks/BENCH_local_step.json",
    )
    args = parser.parse_args(argv)

    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip()) or DEFAULT_SIZES
    rounds = min(args.rounds, 3) if args.quick else args.rounds

    if args.quick:
        diff = check_differential()
        status = "OK" if diff <= DIFF_TOL else "FAIL"
        print(f"differential fleet vs scalar: max|diff|={diff:.2e} [{status}]")
        if diff > DIFF_TOL:
            return 1

    result = run_benchmark(sizes=sizes, rounds=rounds)
    for row in format_report(result):
        print(row)
    # The result is also a run manifest: emitting it routes the record
    # through whatever telemetry sinks are active (memory/JSONL/console).
    run_manifest(
        "bench_local_step",
        config={
            "sizes": list(sizes), "rounds": rounds, "seed": 0,
            "quick": args.quick,
        },
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_local_step.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
