"""Simulation-kernel benchmark: event-scheduled rounds vs the direct loop.

The discrete-event kernel promises a free lunch: fault scenarios when
you want them, and a zero-fault fast path that costs (almost) nothing
when you don't. This benchmark prices that promise. It builds two
identical federations — one trainer on the direct (instantaneous)
upload loop, one on the null :class:`~repro.sim.FaultScenario` — and
times whole communication rounds strictly interleaved, comparing the
floor-averaged per-round cost. The two trainers stay bit-identical
round for round (checked here every run), so both sides time exactly
the same numerical work; the difference is pure scheduler overhead.

Acceptance bar: the null-scenario path within 5% of the direct loop.

CLI (no pytest needed)::

    python benchmarks/bench_sim.py             # N=16, 60 timed rounds
    python benchmarks/bench_sim.py --quick     # smoke scale
    python benchmarks/bench_sim.py --json out.json
    python benchmarks/bench_sim.py --record    # benchmarks/BENCH_sim.json

Under pytest (``pytest benchmarks/bench_sim.py``) the quick scale runs
as a regression guard on both the 5% bar and the differential.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import iid_partition, make_blobs
from repro.fl import FederatedTrainer, HonestWorker
from repro.nn import build_logreg
from repro.parallel import blas_limits
from repro.sim import FaultScenario
from repro.telemetry import run_manifest, write_manifest

DEFAULT_WORKERS = 16
DEFAULT_FEATURES = 64
DEFAULT_CLASSES = 10
DEFAULT_ROUNDS = 60
WARMUP_ROUNDS = 10
FLOOR_K = 20


def build_trainer(
    scenario: FaultScenario | None,
    num_workers: int,
    n_features: int,
    n_classes: int,
    seed: int = 0,
) -> FederatedTrainer:
    data = make_blobs(
        n_samples=num_workers * 100,
        n_features=n_features,
        num_classes=n_classes,
        seed=seed,
    )
    shards = iid_partition(data, num_workers, seed=seed)
    model_fn = lambda: build_logreg(n_features, n_classes, seed=seed)
    workers = [
        HonestWorker(
            i, shards[i], model_fn, lr=0.1, local_iters=2, seed=seed + 100 + i
        )
        for i in range(num_workers)
    ]
    # no test_data: evaluation off, so the timing is the round loop itself
    return FederatedTrainer(
        model_fn(), workers, [0, 1], drop_prob=0.05, seed=seed,
        scenario=scenario,
    )


def run_benchmark(
    num_workers: int = DEFAULT_WORKERS,
    n_features: int = DEFAULT_FEATURES,
    n_classes: int = DEFAULT_CLASSES,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
) -> dict:
    """Interleaved per-round timings, a floor-averaged overhead figure,
    and the always-on differential check."""
    trainers = {
        "direct": build_trainer(None, num_workers, n_features, n_classes, seed),
        "sim": build_trainer(
            FaultScenario.none(), num_workers, n_features, n_classes, seed
        ),
    }
    times: dict[str, list[float]] = {"direct": [], "sim": []}
    identical = True
    # pin the BLAS pool so a multi-threaded BLAS can't skew the
    # direct-vs-sim comparison machine by machine
    with blas_limits(1):
        for t in range(rounds + WARMUP_ROUNDS):
            # alternate which side goes first so neither systematically
            # inherits the other's warm caches
            order = ("direct", "sim") if t % 2 else ("sim", "direct")
            records = {}
            for key in order:
                trainer = trainers[key]
                t0 = time.perf_counter()
                records[key] = trainer.run_round(t)
                times[key].append(time.perf_counter() - t0)
            identical = identical and (
                records["direct"].accepted == records["sim"].accepted
                and records["direct"].uncertain == records["sim"].uncertain
            )
    identical = identical and (
        trainers["direct"].model.get_flat_params().tobytes()
        == trainers["sim"].model.get_flat_params().tobytes()
    )

    def floor(vals: list[float], k: int = FLOOR_K) -> float:
        # drop warm-up rounds, then average the k fastest — timing noise
        # is one-sided additive, so the low tail estimates the true cost
        tail = sorted(vals[WARMUP_ROUNDS:])
        k = min(k, len(tail))
        return sum(tail[:k]) / k

    direct_s = floor(times["direct"])
    sim_s = floor(times["sim"])
    return {
        "num_workers": num_workers,
        "n_features": n_features,
        "n_classes": n_classes,
        "rounds": rounds,
        "seed": seed,
        "direct_round_s": direct_s,
        "sim_round_s": sim_s,
        "overhead_pct": 100.0 * (sim_s - direct_s) / max(direct_s, 1e-12),
        "events_run": trainers["sim"]._sim_runner.sim.events_run,
        "bitwise_identical": identical,
    }


def format_report(result: dict) -> list[str]:
    return [
        f"Simulation-kernel benchmark (N={result['num_workers']}, "
        f"D={result['n_features']}x{result['n_classes']}, "
        f"{result['rounds']} timed rounds)",
        f"  direct round: {1e3 * result['direct_round_s']:.3f} ms",
        f"  null-scenario round: {1e3 * result['sim_round_s']:.3f} ms "
        f"({result['overhead_pct']:+.1f}%)  "
        f"[{result['events_run']} events total]",
        f"  differential (accepted/uncertain/params): "
        f"{'bit-identical' if result['bitwise_identical'] else 'DIVERGED'}",
    ]


def bench_sim_overhead(benchmark):
    """Pytest entry: fast path within 5% of direct, and bit-identical."""
    result = benchmark.pedantic(
        run_benchmark,
        kwargs=dict(num_workers=8, n_features=32, rounds=30),
        iterations=1, rounds=1, warmup_rounds=0,
    )
    for row in format_report(result):
        print(row)
    assert result["bitwise_identical"]
    assert result["overhead_pct"] < 5.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke scale (smaller federation, fewer rounds)",
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--features", type=int, default=DEFAULT_FEATURES)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the manifest to benchmarks/BENCH_sim.json",
    )
    args = parser.parse_args(argv)

    workers = min(args.workers, 8) if args.quick else args.workers
    rounds = min(args.rounds, 30) if args.quick else args.rounds
    features = min(args.features, 32) if args.quick else args.features

    result = run_benchmark(
        num_workers=workers, n_features=features, rounds=rounds
    )
    for row in format_report(result):
        print(row)
    if not result["bitwise_identical"]:
        print("ERROR: null-scenario run diverged from the direct loop")
        return 1
    run_manifest(
        "bench_sim",
        config={
            "workers": workers, "features": features, "rounds": rounds,
            "seed": 0, "quick": args.quick,
        },
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_sim.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
