"""Audit-layer benchmark: attribution payload cost + differential contract.

Two questions, one artifact:

1. **Differential contract** — on a seeded synthetic run, the decision
   lineage reconstructed *offline* from the telemetry trace must be
   byte-for-byte identical to the lineage folded *live* from the
   mechanism's round records, and ``repro.audit.verify_trace`` must
   pass every trace-level check. This is the correctness claim of the
   audit layer, timed end to end.
2. **Emission overhead** — the full attribution payload (reputations,
   contributions, shares, b_h) rides on every ``fifl.round`` event when
   ``FIFLConfig.audit`` is on (the default). The A/B here times
   audit-on vs audit-off mechanisms over identical prebuilt rounds with
   the hub ``flush()`` *inside* the timed region — event
   materialization is deferred to flush boundaries, so that is where
   the payload cost lands. Acceptance bar: ≤ 1% of a round at N = 256.

Same paired-alternating protocol as ``bench_engine.monitor_overhead``:
the overhead is the median of per-iteration (on − off) differences,
which cancels the drift both sides share — the payload cost is tens of
microseconds, below the jitter of two independently-estimated floors.

CLI (no pytest needed)::

    python benchmarks/bench_audit.py             # N = 256, D = 4096
    python benchmarks/bench_audit.py --quick     # smoke scale
    python benchmarks/bench_audit.py --json out.json
    python benchmarks/bench_audit.py --record    # benchmarks/BENCH_audit.json

Exits non-zero when the differential breaks or the overhead gate fails,
so CI can use the quick run as a regression guard directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.audit import (
    collect_decisions,
    decisions_from_trace,
    encode_decision,
    verify_trace,
)
from repro.core import make_mechanism
from repro.fl.gradients import split_gradient
from repro.fl.trainer import RoundContext
from repro.fl.workers import WorkerUpdate
from repro.parallel import blas_limits
from repro.telemetry import MemorySink, Telemetry, run_manifest, write_manifest

DEFAULT_WORKERS = 256
DEFAULT_DIM = 4096
DEFAULT_SERVERS = 4
DEFAULT_ROUNDS = 10
#: acceptance bar: audit payload emission ≤ this percent of a round
MAX_OVERHEAD_PCT = 1.0


def make_round(
    num_workers: int,
    dim: int,
    num_servers: int,
    round_idx: int,
    seed: int = 0,
    uncertain: int = 0,
) -> RoundContext:
    """One synthetic communication round (servers are workers 0..M-1)."""
    rng = np.random.default_rng(seed * 7919 + round_idx)
    server_ranks = list(range(num_servers))
    honest = rng.standard_normal(dim)
    updates: dict[int, WorkerUpdate] = {}
    slices: dict[int, dict[int, np.ndarray]] = {}
    uncertain_ids = set(range(num_servers, num_servers + uncertain))
    for wid in range(num_workers):
        noise = rng.standard_normal(dim)
        grad = honest + 0.3 * noise if wid % 5 else -2.0 * honest + noise
        updates[wid] = WorkerUpdate(
            worker_id=wid, gradient=grad, num_samples=100
        )
        if wid in uncertain_ids:
            continue  # lost a slice: uncertain event, no delivery
        parts = split_gradient(grad, num_servers)
        slices[wid] = {srv: parts[j] for j, srv in enumerate(server_ranks)}
    return RoundContext(
        round_idx=round_idx,
        global_params=np.zeros(dim),
        server_ranks=server_ranks,
        slices=slices,
        updates=updates,
        uncertain=uncertain_ids,
        sample_counts={w: 100 for w in range(num_workers)},
    )


def differential(
    num_workers: int,
    dim: int,
    num_servers: int,
    rounds: int,
    seed: int = 0,
) -> dict:
    """Live-vs-offline lineage byte-identity on one seeded run.

    Drives a real mechanism through ``rounds`` synthetic rounds with a
    memory sink attached, then reconstructs the decision lineage from
    the captured events alone and compares every decision's canonical
    encoding against the live fold over the mechanism's records.
    """
    sink = MemorySink(maxlen=None)
    hub = Telemetry(sinks=[sink])
    mech = make_mechanism("fifl", threshold=0.0, gamma=0.2,
                          engine="vectorized")
    mech.profiler = hub
    t0 = time.perf_counter()
    for t in range(rounds):
        mech.process_round(
            make_round(num_workers, dim, num_servers, t, seed=seed,
                       uncertain=1)
        )
    run_s = time.perf_counter() - t0
    hub.flush()
    events = list(sink.events)

    t0 = time.perf_counter()
    offline = decisions_from_trace(events)
    reconstruct_s = time.perf_counter() - t0
    live = collect_decisions(mech)
    identical = len(live) == len(offline) and all(
        encode_decision(a) == encode_decision(b)
        for a, b in zip(live, offline)
    )
    report = verify_trace(events)
    return {
        "rounds": rounds,
        "decisions": len(offline),
        "byte_identical": identical,
        "verify_ok": report.ok,
        "verify_failures": [c.name for c in report.failures()],
        "run_s": run_s,
        "reconstruct_s": reconstruct_s,
    }


def audit_overhead(
    num_workers: int,
    dim: int,
    num_servers: int,
    rounds: int,
    seed: int = 0,
    samples: int = 300,
) -> dict:
    """Per-round cost of the attribution payload, audit-on vs audit-off.

    Both sides run a full enabled hub; only ``FIFLConfig.audit``
    differs. The per-round ``flush()`` sits inside the timed region on
    both sides because event materialization (where the payload dicts
    are built) is deferred to flush boundaries.
    """
    contexts = [
        make_round(num_workers, dim, num_servers, t, seed=seed, uncertain=1)
        for t in range(rounds)
    ]
    hubs = {"on": Telemetry(), "off": Telemetry()}
    mechs = {}
    for key, hub in hubs.items():
        mech = make_mechanism("fifl", threshold=0.0, gamma=0.2,
                              engine="vectorized", audit=(key == "on"))
        mech.profiler = hub
        mechs[key] = mech
    times: dict[str, list[float]] = {"on": [], "off": []}
    with blas_limits(1):
        for i in range(samples + 10):
            ctx = contexts[i % rounds]
            order = ("on", "off") if i % 2 else ("off", "on")
            for key in order:
                mech = mechs[key]
                hub = hubs[key]
                t0 = time.perf_counter()
                mech.process_round(ctx)
                hub.flush()
                times[key].append(time.perf_counter() - t0)

    def floor(vals: list[float], k: int = 20) -> float:
        return sum(sorted(vals[10:])[:k]) / k

    deltas = sorted(
        on - off for on, off in zip(times["on"][10:], times["off"][10:])
    )
    mid = len(deltas) // 2
    delta = (
        deltas[mid] if len(deltas) % 2
        else 0.5 * (deltas[mid - 1] + deltas[mid])
    )
    per_round = floor(times["off"])
    return {
        "num_workers": num_workers,
        "enabled_s": (per_round + delta) * rounds,
        "disabled_s": per_round * rounds,
        "overhead_pct": 100.0 * delta / max(per_round, 1e-12),
    }


def run_benchmark(
    num_workers: int = DEFAULT_WORKERS,
    dim: int = DEFAULT_DIM,
    num_servers: int = DEFAULT_SERVERS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
    samples: int = 300,
) -> dict:
    diff = differential(
        min(num_workers, 64), dim, num_servers, rounds, seed
    )
    overhead = audit_overhead(
        num_workers, dim, num_servers, rounds, seed, samples=samples
    )
    return {
        "num_workers": num_workers,
        "dim": dim,
        "num_servers": num_servers,
        "rounds": rounds,
        "seed": seed,
        "differential": diff,
        "audit_overhead": overhead,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "gate_ok": bool(
            diff["byte_identical"]
            and diff["verify_ok"]
            and overhead["overhead_pct"] <= MAX_OVERHEAD_PCT
        ),
    }


def format_report(result: dict) -> list[str]:
    diff = result["differential"]
    ov = result["audit_overhead"]
    rows = [
        f"Audit-layer benchmark (N={result['num_workers']}, "
        f"D={result['dim']}, M={result['num_servers']}, "
        f"{result['rounds']} rounds)",
        f"differential: {diff['decisions']} decisions over "
        f"{diff['rounds']} rounds, byte_identical={diff['byte_identical']}, "
        f"verify_ok={diff['verify_ok']} "
        f"(run={diff['run_s']:.4f}s reconstruct={diff['reconstruct_s']:.4f}s)",
        f"audit payload overhead at N={ov['num_workers']} (audit=True vs "
        f"audit=False, flush in-region): on={ov['enabled_s']:.4f}s "
        f"off={ov['disabled_s']:.4f}s ({ov['overhead_pct']:+.2f}%, "
        f"bar {result['max_overhead_pct']:.0f}%)",
        f"gate: {'ok' if result['gate_ok'] else 'FAILED'}",
    ]
    if diff["verify_failures"]:
        rows.insert(2, f"  verify failures: {diff['verify_failures']}")
    return rows


def bench_audit_contract(benchmark):
    """Pytest entry: lineage byte-identity must hold at smoke scale."""
    result = benchmark.pedantic(
        run_benchmark,
        kwargs=dict(num_workers=64, dim=1024, rounds=5, samples=60),
        iterations=1, rounds=1, warmup_rounds=0,
    )
    for row in format_report(result):
        print(row)
    assert result["differential"]["byte_identical"]
    assert result["differential"]["verify_ok"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke scale (smaller dim, fewer paired samples)",
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--servers", type=int, default=DEFAULT_SERVERS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the manifest to benchmarks/BENCH_audit.json",
    )
    args = parser.parse_args(argv)

    dim = min(args.dim, 1024) if args.quick else args.dim
    rounds = min(args.rounds, 5) if args.quick else args.rounds
    samples = 100 if args.quick else 300

    result = run_benchmark(
        num_workers=args.workers, dim=dim, num_servers=args.servers,
        rounds=rounds, samples=samples,
    )
    for row in format_report(result):
        print(row)
    run_manifest(
        "bench_audit",
        config={
            "num_workers": args.workers, "dim": dim,
            "num_servers": args.servers, "rounds": rounds,
            "samples": samples, "seed": 0, "quick": args.quick,
        },
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_audit.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    return 0 if result["gate_ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
