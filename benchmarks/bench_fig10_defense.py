"""Regenerates Figure 10: the detection module prevents model crash."""

from repro.experiments import fig10_defense as f10

from conftest import emit, run_once


def _final(series):
    return next(v for v in reversed(series) if v is not None)


def bench_fig10_defense(benchmark):
    result = run_once(benchmark, f10.run)
    emit("Figure 10: defended vs undefended", f10.format_rows(result))
    acc = {k: _final(s) for k, s in result["accuracy"].items()}
    # the undefended model crashes; the defended one matches clean training
    assert acc["undefended"] < 0.3
    assert acc["defended"] > 0.9 * acc["clean"]
