"""Parallel-backend benchmark: multi-core fleet GEMMs vs the serial oracle.

Times the ``trainer.local_compute`` phase of :class:`FederatedTrainer`
on a fig09-style MLP federation (synthetic blobs, 16 features, 4
classes, one hidden layer of 128) across execution backends
(``serial`` / ``thread`` / ``process``, see :mod:`repro.parallel`) and
worker counts, and reports the scaling curve. The timed regions run
under :func:`repro.parallel.blas_limits` so BLAS-pool oversubscription
never pollutes the comparison.

Byte-identity is the other half of the contract: ``--quick`` trains the
same seeded FIFL federation once per backend and requires the histories
(losses, accept verdicts, rewards, final parameters) to match the
serial run *exactly* — not to tolerance.

Speedup expectations are core-gated: the machine's usable core count is
recorded in the manifest, the smoke gate (``speedup > 1.0``) applies
from 2 cores and the 2x target from 4 cores. On a 1-core container the
curve is still recorded (it documents dispatch overhead) but no speedup
assertion can be meaningful.

CLI (no pytest needed)::

    python benchmarks/bench_parallel.py            # N in {64, 256}
    python benchmarks/bench_parallel.py --quick    # differentials + smoke gate
    python benchmarks/bench_parallel.py --json out.json
    python benchmarks/bench_parallel.py --record   # benchmarks/BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import make_mechanism
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import FederatedTrainer, HonestWorker, SignFlippingWorker
from repro.population import WorkerPopulation
from repro.nn import build_mlp
from repro.parallel import auto_workers, blas_limits
from repro.profiling import Profiler
from repro.telemetry import run_manifest, write_manifest

#: the phase the parallel fleet path shards across cores
LOCAL_PHASE = "trainer.local_compute"

DEFAULT_SIZES = (64, 256)
DEFAULT_ROUNDS = 10
WORKER_COUNTS = (1, 2, 4)
PARALLEL_BACKENDS = ("thread", "process")
N_FEATURES, N_CLASSES, HIDDEN = 16, 4, (128,)
SAMPLES_PER_WORKER, BATCH_SIZE, LOCAL_ITERS = 100, 16, 2


def make_trainer(
    num_workers: int,
    backend: str,
    max_workers: int | None = None,
    seed: int = 0,
    n_attackers: int = 2,
    with_fifl: bool = False,
) -> FederatedTrainer:
    """Fig09-style MLP federation with the execution backend plumbed in.

    The last ``n_attackers`` ranks are sign-flippers so every backend
    exercises the post-hoc ``finalize_update`` path (where attacker RNG
    draws must line up with serial). ``with_fifl`` attaches the FIFL
    mechanism, which adopts the trainer's pool for its sharded
    detection/contribution kernels — the differential then covers both
    hot paths.
    """
    total = num_workers * SAMPLES_PER_WORKER + 400
    data = make_blobs(
        n_samples=total, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed
    )
    train, test = train_test_split(data, 400 / len(data), seed=seed)
    shards = iid_partition(train, num_workers, seed=seed)

    def model_fn():
        return build_mlp(N_FEATURES, N_CLASSES, hidden=HIDDEN, seed=seed)

    workers = []
    for wid in range(num_workers):
        cls = SignFlippingWorker if wid >= num_workers - n_attackers else HonestWorker
        kwargs = {"p_s": 4.0} if cls is SignFlippingWorker else {}
        workers.append(
            cls(
                wid,
                shards[wid],
                model_fn,
                lr=0.05,
                batch_size=BATCH_SIZE,
                local_iters=LOCAL_ITERS,
                seed=seed + 1000 + wid,
                **kwargs,
            )
        )
    mechanism = make_mechanism("fifl", threshold=0.0) if with_fifl else None
    trainer = FederatedTrainer(
        model_fn(),
        population=WorkerPopulation.from_workers(workers),
        server_ranks=[0, 1],
        test_data=test,
        mechanism=mechanism,
        server_lr=0.05,
        seed=seed,
        backend=backend,
        max_workers=max_workers,
    )
    # isolate timings from the global profiler
    trainer.profiler = Profiler()
    return trainer


def time_backend(
    backend: str,
    num_workers: int,
    rounds: int,
    max_workers: int | None = None,
    seed: int = 0,
    repeats: int = 2,
) -> dict:
    """Best-of-``repeats`` ``local_compute`` seconds for one backend.

    Timed under ``blas_limits(1)`` so serial and parallel contend for
    the same one-BLAS-thread-per-shard budget — without the guard, a
    multi-threaded BLAS makes "serial" secretly parallel and the
    comparison meaningless.
    """
    warm = make_trainer(num_workers, backend, max_workers, seed=seed + 77)
    warm.run(1, eval_every=1)
    best: dict | None = None
    for _ in range(repeats):
        trainer = make_trainer(num_workers, backend, max_workers, seed=seed)
        with blas_limits(1):
            t0 = time.perf_counter()
            history = trainer.run(rounds, eval_every=rounds)
            total = time.perf_counter() - t0
        phases = history.profile["timings"]
        run = {
            "total_s": total,
            "local_s": phases.get(LOCAL_PHASE, {}).get("seconds", 0.0),
        }
        if best is None or run["local_s"] < best["local_s"]:
            best = run
        trainer.backend.close()
    return best


def history_fingerprint(trainer: FederatedTrainer, rounds: int) -> dict:
    """Train and reduce the run to exactly-comparable outputs."""
    history = trainer.run(rounds, eval_every=1)
    out = {
        "params": trainer.model.get_flat_params().copy(),
        "rounds": [
            (r.test_loss, r.test_acc, r.grad_norm, tuple(sorted(r.accepted.items())),
             tuple(sorted(r.mechanism_records.get("rewards", {}).items())))
            for r in history.rounds
        ],
    }
    trainer.backend.close()
    return out


def check_differentials(
    num_workers: int = 16, rounds: int = 4, seed: int = 0,
    worker_counts: tuple[int, ...] = (2,),
) -> dict[str, bool]:
    """Byte-identity of every parallel backend against the serial oracle.

    Runs the full FIFL pipeline (fleet local SGD + sharded round
    kernels) and compares histories and final parameters with ``==`` —
    the ordered-reduce contract promises bitwise equality, so any
    tolerance would hide a real divergence.
    """
    oracle = history_fingerprint(
        make_trainer(num_workers, "serial", seed=seed, with_fifl=True), rounds
    )
    verdicts: dict[str, bool] = {}
    for backend in PARALLEL_BACKENDS:
        for mw in worker_counts:
            got = history_fingerprint(
                make_trainer(num_workers, backend, mw, seed=seed, with_fifl=True),
                rounds,
            )
            identical = bool(
                np.array_equal(oracle["params"], got["params"])
                and oracle["rounds"] == got["rounds"]
            )
            verdicts[f"{backend}_w{mw}"] = identical
    return verdicts


def run_benchmark(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    rounds: int = DEFAULT_ROUNDS,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    seed: int = 0,
) -> dict:
    """Serial baseline + thread/process scaling curve per federation size."""
    cores = auto_workers()
    by_size: dict[int, dict] = {}
    for n in sizes:
        serial = time_backend("serial", n, rounds, seed=seed)
        scaling: dict[str, dict] = {}
        best_speedup = 0.0
        for backend in PARALLEL_BACKENDS:
            curve: dict[str, dict] = {}
            for mw in worker_counts:
                timing = time_backend(backend, n, rounds, mw, seed=seed)
                speedup = serial["local_s"] / max(timing["local_s"], 1e-12)
                curve[str(mw)] = {
                    "local_s": timing["local_s"],
                    "total_s": timing["total_s"],
                    "speedup_local": speedup,
                }
                best_speedup = max(best_speedup, speedup)
            scaling[backend] = curve
        by_size[n] = {
            "serial": serial,
            "scaling": scaling,
            "speedup_best": best_speedup,
        }
    return {
        "model": f"mlp{list(HIDDEN)}",
        "n_features": N_FEATURES,
        "n_classes": N_CLASSES,
        "batch_size": BATCH_SIZE,
        "local_iters": LOCAL_ITERS,
        "rounds": rounds,
        "cores": cores,
        "worker_counts": list(worker_counts),
        "by_size": by_size,
        "bitwise_identical": all(check_differentials().values()),
    }


def format_report(result: dict) -> list[str]:
    rows = [
        f"Parallel-backend benchmark ({result['model']}, B={result['batch_size']}, "
        f"{result['local_iters']} local iters, {result['rounds']} rounds per "
        f"timing, {result['cores']} usable core(s))"
    ]
    for n, r in result["by_size"].items():
        rows.append(
            f"N={n}: serial local_compute {r['serial']['local_s']:.4f}s"
        )
        for backend, curve in r["scaling"].items():
            for mw, entry in curve.items():
                rows.append(
                    f"  {backend:>8} x{mw}: {entry['local_s']:.4f}s "
                    f"({entry['speedup_local']:.2f}x)"
                )
        rows.append(f"  best speedup: {r['speedup_best']:.2f}x")
    rows.append(
        f"bitwise identical to serial: {result['bitwise_identical']}"
    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke scale + serial/thread/process byte-identity gate",
    )
    parser.add_argument(
        "--sizes", default="",
        help="comma-separated federation sizes (default 64,256)",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the result to benchmarks/BENCH_parallel.json",
    )
    args = parser.parse_args(argv)

    cores = auto_workers()
    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip()) or DEFAULT_SIZES
    rounds = args.rounds
    worker_counts = WORKER_COUNTS
    if args.quick:
        sizes, rounds, worker_counts = (64,), min(rounds, 3), (2,)

    verdicts = check_differentials(worker_counts=(2,))
    for key, ok in verdicts.items():
        print(f"differential serial vs {key}: {'byte-identical' if ok else 'MISMATCH'}")
    if not all(verdicts.values()):
        return 1

    result = run_benchmark(sizes=sizes, rounds=rounds, worker_counts=worker_counts)
    for row in format_report(result):
        print(row)

    # Speedup gates are core-gated: they assert real parallel hardware
    # behaviour, not scheduler luck on an oversubscribed single core.
    best = max(r["speedup_best"] for r in result["by_size"].values())
    if cores >= 2 and best <= 1.0:
        print(f"FAIL: best parallel speedup {best:.2f}x <= 1.0 on {cores} cores")
        return 1
    if cores >= 4 and not args.quick and 256 in result["by_size"]:
        target = result["by_size"][256]["speedup_best"]
        if target < 2.0:
            print(f"FAIL: N=256 speedup {target:.2f}x < 2.0x on {cores} cores")
            return 1

    run_manifest(
        "bench_parallel",
        config={
            "sizes": list(sizes), "rounds": rounds, "seed": 0,
            "quick": args.quick, "cores": cores,
        },
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_parallel.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
