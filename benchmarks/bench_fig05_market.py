"""Regenerates Figure 5: market data attraction and relative revenue."""

from repro.experiments import fig05_market
from repro.market import MECHANISMS

from conftest import emit, run_once


def bench_fig05_market(benchmark):
    result = run_once(
        benchmark, fig05_market.run, repetitions=10, iterations=100, probe_rounds=3
    )
    emit("Figure 5: data share / relative revenue", fig05_market.format_rows(result))
    ds = result["data_share"]
    # paper shape: FIFL and Union lead the market, Equal trails
    assert ds["fifl"] > ds["equal"]
    assert ds["union"] > ds["individual"] > ds["equal"]
    # revenue differences are compressed by the log utility (paper: <= 3.4%)
    for m in MECHANISMS:
        assert abs(result["relative_revenue"][m]) < 10.0
