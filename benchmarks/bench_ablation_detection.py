"""Ablation: raw inner-product vs cosine-normalized detection scores.

DESIGN.md ablation #1: Eq. 6's raw score scales with gradient magnitude
(so S_y must be re-tuned per task and training stage) while the cosine
score is scale-free; and a sign-flipped gradient sits at exactly -1 in
cosine regardless of intensity.
"""

import numpy as np

from repro.core import server_score

from conftest import emit, run_once


def _sweep():
    rng = np.random.default_rng(0)
    bench = rng.normal(size=2000)
    honest = bench + 0.3 * rng.normal(size=2000)
    rows = {}
    for p_s in (1.0, 4.0, 16.0):
        flipped = -p_s * honest
        rows[p_s] = {
            "raw_honest": server_score(bench, honest, "raw"),
            "raw_flipped": server_score(bench, flipped, "raw"),
            "cos_honest": server_score(bench, honest, "cosine"),
            "cos_flipped": server_score(bench, flipped, "cosine"),
        }
    return rows


def bench_ablation_detection_score_modes(benchmark):
    rows = run_once(benchmark, _sweep)
    emit(
        "Ablation: detection score modes",
        [
            f"p_s={p:>5.1f}  raw(honest)={r['raw_honest']:>10.1f}  "
            f"raw(flip)={r['raw_flipped']:>11.1f}  "
            f"cos(honest)={r['cos_honest']:.4f}  cos(flip)={r['cos_flipped']:.4f}"
            for p, r in rows.items()
        ],
    )
    cos_flip = [r["cos_flipped"] for r in rows.values()]
    raw_flip = [r["raw_flipped"] for r in rows.values()]
    # cosine is intensity-invariant; raw scales linearly with intensity
    assert np.allclose(cos_flip, cos_flip[0], atol=1e-12)
    assert abs(raw_flip[2]) > 10 * abs(raw_flip[0])
