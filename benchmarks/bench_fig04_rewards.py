"""Regenerates Figure 4: reward distribution and attractiveness by quality."""

from repro.experiments import fig04_rewards

from conftest import emit, run_once


def bench_fig04_reward_distribution(benchmark):
    result = run_once(benchmark, fig04_rewards.run, repetitions=10, probe_rounds=3)
    rows = fig04_rewards.format_rows(result)
    emit("Figure 4: reward distribution / attractiveness", rows)
    # paper shape: FIFL pays top deciles more than bottom deciles
    fifl = result["rewards"]["fifl"]
    assert sum(fifl[-3:]) > sum(fifl[:3])
    # Equal attracts the low-quality end more than anyone else
    attr = result["attractiveness"]
    bottom_attr = {m: attr[m][0] for m in attr}
    assert bottom_attr["equal"] == max(bottom_attr.values())
