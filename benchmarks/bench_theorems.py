"""Empirical verification of the paper's two theorems at scale."""

import numpy as np

from repro.core import (
    DecayReputation,
    fairness_coefficient,
    reward_shares,
    theorem1_fixed_point,
)

from conftest import emit, run_once


def _theorem1_trial(p_evil=0.35, gamma=0.1, steps=5000, seed=0):
    rng = np.random.default_rng(seed)
    rep = DecayReputation(gamma=gamma)
    vals = []
    for t in range(steps):
        rep.update(0, bool(rng.random() >= p_evil))
        if t > steps // 2:
            vals.append(rep.reputation(0))
    return float(np.mean(vals))


def bench_theorem1_reputation_fixed_point(benchmark):
    mean = run_once(benchmark, _theorem1_trial)
    emit(
        "Theorem 1: E[R] -> 1 - p",
        [f"p_evil=0.35 gamma=0.1: measured={mean:.4f} expected={theorem1_fixed_point(0.35):.4f}"],
    )
    assert abs(mean - 0.65) < 0.02


def _theorem2_trial(n=500, seed=0):
    rng = np.random.default_rng(seed)
    contribs = {i: float(c) for i, c in enumerate(rng.uniform(0.01, 10.0, size=n))}
    reps = {i: 0.8 for i in contribs}
    shares = reward_shares(reps, contribs)
    x = np.array([contribs[i] for i in sorted(contribs)])
    y = np.array([shares[i] for i in sorted(shares)])
    return fairness_coefficient(x, y)


def bench_theorem2_fairness_coefficient(benchmark):
    cs = run_once(benchmark, _theorem2_trial)
    emit("Theorem 2: fairness coefficient", [f"C_s = {cs:.12f} (expected 1.0)"])
    assert abs(cs - 1.0) < 1e-9
