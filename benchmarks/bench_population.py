"""Population-scale benchmark: O(cohort) rounds over 10^3..10^6 workers.

The population layer promises that per-round cost depends on the cohort,
never on the registered population: a :class:`~repro.population.
WorkerPopulation` stores recipes (O(1) per id), cohort sampling is O(k),
and only sampled workers are ever materialized. This benchmark prices
that promise two ways:

* **scaling sweep** — lazy blob populations at 10^3 → 10^6 ids, fixed
  cohort, seeded uniform sampling; reports rounds/sec and traced
  bytes/worker at each scale (bytes/worker must *fall* as the
  population grows — the footprint is O(cohort), so amortizing it over
  more registered ids strictly shrinks the per-id figure);
* **O(cohort) memory assertion** — two populations, 25x apart in size,
  identical cohorts: the bigger one's tracemalloc peak must stay within
  a constant factor of the smaller one's (an O(N) allocation anywhere in
  the round path fails this immediately);
* **null-cohort differential** — a full-population uniform cohort must
  reproduce the legacy ``workers=[...]`` trainer bit-for-bit (same
  accepted sets, same final parameters).

CLI (no pytest needed)::

    python benchmarks/bench_population.py            # sweep to 10^6
    python benchmarks/bench_population.py --quick    # CI smoke (assertions)
    python benchmarks/bench_population.py --json out.json
    python benchmarks/bench_population.py --record   # BENCH_population.json
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct CLI use without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import make_mechanism
from repro.datasets import iid_partition, make_blobs
from repro.experiments.common import FedExpConfig, build_population
from repro.fl import FederatedTrainer, HonestWorker
from repro.nn import build_logreg
from repro.parallel import blas_limits
from repro.telemetry import run_manifest, write_manifest

DEFAULT_SIZES = (1_000, 10_000, 100_000, 1_000_000)
QUICK_SIZES = (1_000, 25_000)
DEFAULT_COHORT = 32
DEFAULT_ROUNDS = 3
N_FEATURES = 16
N_CLASSES = 4
SAMPLES_PER_WORKER = 60
#: O(cohort) bar: the 25x-bigger population's traced peak may exceed the
#: small one's by at most this factor (plus an absolute floor for
#: allocator noise). An O(N) allocation would blow through this by >10x.
MEM_FACTOR = 1.6
MEM_FLOOR_BYTES = 2 << 20


def _scale_config(population: int, cohort: int, rounds: int, seed: int = 0) -> FedExpConfig:
    return FedExpConfig(
        dataset="blobs",
        num_workers=8,
        samples_per_worker=SAMPLES_PER_WORKER,
        test_samples=100,
        n_features=N_FEATURES,
        n_classes=N_CLASSES,
        rounds=rounds,
        eval_every=rounds,
        server_ranks=(0, 1),
        seed=seed,
        population_size=population,
        cohort_size=cohort,
        sampler="uniform",
        shard_size=16,
    )


def _build_trainer(cfg: FedExpConfig):
    model, population, test = build_population(cfg)
    mechanism = make_mechanism("fifl", shard_size=cfg.shard_size)
    trainer = FederatedTrainer(
        model,
        population=population,
        server_ranks=list(cfg.server_ranks),
        mechanism=mechanism,
        seed=cfg.seed,
        cohort_size=cfg.cohort_size,
        sampler=cfg.sampler,
        fleet_shard_size=cfg.shard_size,
    )
    return trainer, population


def measure_scale(population: int, cohort: int, rounds: int) -> dict:
    """Rounds/sec and traced peak for one population size (seeded)."""
    tracemalloc.start()
    trainer, pop = _build_trainer(_scale_config(population, cohort, rounds))
    # pin the BLAS pool so throughput numbers compare machine to machine
    with blas_limits(1):
        t0 = time.perf_counter()
        for t in range(rounds):
            trainer.run_round(t)
        elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "population": population,
        "cohort": cohort,
        "rounds": rounds,
        "rounds_per_sec": rounds / max(elapsed, 1e-12),
        "peak_bytes": int(peak),
        "bytes_per_worker": peak / population,
        "seen": pop.seen_count,
        "cached": pop.cached_count,
    }


def check_cohort_memory(cohort: int, rounds: int,
                        sizes: tuple[int, int] = QUICK_SIZES) -> dict:
    """Traced peak must not scale with population at fixed cohort."""
    small, big = (measure_scale(n, cohort, rounds) for n in sizes)
    bound = MEM_FACTOR * small["peak_bytes"] + MEM_FLOOR_BYTES
    return {
        "small": small,
        "big": big,
        "bound_bytes": int(bound),
        "ok": big["peak_bytes"] <= bound,
    }


def check_null_cohort(num_workers: int = 8, rounds: int = 5,
                      seed: int = 0) -> dict:
    """Full-population uniform cohort == legacy trainer, bit-for-bit."""
    def build(kind: str) -> FederatedTrainer:
        data = make_blobs(
            n_samples=num_workers * 80,
            n_features=N_FEATURES,
            num_classes=N_CLASSES,
            seed=seed,
        )
        shards = iid_partition(data, num_workers, seed=seed)
        model_fn = lambda: build_logreg(N_FEATURES, N_CLASSES, seed=seed)
        workers = [
            HonestWorker(i, shards[i], model_fn, seed=seed + 1000 + i)
            for i in range(num_workers)
        ]
        mech = make_mechanism("fifl")
        if kind == "legacy":
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                return FederatedTrainer(
                    model_fn(), workers, [0, 1], mechanism=mech, seed=seed
                )
        from repro.population import WorkerPopulation

        return FederatedTrainer(
            model_fn(),
            population=WorkerPopulation.from_workers(workers),
            server_ranks=[0, 1],
            mechanism=mech,
            seed=seed,
            cohort_size=num_workers,
            sampler="uniform",
        )

    legacy, dynamic = build("legacy"), build("dynamic")
    identical = True
    for t in range(rounds):
        ra, rb = legacy.run_round(t), dynamic.run_round(t)
        identical = identical and ra.accepted == rb.accepted
    identical = identical and (
        legacy.model.get_flat_params().tobytes()
        == dynamic.model.get_flat_params().tobytes()
    )
    return {"rounds": rounds, "bitwise_identical": identical}


def run_benchmark(sizes=DEFAULT_SIZES, cohort: int = DEFAULT_COHORT,
                  rounds: int = DEFAULT_ROUNDS) -> dict:
    by_size = {}
    for n in sizes:
        by_size[str(n)] = measure_scale(n, cohort, rounds)
    mem = check_cohort_memory(cohort, rounds)
    diff = check_null_cohort()
    return {
        "cohort": cohort,
        "rounds": rounds,
        "by_size": by_size,
        "cohort_memory_ok": mem["ok"],
        "memory_check": {
            "small_peak_bytes": mem["small"]["peak_bytes"],
            "big_peak_bytes": mem["big"]["peak_bytes"],
            "bound_bytes": mem["bound_bytes"],
            "sizes": [mem["small"]["population"], mem["big"]["population"]],
        },
        "bitwise_identical": diff["bitwise_identical"],
    }


def format_report(result: dict) -> list[str]:
    rows = [
        f"Population-scale benchmark (cohort={result['cohort']}, "
        f"{result['rounds']} rounds per size)",
    ]
    for n, entry in sorted(result["by_size"].items(), key=lambda kv: int(kv[0])):
        rows.append(
            f"  N={int(n):>9,}: {entry['rounds_per_sec']:8.2f} rounds/s, "
            f"peak {entry['peak_bytes'] / 2**20:7.1f} MiB "
            f"({entry['bytes_per_worker']:10.1f} B/worker), "
            f"{entry['seen']} workers touched"
        )
    mem = result["memory_check"]
    rows.append(
        f"  O(cohort) memory ({mem['sizes'][0]:,} -> {mem['sizes'][1]:,}): "
        f"{mem['small_peak_bytes'] / 2**20:.1f} -> "
        f"{mem['big_peak_bytes'] / 2**20:.1f} MiB "
        f"(bound {mem['bound_bytes'] / 2**20:.1f}) "
        f"{'OK' if result['cohort_memory_ok'] else 'VIOLATED'}"
    )
    rows.append(
        f"  null-cohort differential vs legacy trainer: "
        f"{'bit-identical' if result['bitwise_identical'] else 'DIVERGED'}"
    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small sizes, assertions only (no sweep to 10^6)",
    )
    parser.add_argument("--cohort", type=int, default=DEFAULT_COHORT)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--json", default="", help="write the result as JSON")
    parser.add_argument(
        "--record", action="store_true",
        help="save the manifest to benchmarks/BENCH_population.json",
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else DEFAULT_SIZES
    result = run_benchmark(sizes=sizes, cohort=args.cohort, rounds=args.rounds)
    for row in format_report(result):
        print(row)
    ok = result["cohort_memory_ok"] and result["bitwise_identical"]
    if not ok:
        print("ERROR: population-scale contract violated")
        return 1
    run_manifest(
        "bench_population",
        config={
            "sizes": list(sizes), "cohort": args.cohort,
            "rounds": args.rounds, "quick": args.quick,
        },
        results=result,
    )
    paths = [Path(p) for p in (args.json,) if p]
    if args.record:
        paths.append(Path(__file__).resolve().parent / "BENCH_population.json")
    for path in paths:
        write_manifest(path, result)
        print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
