"""Extension: detection robustness to non-iid data (S4.1's premise)."""

from repro.experiments import noniid

from conftest import emit, run_once


def bench_noniid_detection(benchmark):
    result = run_once(benchmark, noniid.run)
    emit("Detection under non-iid data", noniid.format_rows(result))
    by_alpha = result["by_alpha"]
    alphas = sorted(by_alpha, reverse=True)  # mild -> extreme skew
    # near-iid data: detection is essentially perfect
    assert by_alpha[alphas[0]]["honest_false_reject"] < 0.05
    assert by_alpha[alphas[0]]["attacker_reject"] > 0.95
    # the premise degrades monotonically as skew grows
    fr = [by_alpha[a]["honest_false_reject"] for a in alphas]
    assert all(a <= b + 1e-9 for a, b in zip(fr, fr[1:]))
    # even at extreme skew the attackers are mostly caught
    assert by_alpha[alphas[-1]]["attacker_reject"] > 0.6
