"""Limitation study: colluding small-perturbation attackers evade FIFL.

S4.1 scopes FIFL to disorganized attackers and acknowledges (citing
Baruch et al.'s "A Little Is Enough") that colluders hiding in small
gradient changes are out of scope. This bench measures that boundary:
three colluders planting the same ε-scaled direction pass detection
almost every round, while the planted bias accumulates in the global
model — visible as parameter drift along the planted direction far above
the clean run's.
"""

import numpy as np

from repro.core import DetectionConfig, FIFLConfig, FIFLMechanism
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import ColludingAttacker, FederatedTrainer, HonestWorker
from repro.nn import build_logreg

from conftest import emit, run_once

N_FEATURES, N_CLASSES, N_WORKERS = 8, 3, 8
COLLUDERS = (5, 6, 7)
EPSILON = 0.3
DIRECTION_SEED = 42


def _run(with_colluders: bool, seed=0, rounds=25):
    data = make_blobs(n_samples=900, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed)
    train, test = train_test_split(data, 0.25, seed=seed)
    shards = iid_partition(train, N_WORKERS, seed=seed)
    model_fn = lambda: build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    workers = []
    for i in range(N_WORKERS):
        if with_colluders and i in COLLUDERS:
            workers.append(
                ColludingAttacker(i, shards[i], model_fn, lr=0.1,
                                  epsilon=EPSILON, direction_seed=DIRECTION_SEED,
                                  seed=seed + 100 + i)
            )
        else:
            workers.append(
                HonestWorker(i, shards[i], model_fn, lr=0.1, seed=seed + 100 + i)
            )
    mech = FIFLMechanism(
        FIFLConfig(detection=DetectionConfig(threshold=0.0), gamma=0.3)
    )
    trainer = FederatedTrainer(model_fn(), workers, [0, 1], test_data=test,
                               mechanism=mech, server_lr=0.1, seed=seed)
    history = trainer.run(rounds, eval_every=rounds)
    theta = trainer.model.get_flat_params()
    direction = np.random.default_rng(DIRECTION_SEED).normal(size=theta.size)
    direction /= np.linalg.norm(direction)
    reject_rate = float(np.mean([
        not rec.accepted[c] for rec in mech.records for c in COLLUDERS
    ]))
    return {
        "final_acc": history.final_accuracy(),
        "drift": float(theta @ direction),
        "reject_rate": reject_rate,
    }


def bench_limitation_collusion(benchmark):
    def sweep():
        return {"clean": _run(False), "colluded": _run(True)}

    result = run_once(benchmark, sweep)
    clean, dirty = result["clean"], result["colluded"]
    emit(
        "Limitation: colluding epsilon-perturbation attackers",
        [
            f"{'clean':>9}  acc={clean['final_acc']:.3f}  "
            f"drift={clean['drift']:+.3f}",
            f"{'colluded':>9}  acc={dirty['final_acc']:.3f}  "
            f"drift={dirty['drift']:+.3f}  "
            f"colluder-reject-rate={dirty['reject_rate']:.2f}",
        ],
    )
    # the colluders sail through detection ...
    assert dirty["reject_rate"] < 0.2
    # ... while steering the model along the planted direction
    assert abs(dirty["drift"]) > 3 * abs(clean["drift"])
