"""Regenerates Figure 9: detection threshold sweep and TP/TN trade-off."""

from repro.experiments import fig09_detection as f9

from conftest import emit, run_once


def bench_fig09a_accuracy_sweep(benchmark):
    result = run_once(benchmark, f9.run_accuracy_sweep)
    emit(
        "Figure 9(a): detection accuracy sweep",
        f9.format_rows(result, {"tp_rate": {}, "tn_rate": {}})[:7],
    )
    for s_y, by_rate in result["accuracy"].items():
        rates = sorted(by_rate)
        # accuracy (weakly) increases with deviation degree
        assert by_rate[rates[-1]] >= by_rate[rates[0]] - 0.02
    assert all(v == 1.0 for v in result["sign_flip_tn_rate"].values())


def bench_fig09b_tradeoff(benchmark):
    result = run_once(benchmark, f9.run_tradeoff)
    emit(
        "Figure 9(b): TP/TN trade-off",
        [
            f"S_y={s:.2f}  honest-accept={result['tp_rate'][s]:.3f}  "
            f"attacker-reject={result['tn_rate'][s]:.3f}"
            for s in result["tp_rate"]
        ],
    )
    thresholds = sorted(result["tp_rate"])
    lo, hi = thresholds[0], thresholds[-1]
    assert result["tp_rate"][hi] <= result["tp_rate"][lo]
    assert result["tn_rate"][hi] >= result["tn_rate"][lo]
