"""Ablation: centralized (M=1) vs polycentric vs decentralized (M=N).

The paper claims FIFL generalizes across the three architectures by
varying the number of servers (S3.2). This bench verifies (a) the global
model is bit-identical across architectures on a reliable network and
(b) how communication volume scales with M.
"""

import numpy as np

from repro.comm import (
    centralized_topology,
    decentralized_topology,
    link_count,
    polycentric_topology,
)
from repro.experiments import FedExpConfig, run_federated

from conftest import emit, run_once


def _train(server_ranks):
    cfg = FedExpConfig(
        dataset="blobs",
        num_workers=6,
        samples_per_worker=100,
        test_samples=100,
        rounds=8,
        eval_every=8,
        server_ranks=tuple(server_ranks),
        seed=11,
    )
    history, _ = run_federated(cfg, with_fifl=False)
    return history.final_accuracy()


def bench_ablation_architectures(benchmark):
    def sweep():
        return {
            "centralized (M=1)": _train([0]),
            "polycentric (M=3)": _train([0, 2, 4]),
            "decentralized (M=N)": _train(list(range(6))),
        }

    result = run_once(benchmark, sweep)
    links = {
        "centralized (M=1)": link_count(centralized_topology(6)),
        "polycentric (M=3)": link_count(polycentric_topology(6, [0, 2, 4])),
        "decentralized (M=N)": link_count(decentralized_topology(6)),
    }
    emit(
        "Ablation: FL architectures",
        [
            f"{name:>20}  final_acc={acc:.4f}  links={links[name]}"
            for name, acc in result.items()
        ],
    )
    accs = list(result.values())
    # identical learning outcome regardless of server count
    assert np.allclose(accs, accs[0], atol=1e-12)
    # communication scales: star <= polycentric <= complete graph
    ordered = [links[k] for k in result]
    assert ordered[0] <= ordered[1] <= ordered[2]
