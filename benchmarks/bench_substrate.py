"""Microbenchmarks of the NumPy NN substrate's hot paths.

These are true timing benchmarks (multiple rounds): conv forward/backward
via im2col, a LeNet training step, and gradient flatten/slice plumbing —
the operations every federated round is made of.
"""

import numpy as np

from repro.fl import fedavg, recombine, split_gradient
from repro.nn import SoftmaxCrossEntropy, build_lenet

from conftest import emit


def bench_lenet_training_step(benchmark):
    model = build_lenet(num_classes=10, image_size=28, seed=0)
    loss_fn = SoftmaxCrossEntropy()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 1, 28, 28))
    y = rng.integers(0, 10, size=32)

    def step():
        loss_fn(model.forward(x, training=True), y)
        model.backward(loss_fn.backward())
        model.apply_flat_grads(model.get_flat_grads(), lr=0.01)

    benchmark(step)
    emit("Substrate: LeNet(28x28) batch-32 train step", [f"params={model.num_params}"])


def bench_gradient_slicing_roundtrip(benchmark):
    rng = np.random.default_rng(1)
    grad = rng.normal(size=100_000)

    def roundtrip():
        return recombine(split_gradient(grad, 8))

    out = benchmark(roundtrip)
    assert np.array_equal(out, grad)


def bench_fedavg_aggregation(benchmark):
    rng = np.random.default_rng(2)
    grads = [rng.normal(size=100_000) for _ in range(20)]
    weights = rng.integers(1, 10_000, size=20).astype(float)

    def agg():
        return fedavg(grads, weights)

    out = benchmark(agg)
    assert out.shape == (100_000,)
