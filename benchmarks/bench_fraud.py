"""Extension: sample-count inflation fraud (the paper's S5.2 discussion).

"Workers may deliberately exaggerate the number of their samples to
obtain excess rewards ... FIFL's gradient-based contribution can avoid
fraud from workers." One worker claims 10x its real data; we compare the
reward share each mechanism pays it against the honest-claim counterfactual.
"""

import numpy as np

from repro.core import BASELINE_WEIGHTS
from repro.market import measure_fifl_weights

from conftest import emit, run_once

TRUE_SAMPLES = np.array([1200, 2400, 3600, 4800, 6000, 7200], dtype=np.int64)
LIAR = 3  # worker claiming inflated data (above FIFL's free-rider guard)
INFLATION = 10


def _shares(claimed: np.ndarray, seed: int = 0) -> dict[str, np.ndarray]:
    out = {}
    for name, fn in BASELINE_WEIGHTS.items():
        w = np.asarray(fn(claimed.astype(float)), dtype=float)
        out[name] = w / w.sum()
    # FIFL measures gradients produced from the TRUE data (the liar cannot
    # fabricate samples it does not have); the claim only reaches the
    # aggregation weights, mirroring the live mechanism.
    true_samples = TRUE_SAMPLES.copy()
    fifl = measure_fifl_weights(true_samples, seed=seed, n_probe_rounds=4)
    total = fifl.sum()
    out["fifl"] = fifl / total if total > 0 else fifl
    return out


def _sweep():
    honest_claim = TRUE_SAMPLES.copy()
    inflated_claim = TRUE_SAMPLES.copy()
    inflated_claim[LIAR] *= INFLATION
    honest = _shares(honest_claim)
    inflated = _shares(inflated_claim)
    gains = {
        m: (inflated[m][LIAR] - honest[m][LIAR]) / max(honest[m][LIAR], 1e-12)
        for m in honest
    }
    return {
        "honest_share": {m: float(honest[m][LIAR]) for m in honest},
        "inflated_share": {m: float(inflated[m][LIAR]) for m in inflated},
        "relative_gain": {m: float(g) for m, g in gains.items()},
    }


def bench_fraud_sample_inflation(benchmark):
    result = run_once(benchmark, _sweep)
    emit(
        f"Fraud: worker {LIAR} claims {INFLATION}x its data",
        [
            f"{m:>12}  honest={result['honest_share'][m]:.4f}  "
            f"inflated={result['inflated_share'][m]:.4f}  "
            f"gain={100 * result['relative_gain'][m]:+.1f}%"
            for m in result["honest_share"]
        ],
    )
    gains = result["relative_gain"]
    # every claims-trusting baseline overpays the liar ...
    for m in ("individual", "union", "shapley"):
        assert gains[m] > 0.1, m
    assert gains["union"] > 1.0  # marginal utility is the most gameable
    # ... Equal is immune by construction (1/N), and FIFL by design
    assert abs(gains["equal"]) < 1e-9
    assert abs(gains["fifl"]) < 1e-9
    # and FIFL's immunity is not vacuous: it pays the (honest-quality)
    # liar a real share either way
    assert result["honest_share"]["fifl"] > 0.05
