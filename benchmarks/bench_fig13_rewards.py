"""Regenerates Figure 13: cumulative rewards/punishments by quality."""

from repro.experiments import fig13_cumulative_rewards as f13

from conftest import emit, run_once


def bench_fig13_cumulative_rewards(benchmark):
    result = run_once(benchmark, f13.run)
    emit("Figure 13: cumulative rewards by p_d", f13.format_rows(result))
    finals = result["finals"]
    # above-threshold workers rewarded, below-threshold punished, ordered
    assert finals[0.0] > finals[0.1] > 0
    assert 0 > finals[0.3] > finals[0.4]
