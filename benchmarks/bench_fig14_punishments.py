"""Regenerates Figure 14: punishments grow with attack intensity."""

from repro.experiments import fig14_punishments as f14

from conftest import emit, run_once


def bench_fig14_punishments(benchmark):
    result = run_once(benchmark, f14.run)
    emit("Figure 14: punishments by p_s", f14.format_rows(result))
    finals = result["finals"]
    intensities = sorted(finals)
    values = [finals[p] for p in intensities]
    assert all(v < 0 for v in values)
    # punishment magnitude strictly increases with attack intensity
    assert all(a > b for a, b in zip(values, values[1:]))
