"""Regenerates Figure 7: attacker damage on the MNIST-like task."""

from repro.experiments import fig07_attack_damage as f7

from conftest import emit, run_once


def _final(series):
    return next(v for v in reversed(series) if v is not None)


def bench_fig07a_intensity(benchmark):
    result = run_once(benchmark, f7.run_intensity_sweep)
    curves = result["curves"]
    emit(
        "Figure 7(a): sign-flip intensity sweep",
        [f"p_s={p:>5.1f}  final_acc={_final(s):.3f}" for p, s in curves.items()],
    )
    finals = {p: _final(s) for p, s in curves.items()}
    # damage grows with intensity; p_s >= 8 crashes to near-chance
    assert finals[0.0] > finals[4.0] > finals[6.0] > finals[8.0]
    assert finals[10.0] < 0.2


def bench_fig07b_attacker_types(benchmark):
    result = run_once(benchmark, f7.run_type_comparison)
    curves = result["curves"]
    emit(
        "Figure 7(b): attacker types",
        [f"{name:>12}  final_acc={_final(s):.3f}" for name, s in curves.items()],
    )
    finals = {k: _final(s) for k, s in curves.items()}
    # sign-flip hurts more than data-poison; joint is the worst
    assert finals["none"] > finals["data_poison"] > finals["sign_flip"]
    assert finals["joint"] <= finals["sign_flip"]
