"""An unreliable federation: mixed attackers, lossy links, full defence.

Scenario from the paper's motivation: a CNN federation (MNIST-like task)
where ~40% of workers are unreliable — sign-flippers, data-poisoners, a
free-rider, and an on/off probabilistic attacker — and the uplink drops
messages. Three runs are compared:

* clean        — no attackers (upper bound),
* undefended   — attackers, no mechanism (what FedAvg alone does),
* FIFL         — attackers, full FIFL pipeline + blockchain audit log.

Run:  python examples/unreliable_federation.py
"""

import numpy as np

from repro.core import make_mechanism
from repro.datasets import iid_partition, make_mnist_like, train_test_split
from repro.fl import (
    DataPoisonWorker,
    FederatedTrainer,
    FreeRiderWorker,
    HonestWorker,
    ProbabilisticAttacker,
    SignFlippingWorker,
)
from repro.ledger import Blockchain, audit_reputation
from repro.nn import build_lenet

N_WORKERS = 10
ROUNDS = 25
GAMMA = 0.25


def build_workers(shards, model_fn, unreliable: bool):
    """5 honest workers + (optionally) 4 attackers and 1 free-rider."""
    roster = {}
    if unreliable:
        roster = {
            5: lambda i: SignFlippingWorker(i, shards[i], model_fn, lr=0.02, batch_size=128,
                                            local_iters=2, p_s=8.0, seed=500 + i),
            6: lambda i: DataPoisonWorker(i, shards[i], model_fn, lr=0.02, batch_size=128,
                                          local_iters=2, p_d=0.8, seed=500 + i),
            7: lambda i: FreeRiderWorker(i, shards[i], model_fn, lr=0.02,
                                         seed=500 + i),
            8: lambda i: ProbabilisticAttacker(i, shards[i], model_fn, lr=0.02,
                                               batch_size=128, local_iters=2,
                                               p_a=0.5, p_s=6.0,
                                               seed=500 + i),
        }
    workers = []
    for i in range(N_WORKERS):
        if i in roster:
            workers.append(roster[i](i))
        else:
            workers.append(
                HonestWorker(i, shards[i], model_fn, lr=0.02, batch_size=128,
                             local_iters=2, seed=500 + i)
            )
    return workers


def run(unreliable: bool, defended: bool, ledger=None):
    data = make_mnist_like(n_samples=3400, image_size=14, seed=1)
    train, test = train_test_split(data, 400 / len(data), seed=1)
    shards = iid_partition(train, N_WORKERS, seed=1)
    model_fn = lambda: build_lenet(num_classes=10, image_size=14, seed=1)
    workers = build_workers(shards, model_fn, unreliable)
    mechanism = None
    if defended:
        mechanism = make_mechanism(
            "fifl", ledger=ledger, threshold=0.0, gamma=GAMMA
        )
    trainer = FederatedTrainer(
        model_fn(), workers, server_ranks=[0, 1], test_data=test,
        mechanism=mechanism, server_lr=0.02, drop_prob=0.05, seed=1,
    )
    with np.errstate(over="ignore", invalid="ignore"):
        history = trainer.run(ROUNDS, eval_every=ROUNDS)
    return history, mechanism


def main():
    print("training three federations (this takes ~1 minute)...\n")
    clean, _ = run(unreliable=False, defended=False)
    undefended, _ = run(unreliable=True, defended=False)
    chain = Blockchain()
    fifl, mech = run(unreliable=True, defended=True, ledger=chain)

    print(f"{'scenario':>22} {'final accuracy':>15}")
    print(f"{'clean (no attackers)':>22} {clean.final_accuracy():>15.3f}")
    print(f"{'undefended':>22} {undefended.final_accuracy():>15.3f}")
    print(f"{'FIFL-defended':>22} {fifl.final_accuracy():>15.3f}")

    print("\nreputations after training (workers 5-8 are unreliable):")
    for wid, rep in sorted(mech.reputation.reputations().items()):
        flag = "*" if wid in (5, 6, 7, 8) else " "
        print(f"  worker {wid}{flag}: R = {rep:.3f}")

    print("\ncumulative rewards:")
    for wid, reward in sorted(mech.cumulative_rewards().items()):
        print(f"  worker {wid}: {reward:+8.3f}")

    print(f"\naudit: ledger holds {len(chain)} signed round records, "
          f"intact={chain.is_intact()}")
    report = audit_reputation(chain, worker=5, gamma=GAMMA)
    print(f"audit of attacker 5's reputation trail: clean={report.clean} "
          f"({report.rounds_checked} rounds checked)")

    assert fifl.final_accuracy() > undefended.final_accuracy()
    print("\nOK: FIFL held the model together while FedAvg alone collapsed.")


if __name__ == "__main__":
    main()
