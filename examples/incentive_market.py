"""Incentive market: which mechanism attracts the best workers?

Reproduces the paper's S5.2 storyline at example scale: 20 workers with
uniformly random data holdings pick among five federations (FIFL and the
four baselines) in proportion to the rewards each would pay them. We then
report each mechanism's market share, revenue, and what happens once
38.5% of the population turns malicious.

Run:  python examples/incentive_market.py
"""

import numpy as np

from repro.core import shapley_weights, union_weights
from repro.market import MECHANISMS, MarketConfig, MarketSimulator

SEED = 7


def main():
    sim = MarketSimulator(
        MarketConfig(repetitions=8, iterations=100, fifl_probe_rounds=3),
        seed=SEED,
    )

    # -- one concrete population, inspected closely --------------------------
    rng = np.random.default_rng(SEED)
    samples = sim.draw_population(rng)
    shares = sim.mechanism_weights(samples, seed=SEED)
    print("population (sample counts):", sorted(samples.tolist()))
    print("\nreward shares by mechanism (workers sorted by quality):")
    order = np.argsort(samples)
    header = "samples " + " ".join(f"{m:>11}" for m in MECHANISMS)
    print(header)
    for idx in order:
        cells = " ".join(f"{shares[m][idx]:>11.4f}" for m in MECHANISMS)
        print(f"{samples[idx]:>7d} {cells}")

    # sanity: exact Shapley vs Union on this population
    phis = shapley_weights(samples.astype(float))
    marg = union_weights(samples.astype(float))
    print(
        f"\nShapley efficiency check: sum(phi)={phis.sum():.6f} "
        f"== Psi(total)={np.log1p(samples.sum()):.6f}"
    )
    print(f"Union marginals sum to {marg.sum():.6f} (< Shapley sum: no efficiency)")

    # -- full market simulation (Fig. 5) -------------------------------------
    out = sim.simulate_market()
    print("\nmarket results (greedy joining, averaged over repetitions):")
    print(f"{'mechanism':>12} {'data share':>11} {'revenue vs FIFL':>16}")
    for m in MECHANISMS:
        print(
            f"{m:>12} {out.data_share[m]:>11.4f} "
            f"{out.relative_revenue[m]:>15.2f}%"
        )

    # -- the same market with attackers (Fig. 6) ------------------------------
    rel = sim.unreliable_revenues(attack_degrees=(0.15, 0.385), repetitions=8)
    print("\nwith 38.5% unreliable workers (revenue relative to FIFL):")
    for degree, row in rel.items():
        cells = "  ".join(f"{m}={row[m]:+.1f}%" for m in MECHANISMS)
        print(f"  attack degree {degree}: {cells}")

    worst = min(rel[0.385][m] for m in MECHANISMS if m != "fifl")
    assert worst < -30.0
    print("\nOK: FIFL's detection keeps its federation profitable under attack.")


if __name__ == "__main__":
    main()
