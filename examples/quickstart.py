"""Quickstart: a FIFL federation in ~60 lines.

Builds a 6-worker federation (one sign-flipping attacker) over synthetic
blob data, trains it with the FIFL mechanism plugged into the federated
trainer, and prints what the mechanism decided: who was detected, every
worker's reputation, and the cumulative rewards/punishments.

Run:  python examples/quickstart.py

Set ``REPRO_TRACE=/path/to/trace.jsonl`` to also stream the full
telemetry trace (spans, mechanism metrics, per-round events) to a JSONL
file; render it afterwards with
``python -m repro.telemetry summarize trace.jsonl``.
"""

import os

import numpy as np

from repro.core import make_mechanism
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import FederatedTrainer, HonestWorker, SignFlippingWorker
from repro.nn import build_logreg
from repro.telemetry import JsonlSink, MemorySink, Telemetry, set_telemetry

trace_path = os.environ.get("REPRO_TRACE")
if trace_path:
    set_telemetry(Telemetry(sinks=[MemorySink(), JsonlSink(trace_path)]))

N_FEATURES, N_CLASSES, N_WORKERS = 16, 4, 6

# 1) data: synthetic classification, split across workers -------------------
data = make_blobs(n_samples=1200, n_features=N_FEATURES, num_classes=N_CLASSES, seed=0)
train, test = train_test_split(data, test_fraction=0.2, seed=0)
shards = iid_partition(train, N_WORKERS, seed=0)

# 2) workers: five honest + one sign-flipping attacker -----------------------
model_fn = lambda: build_logreg(N_FEATURES, N_CLASSES, seed=0)
workers = [
    HonestWorker(i, shards[i], model_fn, lr=0.1, seed=100 + i)
    for i in range(N_WORKERS - 1)
]
workers.append(
    SignFlippingWorker(
        N_WORKERS - 1, shards[-1], model_fn, lr=0.1, p_s=6.0, seed=199
    )
)

# 3) the FIFL mechanism (flat keywords route into the nested configs) ---------
mechanism = make_mechanism(
    "fifl",
    threshold=0.0,
    mode="cosine",
    gamma=0.2,  # reputation time-decay (Eq. 10)
    budget_per_round=1.0,  # I_sum distributed each round
)

# 4) train: polycentric architecture with servers {0, 1} ----------------------
trainer = FederatedTrainer(
    model=build_logreg(N_FEATURES, N_CLASSES, seed=0),
    workers=workers,
    server_ranks=[0, 1],
    test_data=test,
    mechanism=mechanism,
    server_lr=0.1,
)
history = trainer.run(num_rounds=30, eval_every=10)

# 5) what happened -------------------------------------------------------------
print(f"final test accuracy: {history.final_accuracy():.3f}")
last = mechanism.records[-1]
print("\nlast-round detection (r_i):")
for wid in sorted(last.accepted):
    role = "ATTACKER" if wid == N_WORKERS - 1 else "honest"
    print(
        f"  worker {wid} ({role:>8}): score={last.scores[wid]:+.3f} "
        f"accepted={last.accepted[wid]}"
    )
print("\nreputations:")
for wid, rep in sorted(mechanism.reputation.reputations().items()):
    print(f"  worker {wid}: R = {rep:.3f}")
print("\ncumulative rewards (negative = punished):")
for wid, reward in sorted(mechanism.cumulative_rewards().items()):
    print(f"  worker {wid}: {reward:+.3f}")

attacker_reward = mechanism.cumulative_rewards()[N_WORKERS - 1]
assert attacker_reward < 0, "the attacker should have been punished"
print("\nOK: attacker detected, excluded from aggregation, and punished.")

if trace_path:
    from repro.telemetry import get_telemetry

    get_telemetry().close()
    print(f"\n[trace written to {trace_path}; render it with"
          f" `python -m repro.telemetry summarize {trace_path}`]")
