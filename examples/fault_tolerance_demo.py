"""Fault tolerance: what happens when a device dies mid-training?

The paper motivates the polycentric architecture (S3.2) with exactly this
scenario: fully decentralized FL "lacks fault tolerance in which any node
failure will cause the system to crash", while a server *cluster* plus
per-round reputation re-selection (S4.5) survives. This demo crashes a
node at round 5 under three policies and prints the accuracy curves.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.experiments import fault_tolerance

FAIL_AT = 5
ROUNDS = 24


def sparkline(series, lo=0.2, hi=0.8):
    """Tiny ASCII accuracy curve."""
    blocks = " .:-=+*#%@"
    out = []
    for v in series:
        v = 0.0 if v is None else v
        idx = int((min(max(v, lo), hi) - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)


def main():
    print(f"training 4 federations, crash injected at round {FAIL_AT}...\n")
    result = fault_tolerance.run(rounds=ROUNDS, fail_at=FAIL_AT)
    scenarios = result["scenarios"]

    print(f"{'scenario':>24} {'accuracy curve':^{ROUNDS}} {'final':>7}")
    for name, s in scenarios.items():
        curve = sparkline(s["acc"])
        print(f"{name:>24} {curve} {s['final_acc']:>7.3f}")
    marker = " " * 25 + " " * FAIL_AT + "^ crash"
    print(marker)

    reselected = scenarios["server_fails_reselect"]["final_servers"]
    print(f"\nafter the crash, re-selection formed a new cluster: {reselected}")

    stall = scenarios["server_fails"]
    recover = scenarios["server_fails_reselect"]
    assert abs(stall["final_acc"] - stall["acc_at_failure"]) < 0.02
    assert recover["final_acc"] > stall["final_acc"] + 0.1
    print(
        "\nOK: a dead worker is harmless, a dead static server freezes the\n"
        "model, and reputation-based re-selection (S4.5) recovers fully."
    )


if __name__ == "__main__":
    main()
