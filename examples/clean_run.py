"""Clean run: an all-honest FIFL federation under the health monitor.

This is the observability counterpart to ``quickstart.py``: the same
federation shape but with *no* attacker, trained with a live
:class:`repro.monitor.Monitor` attached to the telemetry hub. A clean,
seeded run must produce **zero** alerts — CI uses this script (plus an
offline ``python -m repro.monitor scan`` of the trace it writes) as the
silent-path gate: every watchdog rule and anomaly detector sees real
traffic, and none of them may fire.

Run:  python examples/clean_run.py

Exits non-zero if the monitor raised any alert. Set
``REPRO_TRACE=/path/to/trace.jsonl`` to also stream the telemetry
trace; scan it afterwards with
``python -m repro.monitor scan trace.jsonl --strict``.
"""

import os
import sys

from repro.core import make_mechanism
from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import FederatedTrainer, HonestWorker
from repro.monitor import Monitor, MonitorConfig
from repro.nn import build_logreg
from repro.telemetry import JsonlSink, MemorySink, Telemetry, set_telemetry

trace_path = os.environ.get("REPRO_TRACE")
if trace_path:
    set_telemetry(Telemetry(sinks=[MemorySink(), JsonlSink(trace_path)]))

N_FEATURES, N_CLASSES, N_WORKERS = 16, 4, 6

# 1) data: synthetic classification, split across honest workers -------------
data = make_blobs(n_samples=1200, n_features=N_FEATURES, num_classes=N_CLASSES, seed=0)
train, test = train_test_split(data, test_fraction=0.2, seed=0)
shards = iid_partition(train, N_WORKERS, seed=0)

model_fn = lambda: build_logreg(N_FEATURES, N_CLASSES, seed=0)
workers = [
    HonestWorker(i, shards[i], model_fn, lr=0.1, seed=100 + i)
    for i in range(N_WORKERS)
]

# 2) mechanism + monitor ------------------------------------------------------
mechanism = make_mechanism(
    "fifl", threshold=0.0, mode="cosine", gamma=0.2, budget_per_round=1.0
)
monitor = Monitor(MonitorConfig(run_id="clean-run"))

# 3) train with the monitor watching the hub ---------------------------------
trainer = FederatedTrainer(
    model=build_logreg(N_FEATURES, N_CLASSES, seed=0),
    workers=workers,
    server_ranks=[0, 1],
    test_data=test,
    mechanism=mechanism,
    server_lr=0.1,
    monitor=monitor,
)
history = trainer.run(num_rounds=30, eval_every=10)

# 4) report -------------------------------------------------------------------
print(f"final test accuracy: {history.final_accuracy():.3f}")
summary = monitor.alerts_summary()
print(f"monitor alerts: {summary['total']}")
for rule, count in summary["by_rule"].items():
    print(f"  {rule}: {count}")

if trace_path:
    from repro.telemetry import get_telemetry

    get_telemetry().close()
    print(f"[trace written to {trace_path}; scan it with"
          f" `python -m repro.monitor scan {trace_path} --strict`]")

if not monitor.ok:
    print("FAIL: a clean run must not trip the health monitor", file=sys.stderr)
    sys.exit(1)
print("OK: clean run, zero alerts.")
