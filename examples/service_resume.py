"""Crash recovery drill: SIGKILL a federation service, resume, lose nothing.

A FIFL federation run as a *service* checkpoints its complete state —
model, worker RNG streams, reputations, ledger chain, telemetry cursor —
to durable snapshots. This demo runs the drill end to end with real
processes:

1. run a 30-round federation in a child process that SIGKILLs itself
   right after round 15's checkpoint (no cleanup, no flush — a power cut);
2. resume a *new* process from the surviving snapshot and finish the run;
3. run the same federation once more, never interrupted, and show the
   final accuracy, training-history digest and ledger audit all match.

Run:  python examples/service_resume.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ROUNDS = 30
KILL_AFTER = 14  # killed right after round 14's checkpoint (15 rounds done)
CHECKPOINT_EVERY = 5


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.service", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def main():
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        common = (
            "--preset", "blobs-fifl",
            "--rounds", str(ROUNDS),
            "--checkpoint-every", str(CHECKPOINT_EVERY),
        )

        print(f"[1/3] running {ROUNDS} rounds, SIGKILL after round "
              f"{KILL_AFTER}'s checkpoint...")
        killed = run_cli(
            "run", *common, "--dir", str(root / "crashed"),
            "--kill-after-round", str(KILL_AFTER),
        )
        assert killed.returncode == -signal.SIGKILL, (
            f"expected the child to die by SIGKILL, got {killed.returncode}"
        )
        status = json.loads(
            run_cli("status", "--dir", str(root / "crashed")).stdout
        )
        print(f"      child killed (exit {killed.returncode}); "
              f"surviving snapshots: {', '.join(status['snapshots'])}")

        print("[2/3] resuming a fresh process from the latest snapshot...")
        resumed_proc = run_cli("resume", "--dir", str(root / "crashed"))
        assert resumed_proc.returncode == 0, resumed_proc.stderr
        resumed = json.loads(resumed_proc.stdout)

        print("[3/3] reference run: same federation, never interrupted...")
        clean_proc = run_cli("run", *common, "--dir", str(root / "clean"))
        assert clean_proc.returncode == 0, clean_proc.stderr
        clean = json.loads(clean_proc.stdout)

    print()
    print(f"{'':>24} {'crashed+resumed':>16} {'uninterrupted':>16}")
    print(f"{'final accuracy':>24} {resumed['final_accuracy']:>16.4f} "
          f"{clean['final_accuracy']:>16.4f}")
    print(f"{'history digest':>24} {resumed['history_digest'][:12]:>16} "
          f"{clean['history_digest'][:12]:>16}")
    print(f"{'ledger head':>24} {resumed['ledger_head'][:12]:>16} "
          f"{clean['ledger_head'][:12]:>16}")
    print(f"{'ledger intact':>24} {str(resumed['ledger_intact']):>16} "
          f"{str(clean['ledger_intact']):>16}")

    checks = {
        "final accuracy": resumed["final_accuracy"] == clean["final_accuracy"],
        "history digest": resumed["history_digest"] == clean["history_digest"],
        "reputations": (
            resumed["reputation_digest"] == clean["reputation_digest"]
        ),
        "ledger head": resumed["ledger_head"] == clean["ledger_head"],
        "ledger audit": resumed["ledger_intact"] and clean["ledger_intact"],
    }
    print()
    if all(checks.values()):
        print("the crash is invisible: every output matches the "
              "uninterrupted run")
    else:
        failed = [name for name, ok in checks.items() if not ok]
        print(f"MISMATCH in: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
