"""Audit trail: catching a server that manipulates reputations (S4.5).

FIFL stores every round's assessment results, signed by the executing
server, in a blockchain. This example shows both tamper classes the audit
protocol covers:

1. a server rewriting a committed block *without* re-signing — caught by
   chain verification (hash/signature mismatch);
2. a malicious server committing a *legitimately signed but wrong*
   reputation — invisible to chain verification, caught by the publisher
   replaying the detection outcomes (audit_reputation) and traced to the
   signer.

Run:  python examples/audit_trail.py
"""

from repro.core import DecayReputation
from repro.ledger import Blockchain, SigningIdentity, audit_reputation

GAMMA = 0.2
WORKER = 3


def build_honest_chain() -> Blockchain:
    """Ten rounds of detection outcomes for worker 3, honestly recorded."""
    chain = Blockchain()
    chain.register(SigningIdentity("server-A", b"key-of-server-A"))
    chain.register(SigningIdentity("server-B", b"key-of-server-B"))
    rep = DecayReputation(gamma=GAMMA)
    outcomes = [True, True, False, True, True, True, False, True, True, True]
    for t, outcome in enumerate(outcomes):
        reps = rep.update_all({WORKER: outcome})
        signer = "server-A" if t % 2 == 0 else "server-B"
        chain.append(
            {"round": t, "accepted": {WORKER: outcome}, "reputations": reps},
            signer=signer,
        )
    return chain


def main():
    # -- clean chain audits clean ------------------------------------------
    chain = build_honest_chain()
    report = audit_reputation(chain, WORKER, gamma=GAMMA)
    print(f"honest ledger: {len(chain)} blocks, intact={chain.is_intact()}, "
          f"audit clean={report.clean}")

    # -- tamper class 1: rewrite without re-signing --------------------------
    payload = dict(chain[4].payload)
    payload["reputations"] = {str(WORKER): 0.99}
    chain.tamper(4, payload)
    bad_blocks = chain.verify()
    print(f"\nafter rewriting block 4 in place: intact={chain.is_intact()}, "
          f"invalid blocks={bad_blocks}")
    assert bad_blocks == [4]

    # -- tamper class 2: legitimately signed lies ----------------------------
    evil = Blockchain()
    evil.register(SigningIdentity("server-A", b"key-of-server-A"))
    evil.register(SigningIdentity("evil-server", b"key-of-evil-node"))
    rep = DecayReputation(gamma=GAMMA)
    for t, outcome in enumerate([False, False, False, False]):
        reps = rep.update_all({WORKER: outcome})
        if t == 2:
            # the evil server inflates the attacker's reputation, signing
            # the forged record with its own valid key
            reps = {WORKER: 0.95}
            signer = "evil-server"
        else:
            signer = "server-A"
        evil.append(
            {"round": t, "accepted": {WORKER: outcome}, "reputations": reps},
            signer=signer,
        )
    print(f"\nforged-but-signed ledger: intact={evil.is_intact()} "
          "(signatures cannot catch this)")
    report = audit_reputation(evil, WORKER, gamma=GAMMA)
    print(f"replay audit: clean={report.clean}, findings:")
    for f in report.findings:
        print(
            f"  round {f.round_idx}: recorded R={f.recorded:.3f} but replay "
            f"gives {f.recomputed:.3f} -> signed by {f.signer!r}"
        )
    assert report.implicated_signers() == {"evil-server"}
    print("\nOK: the manipulating server is identified by its signature and "
          "can be expelled from the cluster.")


if __name__ == "__main__":
    main()
