"""Tests for the hash-chained signed ledger."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger import (
    Blockchain,
    SigningIdentity,
    canonicalize,
    payload_digest,
)


class TestCanonicalize:
    def test_numpy_types_converted(self):
        out = canonicalize(
            {"a": np.int64(3), "b": np.float64(1.5), "c": np.array([1, 2]), "d": np.bool_(True)}
        )
        assert out == {"a": 3, "b": 1.5, "c": [1, 2], "d": True}

    def test_int_keys_become_strings(self):
        assert canonicalize({1: "x"}) == {"1": "x"}

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonicalize({"f": object()})

    def test_digest_stable_under_key_order(self):
        a = payload_digest({"x": 1, "y": 2})
        b = payload_digest({"y": 2, "x": 1})
        assert a == b

    def test_digest_changes_with_content(self):
        assert payload_digest({"x": 1}) != payload_digest({"x": 2})


class TestSigningIdentity:
    def test_sign_verify_roundtrip(self):
        identity = SigningIdentity("srv", b"secret-key-123")
        sig = identity.sign("hello")
        assert identity.verify("hello", sig)
        assert not identity.verify("hacked", sig)

    def test_different_keys_different_signatures(self):
        a = SigningIdentity("a", b"key-aaaaaaaa")
        b = SigningIdentity("b", b"key-bbbbbbbb")
        assert a.sign("m") != b.sign("m")

    def test_validation(self):
        with pytest.raises(ValueError):
            SigningIdentity("", b"12345678")
        with pytest.raises(ValueError):
            SigningIdentity("x", b"short")


class TestBlockchain:
    def test_append_links_blocks(self):
        chain = Blockchain()
        b0 = chain.append({"round": 0}, signer="s1")
        b1 = chain.append({"round": 1}, signer="s1")
        assert b1.prev_hash == b0.hash
        assert len(chain) == 2

    def test_intact_chain_verifies(self):
        chain = Blockchain()
        for t in range(5):
            chain.append({"round": t, "v": t * 1.5}, signer=f"s{t % 2}")
        assert chain.is_intact()
        assert chain.verify() == []

    def test_payload_tampering_detected(self):
        chain = Blockchain()
        for t in range(4):
            chain.append({"round": t, "rep": 0.5}, signer="s1")
        chain.tamper(2, {"round": 2, "rep": 0.99})
        assert not chain.is_intact()
        assert 2 in chain.verify()

    def test_tampered_block_attributable_to_signer(self):
        chain = Blockchain()
        chain.append({"r": 1}, signer="evil-server")
        chain.tamper(0, {"r": 2})
        bad = chain.verify()
        assert chain[bad[0]].signer == "evil-server"

    def test_registered_identity_used(self):
        chain = Blockchain()
        identity = SigningIdentity("custom", b"my-secret-key")
        chain.register(identity)
        blk = chain.append({"x": 1}, signer="custom")
        assert identity.verify(
            f"{blk.index}:{blk.prev_hash}:{payload_digest(blk.payload)}", blk.signature
        )

    def test_double_register_rejected(self):
        chain = Blockchain()
        chain.register(SigningIdentity("a", b"aaaaaaaaaa"))
        with pytest.raises(ValueError):
            chain.register(SigningIdentity("a", b"bbbbbbbbbb"))

    def test_tamper_index_bounds(self):
        chain = Blockchain()
        with pytest.raises(IndexError):
            chain.tamper(0, {})

    def test_numpy_payload_roundtrip(self):
        chain = Blockchain()
        chain.append({"scores": {0: np.float64(0.25)}, "r": np.bool_(True)}, "s")
        assert chain.is_intact()
        assert chain[0].payload["scores"]["0"] == 0.25

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 12),
        tamper_at=st.integers(0, 11),
    )
    def test_property_any_single_tamper_detected(self, n, tamper_at):
        if tamper_at >= n:
            return
        chain = Blockchain()
        for t in range(n):
            chain.append({"round": t, "value": float(t)}, signer="s")
        chain.tamper(tamper_at, {"round": tamper_at, "value": -1.0})
        assert tamper_at in chain.verify()
