"""Tests for the reputation audit protocol (S4.5)."""

import pytest

from repro.core import DecayReputation, DetectionConfig, FIFLConfig, FIFLMechanism
from repro.fl import FederatedTrainer
from repro.ledger import Blockchain, audit_reputation
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation

GAMMA = 0.2


def build_chain(outcomes_per_round, gamma=GAMMA, signer="server-A"):
    """Construct a ledger of FIFL round records from detection outcomes."""
    chain = Blockchain()
    rep = DecayReputation(gamma=gamma)
    for t, outcomes in enumerate(outcomes_per_round):
        reps = rep.update_all(outcomes)
        chain.append(
            {"round": t, "accepted": outcomes, "reputations": reps},
            signer=signer,
        )
    return chain


class TestCleanAudit:
    def test_honest_ledger_passes(self):
        chain = build_chain([{0: True}, {0: True}, {0: False}, {0: True}])
        report = audit_reputation(chain, worker=0, gamma=GAMMA)
        assert report.clean
        assert report.rounds_checked == 4

    def test_uncertain_events_replayed(self):
        chain = build_chain([{0: True}, {0: None}, {0: True}])
        report = audit_reputation(chain, worker=0, gamma=GAMMA)
        assert report.clean

    def test_untracked_worker_zero_rounds(self):
        chain = build_chain([{0: True}])
        report = audit_reputation(chain, worker=7, gamma=GAMMA)
        assert report.clean
        assert report.rounds_checked == 0


class TestManipulationDetected:
    def test_inflated_reputation_found_and_attributed(self):
        chain = build_chain(
            [{0: False}, {0: False}, {0: False}], signer="evil-server"
        )
        # the evil server rewrites round 1's reputation upward, re-signing
        # legitimately (it holds its own key), so the chain still verifies
        blk = chain[1]
        boosted = dict(blk.payload)
        boosted = {**boosted, "reputations": {"0": 0.95}}
        # rebuild chain with the manipulated middle record
        evil = Blockchain()
        evil.append(chain[0].payload, signer="evil-server")
        evil.append(boosted, signer="evil-server")
        evil.append(chain[2].payload, signer="evil-server")
        assert evil.is_intact()  # signatures fine - only replay catches it

        report = audit_reputation(evil, worker=0, gamma=GAMMA)
        assert not report.clean
        assert len(report.findings) == 1
        assert report.findings[0].round_idx == 1
        assert report.implicated_signers() == {"evil-server"}

    def test_single_bad_round_does_not_cascade(self):
        chain = build_chain([{0: True}] * 5)
        # tamper only round 2 (payload rewrite without re-signing)
        tampered_payload = dict(chain[2].payload)
        tampered_payload["reputations"] = {"0": 0.0}
        chain.tamper(2, tampered_payload)
        report = audit_reputation(chain, worker=0, gamma=GAMMA)
        assert not report.chain_intact
        assert [f.round_idx for f in report.findings] == [2]

    def test_wrong_gamma_flags_everything(self):
        # auditing with a different gamma than declared mismatches at once
        chain = build_chain([{0: True}, {0: True}], gamma=0.2)
        report = audit_reputation(chain, worker=0, gamma=0.5)
        assert not report.clean


class TestEndToEndWithMechanism:
    def test_fifl_ledger_audits_clean(self):
        workers, _, test = make_federation(num_workers=4)
        chain = Blockchain()
        mech = FIFLMechanism(
            FIFLConfig(detection=DetectionConfig(threshold=0.0), gamma=0.3),
            ledger=chain,
        )
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        trainer = FederatedTrainer(
            model, workers, [0], test_data=test, mechanism=mech, server_lr=0.1
        )
        trainer.run(8, eval_every=8)
        assert len(chain) == 8
        assert chain.is_intact()
        for wid in range(4):
            report = audit_reputation(chain, worker=wid, gamma=0.3)
            assert report.clean, f"worker {wid} audit failed: {report.findings}"
            assert report.rounds_checked == 8


class TestEdgeCases:
    """Boundary shapes the resumable-service audit path produces."""

    def test_empty_chain_is_trivially_clean(self):
        report = audit_reputation(Blockchain(), worker=0, gamma=GAMMA)
        assert report.clean
        assert report.rounds_checked == 0
        assert report.findings == []
        assert report.implicated_signers() == set()

    def test_single_identity_chain(self):
        # every block signed by the same server key — the degenerate
        # signer set a single-aggregator deployment produces
        chain = build_chain([{0: True}] * 3, signer="only-server")
        assert {b.signer for b in chain.blocks} == {"only-server"}
        report = audit_reputation(chain, worker=0, gamma=GAMMA)
        assert report.clean

        tampered = dict(chain[1].payload)
        tampered["reputations"] = {"0": 0.99}
        chain.tamper(1, tampered)
        report = audit_reputation(chain, worker=0, gamma=GAMMA)
        assert not report.clean
        assert report.implicated_signers() == {"only-server"}

    def test_post_resume_chain_head_links(self):
        # mirror the snapshot capture/restore dance: a resumed service
        # rebuilds the chain from copied block/identity state, then keeps
        # appending — the head must carry over so the restored chain is
        # one contiguous lineage, not a fresh genesis
        chain = build_chain([{0: True}, {0: False}])
        head = chain.head_hash()

        restored = Blockchain()
        restored._blocks = list(chain._blocks)
        restored._identities = dict(chain._identities)
        assert restored.head_hash() == head
        assert restored.is_intact()

        rep = DecayReputation(gamma=GAMMA)
        rep.update_all({0: True})
        rep.update_all({0: False})
        reps = rep.update_all({0: True})
        blk = restored.append(
            {"round": 2, "accepted": {0: True}, "reputations": reps},
            signer="server-A",
        )
        assert blk.prev_hash == head
        assert restored.is_intact()
        report = audit_reputation(restored, worker=0, gamma=GAMMA)
        assert report.clean
        assert report.rounds_checked == 3
