"""Performance watchdogs: rss-growth, gc-pause SLO, round-time degradation.

Resource samples reach the engine via ``Monitor.observe_resource`` (a
side stream, never the hub); round wall times arrive on the ordinary
``trainer.round`` span events. All three rules are edge-triggered
latches that re-arm on recovery, like the margin/gini level alerts.
"""

import json

from repro.monitor import Monitor, MonitorConfig
from repro.monitor.rules import RuleEngine


def engine(**cfg):
    return RuleEngine(MonitorConfig(**cfg))


def rules_of(alerts):
    return [a.rule for a in alerts]


def resource_sample(seq=1, rnd=0, rss=100 * 2**20, pause=0.0, **over):
    data = {"round": rnd, "rss_bytes": rss, "gc_collections": 0,
            "gc_pause_s_total": pause, "gc_pause_max_s": pause,
            "blas_threads": 1}
    data.update(over)
    return {"v": 1, "seq": seq, "type": "resource.sample", "data": data}


def round_span(seq=1, rnd=0, dur_s=0.01):
    return {"v": 1, "seq": seq, "type": "span", "name": "trainer.round",
            "kind": "round", "depth": 2, "dur_s": dur_s,
            "attrs": {"round": rnd}}


def drive(eng, events):
    alerts = []
    for ev in events:
        alerts.extend(eng.process(ev))
    return alerts


class TestRssGrowth:
    def cfg(self):
        return dict(rss_warmup_samples=2, rss_growth_factor=1.5,
                    rss_growth_min_bytes=1 * 2**20)

    def test_fires_after_warmup_and_latches(self):
        eng = engine(**self.cfg())
        mb = 2**20
        events = [resource_sample(seq=i, rnd=i, rss=rss) for i, rss in
                  enumerate([100 * mb, 100 * mb, 400 * mb, 500 * mb])]
        alerts = drive(eng, events)
        # one alert, not one per leaking sample
        assert rules_of(alerts) == ["rss-growth"]
        assert alerts[0].round == 2
        assert alerts[0].data["baseline_bytes"] == 100 * mb

    def test_rearms_after_recovery(self):
        eng = engine(**self.cfg())
        mb = 2**20
        rss_series = [100 * mb, 100 * mb,   # warmup
                      400 * mb,             # leak -> fires
                      110 * mb,             # recovered -> re-arms
                      400 * mb]             # leaks again -> fires again
        alerts = drive(eng, [resource_sample(seq=i, rnd=i, rss=r)
                             for i, r in enumerate(rss_series)])
        assert rules_of(alerts) == ["rss-growth", "rss-growth"]

    def test_baseline_is_min_over_warmup(self):
        # allocator warmup: first reading inflated, second settles lower
        eng = engine(**self.cfg())
        mb = 2**20
        alerts = drive(eng, [
            resource_sample(seq=0, rss=300 * mb),
            resource_sample(seq=1, rss=100 * mb),
            resource_sample(seq=2, rss=320 * mb),  # 3.2x the 100 MiB min
        ])
        assert rules_of(alerts) == ["rss-growth"]
        assert alerts[0].data["baseline_bytes"] == 100 * mb

    def test_growth_below_absolute_floor_is_silent(self):
        eng = engine(rss_warmup_samples=1, rss_growth_factor=1.5,
                     rss_growth_min_bytes=256 * 2**20)
        # 2x growth but only +4 MiB in absolute terms
        alerts = drive(eng, [
            resource_sample(seq=0, rss=4 * 2**20),
            resource_sample(seq=1, rss=8 * 2**20),
        ])
        assert alerts == []


class TestGcPause:
    def test_fires_above_slo_and_latches(self):
        eng = engine(gc_pause_slo_s=0.05)
        alerts = drive(eng, [
            resource_sample(seq=0, pause=0.01),
            resource_sample(seq=1, rnd=1, pause=0.20),
            resource_sample(seq=2, rnd=2, pause=0.30),  # still above: latched
        ])
        assert rules_of(alerts) == ["gc-pause"]
        assert alerts[0].round == 1
        assert alerts[0].data["gc_pause_max_s"] == 0.20

    def test_rearms_when_pauses_recover(self):
        eng = engine(gc_pause_slo_s=0.05)
        alerts = drive(eng, [
            resource_sample(seq=0, pause=0.20),
            resource_sample(seq=1, pause=0.01),
            resource_sample(seq=2, pause=0.20),
        ])
        assert rules_of(alerts) == ["gc-pause", "gc-pause"]

    def test_sample_without_pause_field_is_tolerated(self):
        ev = resource_sample(seq=0)
        del ev["data"]["gc_pause_max_s"]
        assert list(engine().process(ev)) == []


class TestRoundTimeDegraded:
    def cfg(self):
        return dict(round_time_warmup=3, round_time_window=3,
                    round_time_factor=2.0, round_time_min_s=0.001)

    def test_fires_on_sustained_slowdown(self):
        eng = engine(**self.cfg())
        durs = [0.01, 0.01, 0.01,   # warmup -> baseline 10 ms
                0.05, 0.05, 0.05]   # window median 50 ms = 5x baseline
        alerts = drive(eng, [round_span(seq=i, rnd=i, dur_s=d)
                             for i, d in enumerate(durs)])
        assert rules_of(alerts) == ["round-time-degraded"]
        assert alerts[0].round == 5
        assert alerts[0].data["baseline_s"] == 0.01

    def test_single_slow_round_is_silent(self):
        eng = engine(**self.cfg())
        durs = [0.01, 0.01, 0.01, 0.05, 0.01, 0.01]
        alerts = drive(eng, [round_span(seq=i, rnd=i, dur_s=d)
                             for i, d in enumerate(durs)])
        assert alerts == []

    def test_latches_then_rearms_on_recovery(self):
        eng = engine(**self.cfg())
        durs = [0.01, 0.01, 0.01,
                0.05, 0.05, 0.05,   # degraded: one alert despite 2 windows
                0.01, 0.01,         # recovered: re-arms
                0.05, 0.05]         # degrades again
        alerts = drive(eng, [round_span(seq=i, rnd=i, dur_s=d)
                             for i, d in enumerate(durs)])
        assert rules_of(alerts) == ["round-time-degraded"] * 2

    def test_below_absolute_floor_is_silent(self):
        eng = engine(round_time_warmup=3, round_time_window=3,
                     round_time_factor=2.0, round_time_min_s=1.0)
        durs = [0.01, 0.01, 0.01, 0.05, 0.05, 0.05]
        alerts = drive(eng, [round_span(seq=i, rnd=i, dur_s=d)
                             for i, d in enumerate(durs)])
        assert alerts == []

    def test_other_spans_do_not_feed_the_window(self):
        eng = engine(**self.cfg())
        events = []
        for i in range(5):
            events.append(round_span(seq=2 * i, rnd=i, dur_s=0.01))
            events.append({"v": 1, "seq": 2 * i + 1, "type": "span",
                           "name": "trainer.mechanism", "kind": "phase",
                           "depth": 3, "dur_s": 9.9, "attrs": {}})
        assert drive(eng, events) == []


class TestMonitorIntegration:
    def test_observe_resource_routes_to_rules(self):
        monitor = Monitor(MonitorConfig(rss_warmup_samples=1,
                                        rss_growth_factor=1.5,
                                        rss_growth_min_bytes=2**20))
        monitor.observe_resource({"round": 0, "rss_bytes": 100 * 2**20})
        monitor.observe_resource({"round": 1, "rss_bytes": 400 * 2**20})
        assert rules_of(monitor.alerts) == ["rss-growth"]

    def test_observed_samples_land_in_the_ring(self):
        monitor = Monitor(MonitorConfig())
        monitor.observe_resource({"round": 0, "rss_bytes": 1})
        ring = list(monitor.recorder.ring)
        assert ring[-1]["type"] == "resource.sample"

    def test_postmortem_header_carries_resources_and_context(self, tmp_path):
        monitor = Monitor(MonitorConfig(postmortem_dir=str(tmp_path),
                                        run_id="crash"))
        path = monitor.dump_postmortem(
            "exception: RuntimeError",
            context={"backend": {"backend": "thread", "pool_size": 4}},
        )
        header = json.loads(open(path).readline())
        assert header["reason"] == "exception: RuntimeError"
        assert header["resources"]["rss_bytes"] > 0
        assert header["context"]["backend"]["pool_size"] == 4

    def test_postmortem_context_omitted_when_absent(self, tmp_path):
        monitor = Monitor(MonitorConfig(postmortem_dir=str(tmp_path),
                                        run_id="plain"))
        header = json.loads(open(monitor.dump_postmortem("alert")).readline())
        assert "context" not in header
        assert "resources" in header
