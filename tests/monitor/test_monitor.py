"""Monitor integration: live sink, strict mode, trainer/runner wiring,
the offline/online differential, and trace byte-identity.

The heavyweight fixtures (a clean seeded run and a sign-flip attack
run, both traced) are module-scoped: every assertion about silence,
firing, replay equality and byte-identity reads the same two runs.
"""

import json

import pytest

from repro.monitor import Monitor, MonitorConfig, MonitorError, scan_events
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    Telemetry,
    TickClock,
    set_telemetry,
)
from repro.telemetry.sinks import encode_event


def tiny_fed(**over):
    from repro.experiments.fig09_detection import _default_fed

    cfg = _default_fed().scaled(
        rounds=8, num_workers=6, samples_per_worker=40, test_samples=50,
    )
    return cfg.scaled(**over) if over else cfg


def run_traced(path, attackers=None, monitor=None):
    """One seeded run on a fresh deterministic hub tracing to ``path``."""
    from repro.experiments.common import run_federated

    tele = Telemetry(sinks=[MemorySink(), JsonlSink(path)], clock=TickClock())
    if monitor is not None:
        monitor.install(tele)
    previous = set_telemetry(tele)
    try:
        run_federated(tiny_fed(), attackers=attackers, with_fifl=True)
    finally:
        tele.close()
        if monitor is not None:
            monitor.uninstall()
        set_telemetry(previous)
    return tele


def round_trip(events):
    """Live events -> canonical JSONL bytes -> decoded replay spelling."""
    return [json.loads(encode_event(ev)) for ev in events]


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("clean") / "trace.jsonl"
    monitor = Monitor(MonitorConfig())
    tele = run_traced(path, monitor=monitor)
    return monitor, tele, path


@pytest.fixture(scope="module")
def attack_run(tmp_path_factory):
    from repro.experiments.common import sign_flip

    path = tmp_path_factory.mktemp("attack") / "trace.jsonl"
    monitor = Monitor(MonitorConfig())
    tele = run_traced(
        path, attackers={2: sign_flip(6.0), 3: sign_flip(6.0)},
        monitor=monitor,
    )
    return monitor, tele, path


class TestCleanRunSilence:
    def test_no_live_alerts(self, clean_run):
        monitor, _, _ = clean_run
        assert monitor.ok
        assert monitor.alerts == []

    def test_no_offline_alerts(self, clean_run):
        _, tele, _ = clean_run
        assert scan_events(round_trip(tele.events())) == []

    def test_alert_summary_reports_zero(self, clean_run):
        monitor, _, _ = clean_run
        summary = monitor.alerts_summary()
        assert summary == {"total": 0, "by_rule": {}, "alerts": []}


class TestAttackRunFires:
    def test_sign_flip_trips_margin_collapse(self, attack_run):
        monitor, _, _ = attack_run
        assert not monitor.ok
        assert "margin-collapse" in {a.rule for a in monitor.alerts}

    def test_offline_replay_reproduces_live_alerts_exactly(self, attack_run):
        monitor, tele, _ = attack_run
        offline = scan_events(round_trip(tele.events()))
        assert [a.to_dict() for a in offline] == \
            [a.to_dict() for a in monitor.alerts]

    def test_scan_of_trace_file_matches_live(self, attack_run):
        from repro.monitor.cli import read_trace_tolerant

        monitor, _, path = attack_run
        events, bad = read_trace_tolerant(path)
        assert bad == 0
        offline = scan_events(events)
        assert [a.to_dict() for a in offline] == \
            [a.to_dict() for a in monitor.alerts]


class TestTraceByteIdentity:
    def test_monitor_does_not_change_trace_bytes(self, tmp_path, clean_run):
        # same seeded run without any monitor: the traces must be
        # byte-identical — the sink only observes, never emits
        _, _, monitored_path = clean_run
        bare_path = tmp_path / "bare.jsonl"
        run_traced(bare_path)
        a, b = monitored_path.read_bytes(), bare_path.read_bytes()
        assert len(a) > 0
        assert a == b


class TestStrictMode:
    def test_strict_sink_raises_at_flush(self):
        hub = Telemetry()
        monitor = Monitor(MonitorConfig(strict=True)).install(hub)
        hub.event("fifl.round", {"round": 0, "rep_min": -2.0, "rep_max": 0.5})
        with pytest.raises(MonitorError) as err:
            hub.flush()
        assert "reputation-bounds" in str(err.value)
        assert err.value.alerts[0].rule == "reputation-bounds"
        monitor.uninstall()

    def test_non_strict_sink_accumulates(self):
        hub = Telemetry()
        monitor = Monitor(MonitorConfig()).install(hub)
        hub.event("fifl.round", {"round": 0, "rep_min": -2.0, "rep_max": 0.5})
        hub.flush()
        assert len(monitor.alerts) == 1
        monitor.uninstall()


class TestHubWiring:
    def test_install_is_idempotent(self):
        hub = Telemetry()
        monitor = Monitor(MonitorConfig())
        monitor.install(hub)
        monitor.install(hub)
        assert hub.sinks.count(monitor) == 1
        monitor.uninstall()
        monitor.uninstall()
        assert monitor not in hub.sinks

    def test_swapping_monitors_redirects_events(self):
        # regression: the hub caches bound sink emits; replacing one
        # monitor with another (same sink count) must invalidate it
        hub = Telemetry()
        bad = {"round": 0, "rep_min": -2.0, "rep_max": 0.5}
        first = Monitor(MonitorConfig()).install(hub)
        hub.event("fifl.round", bad)
        hub.flush()
        first.uninstall()
        second = Monitor(MonitorConfig()).install(hub)
        hub.event("fifl.round", bad)
        hub.flush()
        second.uninstall()
        assert len(first.alerts) == 1
        assert len(second.alerts) == 1

    def test_monitor_events_do_not_reach_hub_memory(self):
        # Monitor is not a MemorySink subclass: Telemetry.events() must
        # not pick it up as an event source
        hub = Telemetry()
        monitor = Monitor(MonitorConfig()).install(hub)
        hub.event("fifl.round", {"round": 0, "rep_min": 0.0, "rep_max": 2.0})
        hub.flush()
        assert len(monitor.alerts) == 1
        types = {ev["type"] for ev in hub.events()}
        assert types == {"fifl.round"}
        monitor.uninstall()


class TestTrainerWiring:
    def test_trainer_runs_monitor_and_dumps_on_exception(self, tmp_path):
        from repro.datasets import iid_partition, make_blobs, train_test_split
        from repro.fl import FederatedTrainer, HonestWorker
        from repro.nn import build_logreg

        data = make_blobs(n_samples=240, n_features=8, num_classes=3, seed=0)
        train, test = train_test_split(data, test_fraction=0.2, seed=0)
        shards = iid_partition(train, 4, seed=0)
        model_fn = lambda: build_logreg(8, 3, seed=0)
        workers = [
            HonestWorker(i, shards[i], model_fn, lr=0.1, seed=100 + i)
            for i in range(4)
        ]
        monitor = Monitor(MonitorConfig(postmortem_dir=str(tmp_path),
                                        run_id="boom"))
        # fresh global hub: the trainer binds get_profiler() at
        # construction, and a shared suite-wide hub may carry another
        # test's pending events into this monitor
        hub = Telemetry(sinks=[MemorySink()])
        previous = set_telemetry(hub)
        try:
            trainer = FederatedTrainer(
                model=build_logreg(8, 3, seed=0),
                workers=workers,
                server_ranks=[0, 1],
                test_data=test,
                monitor=monitor,
            )

            calls = {"n": 0}
            original = trainer.run_round

            def exploding_round(t):
                calls["n"] += 1
                if calls["n"] >= 3:
                    raise RuntimeError("mid-training crash")
                return original(t)

            trainer.run_round = exploding_round
            with pytest.raises(RuntimeError, match="mid-training crash"):
                trainer.run(num_rounds=6)
        finally:
            set_telemetry(previous)
        dump = tmp_path / "postmortem-boom.jsonl"
        assert dump.exists()
        header = json.loads(dump.read_text().splitlines()[0])
        assert header["type"] == "postmortem"
        assert "RuntimeError" in header["reason"]
        # the trainer detached the monitor on the way out
        assert monitor not in hub.sinks


class TestRunnerWiring:
    def _fake_figure(self, monkeypatch, alerting):
        """Register a stub figure that optionally emits a violating event."""
        from repro.experiments import runner as runner_mod
        from repro.telemetry import get_telemetry

        class Spec:
            fig_id = "figx"
            title = "stub"

            def run(self, fast):
                if alerting:
                    get_telemetry().event(
                        "fifl.round",
                        {"round": 0, "rep_min": -5.0, "rep_max": 0.5},
                    )
                return {"value": 1}, ["row"]

        monkeypatch.setitem(runner_mod.FIGURES, "figx", Spec())
        return runner_mod

    def test_meta_alerts_block_and_strict_exit(self, monkeypatch, tmp_path,
                                               capsys):
        runner_mod = self._fake_figure(monkeypatch, alerting=True)
        rc = runner_mod.main(
            ["--figures", "figx", "--out", str(tmp_path), "--strict"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "--strict" in err and "monitor alert" in err
        meta = json.loads((tmp_path / "figx.json").read_text())["_meta"]
        assert meta["alerts"]["total"] == 1
        assert meta["alerts"]["by_rule"] == {"reputation-bounds": 1}
        # the alert also produced a post-mortem next to the results
        assert (tmp_path / "postmortem-figx.jsonl").exists()

    def test_clean_figure_passes_strict(self, monkeypatch, tmp_path, capsys):
        runner_mod = self._fake_figure(monkeypatch, alerting=False)
        rc = runner_mod.main(
            ["--figures", "figx", "--out", str(tmp_path), "--strict"]
        )
        assert rc == 0
        meta = json.loads((tmp_path / "figx.json").read_text())["_meta"]
        assert meta["alerts"]["total"] == 0
