"""Rule-engine unit tests: every invariant and detector, fire + silent.

Each test hand-crafts the v1 telemetry events the live hub would emit
and drives them through a fresh :class:`RuleEngine`. The paired
structure (one violating event, one clean twin) pins down exactly which
field each rule keys on.
"""

import json

import pytest

from repro.ledger.blockchain import GENESIS_HASH
from repro.monitor import MonitorConfig
from repro.monitor.rules import RuleEngine


def fifl_event(seq=10, rnd=0, **over):
    """A self-consistent clean fifl.round event (live spelling)."""
    data = {
        "round": rnd,
        "flagged": [3],
        "accepted": 3,
        "uncertain": [],
        "threshold": 0.0,
        "scores": {0: 0.5, 1: 0.4, 2: 0.3, 3: -0.8},
        "margin_min": 0.1,
        "margin_max": 0.8,
        "reputation_delta": {
            "workers": (0, 1, 2, 3),
            "delta": [0.01, 0.01, 0.01, -0.05],
        },
        "rep_min": 0.1,
        "rep_max": 0.9,
        "budget": 1.0,
        "rewards": {0: 0.4, 1: 0.35, 2: 0.25, 3: -0.2},
        "reward_gini": 0.2,
        "share_entropy": 0.9,
    }
    data.update(over)
    return {"v": 1, "seq": seq, "type": "fifl.round", "data": data}


def neutral_event(seq=10, rnd=0, **over):
    """A clean event with no flagged worker and balanced reputation
    movement — safe to repeat for many rounds without accumulating the
    genuine drift the default event's flagged worker would build up."""
    base = dict(
        flagged=[], accepted=4,
        reputation_delta={"workers": (0, 1, 2, 3),
                          "delta": [0.01, 0.01, 0.01, 0.01]},
        rewards={0: 0.3, 1: 0.3, 2: 0.2, 3: 0.2},
    )
    base.update(over)
    return fifl_event(seq=seq, rnd=rnd, **base)


def sim_event(seq=20, rnd=0, **over):
    data = {
        "round": rnd, "duration_s": 1.0, "stragglers": 0, "offline": 0,
        "retries": 0, "late": 0, "uncertain": 0,
        "comm": {"messages_sent": 10, "delivered": 9, "dropped": 1,
                 "bytes_sent": 1000},
    }
    data.update(over)
    return {"v": 1, "seq": seq, "type": "sim.round", "data": data}


def engine(**cfg):
    return RuleEngine(MonitorConfig(**cfg))


def rules_of(alerts):
    return [a.rule for a in alerts]


class TestFiflInvariants:
    def test_clean_event_is_silent(self):
        assert engine().process(fifl_event()) == []

    def test_unknown_event_types_are_ignored(self):
        eng = engine()
        assert list(eng.process({"type": "span", "name": "x"})) == []
        assert list(eng.process({"type": "gauge", "value": 1.0})) == []

    def test_budget_violation_positive_side(self):
        ev = fifl_event(rewards={0: 0.9, 1: 0.8, 2: 0.25, 3: -0.2})
        assert "budget-conservation" in rules_of(engine().process(ev))

    def test_budget_violation_punishment_side(self):
        ev = fifl_event(rewards={0: 0.4, 1: 0.3, 2: 0.2, 3: -1.5})
        assert "budget-conservation" in rules_of(engine().process(ev))

    def test_budget_tolerance_allows_rounding(self):
        ev = fifl_event(rewards={0: 0.5, 1: 0.3, 2: 0.2 + 1e-9, 3: -0.2})
        assert engine().process(ev) == []

    def test_partition_flagged_not_scored(self):
        ev = fifl_event(flagged=[9], accepted=3)
        alerts = engine().process(ev)
        assert "worker-partition" in rules_of(alerts)
        assert alerts[0].data["flagged_not_scored"] == [9]

    def test_partition_uncertain_overlaps_scored(self):
        ev = fifl_event(uncertain=[2])
        assert "worker-partition" in rules_of(engine().process(ev))

    def test_partition_accepted_count_mismatch(self):
        ev = fifl_event(accepted=2)
        assert "worker-partition" in rules_of(engine().process(ev))

    def test_reputation_out_of_bounds(self):
        ev = fifl_event(rep_max=1.2)
        alerts = engine().process(ev)
        assert "reputation-bounds" in rules_of(alerts)
        ev = fifl_event(rep_min=-0.3)
        assert "reputation-bounds" in rules_of(engine().process(ev))

    def test_flagged_worker_gaining_reputation_fires(self):
        ev = fifl_event(reputation_delta={
            "workers": (0, 1, 2, 3), "delta": [0.01, 0.01, 0.01, +0.05],
        })
        alerts = engine().process(ev)
        assert "flagged-reputation-monotone" in rules_of(alerts)
        assert alerts[0].data["workers"] == [3]

    def test_json_spelling_matches_live_spelling(self):
        # replayed traces carry string dict keys and lists; every rule
        # must reach the same verdict on both spellings
        for ev in (
            fifl_event(rewards={0: 0.9, 1: 0.8, 2: 0.25, 3: -0.2}),
            fifl_event(flagged=[9], accepted=3),
            fifl_event(rep_max=1.2),
        ):
            live = rules_of(engine().process(ev))
            replay = rules_of(engine().process(json.loads(json.dumps(ev))))
            assert live == replay and live


class TestMarginAndGini:
    def test_margin_floor_fires_and_latches(self):
        eng = engine()
        first = eng.process(fifl_event(rnd=0, margin_min=-0.9))
        assert rules_of(first) == ["margin-collapse"]
        # still below the floor: latched, no repeat alert
        assert eng.process(fifl_event(rnd=1, margin_min=-0.8)) == []
        # recovery re-arms the latch; the next crossing fires again
        assert eng.process(fifl_event(rnd=2, margin_min=0.2)) == []
        again = eng.process(fifl_event(rnd=3, margin_min=-0.7))
        assert rules_of(again) == ["margin-collapse"]

    def test_margin_ewma_drift_fires_above_floor(self):
        eng = engine(margin_floor=-10.0, warmup_rounds=3, min_std=0.01)
        for r in range(8):
            assert eng.process(neutral_event(rnd=r, margin_min=0.5)) == []
        alerts = eng.process(neutral_event(rnd=8, margin_min=0.1))
        assert rules_of(alerts) == ["margin-collapse"]
        assert alerts[0].data["z"] < 0

    def test_gini_cap_fires_and_latches(self):
        eng = engine()
        assert rules_of(eng.process(fifl_event(rnd=0, reward_gini=0.95))) == \
            ["reward-gini-spike"]
        assert eng.process(fifl_event(rnd=1, reward_gini=0.96)) == []
        assert eng.process(fifl_event(rnd=2, reward_gini=0.2)) == []
        assert rules_of(eng.process(fifl_event(rnd=3, reward_gini=0.99))) == \
            ["reward-gini-spike"]

    def test_healthy_gini_variation_stays_silent(self):
        # a clean run's Gini legitimately swings by several tenths
        eng = engine()
        series = [0.03, 0.24, 0.15, 0.22, 0.10, 0.21, 0.46, 0.22, 0.58, 0.28]
        for r, g in enumerate(series):
            assert eng.process(neutral_event(rnd=r, reward_gini=g)) == []


class TestReputationDrift:
    def drifting_event(self, rnd):
        return fifl_event(rnd=rnd, flagged=[], accepted=4, reputation_delta={
            "workers": (0, 1, 2, 3),
            "delta": [0.01, 0.01, 0.01, -0.2],
        }, rewards={0: 0.3, 1: 0.3, 2: 0.3, 3: 0.1})

    def test_fires_once_per_worker(self):
        eng = engine(drift_check_stride=1)
        fired = []
        for r in range(12):
            fired.extend(eng.process(self.drifting_event(r)))
        drift = [a for a in fired if a.rule == "reputation-drift"]
        assert len(drift) == 1
        assert drift[0].data["worker"] == 3

    def test_stride_gates_the_scan(self):
        # with the default stride the scan only runs on multiples of it,
        # so the first possible firing round is the first stride multiple
        # past warmup
        eng = engine(drift_check_stride=4, warmup_rounds=5)
        rounds_fired = []
        for r in range(12):
            for a in eng.process(self.drifting_event(r)):
                if a.rule == "reputation-drift":
                    rounds_fired.append(r + 1)  # _rep_rounds == r + 1
        assert rounds_fired == [8]

    def test_cohort_reshape_carries_movement_forward(self):
        eng = engine(drift_check_stride=1, warmup_rounds=3)
        for r in range(4):
            eng.process(self.drifting_event(r))
        # worker 3 leaves (churn); remaining cohort is healthy
        ev = fifl_event(rnd=4, flagged=[], accepted=3,
                        scores={0: 0.5, 1: 0.4, 2: 0.3},
                        rewards={0: 0.4, 1: 0.3, 2: 0.3},
                        reputation_delta={"workers": (0, 1, 2),
                                          "delta": [0.01, 0.01, 0.01]})
        assert eng.process(ev) == []
        assert eng._rep_workers == (0, 1, 2)


class TestSimRound:
    def test_clean_sim_round_is_silent(self):
        assert engine().process(sim_event()) == []

    def test_comm_delivered_plus_dropped_exceeds_sent(self):
        ev = sim_event(comm={"messages_sent": 10, "delivered": 9,
                             "dropped": 3, "bytes_sent": 100})
        assert "comm-accounting" in rules_of(engine().process(ev))

    def test_comm_negative_counter(self):
        ev = sim_event(comm={"messages_sent": -1, "delivered": 0,
                             "dropped": 0, "bytes_sent": 0})
        assert "comm-accounting" in rules_of(engine().process(ev))

    def test_comm_cumulative_counters_must_not_decrease(self):
        eng = engine()
        assert eng.process(sim_event(rnd=0)) == []
        ev = sim_event(rnd=1, comm={"messages_sent": 5, "delivered": 4,
                                    "dropped": 1, "bytes_sent": 500})
        assert "comm-accounting" in rules_of(eng.process(ev))

    def test_slo_fires_on_sustained_degradation(self):
        eng = engine()
        fired = []
        for r in range(6):
            fired.extend(eng.process(sim_event(seq=30 + r, rnd=r, late=2)))
        assert "slo-degraded" in rules_of(fired)

    def test_slo_silent_on_rare_degradation(self):
        eng = engine()
        fired = []
        for r in range(8):
            late = 1 if r == 3 else 0
            fired.extend(eng.process(sim_event(seq=30 + r, rnd=r, late=late)))
        assert fired == []


class TestLedgerRules:
    def commit(self, index, prev_hash, block_hash, seq=50):
        return {"v": 1, "seq": seq + index, "type": "ledger.commit",
                "data": {"index": index, "signer": "server-0",
                         "prev_hash": prev_hash, "hash": block_hash,
                         "payload_digest": "d" * 8, "round": index}}

    def test_well_linked_chain_is_silent(self):
        eng = engine()
        assert eng.process(self.commit(0, GENESIS_HASH, "h0")) == []
        assert eng.process(self.commit(1, "h0", "h1")) == []
        assert eng.process(self.commit(2, "h1", "h2")) == []

    def test_unknown_parent_fires(self):
        eng = engine()
        eng.process(self.commit(0, GENESIS_HASH, "h0"))
        alerts = eng.process(self.commit(1, "bogus", "h1"))
        assert rules_of(alerts) == ["ledger-chain"]

    def test_index_skip_fires(self):
        eng = engine()
        eng.process(self.commit(0, GENESIS_HASH, "h0"))
        alerts = eng.process(self.commit(2, "h0", "h2"))
        assert rules_of(alerts) == ["ledger-chain"]

    def test_unclean_audit_fires(self):
        ev = {"v": 1, "seq": 90, "type": "ledger.audit",
              "data": {"worker": 0, "rounds_checked": 3,
                       "chain_intact": True, "clean": False,
                       "findings": [{"block_index": 1, "round": 1,
                                     "signer": "evil", "recorded": 0.95,
                                     "recomputed": 0.5}]}}
        alerts = engine().process(ev)
        assert rules_of(alerts) == ["ledger-audit"]
        assert alerts[0].data["findings"][0]["signer"] == "evil"

    def test_clean_audit_is_silent(self):
        ev = {"v": 1, "seq": 91, "type": "ledger.audit",
              "data": {"worker": 0, "rounds_checked": 3,
                       "chain_intact": True, "clean": True, "findings": []}}
        assert list(engine().process(ev)) == []


class TestMetricRule:
    def test_nan_metric_fires(self):
        ev = {"v": 1, "seq": 5, "type": "metric", "name": "fifl.margin",
              "value": float("nan")}
        assert rules_of(engine().process(ev)) == ["non-finite-metric"]

    def test_finite_metric_silent(self):
        ev = {"v": 1, "seq": 5, "type": "metric", "name": "fifl.margin",
              "value": 0.25}
        assert list(engine().process(ev)) == []


class TestAlertShape:
    def test_alert_carries_seq_round_and_payload(self):
        alerts = engine().process(fifl_event(seq=42, rnd=7, rep_max=1.5))
        a = alerts[0]
        assert (a.seq, a.round, a.kind) == (42, 7, "invariant")
        d = a.to_dict()
        assert d["rule"] == "reputation-bounds"
        assert json.dumps(d)  # JSON-serializable

    def test_strict_config_is_engine_agnostic(self):
        # the engine itself never raises; raising is the Monitor's job
        eng = engine(strict=True)
        assert eng.process(fifl_event(rep_max=9.0))


class TestFairnessDrift:
    """Cumulative reward concentration (run-so-far Gini) watchdog."""

    def concentrated(self, rnd):
        # per-round gauge looks fair (reward_gini field untouched) while
        # every unit of budget lands on worker 0 — the run-so-far split
        # is maximally concentrated
        return neutral_event(
            rnd=rnd, rewards={0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0}
        )

    def test_cap_breach_fires_once_and_latches(self):
        eng = engine(warmup_rounds=4, fairness_check_stride=4,
                     cumulative_gini_cap=0.6)
        fired = []
        for r in range(16):
            fired.extend(eng.process(self.concentrated(r)))
        drift = [a for a in fired if a.rule == "fairness-drift"]
        assert len(drift) == 1
        assert drift[0].data["cumulative_gini"] == pytest.approx(0.75)

    def test_balanced_rewards_stay_silent(self):
        eng = engine(warmup_rounds=4, fairness_check_stride=4,
                     cumulative_gini_cap=0.6)
        for r in range(16):
            assert eng.process(neutral_event(rnd=r)) == []

    def test_stride_and_warmup_gate_the_check(self):
        # stride 8, warmup 5: the first possible check is the 8th event
        eng = engine(warmup_rounds=5, fairness_check_stride=8,
                     cumulative_gini_cap=0.6)
        rounds_fired = []
        for r in range(17):
            for a in eng.process(self.concentrated(r)):
                if a.rule == "fairness-drift":
                    rounds_fired.append(r + 1)
        assert rounds_fired == [8]

    def test_default_cap_needs_deep_concentration(self):
        # 4 workers max out at Gini 0.75 < the 0.85 default cap — small
        # cohorts never breach it by construction
        eng = engine(fairness_check_stride=1, warmup_rounds=1)
        for r in range(12):
            assert eng.process(self.concentrated(r)) == []
