"""Tests for the flight recorder (event ring + post-mortem dumps)."""

import json
import math

import pytest

from repro.monitor import Alert, FlightRecorder


def ev(seq, **data):
    return {"v": 1, "seq": seq, "type": "fifl.round", "data": data}


class TestRing:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(ring_size=4)
        for i in range(10):
            rec.record(ev(i))
        assert [e["seq"] for e in rec.ring] == [6, 7, 8, 9]

    def test_rejects_non_positive_ring(self):
        with pytest.raises(ValueError):
            FlightRecorder(ring_size=0)


class TestDump:
    def test_disabled_without_out_dir(self):
        rec = FlightRecorder(ring_size=4, out_dir=None)
        rec.record(ev(1))
        assert rec.dump("alert") is None
        assert rec.dumped_path is None

    def test_dump_writes_header_then_ring(self, tmp_path):
        rec = FlightRecorder(ring_size=4, out_dir=str(tmp_path), run_id="r1")
        for i in range(3):
            rec.record(ev(i, round=i))
        alert = Alert(rule="margin-collapse", kind="anomaly",
                      message="m", seq=2, round=2)
        path = rec.dump("alert", [alert])
        lines = [json.loads(l) for l in open(path, encoding="utf-8")]
        header, body = lines[0], lines[1:]
        assert header["type"] == "postmortem"
        assert header["run"] == "r1"
        assert header["reason"] == "alert"
        assert header["ring_events"] == 3
        assert header["alerts"][0]["rule"] == "margin-collapse"
        assert [e["seq"] for e in body] == [0, 1, 2]

    def test_only_first_dump_is_kept(self, tmp_path):
        rec = FlightRecorder(ring_size=4, out_dir=str(tmp_path), run_id="r1")
        rec.record(ev(1))
        first = rec.dump("alert")
        rec.record(ev(2))
        second = rec.dump("exception: RuntimeError")
        assert second == first
        lines = open(first, encoding="utf-8").read().splitlines()
        assert json.loads(lines[0])["reason"] == "alert"
        assert len(lines) == 2  # header + the single event of the first dump

    def test_unencodable_event_falls_back_to_repr(self, tmp_path):
        # a post-mortem must never fail because the anomaly it captures
        # (here a NaN gauge) is unencodable by the canonical encoder
        rec = FlightRecorder(ring_size=4, out_dir=str(tmp_path), run_id="nan")
        rec.record(ev(1, value=math.nan, payload=object()))
        path = rec.dump("alert")
        body = open(path, encoding="utf-8").read().splitlines()[1]
        decoded = json.loads(body)  # still parseable
        assert math.isnan(decoded["data"]["value"])
        assert decoded["data"]["payload"].startswith("<object object")
