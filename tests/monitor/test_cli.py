"""Tests for ``python -m repro.monitor scan`` (offline replay + watch)."""

import json

import pytest

from repro.monitor.cli import main as monitor_cli
from repro.monitor.cli import read_trace_tolerant


def write_trace(path, events):
    with open(path, "w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev) + "\n")


def clean_event(seq=1, rnd=0):
    return {
        "v": 1, "seq": seq, "type": "fifl.round",
        "data": {"round": rnd, "rep_min": 0.2, "rep_max": 0.8},
    }


def violating_event(seq=2, rnd=0):
    return {
        "v": 1, "seq": seq, "type": "fifl.round",
        "data": {"round": rnd, "rep_min": -3.0, "rep_max": 0.8},
    }


@pytest.fixture
def clean_trace(tmp_path):
    path = tmp_path / "clean.jsonl"
    write_trace(path, [clean_event(seq=i, rnd=i) for i in range(4)])
    return path


@pytest.fixture
def dirty_trace(tmp_path):
    path = tmp_path / "dirty.jsonl"
    write_trace(path, [clean_event(seq=1), violating_event(seq=2)])
    return path


class TestReadTraceTolerant:
    def test_skips_truncated_tail(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text(
            json.dumps(clean_event()) + "\n" + '{"v": 1, "seq": 2, "ty'
        )
        events, bad = read_trace_tolerant(path)
        assert len(events) == 1
        assert bad == 1

    def test_skips_non_object_lines(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('[1, 2]\n' + json.dumps(clean_event()) + "\n\n")
        events, bad = read_trace_tolerant(path)
        assert len(events) == 1
        assert bad == 1


class TestScanExitCodes:
    def test_clean_trace_exits_zero(self, clean_trace, capsys):
        assert monitor_cli(["scan", str(clean_trace), "--strict"]) == 0
        assert "0 alert(s)" in capsys.readouterr().out

    def test_strict_fails_on_alerts(self, dirty_trace, capsys):
        assert monitor_cli(["scan", str(dirty_trace), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "reputation-bounds" in out

    def test_alerts_without_strict_still_exit_zero(self, dirty_trace, capsys):
        assert monitor_cli(["scan", str(dirty_trace)]) == 0
        assert "1 alert(s)" in capsys.readouterr().out

    def test_expect_alerts_passes_on_fault_trace(self, dirty_trace):
        assert monitor_cli(["scan", str(dirty_trace), "--expect-alerts"]) == 0

    def test_expect_alerts_fails_on_clean_trace(self, clean_trace, capsys):
        assert monitor_cli(["scan", str(clean_trace), "--expect-alerts"]) == 1
        assert "expected alerts" in capsys.readouterr().err

    def test_missing_trace_exits_two(self, tmp_path, capsys):
        assert monitor_cli(["scan", str(tmp_path / "no.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_empty_trace_exits_two(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert monitor_cli(["scan", str(path)]) == 2
        assert "no decodable events" in capsys.readouterr().err

    def test_truncated_tail_tolerated_with_warning(self, tmp_path, capsys):
        path = tmp_path / "cut.jsonl"
        path.write_text(json.dumps(clean_event()) + "\n" + '{"bro')
        assert monitor_cli(["scan", str(path), "--strict"]) == 0
        assert "skipped 1 undecodable line" in capsys.readouterr().err


class TestScanOutputs:
    def test_json_mode_is_machine_readable(self, dirty_trace, capsys):
        assert monitor_cli(["scan", str(dirty_trace), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["events"] == 2
        assert [a["rule"] for a in report["alerts"]] == ["reputation-bounds"]
        assert report["alerts"][0]["seq"] == 2

    def test_postmortem_written_on_alerts(self, dirty_trace, tmp_path, capsys):
        out_dir = tmp_path / "dumps"
        assert monitor_cli([
            "scan", str(dirty_trace), "--postmortem", str(out_dir),
        ]) == 0
        dump = out_dir / "postmortem-dirty.jsonl"  # run id = trace stem
        assert dump.exists()
        header = json.loads(dump.read_text().splitlines()[0])
        assert header["reason"] == "scan"
        assert header["alerts"][0]["rule"] == "reputation-bounds"
        assert "postmortem:" in capsys.readouterr().err

    def test_no_postmortem_on_clean_trace(self, clean_trace, tmp_path):
        out_dir = tmp_path / "dumps"
        monitor_cli(["scan", str(clean_trace), "--postmortem", str(out_dir)])
        assert not out_dir.exists()

    def test_run_id_overrides_dump_name(self, dirty_trace, tmp_path):
        out_dir = tmp_path / "dumps"
        monitor_cli([
            "scan", str(dirty_trace), "--postmortem", str(out_dir),
            "--run-id", "ci-night",
        ])
        assert (out_dir / "postmortem-ci-night.jsonl").exists()


class TestWatchMode:
    def test_watch_drains_existing_trace_and_idle_exits(self, dirty_trace,
                                                        capsys):
        rc = monitor_cli([
            "scan", str(dirty_trace), "--watch",
            "--poll", "0.01", "--idle-exit", "0.05",
        ])
        err = capsys.readouterr().err
        assert rc == 0  # not strict: alerts are reported, not fatal
        assert "ALERT [invariant] reputation-bounds" in err
        assert "watch: 1 alert(s)" in err

    def test_watch_strict_exits_one_on_alert(self, dirty_trace, capsys):
        rc = monitor_cli([
            "scan", str(dirty_trace), "--watch", "--strict",
            "--poll", "0.01", "--idle-exit", "0.05",
        ])
        assert rc == 1

    def test_watch_missing_file_exits_two(self, tmp_path, capsys):
        rc = monitor_cli([
            "scan", str(tmp_path / "nope.jsonl"), "--watch",
            "--idle-exit", "0.05",
        ])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_watch_ignores_partial_final_line(self, tmp_path, capsys):
        path = tmp_path / "grow.jsonl"
        path.write_text(json.dumps(clean_event()) + "\n" + '{"half')
        rc = monitor_cli([
            "scan", str(path), "--watch",
            "--poll", "0.01", "--idle-exit", "0.05",
        ])
        assert rc == 0
        assert "watch: 0 alert(s)" in capsys.readouterr().err
