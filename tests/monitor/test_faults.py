"""Fault-injection end-to-end tests.

Each alarm must demonstrably fire under its fault — tampered ledger,
churn, a hand-broken reward vector — and stay silent on clean seeded
figure configs. The sign-flip → margin-collapse pairing lives in
``test_monitor.py`` next to the offline/online differential.
"""

import json
from contextlib import contextmanager

import pytest

from repro.monitor import Monitor, MonitorConfig, scan_events
from repro.telemetry import MemorySink, Telemetry, TickClock, set_telemetry
from repro.telemetry.sinks import encode_event

GAMMA = 0.2


@contextmanager
def monitored_hub(config=None):
    """Fresh deterministic hub with a monitor sink installed."""
    tele = Telemetry(sinks=[MemorySink()], clock=TickClock())
    monitor = Monitor(config or MonitorConfig()).install(tele)
    previous = set_telemetry(tele)
    try:
        yield tele, monitor
    finally:
        tele.close()
        monitor.uninstall()
        set_telemetry(previous)


def rules_fired(monitor):
    return {a.rule for a in monitor.alerts}


class TestLedgerCommitEvents:
    def test_append_emits_linked_commit_events(self):
        from repro.ledger import Blockchain

        with monitored_hub() as (tele, monitor):
            chain = Blockchain()
            for t in range(3):
                chain.append(
                    {"round": t, "accepted": {0: True}, "reputations": {0: 0.5}},
                    signer="server-A",
                )
            tele.flush()
            commits = [
                ev for ev in tele.events() if ev["type"] == "ledger.commit"
            ]
        assert [ev["data"]["index"] for ev in commits] == [0, 1, 2]
        assert [ev["data"]["round"] for ev in commits] == [0, 1, 2]
        # the hash chain is visible in the event stream itself
        assert commits[1]["data"]["prev_hash"] == commits[0]["data"]["hash"]
        assert commits[2]["data"]["prev_hash"] == commits[1]["data"]["hash"]
        # a well-linked chain keeps the ledger-chain watchdog silent
        assert monitor.ok


class TestTamperedLedgerAudit:
    def _build_chain(self, outcomes_per_round, signer="server-A"):
        from repro.core import DecayReputation
        from repro.ledger import Blockchain

        chain = Blockchain()
        rep = DecayReputation(gamma=GAMMA)
        for t, outcomes in enumerate(outcomes_per_round):
            reps = rep.update_all(outcomes)
            chain.append(
                {"round": t, "accepted": outcomes, "reputations": reps},
                signer=signer,
            )
        return chain

    def test_rewritten_reputation_trips_audit_alert(self):
        from repro.ledger import Blockchain, audit_reputation

        honest = self._build_chain(
            [{0: False}, {0: False}, {0: False}], signer="evil-server"
        )
        boosted = {**honest[1].payload, "reputations": {"0": 0.95}}
        with monitored_hub() as (tele, monitor):
            evil = Blockchain()
            evil.append(honest[0].payload, signer="evil-server")
            evil.append(boosted, signer="evil-server")
            evil.append(honest[2].payload, signer="evil-server")
            assert evil.is_intact()  # signatures fine — only replay catches it
            report = audit_reputation(evil, worker=0, gamma=GAMMA)
            tele.flush()
        assert not report.clean
        assert "ledger-audit" in rules_fired(monitor)
        alert = next(a for a in monitor.alerts if a.rule == "ledger-audit")
        assert alert.data["findings"]
        assert alert.data["findings"][0]["signer"] == "evil-server"

    def test_clean_audit_stays_silent(self):
        from repro.ledger import audit_reputation

        chain = self._build_chain([{0: True}, {0: False}, {0: True}])
        with monitored_hub() as (tele, monitor):
            report = audit_reputation(chain, worker=0, gamma=GAMMA)
            tele.flush()
        assert report.clean
        assert monitor.ok


class TestChurnSlo:
    def test_churn_scenario_trips_slo_alert(self):
        from repro.experiments.sim_churn import default_config as churn_config
        from repro.experiments.sim_churn import run as churn_run

        with monitored_hub() as (tele, monitor):
            churn_run(
                churn_config().scaled(
                    rounds=6, eval_every=6,
                    samples_per_worker=40, test_samples=50,
                )
            )
            tele.flush()
            degraded = [
                ev for ev in tele.events()
                if ev["type"] == "sim.round"
                and (ev["data"].get("late") or ev["data"].get("offline"))
            ]
        # the scenario really does degrade rounds, and the SLO rate
        # detector turns that into an alert
        assert degraded
        assert "slo-degraded" in rules_fired(monitor)
        # the fault never corrupts the comm accounting
        assert "comm-accounting" not in rules_fired(monitor)


class TestBrokenRewardVector:
    @pytest.fixture(scope="class")
    def clean_events(self):
        """JSON-replay spelling of a tiny clean federated run's trace."""
        from repro.experiments.common import run_federated
        from repro.experiments.fig09_detection import _default_fed

        tele = Telemetry(sinks=[MemorySink()], clock=TickClock())
        previous = set_telemetry(tele)
        try:
            run_federated(
                _default_fed().scaled(
                    rounds=6, num_workers=6,
                    samples_per_worker=40, test_samples=50,
                ),
                with_fifl=True,
            )
        finally:
            tele.close()
            set_telemetry(previous)
        return [json.loads(encode_event(ev)) for ev in tele.events()]

    def test_unmodified_trace_is_silent(self, clean_events):
        assert scan_events(clean_events) == []

    def test_scaled_rewards_break_budget_conservation(self, clean_events):
        broken = json.loads(json.dumps(clean_events))
        tampered = 0
        for ev in broken:
            if ev["type"] != "fifl.round":
                continue
            rewards = ev["data"]["rewards"]
            if any(v > 0 for v in rewards.values()):
                ev["data"]["rewards"] = {
                    w: 10.0 * v for w, v in rewards.items()
                }
                tampered += 1
        assert tampered > 0
        alerts = scan_events(broken)
        rules = {a.rule for a in alerts}
        assert "budget-conservation" in rules
        first = next(a for a in alerts if a.rule == "budget-conservation")
        assert first.kind == "invariant"
        assert first.data["budget"] == pytest.approx(
            next(
                ev["data"]["budget"] for ev in broken
                if ev["type"] == "fifl.round"
            )
        )


class TestCleanFigureConfigs:
    def test_fig11_config_without_attackers_is_silent(self):
        # fig09's clean config is the test_monitor.py module fixture;
        # this covers the other seeded figure config from the checklist
        from repro.experiments.common import run_federated
        from repro.experiments.fig11_reputation import default_config

        cfg = default_config().scaled(
            rounds=10, num_workers=6, samples_per_worker=40,
            test_samples=50, eval_every=10,
        )
        with monitored_hub() as (tele, monitor):
            run_federated(cfg, with_fifl=True)
            tele.flush()
        assert monitor.ok, [a.to_dict() for a in monitor.alerts]
