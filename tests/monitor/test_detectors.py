"""Unit tests for the streaming anomaly detectors."""

import math

import pytest

from repro.monitor import EwmaDetector, RateWindow


class TestEwmaDetector:
    def test_silent_during_warmup(self):
        det = EwmaDetector(warmup=5, z_threshold=2.0, min_std=0.01)
        # even a wild swing inside the warmup window stays silent
        assert [det.update(x) for x in (1.0, 1.0, 1.0, 1.0, -50.0)] == [None] * 5

    def test_fires_down_on_collapse(self):
        det = EwmaDetector(
            alpha=0.25, z_threshold=4.0, warmup=5, min_std=0.05,
            direction="down",
        )
        for _ in range(10):
            assert det.update(1.0) is None
        z = det.update(-5.0)
        assert z is not None and z < -4.0

    def test_down_detector_ignores_up_moves(self):
        det = EwmaDetector(warmup=3, min_std=0.05, direction="down")
        for _ in range(5):
            det.update(0.0)
        assert det.update(100.0) is None

    def test_up_detector_fires_on_spike(self):
        det = EwmaDetector(warmup=3, min_std=0.05, direction="up")
        for _ in range(5):
            det.update(0.0)
        z = det.update(10.0)
        assert z is not None and z > 0

    def test_firing_observation_not_folded_into_state(self):
        det = EwmaDetector(warmup=3, min_std=0.05, direction="down")
        for _ in range(5):
            det.update(1.0)
        first = det.update(-10.0)
        second = det.update(-10.0)
        # the outlier must not drag the baseline toward itself: the same
        # collapsed value fires again with the same z-score
        assert first is not None and second == pytest.approx(first)

    def test_min_std_floors_jitter(self):
        det = EwmaDetector(warmup=3, z_threshold=4.0, min_std=0.5)
        for _ in range(10):
            det.update(0.0)
        # a 1.0 swing is only 2 sigma under the floored std
        assert det.update(-1.0) is None

    def test_non_finite_observations_are_ignored(self):
        det = EwmaDetector(warmup=2)
        det.update(1.0)
        assert det.update(float("nan")) is None
        assert det.update(math.inf) is None
        assert det.n == 1  # not folded

    def test_deterministic_replay(self):
        series = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95, -4.0, 1.0, -4.0]

        def run():
            det = EwmaDetector(warmup=4, min_std=0.05, direction="down")
            return [det.update(x) for x in series]

        assert run() == run()

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaDetector(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaDetector(direction="sideways")


class TestRateWindow:
    def test_silent_below_min_count(self):
        win = RateWindow(window=8, min_count=4, max_frac=0.25)
        assert win.update(True) is None
        assert win.update(True) is None
        assert win.update(True) is None

    def test_fires_when_fraction_exceeded(self):
        win = RateWindow(window=8, min_count=4, max_frac=0.25)
        for flag in (False, False, True):
            win.update(flag)
        frac = win.update(True)  # 2/4 degraded > 0.25
        assert frac == pytest.approx(0.5)

    def test_old_outcomes_slide_out(self):
        win = RateWindow(window=4, min_count=4, max_frac=0.5)
        for flag in (True, True, True, True):
            win.update(flag)
        # four healthy rounds push the degraded ones out of the window
        results = [win.update(False) for _ in range(4)]
        assert results[-1] is None

    def test_validates_window(self):
        with pytest.raises(ValueError):
            RateWindow(window=0)
