"""Tests for benchmarks/collect.py (the perf-trajectory tool).

The tool is a standalone script, not part of the ``repro`` package, so
it is loaded from its file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

COLLECT_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "collect.py"
)


def _load_collect():
    spec = importlib.util.spec_from_file_location("collect", COLLECT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


collect = _load_collect()


def engine_manifest(speedup=2.0, kernels=3.0, overhead=1.0):
    return {
        "by_size": {
            "16": {"speedup_total": 1.1, "speedup_kernels": 1.2},
            "256": {"speedup_total": speedup, "speedup_kernels": kernels},
        },
        "monitor_overhead": {"overhead_pct": overhead},
    }


def sim_manifest(overhead=0.1, identical=True):
    return {"overhead_pct": overhead, "bitwise_identical": identical}


def perf_manifest(p50=0.0014, top_phase="trainer.upload", valid=True,
                  identical=True, diff_zero=True):
    return {
        "p50_round_wall_s": p50, "top_phase": top_phase,
        "perfetto_valid": valid, "probe_trace_identical": identical,
        "diff_zero": diff_zero,
    }


@pytest.fixture
def bench_dir(tmp_path):
    d = tmp_path / "benchmarks"
    d.mkdir()
    (d / "BENCH_engine.json").write_text(json.dumps(engine_manifest()))
    (d / "BENCH_sim.json").write_text(json.dumps(sim_manifest()))
    return d


@pytest.fixture
def trajectory(tmp_path):
    return tmp_path / "BENCH_trajectory.json"


class TestCollectCurrent:
    def test_extracts_headlines_at_largest_size(self, bench_dir):
        current = collect.collect_current(bench_dir)
        assert set(current) == {"engine", "sim"}
        engine = current["engine"]
        assert engine["speedup_total_n256"]["value"] == 2.0
        assert engine["monitor_overhead_pct"]["better"] == "lower"
        assert current["sim"]["bitwise_identical"]["better"] == "exact"

    def test_unknown_manifest_skipped_with_notice(self, bench_dir, capsys):
        (bench_dir / "BENCH_mystery.json").write_text("{}")
        current = collect.collect_current(bench_dir)
        assert "mystery" not in current
        assert "no extractor for BENCH_mystery.json" in capsys.readouterr().err


class TestRecord:
    def test_record_appends_then_replaces_same_label(self, bench_dir,
                                                     trajectory):
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        (bench_dir / "BENCH_engine.json").write_text(
            json.dumps(engine_manifest(speedup=2.5))
        )
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        traj = json.loads(trajectory.read_text())
        rows = traj["benches"]["engine"]
        assert len(rows) == 1  # replaced in place, not duplicated
        assert rows[0]["metrics"]["speedup_total_n256"]["value"] == 2.5

    def test_distinct_labels_accumulate(self, bench_dir, trajectory):
        collect.record("PR4", path=trajectory, bench_dir=bench_dir)
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        rows = json.loads(trajectory.read_text())["benches"]["engine"]
        assert [r["label"] for r in rows] == ["PR4", "PR5"]


class TestStaleRows:
    def test_carried_forward_row_marked_stale(self, bench_dir, trajectory):
        # identical metrics across labels = the bench was not re-run
        collect.record("PR4", path=trajectory, bench_dir=bench_dir)
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        rows = json.loads(trajectory.read_text())["benches"]["engine"]
        assert "stale" not in rows[0]
        assert rows[1]["stale"] is True

    def test_fresh_rerun_clears_the_mark(self, bench_dir, trajectory):
        collect.record("PR4", path=trajectory, bench_dir=bench_dir)
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        (bench_dir / "BENCH_engine.json").write_text(
            json.dumps(engine_manifest(speedup=2.1))
        )
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        rows = json.loads(trajectory.read_text())["benches"]["engine"]
        assert "stale" not in rows[1]

    def test_check_baseline_skips_stale_rows(self, bench_dir, trajectory):
        # PR4 records a fresh 2.0x; PR5 carries it forward (stale); the
        # baseline for --check must still be the fresh PR4 measurement
        collect.record("PR4", path=trajectory, bench_dir=bench_dir)
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        traj = json.loads(trajectory.read_text())
        rows = traj["benches"]["engine"]
        assert rows[1]["stale"] is True
        # sanity-check the selection: poison the stale row's value so
        # using it as baseline would flag the (unchanged) current state
        rows[1]["metrics"]["speedup_total_n256"]["value"] = 99.0
        trajectory.write_text(json.dumps(traj))
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []

    def test_show_renders_stale_marker(self, bench_dir, trajectory):
        collect.record("PR4", path=trajectory, bench_dir=bench_dir)
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        lines = collect.show(path=trajectory)
        assert any("PR5" in l and "[stale: carried forward]" in l
                   for l in lines)
        assert not any("PR4" in l and "stale" in l for l in lines)


class TestCheck:
    def test_passes_when_unchanged(self, bench_dir, trajectory):
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []

    def test_small_wobble_within_tolerance(self, bench_dir, trajectory):
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        (bench_dir / "BENCH_engine.json").write_text(
            json.dumps(engine_manifest(speedup=1.9))  # -5% on a 20% budget
        )
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []

    def test_degraded_speedup_flagged(self, bench_dir, trajectory):
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        (bench_dir / "BENCH_engine.json").write_text(
            json.dumps(engine_manifest(speedup=1.0))  # -50%
        )
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert len(problems) == 1
        assert "engine.speedup_total_n256" in problems[0]
        assert "fell below" in problems[0]

    def test_overhead_rise_flagged_beyond_abs_slack(self, bench_dir,
                                                    trajectory):
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        (bench_dir / "BENCH_engine.json").write_text(
            json.dumps(engine_manifest(overhead=4.5))  # 1% -> 4.5%
        )
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert any("monitor_overhead_pct" in p and "rose above" in p
                   for p in problems)

    def test_overhead_jitter_inside_abs_slack_passes(self, bench_dir,
                                                     trajectory):
        # 1% -> 2.5% is 150% relative, but within the 2-point absolute
        # slack for near-zero percentage metrics
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        (bench_dir / "BENCH_engine.json").write_text(
            json.dumps(engine_manifest(overhead=2.5))
        )
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []

    def test_bitwise_flip_is_exact_failure(self, bench_dir, trajectory):
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        (bench_dir / "BENCH_sim.json").write_text(
            json.dumps(sim_manifest(identical=False))
        )
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert any("bitwise_identical" in p for p in problems)

    def test_missing_row_reported(self, bench_dir, trajectory):
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert any("no recorded trajectory row" in p for p in problems)

    def test_new_metric_without_baseline_is_not_a_regression(self, bench_dir,
                                                             trajectory):
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        traj = json.loads(trajectory.read_text())
        del traj["benches"]["engine"][0]["metrics"]["monitor_overhead_pct"]
        trajectory.write_text(json.dumps(traj))
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []


class TestPerfHeadlines:
    def write_perf(self, bench_dir, **kw):
        (bench_dir / "BENCH_perf.json").write_text(
            json.dumps(perf_manifest(**kw))
        )

    def test_extractor_shapes_the_row(self):
        row = collect.extract_perf(perf_manifest())
        assert row["p50_round_wall_s"]["better"] == "lower"
        assert row["p50_round_wall_s"]["unit"] == "seconds"
        assert row["top_phase"]["better"] == "none"
        assert row["diff_zero"]["better"] == "exact"

    def test_round_time_jitter_inside_abs_slack_passes(self, bench_dir,
                                                       trajectory):
        # 1.4 ms -> 4 ms is ~186% relative, but under the 5 ms absolute
        # slack for sub-millisecond wall-time metrics on shared machines
        self.write_perf(bench_dir)
        collect.record("PR8", path=trajectory, bench_dir=bench_dir)
        self.write_perf(bench_dir, p50=0.004)
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []

    def test_gross_round_time_regression_flagged(self, bench_dir, trajectory):
        self.write_perf(bench_dir)
        collect.record("PR8", path=trajectory, bench_dir=bench_dir)
        self.write_perf(bench_dir, p50=0.05)  # 1.4 ms -> 50 ms
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert any("perf.p50_round_wall_s" in p and "rose above" in p
                   for p in problems)

    def test_top_phase_shift_is_informational_not_gated(self, bench_dir,
                                                        trajectory):
        self.write_perf(bench_dir, top_phase="trainer.upload")
        collect.record("PR8", path=trajectory, bench_dir=bench_dir)
        self.write_perf(bench_dir, top_phase="trainer.mechanism")
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []
        # but the shift is recorded in the trajectory for attribution
        collect.record("PR9", path=trajectory, bench_dir=bench_dir)
        rows = json.loads(trajectory.read_text())["benches"]["perf"]
        assert [r["metrics"]["top_phase"]["value"] for r in rows] == [
            "trainer.upload", "trainer.mechanism",
        ]

    def test_contract_flip_is_exact_failure(self, bench_dir, trajectory):
        self.write_perf(bench_dir)
        collect.record("PR8", path=trajectory, bench_dir=bench_dir)
        self.write_perf(bench_dir, identical=False)
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert any("probe_trace_identical" in p for p in problems)


def service_manifest(rps=300.0, overhead=0.2, identical=True, alerts=0):
    return {
        "rounds_per_sec": rps, "snapshot_overhead_pct": overhead,
        "resume_identical": identical, "trace_identical": identical,
        "roundtrip_ok": True, "rss_growth_alerts": alerts,
    }


class TestServiceHeadlines:
    def write_service(self, bench_dir, **kw):
        (bench_dir / "BENCH_service.json").write_text(
            json.dumps(service_manifest(**kw))
        )

    def test_extractor_shapes_the_row(self):
        row = collect.extract_service(service_manifest())
        assert row["rounds_per_sec"]["better"] == "higher"
        assert row["snapshot_overhead_pct"]["unit"] == "pct"
        assert row["resume_identical"]["better"] == "exact"
        assert row["rss_growth_alerts"]["better"] == "exact"

    def test_identity_flip_is_exact_failure(self, bench_dir, trajectory):
        self.write_service(bench_dir)
        collect.record("PR9", path=trajectory, bench_dir=bench_dir)
        self.write_service(bench_dir, identical=False)
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert any("service.resume_identical" in p for p in problems)

    def test_overhead_jitter_inside_abs_slack_passes(self, bench_dir,
                                                     trajectory):
        # sub-1% overhead wobbles are jitter, not regressions
        self.write_service(bench_dir)
        collect.record("PR9", path=trajectory, bench_dir=bench_dir)
        self.write_service(bench_dir, overhead=1.5)
        assert collect.check(path=trajectory, bench_dir=bench_dir) == []

    def test_new_rss_alert_is_exact_failure(self, bench_dir, trajectory):
        self.write_service(bench_dir)
        collect.record("PR9", path=trajectory, bench_dir=bench_dir)
        self.write_service(bench_dir, alerts=2)
        problems = collect.check(path=trajectory, bench_dir=bench_dir)
        assert any("rss_growth_alerts" in p for p in problems)


class TestAtomicWrite:
    def test_record_leaves_no_temp_file(self, bench_dir, trajectory):
        collect.record("PR9", path=trajectory, bench_dir=bench_dir)
        assert trajectory.exists()
        leftovers = [
            p for p in trajectory.parent.iterdir() if p.name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_record_replaces_not_truncates(self, bench_dir, trajectory,
                                           monkeypatch):
        """A crash mid-record must leave the previous trajectory intact."""
        collect.record("PR8", path=trajectory, bench_dir=bench_dir)
        before = trajectory.read_text()

        def boom(tmp, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(collect.os, "replace", boom)
        with pytest.raises(OSError):
            collect.record("PR9", path=trajectory, bench_dir=bench_dir)
        # the published file still holds the pre-crash contents
        assert trajectory.read_text() == before


class TestShow:
    def test_renders_one_line_per_row(self, bench_dir, trajectory):
        collect.record("PR4", path=trajectory, bench_dir=bench_dir)
        collect.record("PR5", path=trajectory, bench_dir=bench_dir)
        lines = collect.show(path=trajectory)
        assert "=== engine" in lines
        assert sum(1 for l in lines if l.strip().startswith("PR")) == 4


class TestRepoTrajectory:
    def test_committed_trajectory_matches_committed_manifests(self):
        # the real CI gate: the repo's own BENCH_trajectory.json must be
        # consistent with the manifests checked in next to it
        assert collect.check() == []
