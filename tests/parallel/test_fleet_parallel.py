"""Differential: parallel training is byte-identical to the serial oracle.

These are the tentpole's acceptance tests. Every backend x worker-count
combination must reproduce the serial run *exactly* — losses, accuracy,
gradient norms, accept verdicts, rewards, reputations — on both a
fig09-style sign-flip federation and a fig11-style probabilistic-attack
federation, because the ordered-reduce + parent-side-RNG design promises
bitwise equality, not closeness.
"""

import pytest

from repro.experiments.common import (
    FedExpConfig,
    probabilistic,
    run_federated,
    sign_flip,
)
from repro.fl import FederatedTrainer
from repro.monitor import Monitor, MonitorConfig
from repro.population import WorkerPopulation
from tests.helpers import make_federation, model_fn

BASE = FedExpConfig(
    dataset="blobs",
    num_workers=12,
    samples_per_worker=50,
    test_samples=80,
    rounds=4,
    eval_every=1,
    batch_size=16,
)

#: fig09 shape: fixed-intensity sign-flippers
FIG09_ATTACK = {2: sign_flip(4.0), 3: sign_flip(4.0)}
#: fig11 shape: a sometimes-honest probabilistic attacker
FIG11_ATTACK = {4: probabilistic(0.5, 4.0)}

GRID = [
    (backend, mw) for backend in ("thread", "process") for mw in (1, 2, 4)
]


def fingerprint(cfg, attackers):
    history, _ = run_federated(cfg, attackers=attackers, with_fifl=True)
    return [
        (
            r.round_idx,
            r.test_loss,
            r.test_acc,
            r.grad_norm,
            tuple(sorted(r.accepted.items())),
            tuple(sorted(r.uncertain)),
            tuple(sorted(r.mechanism_records.get("rewards", {}).items())),
            tuple(sorted(r.mechanism_records.get("reputations", {}).items())),
        )
        for r in history.rounds
    ]


@pytest.fixture(scope="module")
def serial_fig09():
    return fingerprint(BASE, FIG09_ATTACK)


@pytest.fixture(scope="module")
def serial_fig11():
    return fingerprint(BASE, FIG11_ATTACK)


class TestByteIdentity:
    @pytest.mark.parametrize("backend,mw", GRID)
    def test_fig09_history_matches_serial(self, serial_fig09, backend, mw):
        got = fingerprint(
            BASE.scaled(backend=backend, max_workers=mw), FIG09_ATTACK
        )
        assert got == serial_fig09

    @pytest.mark.parametrize("backend,mw", GRID)
    def test_fig11_history_matches_serial(self, serial_fig11, backend, mw):
        got = fingerprint(
            BASE.scaled(backend=backend, max_workers=mw), FIG11_ATTACK
        )
        assert got == serial_fig11


def _make_trainer(num_workers=16, backend="thread", max_workers=2, monitor=None):
    workers, _, test = make_federation(num_workers=num_workers)
    return FederatedTrainer(
        model_fn(0)(),
        population=WorkerPopulation.from_workers(workers),
        server_ranks=[0, 1],
        test_data=test,
        seed=0,
        backend=backend,
        max_workers=max_workers,
        monitor=monitor,
    )


class TestShardCrash:
    def test_crash_surfaces_original_and_dumps_postmortem(
        self, tmp_path, monkeypatch
    ):
        """A shard task that raises must not be swallowed by the pool:
        the trainer re-raises the original exception and the monitor's
        flight recorder still writes its crash post-mortem."""
        from repro.fl.fleet_compute import FleetLocalEngine

        def exploding(self, group, theta, global_buffers, updates, prof=None):
            raise RuntimeError("boom in shard")

        monkeypatch.setattr(FleetLocalEngine, "_run_group", exploding)
        monitor = Monitor(
            MonitorConfig(postmortem_dir=str(tmp_path), run_id="crash")
        )
        trainer = _make_trainer(monitor=monitor)
        with pytest.raises(RuntimeError, match="boom in shard"):
            trainer.run(2)
        assert list(tmp_path.glob("postmortem-*.jsonl"))

    def test_clean_run_writes_no_postmortem(self, tmp_path):
        monitor = Monitor(
            MonitorConfig(postmortem_dir=str(tmp_path), run_id="clean")
        )
        trainer = _make_trainer(monitor=monitor)
        trainer.run(2)
        assert not list(tmp_path.glob("postmortem-*.jsonl"))


class TestTelemetry:
    def test_parallel_events_emitted(self):
        from repro.profiling import Profiler

        trainer = _make_trainer()
        trainer.profiler = Profiler()
        trainer.run(2)
        snap = trainer.profiler.snapshot()
        assert snap["counters"].get("parallel.dispatches", 0) > 0
        metrics = trainer.profiler.metrics_snapshot()
        assert metrics["gauges"]["parallel.pool_size"] == 2

    def test_serial_emits_no_parallel_events(self):
        from repro.profiling import Profiler

        trainer = _make_trainer(backend="serial", max_workers=None)
        trainer.profiler = Profiler()
        trainer.run(2)
        snap = trainer.profiler.snapshot()
        assert snap["counters"].get("parallel.dispatches", 0) == 0
