"""Sharded round kernels, mechanism pool plumbing, and the straggler rule."""

import numpy as np
import pytest

from repro.core import make_mechanism
from repro.core.fifl import FIFLConfig
from repro.fl.gradients import split_gradient
from repro.fl.trainer import RoundContext
from repro.fl.workers import WorkerUpdate
from repro.monitor.alerts import MonitorConfig
from repro.monitor.rules import RuleEngine
from repro.parallel import make_backend

NUM_WORKERS = 24
DIM = 256
NUM_SERVERS = 3


def make_round(round_idx: int, seed: int = 0) -> RoundContext:
    """Synthetic round with honest-ish and deviating uploads mixed in."""
    rng = np.random.default_rng(seed * 7919 + round_idx)
    server_ranks = list(range(NUM_SERVERS))
    honest = rng.standard_normal(DIM)
    updates, slices = {}, {}
    for wid in range(NUM_WORKERS):
        noise = rng.standard_normal(DIM)
        grad = honest + 0.3 * noise if wid % 5 else -2.0 * honest + noise
        updates[wid] = WorkerUpdate(worker_id=wid, gradient=grad, num_samples=100)
        parts = split_gradient(grad, NUM_SERVERS)
        slices[wid] = {srv: parts[j] for j, srv in enumerate(server_ranks)}
    return RoundContext(
        round_idx=round_idx,
        global_params=np.zeros(DIM),
        server_ranks=server_ranks,
        slices=slices,
        updates=updates,
        uncertain=set(),
        sample_counts={w: 100 for w in range(NUM_WORKERS)},
    )


def run_rounds(mech, rounds=3, seed=0):
    decisions = []
    for t in range(rounds):
        d = mech.process_round(make_round(t, seed=seed))
        decisions.append(
            (
                tuple(sorted(d.accept.items())),
                tuple(sorted(d.records.get("rewards", {}).items())),
                tuple(sorted(d.records.get("reputations", {}).items())),
            )
        )
    return decisions


class TestShardedKernels:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("mw", [1, 2, 4])
    def test_mechanism_byte_identical_to_serial(self, backend, mw):
        serial = run_rounds(make_mechanism("fifl", threshold=0.0))
        parallel = run_rounds(
            make_mechanism(
                "fifl", threshold=0.0, backend=backend, max_workers=mw
            )
        )
        assert parallel == serial

    def test_attach_backend_adopts_only_when_serial(self):
        shared = make_backend("thread", max_workers=2)
        try:
            mech = make_mechanism("fifl", threshold=0.0)
            mech.attach_backend(shared)
            assert mech._active_backend() is shared

            own = make_mechanism(
                "fifl", threshold=0.0, backend="thread", max_workers=2
            )
            own.attach_backend(shared)
            private = own._active_backend()
            assert private is not shared
            private.close()
        finally:
            shared.close()

    def test_adopted_pool_matches_serial(self):
        shared = make_backend("thread", max_workers=2)
        try:
            serial = run_rounds(make_mechanism("fifl", threshold=0.0))
            mech = make_mechanism("fifl", threshold=0.0)
            mech.attach_backend(shared)
            assert run_rounds(mech) == serial
        finally:
            shared.close()


class TestConfigValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            FIFLConfig(backend="gpu")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            FIFLConfig(max_workers=0)


def _round_event(shard_s, phase="local_compute", backend="thread"):
    ordered = sorted(shard_s)
    mid = len(ordered) // 2
    median = (
        ordered[mid] if len(ordered) % 2
        else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    return {
        "type": "parallel.round",
        "seq": 7,
        "data": {
            "phase": phase,
            "backend": backend,
            "pool_size": len(shard_s),
            "shards": len(shard_s),
            "shard_s": list(shard_s),
            "queue_wait_s": [0.0] * len(shard_s),
            "max_shard_s": max(shard_s),
            "median_shard_s": median,
        },
    }


class TestShardStragglerRule:
    def test_fires_on_straggling_shard(self):
        engine = RuleEngine(MonitorConfig())
        alerts = engine.process(_round_event([0.01, 0.012, 0.011, 0.5]))
        assert [a.rule for a in alerts] == ["shard-straggler"]
        assert alerts[0].kind == "anomaly"
        assert alerts[0].data["shard"] == 3
        assert alerts[0].data["backend"] == "thread"

    def test_balanced_dispatch_is_silent(self):
        engine = RuleEngine(MonitorConfig())
        assert not engine.process(_round_event([0.1, 0.11, 0.09, 0.105]))

    def test_micro_dispatch_jitter_is_silent(self):
        # a 20x imbalance below the absolute floor is scheduler noise
        engine = RuleEngine(MonitorConfig())
        assert not engine.process(_round_event([0.0001, 0.0001, 0.002]))

    def test_stateless_across_events(self):
        # pure function of each event: a straggler then a clean dispatch
        engine = RuleEngine(MonitorConfig())
        assert engine.process(_round_event([0.01, 0.011, 0.6]))
        assert not engine.process(_round_event([0.1, 0.11, 0.105]))
