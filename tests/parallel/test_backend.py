"""Execution-backend contract tests: ordered reduce, stats, crash paths.

The process-pool tasks below are module-level functions on purpose —
pickle serializes functions by reference, so anything shipped to a slot
process must be importable by name.
"""

import time

import numpy as np
import pytest

from repro.parallel import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ShardCrash,
    auto_workers,
    emit_parallel_telemetry,
    make_backend,
)
from repro.telemetry import MemorySink, Telemetry


def _square(x):
    return x * x


def _add(a, b=0):
    return a + b


def _boom():
    raise ValueError("shard exploded")


def _slow_square(x):
    # task 0 deliberately finishes last, exposing any as-completed reduce
    time.sleep(0.05 if x == 0 else 0.0)
    return x * x


@pytest.fixture(params=BACKENDS)
def backend(request):
    b = make_backend(request.param, max_workers=2)
    yield b
    b.close()


class TestOrderedReduce:
    def test_results_in_task_order(self, backend):
        assert backend.map(_square, [(i,) for i in range(17)]) == [
            i * i for i in range(17)
        ]

    def test_order_independent_of_finish_time(self, backend):
        assert backend.map(_slow_square, [(i,) for i in range(6)]) == [
            i * i for i in range(6)
        ]

    def test_kwargs_task_form(self, backend):
        assert backend.run([(_add, (2,), {"b": 3})]) == [5]

    def test_empty_run(self, backend):
        assert backend.run([]) == []
        assert backend.last_stats == []

    def test_numpy_payloads_round_trip(self, backend):
        arrays = [np.full((3, 2), float(i)) for i in range(5)]
        for a, r in zip(arrays, backend.map(np.negative, [(a,) for a in arrays])):
            np.testing.assert_array_equal(r, -a)

    def test_persistent_across_dispatches(self, backend):
        for _ in range(3):
            assert backend.map(_square, [(i,) for i in range(5)]) == [
                0, 1, 4, 9, 16,
            ]


class TestStats:
    def test_one_stat_per_task(self, backend):
        backend.map(_square, [(i,) for i in range(7)])
        assert len(backend.last_stats) == 7
        for s in backend.last_stats:
            assert s["queue_wait_s"] >= 0.0
            assert s["run_s"] >= 0.0

    def test_telemetry_event_shape(self, backend):
        sink = MemorySink()
        hub = Telemetry(sinks=[sink])
        backend.map(_square, [(i,) for i in range(4)])
        emit_parallel_telemetry(hub, "unit.phase", backend)
        hub.flush()
        rounds = [e for e in sink.events if e.get("type") == "parallel.round"]
        assert len(rounds) == 1
        data = rounds[0]["data"]
        assert data["phase"] == "unit.phase"
        assert data["backend"] == backend.name
        assert data["shards"] == 4
        assert len(data["shard_s"]) == 4
        assert data["max_shard_s"] == max(data["shard_s"])

    def test_telemetry_noop_when_disabled(self, backend):
        backend.map(_square, [(1,)])
        emit_parallel_telemetry(Telemetry(enabled=False), "p", backend)
        emit_parallel_telemetry(None, "p", backend)


class TestCrash:
    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_inline_backends_reraise_original(self, name):
        b = make_backend(name, max_workers=2)
        try:
            with pytest.raises(ValueError, match="shard exploded"):
                b.run([(_boom, ())])
        finally:
            b.close()

    def test_process_crash_carries_original_traceback(self):
        b = ProcessBackend(max_workers=2)
        try:
            with pytest.raises(ShardCrash) as err:
                b.run([(_square, (1,)), (_boom, ())])
            assert "ValueError: shard exploded" in err.value.original_traceback
            assert "_boom" in err.value.original_traceback
            # the formatted child stack is also in the message itself
            assert "shard exploded" in str(err.value)
        finally:
            b.close()

    def test_pool_survives_a_crash(self):
        # a task exception must not kill the slot: the next run succeeds
        b = ProcessBackend(max_workers=2)
        try:
            with pytest.raises(ShardCrash):
                b.run([(_boom, ())])
            assert b.run([(_square, (4,))]) == [16]
        finally:
            b.close()


class TestFactory:
    def test_instance_passes_through(self):
        b = SerialBackend()
        assert make_backend(b) is b

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="backend"):
            make_backend("gpu")

    def test_nonpositive_workers_raise(self):
        with pytest.raises(ValueError):
            make_backend("thread", max_workers=0)

    def test_auto_workers_positive(self):
        assert auto_workers() >= 1

    def test_slot_assignment_is_stable(self):
        b = ProcessBackend(max_workers=2)
        try:
            assert [b.slot_for(i) for i in range(5)] == [0, 1, 0, 1, 0]
        finally:
            b.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_close_is_idempotent(self, name):
        b = make_backend(name, max_workers=1)
        b.close()
        b.close()

    def test_closed_process_backend_rejects_runs(self):
        b = ProcessBackend(max_workers=1)
        b.close()
        with pytest.raises(RuntimeError):
            b.run([(_square, (2,))])
