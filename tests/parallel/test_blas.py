"""The BLAS thread-count guard: pins inside the block, restores after."""

import numpy as np
import pytest

from repro.parallel import blas_limits, blas_thread_count


def test_limit_applies_and_restores():
    before = blas_thread_count()
    with blas_limits(1):
        inside = blas_thread_count()
        if inside is not None:  # controllable BLAS on this build
            assert inside == 1
        # GEMMs still work while pinned
        a = np.random.default_rng(0).standard_normal((32, 32))
        assert np.isfinite(a @ a).all()
    assert blas_thread_count() == before


def test_nested_limits_restore_in_order():
    before = blas_thread_count()
    with blas_limits(1):
        with blas_limits(1):
            pass
        if blas_thread_count() is not None:
            assert blas_thread_count() == 1
    assert blas_thread_count() == before


def test_restores_on_exception():
    before = blas_thread_count()
    with pytest.raises(RuntimeError):
        with blas_limits(1):
            raise RuntimeError("inside")
    assert blas_thread_count() == before


def test_none_is_noop():
    before = blas_thread_count()
    with blas_limits(None):
        assert blas_thread_count() == before


def test_nonpositive_limit_rejected():
    with pytest.raises(ValueError):
        with blas_limits(0):
            pass
