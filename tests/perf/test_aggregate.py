"""Span-tree reconstruction, flame aggregation and trace diffs."""

import pytest

from repro.perf.aggregate import (
    aggregate_tree,
    build_span_tree,
    diff_traces,
    flat_spans,
    format_diff,
    format_tree_table,
    perf_summary,
    round_durations,
)


def span(name, depth, dur_s, seq, kind="phase", **attrs):
    """One close-time span event in the v1 hub shape."""
    return {"type": "span", "name": name, "kind": kind, "depth": depth,
            "dur_s": dur_s, "v": 1, "seq": seq, "attrs": attrs}


def run_trace():
    """trainer.run -> 2 rounds -> (mechanism, evaluate) each, close order."""
    return [
        span("trainer.mechanism", 3, 0.03, 1),
        span("trainer.evaluate", 3, 0.01, 2),
        span("trainer.round", 2, 0.05, 3, kind="round", round=0),
        span("trainer.mechanism", 3, 0.04, 4),
        span("trainer.evaluate", 3, 0.02, 5),
        span("trainer.round", 2, 0.07, 6, kind="round", round=1),
        span("trainer.run", 1, 0.13, 7, kind="run"),
    ]


class TestBuildSpanTree:
    def test_reconstructs_nesting_from_close_order(self):
        roots = build_span_tree(run_trace())
        assert [r.name for r in roots] == ["trainer.run"]
        rounds = roots[0].children
        assert [r.name for r in rounds] == ["trainer.round", "trainer.round"]
        assert [c.name for c in rounds[0].children] == [
            "trainer.mechanism", "trainer.evaluate",
        ]
        assert rounds[1].attrs["round"] == 1

    def test_self_time_subtracts_direct_children(self):
        roots = build_span_tree(run_trace())
        round0 = roots[0].children[0]
        assert round0.self_s == pytest.approx(0.05 - 0.03 - 0.01)
        # run's self time: 0.13 - (0.05 + 0.07)
        assert roots[0].self_s == pytest.approx(0.01)

    def test_truncated_trace_surfaces_orphans_as_roots(self):
        # the enclosing trainer.run never closed (crashed run)
        events = run_trace()[:-1]
        roots = build_span_tree(events)
        assert [r.name for r in roots] == ["trainer.round", "trainer.round"]
        assert all(len(r.children) == 2 for r in roots)

    def test_non_span_events_ignored(self):
        events = [{"type": "metric", "name": "x", "value": 1.0}] + run_trace()
        assert len(build_span_tree(events)) == 1

    def test_empty_stream(self):
        assert build_span_tree([]) == []


class TestAggregate:
    def test_per_path_totals(self):
        table = aggregate_tree(build_span_tree(run_trace()))
        rounds = table[("trainer.run", "trainer.round")]
        assert rounds["calls"] == 2
        assert rounds["total_s"] == pytest.approx(0.12)
        mech = table[("trainer.run", "trainer.round", "trainer.mechanism")]
        assert mech["total_s"] == pytest.approx(0.07)
        # leaves: self == total
        assert mech["self_s"] == pytest.approx(mech["total_s"])

    def test_flat_spans_merge_occurrences_across_parents(self):
        flat = flat_spans(run_trace())
        assert flat["trainer.mechanism"]["calls"] == 2
        assert flat["trainer.round"]["total_s"] == pytest.approx(0.12)

    def test_format_tree_table_indents_children(self):
        rows = format_tree_table(aggregate_tree(build_span_tree(run_trace())))
        joined = "\n".join(rows)
        assert "trainer.run" in joined
        assert "  trainer.round" in joined
        assert "    trainer.mechanism" in joined

    def test_min_share_hides_small_paths(self):
        rows = format_tree_table(
            aggregate_tree(build_span_tree(run_trace())), min_share=0.5
        )
        joined = "\n".join(rows)
        assert "trainer.run" in joined
        assert "trainer.evaluate" not in joined


class TestDiff:
    def test_identical_traces_diff_to_zero(self):
        diff = diff_traces(run_trace(), run_trace())
        assert diff["total_delta_s"] == 0.0
        assert all(p["delta_s"] == 0.0 for p in diff["phases"])

    def test_positive_delta_means_candidate_slower(self):
        slow = [
            dict(ev, dur_s=ev["dur_s"] * 2) if ev["name"] == "trainer.mechanism"
            else ev
            for ev in run_trace()
        ]
        diff = diff_traces(run_trace(), slow)
        mech = next(p for p in diff["phases"] if p["name"] == "trainer.mechanism")
        assert mech["delta_s"] == pytest.approx(0.07)
        assert mech["delta_pct"] == pytest.approx(100.0)
        # swap old/new: same magnitude, opposite sign (an improvement)
        back = diff_traces(slow, run_trace())
        mech_b = next(p for p in back["phases"] if p["name"] == "trainer.mechanism")
        assert mech_b["delta_s"] == pytest.approx(-0.07)

    def test_total_delta_sums_self_deltas(self):
        slow = [
            dict(ev, dur_s=ev["dur_s"] + 0.01) for ev in run_trace()
        ]
        diff = diff_traces(run_trace(), slow)
        assert diff["total_delta_s"] == pytest.approx(
            sum(p["delta_self_s"] for p in diff["phases"])
        )
        # self deltas partition the wall-clock movement exactly: the
        # root trainer.run total grew 0.13 -> 0.14, so the summed
        # self-time deltas must equal that +0.01 (totals would
        # double-count the nested growth)
        assert diff["total_delta_s"] == pytest.approx(0.01)

    def test_phase_only_in_one_trace(self):
        extra = run_trace() + [span("trainer.extra", 1, 0.5, 99)]
        diff = diff_traces(run_trace(), extra)
        new_phase = next(p for p in diff["phases"] if p["name"] == "trainer.extra")
        assert new_phase["a_calls"] == 0
        assert new_phase["delta_s"] == pytest.approx(0.5)
        assert new_phase["delta_pct"] is None
        # biggest mover ranks first
        assert diff["phases"][0]["name"] == "trainer.extra"

    def test_format_diff_reports_sign_convention(self):
        rows = format_diff(diff_traces(run_trace(), run_trace()))
        assert "positive delta = candidate slower" in rows[0]

    def test_format_diff_threshold_and_top(self):
        slow = [dict(ev, dur_s=ev["dur_s"] * 3) for ev in run_trace()]
        rows = format_diff(diff_traces(run_trace(), slow), top=1)
        assert any("more phases" in r for r in rows)
        rows2 = format_diff(
            diff_traces(run_trace(), run_trace()), threshold_s=0.001
        )
        assert any("no phase deltas above threshold" in r for r in rows2)


class TestPerfSummary:
    def test_round_percentiles_and_top_phase(self):
        summary = perf_summary(run_trace())
        assert summary["rounds"] == 2
        assert summary["round_wall_s"]["max"] == pytest.approx(0.07)
        assert summary["round_wall_s"]["mean"] == pytest.approx(0.06)
        top = summary["top_phase"]
        # trainer.run/trainer.round excluded; mechanism has most self time
        assert top["name"] == "trainer.mechanism"
        assert top["calls"] == 2
        assert 0.0 < top["share"] <= 1.0

    def test_empty_trace(self):
        summary = perf_summary([])
        assert summary["rounds"] == 0
        assert summary["top_phase"] is None
        assert summary["round_wall_s"]["p50"] == 0.0

    def test_round_durations_in_order(self):
        assert round_durations(run_trace()) == [0.05, 0.07]
