"""Perfetto (Chrome trace-event) export: lanes, nesting, validation."""

import json

import pytest

from repro.perf.perfetto import events_to_perfetto, validate_trace, write_perfetto

from .test_aggregate import run_trace, span


def parallel_event(seq=50, pool=2, shard_s=(0.01, 0.02, 0.03, 0.04),
                   queue=(0.0, 0.0, 0.001, 0.002), phase="fleet.local"):
    shard_s = list(shard_s)
    ordered = sorted(shard_s)
    mid = len(ordered) // 2
    median = (ordered[mid] if len(ordered) % 2
              else 0.5 * (ordered[mid - 1] + ordered[mid]))
    return {
        "type": "parallel.round", "seq": seq, "v": 1,
        "data": {
            "phase": phase, "backend": "thread", "pool_size": pool,
            "shards": len(shard_s), "shard_s": shard_s,
            "queue_wait_s": list(queue),
            "max_shard_s": max(shard_s), "median_shard_s": median,
        },
    }


def resource_event(seq=60, rss=64 << 20, rnd=0):
    return {
        "type": "resource.sample", "seq": seq, "v": 1,
        "data": {"round": rnd, "rss_bytes": rss, "gc_collections": 2,
                 "gc_pause_s_total": 0.004, "gc_pause_max_s": 0.003,
                 "blas_threads": 1},
    }


def complete_events(trace, pid=None):
    evs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    return evs if pid is None else [e for e in evs if e["pid"] == pid]


def meta_names(trace, meta):
    return [e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == meta]


class TestSpanLane:
    def test_export_is_structurally_valid(self):
        trace = events_to_perfetto(run_trace())
        validate_trace(trace)  # raises on violation
        assert trace["displayTimeUnit"] == "ms"

    def test_round_spans_nest_inside_run_span(self):
        trace = events_to_perfetto(run_trace())
        xs = complete_events(trace, pid=1)
        run = next(e for e in xs if e["name"] == "trainer.run")
        rounds = [e for e in xs if e["name"] == "trainer.round"]
        assert len(rounds) == 2
        for r in rounds:
            assert r["ts"] >= run["ts"]
            assert r["ts"] + r["dur"] <= run["ts"] + run["dur"] + 1e-6
        # rounds laid out end to end in close order
        assert rounds[0]["ts"] + rounds[0]["dur"] == pytest.approx(
            rounds[1]["ts"]
        )

    def test_durations_are_microseconds(self):
        trace = events_to_perfetto(run_trace())
        run = next(e for e in complete_events(trace) if e["name"] == "trainer.run")
        assert run["dur"] == pytest.approx(0.13 * 1e6)

    def test_span_attrs_carried_into_args(self):
        trace = events_to_perfetto(run_trace())
        rounds = [e for e in complete_events(trace) if e["name"] == "trainer.round"]
        assert [r["args"]["round"] for r in rounds] == [0, 1]

    def test_trainer_process_named(self):
        trace = events_to_perfetto(run_trace())
        assert "trainer" in meta_names(trace, "process_name")


class TestParallelLanes:
    def test_one_lane_per_slot(self):
        trace = events_to_perfetto(run_trace() + [parallel_event(pool=2)])
        assert "parallel backend" in meta_names(trace, "process_name")
        assert {"slot 0", "slot 1"} <= set(meta_names(trace, "thread_name"))
        shards = [e for e in complete_events(trace, pid=2)
                  if e["cat"] == "shard"]
        # task i -> lane i % pool_size
        assert [e["tid"] for e in sorted(shards, key=lambda e: e["args"]["task"])] \
            == [0, 1, 0, 1]

    def test_queue_wait_segments_precede_runs(self):
        trace = events_to_perfetto([parallel_event(
            pool=1, shard_s=(0.01, 0.02), queue=(0.0, 0.05)
        )])
        lane = sorted(complete_events(trace, pid=2), key=lambda e: e["ts"])
        waits = [e for e in lane if e["cat"] == "queue"]
        assert len(waits) == 1
        run2 = next(e for e in lane
                    if e["cat"] == "shard" and e["args"]["task"] == 1)
        assert waits[0]["ts"] + waits[0]["dur"] == pytest.approx(run2["ts"])

    def test_lane_segments_never_overlap(self):
        trace = events_to_perfetto([parallel_event(
            pool=2, shard_s=(0.03, 0.01, 0.02, 0.04),
            queue=(0.0, 0.0, 0.001, 0.002),
        )])
        by_lane = {}
        for e in complete_events(trace, pid=2):
            by_lane.setdefault(e["tid"], []).append(e)
        for segs in by_lane.values():
            segs.sort(key=lambda e: e["ts"])
            for a, b in zip(segs, segs[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-6

    def test_serial_trace_has_no_parallel_process(self):
        trace = events_to_perfetto(run_trace())
        assert "parallel backend" not in meta_names(trace, "process_name")


class TestResourceCounters:
    def test_counter_tracks_emitted(self):
        trace = events_to_perfetto(run_trace() + [resource_event()])
        assert "resources" in meta_names(trace, "process_name")
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert {"rss_mb", "gc_collections", "gc_pause_ms_total"} <= names
        rss = next(e for e in counters if e["name"] == "rss_mb")
        assert rss["args"]["value"] == pytest.approx(64.0)

    def test_samples_pinned_to_round_ends(self):
        trace = events_to_perfetto(
            run_trace() + [resource_event(seq=60, rnd=0),
                           resource_event(seq=61, rnd=1)]
        )
        rounds = [e for e in complete_events(trace, pid=1)
                  if e["name"] == "trainer.round"]
        rss = sorted((e for e in trace["traceEvents"]
                      if e["ph"] == "C" and e["name"] == "rss_mb"),
                     key=lambda e: e["ts"])
        assert rss[0]["ts"] == pytest.approx(rounds[0]["ts"] + rounds[0]["dur"])
        assert rss[1]["ts"] == pytest.approx(rounds[1]["ts"] + rounds[1]["dur"])


class TestValidateTrace:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_trace([])

    def test_rejects_event_without_ph(self):
        with pytest.raises(ValueError, match="ph"):
            validate_trace({"traceEvents": [{"name": "x"}]})

    def test_rejects_negative_duration(self):
        bad = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0, "dur": -1},
        ]}
        with pytest.raises(ValueError, match="dur"):
            validate_trace(bad)

    def test_rejects_nan_counter(self):
        bad = {"traceEvents": [
            {"ph": "C", "pid": 1, "tid": 0, "name": "c", "ts": 0,
             "args": {"value": float("nan")}},
        ]}
        with pytest.raises(ValueError, match="counter"):
            validate_trace(bad)

    def test_rejects_unsupported_phase(self):
        bad = {"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 1, "name": "x", "ts": 0},
        ]}
        with pytest.raises(ValueError, match="unsupported"):
            validate_trace(bad)


class TestWritePerfetto:
    def test_written_file_is_loadable_json(self, tmp_path):
        out = tmp_path / "trace.json"
        path = write_perfetto(out, run_trace() + [parallel_event(),
                                                  resource_event()])
        assert path == out
        trace = json.loads(out.read_text())
        validate_trace(trace)
        assert trace["otherData"]["source"] == "repro.perf"

    def test_empty_trace_still_valid(self, tmp_path):
        out = write_perfetto(tmp_path / "empty.json", [])
        validate_trace(json.loads(out.read_text()))
