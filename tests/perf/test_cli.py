"""``python -m repro.perf`` CLI: top view, export, diff, exit codes."""

import json

import pytest

from repro.perf.cli import main
from repro.perf.perfetto import validate_trace
from repro.telemetry.sinks import encode_event

from .test_aggregate import run_trace
from .test_perfetto import parallel_event, resource_event


def write_trace(path, events):
    path.write_text("\n".join(encode_event(e) for e in events) + "\n")
    return path


@pytest.fixture
def trace_file(tmp_path):
    return write_trace(tmp_path / "trace.jsonl", run_trace())


class TestTopView:
    def test_prints_flame_table(self, trace_file, capsys):
        assert main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "perf: 2 rounds" in out
        assert "top phase by self time: trainer.mechanism" in out
        assert "trainer.round" in out

    def test_json_output(self, trace_file, capsys):
        assert main([str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["rounds"] == 2
        assert "trainer.run/trainer.round" in payload["spans"]

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_truncated_jsonl_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "span", "name": "x"\n')
        assert main([str(path)]) == 2
        assert "truncated" in capsys.readouterr().err

    def test_empty_trace_exits_1(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_no_arguments_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2


class TestPerfettoExport:
    def test_export_writes_valid_trace(self, trace_file, tmp_path, capsys):
        out = tmp_path / "perfetto.json"
        assert main([str(trace_file), "--perfetto", str(out)]) == 0
        validate_trace(json.loads(out.read_text()))
        assert "perfetto trace saved" in capsys.readouterr().err

    def test_resources_side_stream_merged(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl",
                            run_trace() + [parallel_event()])
        res = write_trace(tmp_path / "r.jsonl",
                          [resource_event(rnd=0), resource_event(rnd=1)])
        out = tmp_path / "p.json"
        assert main([str(trace), "--perfetto", str(out),
                     "--resources", str(res)]) == 0
        exported = json.loads(out.read_text())
        phases = {e["ph"] for e in exported["traceEvents"]}
        assert "C" in phases  # resource counters made it in
        procs = [e["args"]["name"] for e in exported["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert {"trainer", "parallel backend", "resources"} <= set(procs)

    def test_unreadable_resources_exits_2(self, trace_file, tmp_path):
        assert main([str(trace_file), "--perfetto",
                     str(tmp_path / "o.json"),
                     "--resources", str(tmp_path / "missing.jsonl")]) == 2


class TestDiff:
    def test_identical_traces_report_zero(self, trace_file, capsys):
        assert main(["--diff", str(trace_file), str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "positive delta = candidate slower" in out
        assert "+0.0000" in out

    def test_json_diff_zero_total(self, trace_file, capsys):
        assert main(["--diff", str(trace_file), str(trace_file),
                     "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["total_delta_s"] == 0.0

    def test_regression_is_positive_delta(self, tmp_path, capsys):
        old = write_trace(tmp_path / "old.jsonl", run_trace())
        slow = [dict(ev, dur_s=ev["dur_s"] * 2) for ev in run_trace()]
        new = write_trace(tmp_path / "new.jsonl", slow)
        assert main(["--diff", str(old), str(new), "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["total_delta_s"] > 0
        # swapped order: an improvement, negative total
        assert main(["--diff", str(new), str(old), "--json"]) == 0
        diff_back = json.loads(capsys.readouterr().out)
        assert diff_back["total_delta_s"] < 0

    def test_fail_above_gates_exit_code(self, tmp_path, capsys):
        old = write_trace(tmp_path / "old.jsonl", run_trace())
        slow = [dict(ev, dur_s=ev["dur_s"] * 2) for ev in run_trace()]
        new = write_trace(tmp_path / "new.jsonl", slow)
        # a 2x regression is way above 25%
        assert main(["--diff", str(old), str(new), "--fail-above", "25"]) == 1
        assert "exceeds --fail-above" in capsys.readouterr().err
        # generous gate passes; improvements always pass
        assert main(["--diff", str(old), str(new),
                     "--fail-above", "500"]) == 0
        assert main(["--diff", str(new), str(old),
                     "--fail-above", "25"]) == 0

    def test_diff_of_missing_file_exits_2(self, trace_file, tmp_path):
        assert main(["--diff", str(trace_file),
                     str(tmp_path / "gone.jsonl")]) == 2

    def test_diff_plus_positional_trace_is_usage_error(self, trace_file):
        with pytest.raises(SystemExit) as exc:
            main([str(trace_file), "--diff", str(trace_file),
                  str(trace_file)])
        assert exc.value.code == 2
