"""ResourceProbe: sampling, GC-pause measurement, side-stream isolation."""

import gc
import json

import pytest

from repro.perf.resources import ResourceProbe, resource_snapshot, rss_bytes


class TestRssBytes:
    def test_positive_on_linux(self):
        assert rss_bytes() > 0

    def test_snapshot_shape(self):
        snap = resource_snapshot()
        assert snap["rss_bytes"] > 0
        assert len(snap["gc_counts"]) == 3
        assert snap["gc_collections"] >= 0
        assert snap["gc_uncollectable"] >= 0


class TestResourceProbe:
    def test_sample_fields(self):
        with ResourceProbe() as probe:
            sample = probe.sample(7)
        assert sample["round"] == 7
        assert sample["rss_bytes"] > 0
        assert sample["blas_threads"] >= 1
        for key in ("gc_counts", "gc_collections", "gc_pause_s_total",
                    "gc_pause_max_s"):
            assert key in sample

    def test_sample_every_skips(self):
        with ResourceProbe(sample_every=2) as probe:
            taken = [probe.sample(i) for i in range(5)]
        assert [s is not None for s in taken] == [
            True, False, True, False, True,
        ]
        assert len(probe.samples) == 3

    def test_gc_pauses_measured_not_estimated(self):
        with ResourceProbe() as probe:
            gc.collect()
            sample = probe.sample(0)
        assert sample["gc_collections"] >= 1
        assert sample["gc_pause_s_total"] > 0.0
        assert sample["gc_pause_max_s"] > 0.0

    def test_pause_window_max_resets_per_sample(self):
        with ResourceProbe() as probe:
            gc.collect()
            first = probe.sample(0)
            second = probe.sample(1)
        assert first["gc_pause_max_s"] > 0.0
        # no collection between samples: the window max reset to zero,
        # while the cumulative total is monotone
        assert second["gc_pause_max_s"] == 0.0
        assert second["gc_pause_s_total"] >= first["gc_pause_s_total"]

    def test_close_detaches_gc_callback(self):
        probe = ResourceProbe()
        assert probe._gc_callback in gc.callbacks
        probe.close()
        assert probe._gc_callback not in gc.callbacks
        probe.close()  # idempotent
        with pytest.raises(RuntimeError):
            probe.sample(0)

    def test_on_sample_callback(self):
        seen = []
        with ResourceProbe(on_sample=seen.append) as probe:
            probe.sample(0)
            probe.sample(1)
        assert [s["round"] for s in seen] == [0, 1]

    def test_jsonl_side_stream(self, tmp_path):
        path = tmp_path / "res.jsonl"
        with ResourceProbe(jsonl_path=path) as probe:
            probe.sample(0)
            probe.sample(1)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["type"] for l in lines] == ["resource.sample"] * 2
        assert [l["data"]["round"] for l in lines] == [0, 1]

    def test_events_wrap_samples(self):
        with ResourceProbe() as probe:
            probe.sample(3)
        events = probe.events()
        assert events[0]["type"] == "resource.sample"
        assert events[0]["data"]["round"] == 3

    def test_summary_envelope(self):
        with ResourceProbe() as probe:
            probe.sample(0)
            probe.sample(1)
            summary = probe.summary()
        assert summary["samples"] == 2
        assert summary["rss_peak_bytes"] >= summary["rss_start_bytes"] > 0
        assert summary["rss_growth_bytes"] == (
            summary["rss_last_bytes"] - summary["rss_start_bytes"]
        )

    def test_empty_summary(self):
        with ResourceProbe() as probe:
            summary = probe.summary()
        assert summary["samples"] == 0
        assert summary["rss_peak_bytes"] is None

    def test_rejects_bad_sample_every(self):
        with pytest.raises(ValueError):
            ResourceProbe(sample_every=0)

    def test_tracemalloc_peak_only_when_tracing(self):
        import tracemalloc

        with ResourceProbe(tracemalloc_peak=True) as probe:
            assert "tracemalloc_peak_bytes" not in probe.sample(0)
            tracemalloc.start()
            try:
                sample = probe.sample(1)
            finally:
                tracemalloc.stop()
        assert sample["tracemalloc_peak_bytes"] >= 0


class TestProbeTraceIsolation:
    """A probed seeded run's hub trace stays byte-identical (tentpole bar)."""

    def _seeded_events(self, probe=None):
        from repro.core import make_mechanism
        from repro.fl import FederatedTrainer
        from repro.population import WorkerPopulation
        from repro.telemetry import (
            MemorySink,
            Telemetry,
            TickClock,
            set_telemetry,
        )

        from ..helpers import make_federation, model_fn

        hub = Telemetry(sinks=[MemorySink()], clock=TickClock())
        set_telemetry(hub)
        try:
            workers, _, test = make_federation(num_workers=4)
            trainer = FederatedTrainer(
                model_fn()(),
                population=WorkerPopulation.from_workers(workers),
                server_ranks=[0, 1],
                test_data=test,
                mechanism=make_mechanism("fifl", threshold=0.0, gamma=0.2),
                seed=0,
                probe=probe,
            )
            trainer.run(3)
            hub.flush()
            return hub.events()
        finally:
            set_telemetry(Telemetry())

    def test_probe_keeps_seeded_trace_byte_identical(self):
        from repro.telemetry import encode_event

        bare = self._seeded_events()
        with ResourceProbe() as probe:
            probed = self._seeded_events(probe=probe)
        assert len(probe.samples) == 3  # one per round boundary
        assert [encode_event(e) for e in bare] == [
            encode_event(e) for e in probed
        ]
