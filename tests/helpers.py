"""Shared test factories: tiny blob federations with logistic regression."""

import numpy as np

from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.fl import HonestWorker
from repro.nn import build_logreg

N_FEATURES = 8
N_CLASSES = 3


def model_fn(seed=0):
    """Factory-of-factories so every worker model starts identically."""
    return lambda: build_logreg(N_FEATURES, N_CLASSES, seed=seed)


class LogregFactory:
    """Picklable model factory (lambdas can't cross process boundaries).

    Use instead of :func:`model_fn` wherever a worker/population must
    survive ``pickle`` — snapshot round-trips, subprocess transfer.
    """

    def __init__(self, seed=0):
        self.seed = seed

    def __call__(self):
        return build_logreg(N_FEATURES, N_CLASSES, seed=self.seed)


class BlobDataFn:
    """Picklable per-worker dataset recipe for lazy populations."""

    def __init__(self, samples_per_worker=40, seed=0):
        self.samples_per_worker = samples_per_worker
        self.seed = seed

    def __call__(self, worker_id):
        return make_blobs(
            n_samples=self.samples_per_worker,
            n_features=N_FEATURES,
            num_classes=N_CLASSES,
            seed=(self.seed, 0xDA7A, worker_id),
        )


def make_federation(
    num_workers=4,
    n_samples=400,
    worker_cls=HonestWorker,
    worker_kwargs=None,
    seed=0,
    local_iters=1,
    lr=0.1,
):
    """Build (workers, train shards, test set) over blob data."""
    data = make_blobs(
        n_samples=n_samples, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed
    )
    train, test = train_test_split(data, 0.25, seed=seed)
    shards = iid_partition(train, num_workers, seed=seed)
    workers = [
        worker_cls(
            i,
            shards[i],
            model_fn(seed),
            lr=lr,
            batch_size=32,
            local_iters=local_iters,
            seed=seed + 100 + i,
            **(worker_kwargs or {}),
        )
        for i in range(num_workers)
    ]
    return workers, shards, test
