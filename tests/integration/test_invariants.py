"""Property tests of system-level invariants over randomized federations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DetectionConfig, FIFLConfig, FIFLMechanism
from repro.fl import FederatedTrainer, SignFlippingWorker
from repro.ledger import Blockchain
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def random_federation(seed, num_workers, n_attackers, gamma, drop_prob):
    workers, _, test = make_federation(num_workers=num_workers, seed=seed)
    rng = np.random.default_rng(seed)
    attacker_ids = rng.choice(
        np.arange(2, num_workers), size=n_attackers, replace=False
    )
    for aid in attacker_ids:
        workers[aid] = make_federation(
            num_workers=num_workers, seed=seed,
            worker_cls=SignFlippingWorker,
            worker_kwargs={"p_s": float(rng.uniform(2, 8))},
        )[0][aid]
    chain = Blockchain()
    mech = FIFLMechanism(
        FIFLConfig(detection=DetectionConfig(threshold=0.0), gamma=gamma),
        ledger=chain,
    )
    model = build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    trainer = FederatedTrainer(
        model, workers, [0, 1], test_data=test, mechanism=mech,
        server_lr=0.1, drop_prob=drop_prob, seed=seed,
    )
    return trainer, mech, chain, set(int(a) for a in attacker_ids)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_workers=st.integers(5, 9),
    n_attackers=st.integers(0, 2),
    gamma=st.floats(0.1, 0.5),
    drop_prob=st.floats(0.0, 0.25),
)
def test_system_invariants(seed, num_workers, n_attackers, gamma, drop_prob):
    """One randomized federation run upholds every cross-module invariant."""
    rounds = 8
    trainer, mech, chain, attackers = random_federation(
        seed, num_workers, n_attackers, gamma, drop_prob
    )
    history = trainer.run(rounds, eval_every=rounds)

    # 1. bookkeeping: one record + one ledger block per round, chain intact
    assert len(mech.records) == rounds
    assert len(chain) == rounds
    assert chain.is_intact()

    # 2. reputations always within [0, 1]
    for rec in mech.records:
        for rep in rec.reputations.values():
            assert 0.0 <= rep <= 1.0 + 1e-12

    # 3. per-round reward conservation: positive payouts never exceed the
    #    budget; punishments never exceed the budget either (bounded)
    for rec in mech.records:
        paid = sum(v for v in rec.rewards.values() if v > 0)
        assert paid <= mech.config.budget_per_round + 1e-9
        for v in rec.rewards.values():
            assert v >= -mech.config.budget_per_round - 1e-9

    # 4. detection coverage: every non-uncertain worker got a verdict
    for hist_rec, mech_rec in zip(history.rounds, mech.records):
        scored = set(mech_rec.scores)
        uncertain = hist_rec.uncertain
        assert scored.isdisjoint(uncertain)
        assert scored | uncertain == set(range(num_workers))

    # 5. rejected or uncertain workers never enter the aggregate
    for hist_rec in history.rounds:
        for w, ok in hist_rec.accepted.items():
            if w in hist_rec.uncertain:
                assert not ok

    # 6. cumulative rewards equal the sum of per-round rewards
    totals = {}
    for rec in mech.records:
        for w, v in rec.rewards.items():
            totals[w] = totals.get(w, 0.0) + v
    for w, v in mech.cumulative_rewards().items():
        assert v == pytest.approx(totals.get(w, 0.0))
