"""End-to-end integration: nn -> fl -> core -> ledger in one pipeline."""

import numpy as np
import pytest

from repro.core import (
    DetectionConfig,
    FIFLConfig,
    FIFLMechanism,
    fairness_coefficient,
    probe_selection,
)
from repro.fl import FederatedTrainer, SignFlippingWorker
from repro.ledger import Blockchain, audit_reputation
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation

GAMMA = 0.3


def full_pipeline(num_workers=8, attacker_ids=(6, 7), rounds=20, seed=0,
                  drop_prob=0.0, reselect_every=0, reputation_mode="decay"):
    """Probe-select servers, train with FIFL + ledger, return everything."""
    workers, _, test = make_federation(num_workers=num_workers, seed=seed)
    for aid in attacker_ids:
        workers[aid] = make_federation(
            num_workers=num_workers, seed=seed,
            worker_cls=SignFlippingWorker, worker_kwargs={"p_s": 6.0},
        )[0][aid]
    # S4.5 step 1: initial server cluster by probe accuracy
    servers = probe_selection(workers, test, num_servers=2, probe_rounds=2)
    chain = Blockchain()
    mech = FIFLMechanism(
        FIFLConfig(
            detection=DetectionConfig(threshold=0.0),
            gamma=GAMMA,
            reputation_mode=reputation_mode,
        ),
        ledger=chain,
    )
    model = build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    trainer = FederatedTrainer(
        model, workers, servers, test_data=test, mechanism=mech,
        server_lr=0.1, drop_prob=drop_prob, seed=seed,
        reselect_every=reselect_every,
    )
    history = trainer.run(rounds, eval_every=rounds)
    return history, mech, chain, trainer


class TestFullPipeline:
    def test_model_learns_despite_attack(self):
        history, _, _, _ = full_pipeline()
        assert history.final_accuracy() > 0.7

    def test_attackers_end_with_lowest_reputation(self):
        _, mech, _, _ = full_pipeline()
        reps = mech.reputation.reputations()
        worst_two = sorted(reps, key=reps.get)[:2]
        assert set(worst_two) == {6, 7}

    def test_rewards_track_honesty(self):
        _, mech, _, _ = full_pipeline()
        rewards = mech.cumulative_rewards()
        honest = [rewards[w] for w in range(6)]
        attackers = [rewards[6], rewards[7]]
        assert min(honest) > max(attackers)

    def test_every_worker_audits_clean(self):
        _, _, chain, _ = full_pipeline()
        assert chain.is_intact()
        for wid in range(8):
            report = audit_reputation(chain, wid, gamma=GAMMA)
            assert report.clean, f"worker {wid}: {report.findings}"

    def test_fairness_among_honest_workers(self):
        # Theorem 2 in vivo: among equally-reputable honest workers the
        # round rewards correlate strongly with round contributions
        _, mech, _, _ = full_pipeline(rounds=25)
        last = mech.records[-1]
        # Theorem 2's premise is equal reputations: restrict to honest
        # workers whose reputation has converged to ~1
        honest = [
            w for w in range(6)
            if last.contribs.get(w, 0) > 0 and last.reputations.get(w, 0) > 0.99
        ]
        if len(honest) >= 3:
            c = np.array([last.contribs[w] for w in honest])
            r = np.array([last.rewards[w] for w in honest])
            assert fairness_coefficient(c, r) > 0.99

    def test_lossy_network_still_converges_and_audits(self):
        history, mech, chain, _ = full_pipeline(drop_prob=0.15, rounds=25, seed=3)
        assert history.final_accuracy() > 0.6
        assert chain.is_intact()
        # uncertain events happened and were ledgered as None outcomes
        uncertain_rounds = [
            blk for blk in chain.blocks
            if any(v is None for v in blk.payload["accepted"].values())
        ]
        assert uncertain_rounds
        for wid in range(8):
            assert audit_reputation(chain, wid, gamma=GAMMA).clean

    def test_reselection_with_full_pipeline(self):
        # attackers start as probe-selected... they never win the probe,
        # so force one in and watch re-selection evict it
        history, mech, chain, trainer = full_pipeline(
            attacker_ids=(0, 7), reselect_every=4, rounds=16, seed=5
        )
        assert 0 not in trainer.server_ranks
        assert history.final_accuracy() > 0.6

    def test_slm_reputation_mode_pipeline(self):
        history, mech, chain, _ = full_pipeline(
            reputation_mode="slm", rounds=15, seed=2
        )
        assert history.final_accuracy() > 0.6
        # SLM-mode reputations live in [-a_n - a_u, a_t]
        for rec in mech.records:
            for rep in rec.reputations.values():
                assert -2.0 <= rep <= 1.0


class TestDeterminism:
    def test_pipeline_fully_reproducible(self):
        h1, m1, c1, _ = full_pipeline(seed=9, rounds=8)
        h2, m2, c2, _ = full_pipeline(seed=9, rounds=8)
        assert h1.final_accuracy() == h2.final_accuracy()
        assert m1.cumulative_rewards() == m2.cumulative_rewards()
        assert [b.hash for b in c1.blocks] == [b.hash for b in c2.blocks]

    def test_different_seeds_differ(self):
        h1, _, _, _ = full_pipeline(seed=9, rounds=5)
        h2, _, _, _ = full_pipeline(seed=10, rounds=5)
        assert h1.final_accuracy() != h2.final_accuracy()
