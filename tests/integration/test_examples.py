"""Smoke tests: every shipped example runs end-to-end and asserts its
own success criterion (each example ends with an ``assert`` + "OK:")."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 420) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "OK:" in out
        assert "final test accuracy" in out

    def test_audit_trail(self):
        out = run_example("audit_trail.py")
        assert "OK:" in out
        assert "evil-server" in out

    def test_fault_tolerance_demo(self):
        out = run_example("fault_tolerance_demo.py")
        assert "OK:" in out
        assert "crash" in out

    @pytest.mark.slow
    def test_incentive_market(self):
        out = run_example("incentive_market.py")
        assert "OK:" in out
        assert "data share" in out

    @pytest.mark.slow
    def test_unreliable_federation(self):
        out = run_example("unreliable_federation.py")
        assert "OK:" in out
        assert "FIFL-defended" in out
