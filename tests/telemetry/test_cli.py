"""Regression tests: ``telemetry summarize`` degrades gracefully.

A crashed producer routinely leaves an empty or mid-record-truncated
trace behind; the CLI must exit 1 with a clear diagnostic instead of
throwing a traceback at the user.
"""

import json

import pytest

from repro.telemetry.cli import main as telemetry_cli


class TestSummarizeDegradation:
    def test_empty_trace_exits_one_without_traceback(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert telemetry_cli(["summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert "contains no events" in err
        assert "Traceback" not in err

    def test_truncated_trace_exits_one_with_diagnostic(self, tmp_path,
                                                       capsys):
        path = tmp_path / "cut.jsonl"
        good = {"v": 1, "seq": 1, "type": "fifl.round", "data": {"round": 0}}
        path.write_text(json.dumps(good) + "\n" + '{"v": 1, "se')
        assert telemetry_cli(["summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert "not valid JSONL" in err
        assert "truncated" in err

    def test_garbage_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "binary.jsonl"
        path.write_text("not json at all\x00\x01")
        assert telemetry_cli(["summarize", str(path)]) == 1
        assert "not valid JSONL" in capsys.readouterr().err

    def test_whitespace_only_trace_counts_as_empty(self, tmp_path, capsys):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n\n")
        assert telemetry_cli(["summarize", str(path)]) == 1
        assert "contains no events" in capsys.readouterr().err


def fifl_round_line(t, *, rewards=None, reputations=None):
    data = {
        "round": t,
        "scores": {"0": 0.5, "1": -0.8},
        "flagged": [1],
        "accepted": 1,
        "uncertain": [],
        "threshold": 0.0,
        "budget": 10.0,
        "rewards": rewards if rewards is not None else {"0": 1.0, "1": -0.2},
    }
    if reputations is not None:
        data["reputations"] = reputations
    return json.dumps({"v": 1, "seq": t, "type": "fifl.round", "data": data})


class TestSummarizeWorker:
    def write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_table_renders_trajectory(self, tmp_path, capsys):
        path = self.write(tmp_path, [
            fifl_round_line(0, reputations={"0": 0.3, "1": 0.0}),
            fifl_round_line(1, reputations={"0": 0.5, "1": 0.0}),
        ])
        assert telemetry_cli(["summarize", str(path), "--worker", "0"]) == 0
        out = capsys.readouterr().out
        assert "worker 0: 2 rounds" in out
        assert "cumulative reward +2.0000" in out
        assert "final reputation 0.5000" in out

    def test_flagged_worker_status(self, tmp_path, capsys):
        path = self.write(tmp_path, [fifl_round_line(0)])
        assert telemetry_cli(["summarize", str(path), "--worker", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 flagged" in out
        assert "flagged" in out.splitlines()[-1]

    def test_json_trajectory(self, tmp_path, capsys):
        path = self.write(tmp_path, [fifl_round_line(0)])
        assert telemetry_cli(
            ["summarize", str(path), "--worker", "0", "--json"]
        ) == 0
        traj = json.loads(capsys.readouterr().out)
        assert traj["worker"] == 0
        assert traj["rounds"][0]["reward"] == 1.0
        # audit payload absent from this trace: reputation rides as None
        assert traj["rounds"][0]["reputation"] is None

    def test_unknown_worker_degrades_gracefully(self, tmp_path, capsys):
        path = self.write(tmp_path, [fifl_round_line(0)])
        assert telemetry_cli(["summarize", str(path), "--worker", "9"]) == 0
        assert "no mechanism rounds" in capsys.readouterr().out

    def test_skipped_only_trace_summarizes_cleanly(self, tmp_path, capsys):
        line = json.dumps({
            "v": 1, "seq": 0, "type": "trainer.skipped_round",
            "data": {"round": 0, "reason": "empty_cohort"},
        })
        path = self.write(tmp_path, [line])
        assert telemetry_cli(["summarize", str(path), "--worker", "0"]) == 0
        out = capsys.readouterr().out
        assert "no mechanism rounds" in out
        assert "1 trainer-skipped" in out
