"""Regression tests: ``telemetry summarize`` degrades gracefully.

A crashed producer routinely leaves an empty or mid-record-truncated
trace behind; the CLI must exit 1 with a clear diagnostic instead of
throwing a traceback at the user.
"""

import json

import pytest

from repro.telemetry.cli import main as telemetry_cli


class TestSummarizeDegradation:
    def test_empty_trace_exits_one_without_traceback(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert telemetry_cli(["summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert "contains no events" in err
        assert "Traceback" not in err

    def test_truncated_trace_exits_one_with_diagnostic(self, tmp_path,
                                                       capsys):
        path = tmp_path / "cut.jsonl"
        good = {"v": 1, "seq": 1, "type": "fifl.round", "data": {"round": 0}}
        path.write_text(json.dumps(good) + "\n" + '{"v": 1, "se')
        assert telemetry_cli(["summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert "not valid JSONL" in err
        assert "truncated" in err

    def test_garbage_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "binary.jsonl"
        path.write_text("not json at all\x00\x01")
        assert telemetry_cli(["summarize", str(path)]) == 1
        assert "not valid JSONL" in capsys.readouterr().err

    def test_whitespace_only_trace_counts_as_empty(self, tmp_path, capsys):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n\n")
        assert telemetry_cli(["summarize", str(path)]) == 1
        assert "contains no events" in capsys.readouterr().err
