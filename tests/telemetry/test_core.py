"""Telemetry hub: spans, metrics registry, deferred emission, clocks."""

import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    Histogram,
    MemorySink,
    Telemetry,
    TickClock,
    format_profile,
    get_telemetry,
    profile_delta,
    set_telemetry,
)


def make_hub():
    return Telemetry(sinks=[MemorySink()], clock=TickClock())


class TestSpans:
    def test_nested_spans_record_depth_and_order(self):
        tele = make_hub()
        with tele.span("run", kind="run"):
            with tele.span("round", kind="round", round=3):
                with tele.phase("round.phase"):
                    pass
        events = tele.events()
        assert [ev["type"] for ev in events] == ["span"] * 3
        # spans close inside-out
        assert [ev["name"] for ev in events] == ["round.phase", "round", "run"]
        assert [ev["depth"] for ev in events] == [3, 2, 1]
        assert events[0]["kind"] == "phase"
        assert events[1]["attrs"] == {"round": 3}
        # attribute-less spans omit the attrs key entirely
        assert "attrs" not in events[0]

    def test_seq_strictly_increasing_and_versioned(self):
        tele = make_hub()
        for _ in range(5):
            with tele.phase("p"):
                pass
        tele.gauge("g", 1.0)
        events = tele.events()
        assert [ev["seq"] for ev in events] == list(range(len(events)))
        assert all(ev["v"] == SCHEMA_VERSION for ev in events)
        assert tele.seq == len(events)

    def test_tick_clock_durations_are_deterministic(self):
        durs = []
        for _ in range(2):
            tele = Telemetry(clock=TickClock(step=0.5))
            with tele.span("outer"):
                with tele.span("inner"):
                    pass
            durs.append([ev["dur_s"] for ev in tele.events()])
        assert durs[0] == durs[1]
        # inner span: one step between its enter and exit reads
        assert durs[0][0] == pytest.approx(0.5)

    def test_span_durations_fold_into_timing_table(self):
        tele = make_hub()
        with tele.phase("p"):
            pass
        with tele.phase("p"):
            pass
        snap = tele.snapshot()
        assert snap["timings"]["p"]["calls"] == 2
        assert snap["timings"]["p"]["seconds"] > 0

    def test_current_depth_tracks_open_spans(self):
        tele = make_hub()
        assert tele.current_depth() == 0
        with tele.span("a"):
            with tele.span("b"):
                assert tele.current_depth() == 2
        assert tele.current_depth() == 0


class TestDisabled:
    def test_everything_is_a_noop(self):
        tele = Telemetry(enabled=False)
        with tele.span("a", kind="x", foo=1):
            with tele.phase("b"):
                pass
        tele.count("c")
        tele.gauge("g", 2.0)
        tele.observe("h", 1.0)
        tele.observe_many("h", [1.0, 2.0])
        tele.event("custom", {"k": 1})
        tele.defer(lambda t: [{}], (), 1)
        tele.add_time("p", 1.0)
        assert tele.events() == []
        assert tele.seq == 0
        assert tele.snapshot() == {"timings": {}, "counters": {}}
        assert tele.metrics_snapshot() == {"gauges": {}, "histograms": {}}

    def test_disabled_span_is_shared_null_object(self):
        tele = Telemetry(enabled=False)
        assert tele.span("a") is tele.span("b") is tele.phase("c")


class TestMetrics:
    def test_counters_accumulate(self):
        tele = make_hub()
        tele.count("n")
        tele.count("n", 4)
        assert tele.snapshot()["counters"] == {"n": 5}

    def test_gauge_emits_metric_event_and_keeps_last_value(self):
        tele = make_hub()
        tele.gauge("m", 1.0)
        tele.gauge("m", 2.5, round=7)
        events = tele.events()
        assert [ev["value"] for ev in events] == [1.0, 2.5]
        assert events[1]["attrs"] == {"round": 7}
        assert tele.metrics_snapshot()["gauges"] == {"m": 2.5}

    def test_histogram_buckets_and_default_edges(self):
        tele = make_hub()
        tele.register_histogram("h", edges=(0.0, 1.0))
        tele.observe("h", -1.0)
        tele.observe_many("h", [0.5, 0.5, 2.0])
        snap = tele.metrics_snapshot()["histograms"]["h"]
        assert snap["edges"] == [0.0, 1.0]
        assert snap["counts"] == [1, 2, 1]
        assert snap["total"] == 4
        assert snap["sum"] == pytest.approx(2.0)
        # unregistered metric falls back to the default grid
        tele.observe("other", 0.05)
        assert tele.metrics_snapshot()["histograms"]["other"]["total"] == 1

    def test_register_histogram_is_idempotent(self):
        tele = make_hub()
        tele.register_histogram("h", edges=(0.0,))
        tele.observe("h", 1.0)
        tele.register_histogram("h", edges=(5.0, 6.0))
        assert tele.metrics_snapshot()["histograms"]["h"]["edges"] == [0.0]

    def test_histogram_deferred_bucketing_flushes_on_snapshot(self):
        hist = Histogram(edges=(0.0,))
        for _ in range(10):
            hist.observe_many([1.0])
        # observations buffered; snapshot forces the bucketing pass
        assert hist.snapshot()["counts"] == [0, 10]

    def test_add_time_rejects_negative(self):
        with pytest.raises(ValueError):
            make_hub().add_time("p", -1.0)

    def test_tick_clock_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            TickClock(step=0.0)


class TestDeferredEmission:
    def test_defer_reserves_seq_range_in_stream_order(self):
        tele = make_hub()
        tele.event("before", {})

        def emitter(t, base):
            return [{"type": "deferred", "data": {"i": base + i}} for i in range(2)]

        tele.defer(emitter, (10,), 2)
        tele.event("after", {})
        events = tele.events()
        assert [ev["type"] for ev in events] == ["before", "deferred", "deferred", "after"]
        # seq order reads exactly as if the events were emitted inline
        assert [ev["seq"] for ev in events] == [0, 1, 2, 3]
        assert events[1]["data"] == {"i": 10}

    def test_defer_count_mismatch_raises_at_flush(self):
        tele = make_hub()
        tele.defer(lambda t: [{"type": "x"}], (), 2)
        with pytest.raises(RuntimeError, match="reserved 2"):
            tele.flush()

    def test_thunk_side_effects_run_in_emission_order(self):
        tele = make_hub()

        def emitter(t):
            t._gauges["from_thunk"] = 1.0
            return [{"type": "x"}]

        tele.defer(emitter, (), 1)
        # the gauge set inside the thunk lands before the snapshot reads
        assert tele.metrics_snapshot()["gauges"]["from_thunk"] == 1.0

    def test_explicit_flush_materializes_into_sinks(self):
        sink = MemorySink()
        tele = Telemetry(sinks=[sink], clock=TickClock())
        with tele.phase("p"):
            pass
        assert len(sink.events) == 0  # still pending
        tele.flush()
        assert len(sink.events) == 1

    def test_reset_clears_aggregates_but_not_seq(self):
        tele = make_hub()
        with tele.phase("p"):
            pass
        tele.count("c")
        tele.gauge("g", 1.0)
        seq = tele.seq
        tele.reset()
        assert tele.snapshot() == {"timings": {}, "counters": {}}
        assert tele.metrics_snapshot()["gauges"] == {}
        assert tele.seq == seq  # seq survives: no two events may share one


class TestGlobalHub:
    def test_set_telemetry_swaps_and_returns_previous(self):
        replacement = make_hub()
        previous = set_telemetry(replacement)
        try:
            assert get_telemetry() is replacement
        finally:
            assert set_telemetry(previous) is replacement
        assert get_telemetry() is previous


class TestProfileHelpers:
    def test_profile_delta_and_format(self):
        tele = make_hub()
        with tele.phase("p"):
            pass
        before = tele.snapshot()
        with tele.phase("p"):
            pass
        tele.count("c", 3)
        delta = profile_delta(before, tele.snapshot())
        assert delta["timings"]["p"]["calls"] == 1
        assert delta["counters"] == {"c": 3}
        rows = format_profile(delta)
        assert any("p" in row for row in rows)
