"""Sinks and the canonical JSONL trace encoding."""

import io
import json

import numpy as np
import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    ConsoleSink,
    JsonlSink,
    MemorySink,
    Telemetry,
    TickClock,
    decode_event,
    encode_event,
    read_trace,
)


class TestEncoding:
    def test_canonical_form_sorted_keys_no_whitespace(self):
        line = encode_event({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_round_trip(self):
        event = {"type": "span", "name": "p", "dur_s": 0.25, "seq": 4}
        assert decode_event(encode_event(event)) == event

    def test_numpy_and_set_coercion(self):
        event = {
            "f": np.float64(0.5),
            "i": np.int64(3),
            "a": np.arange(3),
            "s": {2, 1},
        }
        assert decode_event(encode_event(event)) == {
            "f": 0.5, "i": 3, "a": [0, 1, 2], "s": [1, 2],
        }

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            encode_event({"x": float("nan")})

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            encode_event({"x": object()})


class TestMemorySink:
    def test_bounded_ring_drops_oldest(self):
        sink = MemorySink(maxlen=3)
        for i in range(5):
            sink.emit({"seq": i})
        assert [ev["seq"] for ev in sink.events] == [2, 3, 4]


class TestJsonlSink:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tele = Telemetry(
            sinks=[MemorySink(), JsonlSink(path)], clock=TickClock()
        )
        with tele.span("round", kind="round", round=0):
            with tele.phase("round.phase"):
                pass
        tele.gauge("m", 1.5)
        tele.event("fifl.round", {"round": 0, "flagged": [3, 5]})
        tele.close()

        from_file = read_trace(path)
        in_memory = tele.events()
        # the file is the canonical encoding of exactly the same stream
        assert from_file == [
            decode_event(encode_event(ev)) for ev in in_memory
        ]
        assert [ev["seq"] for ev in from_file] == list(range(len(from_file)))
        assert all(ev["v"] == SCHEMA_VERSION for ev in from_file)
        assert from_file[-1]["data"]["flagged"] == [3, 5]

    def test_each_event_is_one_json_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"seq": 0})
            sink.emit({"seq": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(RuntimeError):
            sink.emit({"seq": 0})


class TestJsonlDurability:
    def test_flush_drains_userspace_buffers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"seq": 0})
        sink.flush()
        # readable from a second handle without closing the sink — the
        # property a kill/resume differential reads traces through
        assert path.read_text().splitlines() == ['{"seq":0}']
        sink.close()

    def test_fsync_on_flush_syncs_file(self, tmp_path, monkeypatch):
        import repro.telemetry.sinks as sinks_mod

        synced = []
        monkeypatch.setattr(sinks_mod.os, "fsync", synced.append)
        sink = JsonlSink(tmp_path / "t.jsonl", fsync_on_flush=True)
        sink.emit({"seq": 0})
        sink.flush()
        assert len(synced) == 1
        sink.close()  # close flushes again
        assert len(synced) == 2

    def test_fsync_off_by_default(self, tmp_path, monkeypatch):
        import repro.telemetry.sinks as sinks_mod

        synced = []
        monkeypatch.setattr(sinks_mod.os, "fsync", synced.append)
        with JsonlSink(tmp_path / "t.jsonl") as sink:
            sink.emit({"seq": 0})
            sink.flush()
        assert synced == []

    def test_flush_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl", fsync_on_flush=True)
        sink.close()
        sink.flush()  # must not raise on the closed handle

    def test_hub_flush_fans_out_to_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tele = Telemetry(
            sinks=[MemorySink(), JsonlSink(path, fsync_on_flush=True)],
            clock=TickClock(),
        )
        tele.event("fifl.round", {"round": 0})
        tele.flush()
        # without the fan-out the bytes would still sit in userspace
        assert len(path.read_text().splitlines()) == 1
        tele.close()


class TestConsoleSink:
    def test_prints_summary_on_close(self):
        stream = io.StringIO()
        tele = Telemetry(sinks=[ConsoleSink(stream)], clock=TickClock())
        with tele.phase("trainer.round"):
            pass
        tele.event(
            "fifl.round",
            {"round": 0, "accepted": 6, "flagged": [7], "uncertain": [],
             "reward_gini": 0.25, "share_entropy": 0.9},
        )
        tele.close()
        out = stream.getvalue()
        assert "trace summary" in out
        assert "reward_gini" in out
        assert "trainer.round" in out
