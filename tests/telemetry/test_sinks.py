"""Sinks and the canonical JSONL trace encoding."""

import io
import json

import numpy as np
import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    ConsoleSink,
    JsonlSink,
    MemorySink,
    Telemetry,
    TickClock,
    decode_event,
    encode_event,
    read_trace,
)


class TestEncoding:
    def test_canonical_form_sorted_keys_no_whitespace(self):
        line = encode_event({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_round_trip(self):
        event = {"type": "span", "name": "p", "dur_s": 0.25, "seq": 4}
        assert decode_event(encode_event(event)) == event

    def test_numpy_and_set_coercion(self):
        event = {
            "f": np.float64(0.5),
            "i": np.int64(3),
            "a": np.arange(3),
            "s": {2, 1},
        }
        assert decode_event(encode_event(event)) == {
            "f": 0.5, "i": 3, "a": [0, 1, 2], "s": [1, 2],
        }

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            encode_event({"x": float("nan")})

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            encode_event({"x": object()})


class TestMemorySink:
    def test_bounded_ring_drops_oldest(self):
        sink = MemorySink(maxlen=3)
        for i in range(5):
            sink.emit({"seq": i})
        assert [ev["seq"] for ev in sink.events] == [2, 3, 4]


class TestJsonlSink:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tele = Telemetry(
            sinks=[MemorySink(), JsonlSink(path)], clock=TickClock()
        )
        with tele.span("round", kind="round", round=0):
            with tele.phase("round.phase"):
                pass
        tele.gauge("m", 1.5)
        tele.event("fifl.round", {"round": 0, "flagged": [3, 5]})
        tele.close()

        from_file = read_trace(path)
        in_memory = tele.events()
        # the file is the canonical encoding of exactly the same stream
        assert from_file == [
            decode_event(encode_event(ev)) for ev in in_memory
        ]
        assert [ev["seq"] for ev in from_file] == list(range(len(from_file)))
        assert all(ev["v"] == SCHEMA_VERSION for ev in from_file)
        assert from_file[-1]["data"]["flagged"] == [3, 5]

    def test_each_event_is_one_json_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"seq": 0})
            sink.emit({"seq": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(RuntimeError):
            sink.emit({"seq": 0})


class TestJsonlDurability:
    def test_flush_drains_userspace_buffers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"seq": 0})
        sink.flush()
        # readable from a second handle without closing the sink — the
        # property a kill/resume differential reads traces through
        assert path.read_text().splitlines() == ['{"seq":0}']
        sink.close()

    def test_fsync_on_flush_syncs_file(self, tmp_path, monkeypatch):
        import repro.telemetry.sinks as sinks_mod

        synced = []
        monkeypatch.setattr(sinks_mod.os, "fsync", synced.append)
        sink = JsonlSink(tmp_path / "t.jsonl", fsync_on_flush=True)
        sink.emit({"seq": 0})
        sink.flush()
        assert len(synced) == 1
        sink.close()  # close flushes again
        assert len(synced) == 2

    def test_fsync_off_by_default(self, tmp_path, monkeypatch):
        import repro.telemetry.sinks as sinks_mod

        synced = []
        monkeypatch.setattr(sinks_mod.os, "fsync", synced.append)
        with JsonlSink(tmp_path / "t.jsonl") as sink:
            sink.emit({"seq": 0})
            sink.flush()
        assert synced == []

    def test_flush_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl", fsync_on_flush=True)
        sink.close()
        sink.flush()  # must not raise on the closed handle

    def test_hub_flush_fans_out_to_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tele = Telemetry(
            sinks=[MemorySink(), JsonlSink(path, fsync_on_flush=True)],
            clock=TickClock(),
        )
        tele.event("fifl.round", {"round": 0})
        tele.flush()
        # without the fan-out the bytes would still sit in userspace
        assert len(path.read_text().splitlines()) == 1
        tele.close()


class TestConsoleSink:
    def test_prints_summary_on_close(self):
        stream = io.StringIO()
        tele = Telemetry(sinks=[ConsoleSink(stream)], clock=TickClock())
        with tele.phase("trainer.round"):
            pass
        tele.event(
            "fifl.round",
            {"round": 0, "accepted": 6, "flagged": [7], "uncertain": [],
             "reward_gini": 0.25, "share_entropy": 0.9},
        )
        tele.close()
        out = stream.getvalue()
        assert "trace summary" in out
        assert "reward_gini" in out
        assert "trainer.round" in out


class TestMetricsTextSink:
    def make(self, tmp_path, **kw):
        from repro.telemetry import MetricsTextSink

        return MetricsTextSink(tmp_path / "metrics.prom", **kw)

    def gauge(self, name, value, **attrs):
        event = {"type": "metric", "kind": "gauge",
                 "name": name, "value": value}
        if attrs:
            event["attrs"] = attrs
        return event

    def test_gauge_keeps_last_value(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("loss", 0.9))
        sink.emit(self.gauge("loss", 0.4))
        assert "repro_loss 0.4" in sink.render()
        assert "0.9" not in sink.render()

    def test_distinct_label_sets_are_distinct_series(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("reputation", 0.2, worker=0))
        sink.emit(self.gauge("reputation", 0.7, worker=1))
        out = sink.render()
        assert 'repro_reputation{worker="0"} 0.2' in out
        assert 'repro_reputation{worker="1"} 0.7' in out

    def test_labels_render_sorted(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("x", 1.0, zeta="b", alpha="a"))
        assert 'repro_x{alpha="a",zeta="b"} 1.0' in sink.render()

    def test_type_lines_present(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("loss", 0.5))
        out = sink.render()
        assert "# TYPE repro_loss gauge" in out
        assert "# TYPE repro_events_total counter" in out

    def test_event_type_counters(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit({"type": "span", "name": "round"})
        sink.emit({"type": "span", "name": "round"})
        sink.emit(self.gauge("loss", 0.5))
        out = sink.render()
        assert 'repro_events_total{type="span"} 2' in out
        assert 'repro_events_total{type="metric"} 1' in out

    def test_metric_name_sanitized(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("fifl.reward-gini", 0.3))
        assert "repro_fifl_reward_gini 0.3" in sink.render()

    def test_digit_prefixed_name_guarded(self, tmp_path):
        from repro.telemetry.sinks import _metric_name

        name = _metric_name("99th_latency", "")
        assert not name[0].isdigit()

    def test_label_value_escaping(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("x", 1.0, path='a\\b"c\nd'))
        out = sink.render()
        assert '\\\\' in out       # backslash doubled
        assert '\\"' in out        # quote escaped
        assert '\\n' in out        # newline escaped
        assert "\nd" not in out    # no literal newline inside a value

    def test_custom_namespace(self, tmp_path):
        sink = self.make(tmp_path, namespace="fifl")
        sink.emit(self.gauge("loss", 0.5))
        assert "fifl_loss 0.5" in sink.render()

    def test_flush_writes_atomically(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("loss", 0.5))
        sink.flush()
        path = tmp_path / "metrics.prom"
        assert path.read_text() == sink.render()
        assert not (tmp_path / "metrics.prom.tmp").exists()

    def test_hub_counters_exported(self, tmp_path):
        sink = self.make(tmp_path)
        hub = Telemetry(sinks=[sink], clock=TickClock())
        sink.bind(hub)
        hub.count("uploads", 3)
        out = sink.render()
        assert "# TYPE repro_uploads_total counter" in out
        assert "repro_uploads_total 3" in out

    def test_close_flushes_once_then_latches(self, tmp_path):
        sink = self.make(tmp_path)
        sink.emit(self.gauge("loss", 0.5))
        sink.close()
        path = tmp_path / "metrics.prom"
        before = path.read_text()
        sink.emit(self.gauge("loss", 0.1))
        sink.flush()  # no-op after close
        sink.close()
        assert path.read_text() == before

    def test_hub_flush_drives_the_textfile(self, tmp_path):
        sink = self.make(tmp_path)
        hub = Telemetry(sinks=[sink], clock=TickClock())
        hub.gauge("loss", 0.25)
        hub.flush()
        assert "repro_loss 0.25" in (tmp_path / "metrics.prom").read_text()
