"""``telemetry summarize`` over parallel.round and resource.* streams."""

import json

from repro.telemetry.cli import main as telemetry_cli
from repro.telemetry.sinks import encode_event
from repro.telemetry.summary import parallel_summary, trace_summary


def parallel_round(seq=1, phase="fleet.local", backend="thread", pool=2,
                   shard_s=(0.02, 0.04), queue=(0.0, 0.001)):
    shard_s = list(shard_s)
    ordered = sorted(shard_s)
    mid = len(ordered) // 2
    median = (ordered[mid] if len(ordered) % 2
              else 0.5 * (ordered[mid - 1] + ordered[mid]))
    return {
        "v": 1, "seq": seq, "type": "parallel.round",
        "data": {"phase": phase, "backend": backend, "pool_size": pool,
                 "shards": len(shard_s), "shard_s": shard_s,
                 "queue_wait_s": list(queue), "max_shard_s": max(shard_s),
                 "median_shard_s": median},
    }


def resource_sample(seq=9, rnd=0, rss=64 << 20):
    return {
        "v": 1, "seq": seq, "type": "resource.sample",
        "data": {"round": rnd, "rss_bytes": rss, "gc_collections": 3,
                 "gc_pause_s_total": 0.004, "gc_pause_max_s": 0.003,
                 "blas_threads": 1},
    }


class TestParallelSummary:
    def test_none_for_serial_trace(self):
        assert parallel_summary([]) is None
        assert parallel_summary([{"type": "metric", "value": 1.0}]) is None

    def test_totals_across_dispatches(self):
        events = [
            parallel_round(seq=1, phase="fleet.local",
                           shard_s=(0.02, 0.04), queue=(0.0, 0.001)),
            parallel_round(seq=2, phase="fleet.upload",
                           shard_s=(0.01, 0.03), queue=(0.002, 0.0)),
        ]
        par = parallel_summary(events)
        assert par["dispatches"] == 2
        assert par["shards"] == 4
        assert par["run_s_total"] == round(0.02 + 0.04 + 0.01 + 0.03, 10)
        assert par["queue_wait_s_total"] == round(0.001 + 0.002, 10)
        assert set(par["by_phase"]) == {"fleet.local", "fleet.upload"}
        assert par["by_phase"]["fleet.local"]["shards"] == 2

    def test_worst_straggler_factor(self):
        events = [
            parallel_round(seq=1, shard_s=(0.01, 0.01, 0.05)),  # 5x median
            parallel_round(seq=2, shard_s=(0.01, 0.01, 0.02)),  # 2x median
        ]
        par = parallel_summary(events)
        assert par["straggler_factor_max"] == 5.0

    def test_trace_summary_carries_parallel_block(self):
        summary = trace_summary([parallel_round()])
        assert summary["parallel"]["dispatches"] == 1
        assert trace_summary([])["parallel"] is None


class TestSummarizeCli:
    def write(self, path, events):
        path.write_text(
            "\n".join(encode_event(e) for e in events) + "\n"
        )
        return path

    def test_parallel_block_rendered(self, tmp_path, capsys):
        path = self.write(tmp_path / "t.jsonl", [
            parallel_round(seq=1, phase="fleet.local"),
            parallel_round(seq=2, phase="fleet.upload"),
        ])
        assert telemetry_cli(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "parallel execution: 2 dispatches" in out
        assert "worst straggler" in out
        assert "fleet.local" in out and "fleet.upload" in out

    def test_resource_line_rendered(self, tmp_path, capsys):
        path = self.write(tmp_path / "t.jsonl", [
            resource_sample(seq=1, rnd=0, rss=64 << 20),
            resource_sample(seq=2, rnd=1, rss=80 << 20),
        ])
        assert telemetry_cli(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "resource samples: 2" in out
        assert "peak=80.0 MiB" in out
        assert "growth=+16.0 MiB" in out

    def test_serial_trace_has_no_parallel_block(self, tmp_path, capsys):
        path = self.write(tmp_path / "t.jsonl", [
            {"v": 1, "seq": 1, "type": "span", "name": "trainer.run",
             "kind": "run", "depth": 1, "dur_s": 0.1, "attrs": {}},
        ])
        assert telemetry_cli(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "parallel execution" not in out
        assert "resource samples" not in out

    def test_json_summary_includes_parallel(self, tmp_path, capsys):
        path = self.write(tmp_path / "t.jsonl", [parallel_round()])
        assert telemetry_cli(["summarize", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parallel"]["backend"] == "thread"
