"""Seeded runs must write byte-identical JSONL traces.

The whole stack is seeded and the telemetry clock is injectable, so a
fig09-style experiment driven with a :class:`TickClock` is a pure
function of its config: every span duration, every mechanism event and
every sequence number must reproduce exactly. The trace file therefore
works as a regression fixture — any byte of drift is a real behavior
change (ordering, control flow, or schema), never noise.
"""

import pytest

from repro.experiments.fig09_detection import default_config, run
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    Telemetry,
    TickClock,
    set_telemetry,
)
from repro.telemetry.cli import main as telemetry_cli


def tiny_config():
    return default_config().scaled(
        poison_rates=(0.5,),
        thresholds=(0.0,),
        tradeoff_thresholds=(0.0, 0.2),
        num_workers=6,
        samples_per_worker=40,
        test_samples=50,
        rounds=3,
        eval_every=3,
    )


def run_traced(path):
    """One scaled fig09 run with a fresh deterministic hub tracing to ``path``."""
    tele = Telemetry(
        sinks=[MemorySink(), JsonlSink(path)], clock=TickClock()
    )
    previous = set_telemetry(tele)
    try:
        run(tiny_config())
    finally:
        tele.close()
        set_telemetry(previous)
    return tele


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    root = tmp_path_factory.mktemp("traces")
    paths = (root / "a.jsonl", root / "b.jsonl")
    for path in paths:
        run_traced(path)
    return paths


class TestTraceDeterminism:
    def test_seeded_traces_are_byte_identical(self, traces):
        a, b = (path.read_bytes() for path in traces)
        assert len(a) > 0
        assert a == b

    def test_trace_covers_the_whole_hierarchy(self, traces):
        from repro.telemetry import read_trace

        events = read_trace(traces[0])
        names = {ev["name"] for ev in events if ev["type"] == "span"}
        # run -> round -> phase spans all present
        assert "trainer.run" in names
        assert "trainer.round" in names
        assert "trainer.mechanism" in names
        rounds = [ev for ev in events if ev["type"] == "fifl.round"]
        assert rounds, "mechanism emitted no per-round events"
        assert all("reward_gini" in ev["data"] for ev in rounds)
        seqs = [ev["seq"] for ev in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def run_fault_traced(path):
    """A seeded fault scenario (latency + stragglers + churn) under trace."""
    from repro.experiments.sim_churn import default_config as churn_config
    from repro.experiments.sim_churn import run as churn_run

    tele = Telemetry(
        sinks=[MemorySink(), JsonlSink(path)], clock=TickClock()
    )
    previous = set_telemetry(tele)
    try:
        churn_run(
            churn_config().scaled(
                rounds=6, eval_every=6, samples_per_worker=40, test_samples=50
            )
        )
    finally:
        tele.close()
        set_telemetry(previous)


class TestFaultScenarioTraceDeterminism:
    """Same seed + scenario => byte-identical JSONL trace (tentpole contract)."""

    @pytest.fixture(scope="class")
    def fault_traces(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("fault-traces")
        paths = (root / "a.jsonl", root / "b.jsonl")
        for path in paths:
            run_fault_traced(path)
        return paths

    def test_fault_traces_are_byte_identical(self, fault_traces):
        a, b = (path.read_bytes() for path in fault_traces)
        assert len(a) > 0
        assert a == b

    def test_trace_carries_sim_round_events(self, fault_traces):
        from repro.telemetry import read_trace

        events = read_trace(fault_traces[0])
        sim_rounds = [ev for ev in events if ev["type"] == "sim.round"]
        assert sim_rounds, "simulated run emitted no sim.round events"
        assert all("duration_s" in ev["data"] for ev in sim_rounds)
        # the churn scenario actually exercised the fault paths
        assert any(ev["data"]["offline"] for ev in sim_rounds)


class TestSummarizeCli:
    def test_renders_round_table_and_phase_breakdown(self, traces, capsys):
        assert telemetry_cli(["summarize", str(traces[0])]) == 0
        out = capsys.readouterr().out
        assert "trace summary (schema v1)" in out
        assert "reward_gini" in out
        assert "share_entropy" in out
        assert "flagged" in out
        assert "phase time breakdown:" in out
        assert "trainer.round" in out

    def test_json_mode_emits_machine_readable_summary(self, traces, capsys):
        import json

        assert telemetry_cli(["summarize", str(traces[0]), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema_version"] == 1
        assert summary["rounds"] > 0
        assert summary["reward_gini_mean"] is not None
        assert "trainer.round" in summary["spans"]

    def test_missing_trace_fails_cleanly(self, tmp_path, capsys):
        assert telemetry_cli(["summarize", str(tmp_path / "no.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err
