"""Profiling module tests: phase timers, counters, snapshots, deltas."""

import numpy as np
import pytest

from repro.profiling import (
    Profiler,
    format_profile,
    get_profiler,
    profile_delta,
    set_profiler,
)


class TestProfiler:
    def test_phase_accumulates_time_and_calls(self):
        prof = Profiler()
        for _ in range(3):
            with prof.phase("work"):
                pass
        snap = prof.snapshot()
        assert snap["timings"]["work"]["calls"] == 3
        assert snap["timings"]["work"]["seconds"] >= 0.0

    def test_phase_records_even_on_exception(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.phase("boom"):
                raise RuntimeError("fail inside phase")
        assert prof.snapshot()["timings"]["boom"]["calls"] == 1

    def test_add_time_folds_external_measurements(self):
        prof = Profiler()
        prof.add_time("io", 0.5)
        prof.add_time("io", 0.25, calls=2)
        stat = prof.snapshot()["timings"]["io"]
        assert stat["seconds"] == pytest.approx(0.75)
        assert stat["calls"] == 3

    def test_add_time_rejects_negative(self):
        with pytest.raises(ValueError):
            Profiler().add_time("io", -1.0)

    def test_counters(self):
        prof = Profiler()
        prof.count("workers")
        prof.count("workers", 4)
        assert prof.snapshot()["counters"]["workers"] == 5

    def test_snapshot_is_a_copy(self):
        prof = Profiler()
        prof.count("n")
        snap = prof.snapshot()
        prof.count("n")
        assert snap["counters"]["n"] == 1

    def test_reset(self):
        prof = Profiler()
        with prof.phase("p"):
            pass
        prof.count("c")
        prof.reset()
        assert prof.snapshot() == {"timings": {}, "counters": {}}


class TestProfileDelta:
    def test_delta_subtracts_and_keeps_new_phases(self):
        prof = Profiler()
        with prof.phase("old"):
            pass
        before = prof.snapshot()
        with prof.phase("old"):
            pass
        with prof.phase("new"):
            pass
        prof.count("c", 2)
        delta = profile_delta(before, prof.snapshot())
        assert delta["timings"]["old"]["calls"] == 1
        assert delta["timings"]["new"]["calls"] == 1
        assert delta["counters"]["c"] == 2

    def test_unchanged_phases_dropped(self):
        prof = Profiler()
        with prof.phase("idle"):
            pass
        before = prof.snapshot()
        delta = profile_delta(before, prof.snapshot())
        assert delta == {"timings": {}, "counters": {}}

    def test_format_profile_sorted_by_time(self):
        profile = {
            "timings": {
                "fast": {"seconds": 0.001, "calls": 1},
                "slow": {"seconds": 1.0, "calls": 2},
            },
            "counters": {"n": 3},
        }
        rows = format_profile(profile)
        assert "slow" in rows[0]
        assert any("n" in r for r in rows)


class TestProcessWideProfiler:
    def test_set_profiler_swaps_and_returns_previous(self):
        mine = Profiler()
        previous = set_profiler(mine)
        try:
            assert get_profiler() is mine
        finally:
            set_profiler(previous)
        assert get_profiler() is previous


class TestPipelineIntegration:
    """The trainer and mechanism thread their phases through one profiler."""

    def test_training_history_carries_per_run_profile(self):
        from repro.core import make_mechanism
        from repro.fl import FederatedTrainer
        from repro.nn import build_logreg
        from tests.helpers import N_CLASSES, N_FEATURES, make_federation

        workers, _, test = make_federation(num_workers=4)
        mine = Profiler()
        previous = set_profiler(mine)
        try:
            trainer = FederatedTrainer(
                build_logreg(N_FEATURES, N_CLASSES),
                workers,
                [0, 1],
                test_data=test,
                mechanism=make_mechanism("fifl", threshold=0.0),
                seed=0,
            )
            history = trainer.run(3, eval_every=3)
        finally:
            set_profiler(previous)

        timings = history.profile["timings"]
        for phase in (
            "trainer.local_compute",
            "trainer.mechanism",
            "trainer.aggregate",
            "fifl.detect",
            "fifl.contribution",
            "fifl.incentive",
        ):
            assert phase in timings, f"missing phase {phase}"
            assert timings[phase]["calls"] >= 3
        assert history.profile["counters"]["trainer.rounds"] == 3

    def test_profile_is_per_run_not_cumulative(self):
        from repro.core import make_mechanism
        from repro.fl import FederatedTrainer
        from repro.nn import build_logreg
        from tests.helpers import N_CLASSES, N_FEATURES, make_federation

        workers, _, test = make_federation(num_workers=3)
        mine = Profiler()
        previous = set_profiler(mine)
        try:
            trainer = FederatedTrainer(
                build_logreg(N_FEATURES, N_CLASSES),
                workers,
                [0],
                test_data=test,
                mechanism=make_mechanism("fifl", threshold=0.0),
                seed=0,
            )
            h1 = trainer.run(2, eval_every=2)
            h2 = trainer.run(2, eval_every=2)
        finally:
            set_profiler(previous)
        assert h1.profile["counters"]["trainer.rounds"] == 2
        assert h2.profile["counters"]["trainer.rounds"] == 2

    def test_rounds_are_jsonable(self):
        import json

        prof = Profiler()
        with prof.phase("p"):
            np.zeros(4).sum()
        prof.count("c", 2)
        json.dumps(prof.snapshot())  # must not raise
