"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    make_blobs,
    make_cifar10_like,
    make_mnist_like,
    train_test_split,
)


class TestDataset:
    def test_validation_mismatched_rows(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(2, dtype=int), 2)

    def test_validation_label_range(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), 2)

    def test_len(self):
        d = make_blobs(n_samples=17, seed=0)
        assert len(d) == 17

    def test_subset_copies(self):
        d = make_blobs(n_samples=10, seed=0)
        sub = d.subset(np.array([0, 1]))
        sub.x[:] = 0.0
        assert not np.allclose(d.x[:2], 0.0)

    def test_batches_cover_all(self):
        d = make_blobs(n_samples=10, seed=0)
        seen = sum(x.shape[0] for x, _ in d.batches(3))
        assert seen == 10

    def test_batches_shuffled_with_rng(self):
        d = make_blobs(n_samples=50, seed=0)
        b1 = next(iter(d.batches(50, rng=np.random.default_rng(1))))
        b2 = next(iter(d.batches(50)))
        assert not np.allclose(b1[0], b2[0])

    def test_batches_rejects_bad_size(self):
        d = make_blobs(n_samples=5)
        with pytest.raises(ValueError):
            list(d.batches(0))


class TestGenerators:
    def test_blobs_shape(self):
        d = make_blobs(n_samples=20, n_features=6, num_classes=4, seed=1)
        assert d.x.shape == (20, 6)
        assert d.num_classes == 4

    def test_mnist_like_shape(self):
        d = make_mnist_like(n_samples=8, seed=1)
        assert d.x.shape == (8, 1, 28, 28)
        assert d.num_classes == 10

    def test_cifar10_like_shape(self):
        d = make_cifar10_like(n_samples=8, seed=1)
        assert d.x.shape == (8, 3, 32, 32)

    def test_deterministic(self):
        a = make_blobs(seed=5)
        b = make_blobs(seed=5)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seeds_differ(self):
        a = make_blobs(seed=5)
        b = make_blobs(seed=6)
        assert not np.allclose(a.x, b.x)

    def test_learnable_with_logreg(self):
        # Sanity: a linear model separates the blobs well above chance.
        from repro.nn import SoftmaxCrossEntropy, build_logreg

        d = make_blobs(n_samples=600, n_features=10, num_classes=3, seed=2)
        train, test = train_test_split(d, 0.25, seed=0)
        model = build_logreg(10, 3, seed=0)
        loss_fn = SoftmaxCrossEntropy()
        for _ in range(80):
            loss_fn(model.forward(train.x, training=True), train.y)
            model.backward(loss_fn.backward())
            model.apply_flat_grads(model.get_flat_grads(), lr=0.5)
        acc = (model.predict(test.x).argmax(axis=1) == test.y).mean()
        assert acc > 0.8

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            make_blobs(n_samples=0)


class TestSplit:
    def test_sizes(self):
        d = make_blobs(n_samples=100, seed=0)
        train, test = train_test_split(d, 0.2, seed=0)
        assert len(test) == 20
        assert len(train) == 80

    def test_disjoint_and_complete(self):
        d = make_blobs(n_samples=50, n_features=3, seed=0)
        train, test = train_test_split(d, 0.3, seed=1)
        all_rows = np.vstack([train.x, test.x])
        assert all_rows.shape[0] == 50
        # every original row appears exactly once
        orig = {tuple(r) for r in d.x}
        got = {tuple(r) for r in all_rows}
        assert orig == got

    def test_invalid_fraction(self):
        d = make_blobs(n_samples=10)
        with pytest.raises(ValueError):
            train_test_split(d, 0.0)
        with pytest.raises(ValueError):
            train_test_split(d, 1.0)
