"""Tests for label poisoning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import flip_labels, make_blobs, poison_dataset


class TestFlipLabels:
    def test_exact_error_rate(self):
        rng = np.random.default_rng(0)
        y = np.zeros(100, dtype=int)
        flipped = flip_labels(y, 0.3, 4, rng)
        assert (flipped != y).sum() == 30

    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(0)
        y = np.arange(10) % 3
        np.testing.assert_array_equal(flip_labels(y, 0.0, 3, rng), y)

    def test_full_rate_flips_everything(self):
        rng = np.random.default_rng(0)
        y = np.ones(50, dtype=int)
        flipped = flip_labels(y, 1.0, 5, rng)
        assert (flipped != y).all()

    def test_labels_stay_in_range(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 7, size=200)
        flipped = flip_labels(y, 0.5, 7, rng)
        assert flipped.min() >= 0 and flipped.max() < 7

    def test_original_untouched(self):
        rng = np.random.default_rng(2)
        y = np.zeros(20, dtype=int)
        flip_labels(y, 1.0, 3, rng)
        assert (y == 0).all()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            flip_labels(np.zeros(5, dtype=int), 1.5, 3, rng)
        with pytest.raises(ValueError):
            flip_labels(np.zeros(5, dtype=int), 0.5, 1, rng)

    @settings(max_examples=30, deadline=None)
    @given(
        p_d=st.floats(0.0, 1.0),
        n=st.integers(1, 300),
        classes=st.integers(2, 10),
        seed=st.integers(0, 1000),
    )
    def test_property_flip_count_and_range(self, p_d, n, classes, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, classes, size=n)
        flipped = flip_labels(y, p_d, classes, np.random.default_rng(seed + 1))
        assert (flipped != y).sum() == int(round(p_d * n))
        assert flipped.min() >= 0 and flipped.max() < classes


class TestPoisonDataset:
    def test_features_unchanged(self):
        d = make_blobs(n_samples=40, seed=0)
        p = poison_dataset(d, 0.5, np.random.default_rng(0))
        np.testing.assert_array_equal(p.x, d.x)

    def test_name_records_rate(self):
        d = make_blobs(n_samples=10, seed=0)
        p = poison_dataset(d, 0.2, np.random.default_rng(0))
        assert "0.2" in p.name
