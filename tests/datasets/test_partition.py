"""Tests for dataset partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    dirichlet_partition,
    iid_partition,
    make_blobs,
    sized_partition,
)


class TestIID:
    def test_covers_everything_disjointly(self):
        d = make_blobs(n_samples=101, n_features=4, seed=0)
        shards = iid_partition(d, 7, seed=1)
        assert sum(len(s) for s in shards) == 101
        rows = np.vstack([s.x for s in shards])
        assert {tuple(r) for r in rows} == {tuple(r) for r in d.x}

    def test_near_equal_sizes(self):
        d = make_blobs(n_samples=100, seed=0)
        shards = iid_partition(d, 8, seed=0)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_errors(self):
        d = make_blobs(n_samples=5)
        with pytest.raises(ValueError):
            iid_partition(d, 0)
        with pytest.raises(ValueError):
            iid_partition(d, 6)


class TestSized:
    def test_exact_sizes_with_replacement(self):
        d = make_blobs(n_samples=50, seed=0)
        shards = sized_partition(d, [3, 100, 7], seed=0)
        assert [len(s) for s in shards] == [3, 100, 7]

    def test_disjoint_mode(self):
        d = make_blobs(n_samples=30, n_features=4, seed=0)
        shards = sized_partition(d, [10, 5], seed=0, replace=False)
        rows_a = {tuple(r) for r in shards[0].x}
        rows_b = {tuple(r) for r in shards[1].x}
        assert not rows_a & rows_b

    def test_disjoint_overflow_rejected(self):
        d = make_blobs(n_samples=10)
        with pytest.raises(ValueError):
            sized_partition(d, [6, 6], replace=False)

    def test_validation(self):
        d = make_blobs(n_samples=10)
        with pytest.raises(ValueError):
            sized_partition(d, [])
        with pytest.raises(ValueError):
            sized_partition(d, [0, 3])

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.integers(1, 200), min_size=1, max_size=10))
    def test_property_sizes_honored(self, sizes):
        d = make_blobs(n_samples=20, seed=0)
        shards = sized_partition(d, sizes, seed=3)
        assert [len(s) for s in shards] == sizes


class TestDirichlet:
    def test_covers_everything(self):
        d = make_blobs(n_samples=200, num_classes=5, seed=0)
        shards = dirichlet_partition(d, 6, alpha=0.5, seed=1)
        assert sum(len(s) for s in shards) == 200

    def test_no_empty_shards_even_when_skewed(self):
        d = make_blobs(n_samples=60, num_classes=2, seed=0)
        shards = dirichlet_partition(d, 10, alpha=0.05, seed=2)
        assert all(len(s) >= 1 for s in shards)

    def test_small_alpha_more_skewed_than_large(self):
        d = make_blobs(n_samples=2000, num_classes=5, seed=0)

        def skew(alpha):
            shards = dirichlet_partition(d, 5, alpha=alpha, seed=3)
            # mean across workers of (max class share)
            vals = []
            for s in shards:
                counts = np.bincount(s.y, minlength=5)
                vals.append(counts.max() / max(1, counts.sum()))
            return np.mean(vals)

        assert skew(0.05) > skew(100.0)

    def test_validation(self):
        d = make_blobs(n_samples=10)
        with pytest.raises(ValueError):
            dirichlet_partition(d, 0)
        with pytest.raises(ValueError):
            dirichlet_partition(d, 2, alpha=0.0)
