"""Tests for the contribution module (Eq. 13-14)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    contributions,
    gradient_distance,
    normalized_shares,
    reference_baseline,
    sliced_distance,
    zero_baseline,
)
from repro.fl import split_gradient


class TestGradientDistance:
    def test_squared_euclidean(self):
        assert gradient_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 25.0

    def test_identical_is_zero(self):
        g = np.arange(5.0)
        assert gradient_distance(g, g) == 0.0

    def test_symmetry(self):
        a, b = np.array([1.0, 2.0]), np.array([-1.0, 4.0])
        assert gradient_distance(a, b) == gradient_distance(b, a)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gradient_distance(np.zeros(2), np.zeros(3))


class TestSlicedDistance:
    @settings(max_examples=30, deadline=None)
    @given(length=st.integers(2, 100), m=st.integers(1, 8), seed=st.integers(0, 999))
    def test_property_equals_full_distance(self, length, m, seed):
        # Eq. 13's per-server sum == full-vector distance, exactly.
        if m > length:
            return
        rng = np.random.default_rng(seed)
        g_global = rng.normal(size=length)
        g_worker = rng.normal(size=length)
        gs = dict(enumerate(split_gradient(g_global, m)))
        ws = dict(enumerate(split_gradient(g_worker, m)))
        assert sliced_distance(gs, ws) == pytest.approx(
            gradient_distance(g_global, g_worker), rel=1e-12
        )

    def test_mismatched_servers(self):
        with pytest.raises(ValueError):
            sliced_distance({0: np.zeros(2)}, {1: np.zeros(2)})

    def test_empty(self):
        with pytest.raises(ValueError):
            sliced_distance({}, {})


class TestBaselines:
    def test_zero_baseline_is_global_norm(self):
        g = np.array([3.0, 4.0])
        assert zero_baseline(g) == 25.0

    def test_reference_baseline(self):
        g = np.array([1.0, 1.0])
        ref = np.array([0.0, 0.0])
        assert reference_baseline(g, ref) == 2.0


class TestContributions:
    def test_eq14(self):
        c = contributions({0: 5.0, 1: 20.0}, b_h=10.0)
        assert c[0] == pytest.approx(0.5)
        assert c[1] == pytest.approx(-1.0)

    def test_zero_gradient_worker_contributes_zero(self):
        # free-rider uploading G_0 = 0 has b_i = ||G||^2 = b_h -> C = 0
        g = np.array([1.0, 2.0])
        b_h = zero_baseline(g)
        b_freerider = gradient_distance(g, np.zeros(2))
        c = contributions({0: b_freerider}, b_h)
        assert c[0] == pytest.approx(0.0)

    def test_perfect_worker_contributes_one(self):
        c = contributions({0: 0.0}, b_h=7.0)
        assert c[0] == 1.0

    def test_monotone_in_quality(self):
        # smaller distance -> larger contribution
        c = contributions({0: 1.0, 1: 2.0, 2: 3.0}, b_h=4.0)
        assert c[0] > c[1] > c[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            contributions({0: 1.0}, b_h=0.0)
        with pytest.raises(ValueError):
            contributions({0: -1.0}, b_h=1.0)


class TestNormalizedShares:
    def test_positive_shares_sum_to_one(self):
        shares = normalized_shares({0: 3.0, 1: 1.0, 2: -2.0})
        assert shares[0] + shares[1] == pytest.approx(1.0)
        assert shares[2] == pytest.approx(-0.5)

    def test_all_negative_gives_zero(self):
        shares = normalized_shares({0: -1.0, 1: -2.0})
        assert shares == {0: 0.0, 1: 0.0}

    @settings(max_examples=30, deadline=None)
    @given(
        contribs=st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=1, max_size=12
        )
    )
    def test_property_positive_mass_conserved(self, contribs):
        d = dict(enumerate(contribs))
        shares = normalized_shares(d)
        pos = sum(v for v in shares.values() if v > 0)
        if any(c > 0 for c in contribs):
            assert pos == pytest.approx(1.0)
        else:
            assert pos == 0.0
