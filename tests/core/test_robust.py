"""Tests for the robust-aggregation comparison defences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KrumMechanism,
    MedianMechanism,
    coordinate_median,
    krum,
    trimmed_mean,
)
from repro.fl import FederatedTrainer, SignFlippingWorker
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


class TestCoordinateMedian:
    def test_matches_numpy_median(self):
        grads = [np.array([1.0, 5.0]), np.array([2.0, 6.0]), np.array([3.0, 4.0])]
        np.testing.assert_array_equal(coordinate_median(grads), [2.0, 5.0])

    def test_robust_to_one_outlier(self):
        grads = [np.ones(3), np.ones(3), np.full(3, 1e9)]
        np.testing.assert_array_equal(coordinate_median(grads), np.ones(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coordinate_median([])


class TestTrimmedMean:
    def test_no_trim_is_mean(self):
        grads = [np.array([0.0]), np.array([2.0]), np.array([4.0])]
        assert trimmed_mean(grads, 0)[0] == pytest.approx(2.0)

    def test_trim_removes_extremes(self):
        grads = [np.array([0.0]), np.array([2.0]), np.array([1000.0])]
        assert trimmed_mean(grads, 1)[0] == pytest.approx(2.0)

    def test_validation(self):
        grads = [np.zeros(2)] * 3
        with pytest.raises(ValueError):
            trimmed_mean(grads, -1)
        with pytest.raises(ValueError):
            trimmed_mean(grads, 2)


class TestKrum:
    def test_selects_cluster_member(self):
        rng = np.random.default_rng(0)
        center = rng.normal(size=8)
        honest = [center + 0.1 * rng.normal(size=8) for _ in range(5)]
        byzantine = [-10 * center, 10 * center + rng.normal(size=8)]
        grads = honest + byzantine
        winner = krum(grads, num_byzantine=2)
        assert winner < 5  # one of the honest cluster

    def test_validation(self):
        grads = [np.zeros(2)] * 4
        with pytest.raises(ValueError):
            krum(grads, num_byzantine=-1)
        with pytest.raises(ValueError):
            krum(grads, num_byzantine=3)  # n - f - 2 = -1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), n_honest=st.integers(4, 8))
    def test_property_never_picks_the_flipped_outlier(self, seed, n_honest):
        rng = np.random.default_rng(seed)
        center = rng.normal(size=6)
        grads = [center + 0.05 * rng.normal(size=6) for _ in range(n_honest)]
        grads.append(-8.0 * center)  # the Byzantine upload is last
        assert krum(grads, num_byzantine=1) != n_honest


def _attacked_trainer(mechanism, num_workers=6, p_s=8.0, seed=0):
    workers, _, test = make_federation(num_workers=num_workers, seed=seed)
    workers[0] = make_federation(
        num_workers=num_workers, seed=seed,
        worker_cls=SignFlippingWorker, worker_kwargs={"p_s": p_s},
    )[0][0]
    model = build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    return FederatedTrainer(
        model, workers, [1, 2], test_data=test, mechanism=mechanism, server_lr=0.1
    )


class TestKrumMechanism:
    def test_accepts_exactly_one_worker(self):
        trainer = _attacked_trainer(KrumMechanism(num_byzantine=1))
        rec = trainer.run_round(0)
        assert sum(rec.accepted.values()) == 1

    def test_never_selects_the_attacker(self):
        trainer = _attacked_trainer(KrumMechanism(num_byzantine=1))
        for t in range(5):
            rec = trainer.run_round(t)
            assert rec.accepted[0] is False

    def test_protects_accuracy(self):
        defended = _attacked_trainer(KrumMechanism(num_byzantine=1))
        acc_krum = defended.run(25, eval_every=25).final_accuracy()
        undefended = _attacked_trainer(None)
        acc_none = undefended.run(25, eval_every=25).final_accuracy()
        assert acc_krum > acc_none

    def test_validation(self):
        with pytest.raises(ValueError):
            KrumMechanism(num_byzantine=-1)


class TestMedianMechanism:
    def test_rejects_the_attacker(self):
        trainer = _attacked_trainer(MedianMechanism(keep_fraction=0.5))
        rec = trainer.run_round(0)
        assert rec.accepted[0] is False
        assert sum(rec.accepted.values()) == 3  # half of six

    def test_keep_fraction_one_accepts_all(self):
        trainer = _attacked_trainer(MedianMechanism(keep_fraction=1.0))
        rec = trainer.run_round(0)
        assert all(rec.accepted.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            MedianMechanism(keep_fraction=0.0)
        with pytest.raises(ValueError):
            MedianMechanism(keep_fraction=1.5)
