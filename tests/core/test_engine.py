"""Round-engine tests: batched layout + vectorized-vs-scalar differentials.

The vectorized engine must be a drop-in for the scalar reference: every
per-round output (scores, accepts, reputations, distances, b_h,
contributions, shares, rewards) agrees to 1e-8 on seeded rounds, across
the pipeline's branchy corners — uncertain workers, all-rejected rounds,
both punish modes, reference baselines, the contribution filter's second
pass, server-mean references, SLM reputation, raw detection scores, and
non-finite gradients from blown-up training.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_mechanism
from repro.core.engine import RoundBatch, stack_benchmarks
from repro.fl.gradients import fedavg, recombine, slice_offsets, split_gradient
from repro.fl.trainer import RoundContext
from repro.fl.workers import WorkerUpdate

TOL = 1e-8


def make_ctx(
    num_workers=8,
    dim=48,
    num_servers=2,
    round_idx=0,
    seed=0,
    uncertain=(),
    attacker_scale=-2.0,
    blowup=(),
):
    """Synthetic round: servers are workers 0..M-1, every 5th worker deviates."""
    rng = np.random.default_rng(seed * 7919 + round_idx)
    server_ranks = list(range(num_servers))
    honest = rng.standard_normal(dim)
    updates, slices = {}, {}
    for wid in range(num_workers):
        noise = rng.standard_normal(dim)
        if wid in blowup:
            grad = np.full(dim, np.inf)
        elif wid % 5 or wid == 0:
            grad = honest + 0.3 * noise
        else:
            grad = attacker_scale * honest + noise
        updates[wid] = WorkerUpdate(worker_id=wid, gradient=grad, num_samples=100)
        if wid in uncertain:
            continue  # lost a slice: no delivery this round
        parts = split_gradient(grad, num_servers)
        slices[wid] = {srv: parts[j] for j, srv in enumerate(server_ranks)}
    return RoundContext(
        round_idx=round_idx,
        global_params=np.zeros(dim),
        server_ranks=server_ranks,
        slices=slices,
        updates=updates,
        uncertain=set(uncertain),
        sample_counts={w: 100 + 10 * (w % 3) for w in range(num_workers)},
    )


def _assert_value_close(a, b, label):
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) or math.isnan(b):
            assert math.isnan(a) and math.isnan(b), f"{label}: {a} vs {b}"
        elif math.isinf(a) or math.isinf(b):
            assert a == b, f"{label}: {a} vs {b}"
        else:
            assert abs(a - b) < TOL, f"{label}: {a} vs {b}"
    else:
        assert a == b, f"{label}: {a!r} vs {b!r}"


def assert_records_match(scalar_records, vector_records):
    """Every FIFLRoundRecord field agrees across the two engines."""
    assert len(scalar_records) == len(vector_records)
    dict_fields = (
        "scores", "accepted", "reputations", "distances",
        "contribs", "shares", "rewards",
    )
    for s, v in zip(scalar_records, vector_records):
        for name in dict_fields:
            sd, vd = getattr(s, name), getattr(v, name)
            assert sd.keys() == vd.keys(), f"round {s.round_idx} {name} keys"
            for w in sd:
                _assert_value_close(
                    sd[w], vd[w], f"round {s.round_idx} {name}[{w}]"
                )
        if s.b_h is None or v.b_h is None:
            assert s.b_h == v.b_h, f"round {s.round_idx} b_h"
        else:
            _assert_value_close(s.b_h, v.b_h, f"round {s.round_idx} b_h")


def run_engines(contexts, **cfg_kwargs):
    """Same rounds through both engines; returns (scalar, vectorized) records."""
    out = {}
    for engine in ("scalar", "vectorized"):
        mech = make_mechanism("fifl", engine=engine, **cfg_kwargs)
        with np.errstate(all="ignore"):
            for ctx in contexts:
                mech.process_round(ctx)
        out[engine] = mech.records
    return out["scalar"], out["vectorized"]


# -- RoundBatch layout --------------------------------------------------------


class TestRoundBatch:
    def test_rows_are_recombined_gradients_in_id_order(self):
        ctx = make_ctx(num_workers=6, num_servers=3, uncertain=(4,))
        batch = RoundBatch.from_context(ctx)
        assert list(batch.worker_ids) == sorted(ctx.slices)
        for i, wid in enumerate(batch.worker_ids):
            full = recombine([ctx.slices[wid][s] for s in ctx.server_ranks])
            np.testing.assert_array_equal(batch.gradients[i], full)

    def test_offsets_match_slice_offsets_table(self):
        ctx = make_ctx(num_workers=5, dim=50, num_servers=3)
        batch = RoundBatch.from_context(ctx)
        np.testing.assert_array_equal(batch.offsets, slice_offsets(50, 3))

    def test_server_block_is_a_view_of_the_slice_columns(self):
        ctx = make_ctx(num_workers=5, num_servers=2)
        batch = RoundBatch.from_context(ctx)
        for j, srv in enumerate(ctx.server_ranks):
            block = batch.server_block(j)
            assert block.base is batch.gradients
            for i, wid in enumerate(batch.worker_ids):
                np.testing.assert_array_equal(block[i], ctx.slices[wid][srv])

    def test_empty_round_stacks_to_none(self):
        ctx = make_ctx(num_workers=4, uncertain=(0, 1, 2, 3))
        assert RoundBatch.from_context(ctx) is None

    def test_weighted_average_matches_fedavg_recombine(self):
        ctx = make_ctx(num_workers=7, num_servers=3)
        batch = RoundBatch.from_context(ctx)
        keep = np.array([True, False, True, True, False, True, True])
        kept_ids = [int(w) for w, k in zip(batch.worker_ids, keep) if k]
        weights = [ctx.sample_counts[w] for w in kept_ids]
        expected = recombine([
            fedavg([ctx.slices[w][srv] for w in kept_ids], weights)
            for srv in ctx.server_ranks
        ])
        np.testing.assert_allclose(
            batch.weighted_average(keep), expected, atol=TOL, rtol=0
        )

    def test_weighted_average_all_kept_fast_path_agrees(self):
        ctx = make_ctx(num_workers=6)
        batch = RoundBatch.from_context(ctx)
        all_keep = np.ones(batch.num_workers, dtype=bool)
        drop_none = batch.weighted_average(all_keep)
        # same reduction through the copying branch
        almost = all_keep.copy()
        expected = (
            batch.sample_counts / batch.sample_counts.sum()
        ) @ batch.gradients
        np.testing.assert_allclose(drop_none, expected, atol=TOL, rtol=0)
        assert batch.weighted_average(~almost) is None

    def test_mask_accepts_dict_and_array_forms(self):
        ctx = make_ctx(num_workers=4)
        batch = RoundBatch.from_context(ctx)
        verdict = {0: True, 1: False, 2: True, 3: False}
        np.testing.assert_array_equal(
            batch.mask(verdict), np.array([True, False, True, False])
        )
        np.testing.assert_array_equal(
            batch.mask(np.array([1, 0, 1, 0], dtype=bool)),
            np.array([True, False, True, False]),
        )

    def test_mask_missing_worker_defaults_to_rejected(self):
        ctx = make_ctx(num_workers=3)
        batch = RoundBatch.from_context(ctx)
        assert not batch.mask({0: True})[1:].any()

    def test_to_dict_roundtrip_and_shape_guard(self):
        ctx = make_ctx(num_workers=4)
        batch = RoundBatch.from_context(ctx)
        values = np.arange(4, dtype=np.float64)
        out = batch.to_dict(values)
        assert out == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        assert all(type(v) is float for v in out.values())
        with pytest.raises(ValueError):
            batch.to_dict(np.arange(3))

    def test_row_sqnorms_cached_and_correct(self):
        ctx = make_ctx(num_workers=5)
        batch = RoundBatch.from_context(ctx)
        first = batch.row_sqnorms
        np.testing.assert_allclose(
            first, (batch.gradients**2).sum(axis=1), atol=TOL, rtol=0
        )
        assert batch.row_sqnorms is first

    def test_stack_benchmarks_skips_crashed_servers(self):
        ctx = make_ctx(num_workers=6, num_servers=3)
        del ctx.updates[1]  # server 1 crashed: no local gradient
        batch = RoundBatch.from_context(ctx)
        ranks, slots, bench = stack_benchmarks(ctx, batch.offsets)
        assert list(ranks) == [0, 2]
        assert list(slots) == [0, 2]
        for rank, slot, sl in zip(ranks, slots, bench):
            expected = split_gradient(ctx.updates[rank].gradient, 3)[slot]
            np.testing.assert_array_equal(sl, expected)


# -- differential: vectorized == scalar ---------------------------------------


class TestEngineDifferential:
    def test_multi_round_with_attackers_and_uncertain(self):
        contexts = [
            make_ctx(num_workers=12, num_servers=3, round_idx=t, uncertain=(7,))
            for t in range(5)
        ]
        assert_records_match(*run_engines(contexts, threshold=0.0, gamma=0.2))

    def test_single_server_no_self_score_exclusion(self):
        # m == 1: the self-scoring exclusion is disabled; the lone server
        # scores its own slice too.
        contexts = [
            make_ctx(num_workers=6, num_servers=1, round_idx=t) for t in range(3)
        ]
        assert_records_match(*run_engines(contexts, threshold=0.0, gamma=0.3))

    def test_all_rejected_round(self):
        # an impossible threshold rejects everyone: G̃ is None, no
        # contributions or rewards, reputations still update
        contexts = [make_ctx(num_workers=8, round_idx=t) for t in range(3)]
        assert_records_match(*run_engines(contexts, threshold=2.0, gamma=0.2))

    def test_everything_uncertain_round(self):
        # nobody delivers: detection has nothing to score, but uncertain
        # events still hit the reputation estimator
        contexts = [
            make_ctx(num_workers=4, round_idx=0),
            make_ctx(num_workers=4, round_idx=1, uncertain=(0, 1, 2, 3)),
            make_ctx(num_workers=4, round_idx=2),
        ]
        assert_records_match(*run_engines(contexts, threshold=0.0, gamma=0.2))

    @pytest.mark.parametrize("punish_mode", ["contribution", "eq15"])
    def test_punish_modes(self, punish_mode):
        contexts = [make_ctx(num_workers=10, round_idx=t) for t in range(3)]
        assert_records_match(
            *run_engines(contexts, threshold=0.0, punish_mode=punish_mode)
        )

    def test_reference_baseline(self):
        contexts = [make_ctx(num_workers=9, round_idx=t) for t in range(3)]
        assert_records_match(*run_engines(
            contexts,
            threshold=-1.0,
            contribution_baseline="reference",
            reference_worker=3,
        ))

    def test_reference_baseline_with_reference_worker_missing(self):
        # the reference worker lost its upload: both engines fall back to
        # the zero baseline for that round
        contexts = [
            make_ctx(num_workers=9, round_idx=t, uncertain=(3,)) for t in range(2)
        ]
        assert_records_match(*run_engines(
            contexts,
            threshold=-1.0,
            contribution_baseline="reference",
            reference_worker=3,
        ))

    def test_contribution_filter_second_pass(self):
        contexts = [make_ctx(num_workers=12, round_idx=t) for t in range(4)]
        assert_records_match(*run_engines(
            contexts, threshold=-1.0, contribution_filter=True
        ))

    def test_server_mean_reference(self):
        contexts = [
            make_ctx(num_workers=10, num_servers=3, round_idx=t) for t in range(3)
        ]
        assert_records_match(*run_engines(
            contexts, threshold=0.0, contribution_reference="server_mean"
        ))

    def test_server_mean_with_contribution_filter_keeps_first_pass(self):
        # filter + server_mean: the second re-aggregation pass only applies
        # to the "aggregate" reference; both engines must skip it
        contexts = [make_ctx(num_workers=10, round_idx=t) for t in range(3)]
        assert_records_match(*run_engines(
            contexts,
            threshold=-1.0,
            contribution_filter=True,
            contribution_reference="server_mean",
        ))

    def test_slm_reputation_mode(self):
        contexts = [
            make_ctx(num_workers=8, round_idx=t, uncertain=(5,) if t % 2 else ())
            for t in range(6)
        ]
        assert_records_match(*run_engines(
            contexts, threshold=0.0, reputation_mode="slm", slm_period=3
        ))

    def test_raw_detection_mode(self):
        contexts = [make_ctx(num_workers=8, round_idx=t) for t in range(3)]
        assert_records_match(
            *run_engines(contexts, threshold=0.0, mode="raw")
        )

    def test_non_finite_gradient_from_blown_up_worker(self):
        # high-intensity attacks legitimately produce inf gradients; the
        # vectorized expansion-form distances must repair those rows to
        # the scalar answer instead of emitting NaN
        contexts = [
            make_ctx(num_workers=8, round_idx=t, blowup=(6,)) for t in range(2)
        ]
        assert_records_match(*run_engines(contexts, threshold=0.0, gamma=0.2))

    def test_fifl_scalar_factory_preset_matches_explicit_engine(self):
        mech = make_mechanism("fifl-scalar", threshold=0.0)
        assert mech.config.engine == "scalar"

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        num_workers=st.integers(3, 16),
        num_servers=st.integers(1, 3),
        n_uncertain=st.integers(0, 2),
        threshold=st.sampled_from([-1.0, 0.0, 0.5]),
        punish_mode=st.sampled_from(["contribution", "eq15"]),
        contribution_filter=st.booleans(),
    )
    def test_property_seeded_rounds_agree(
        self, seed, num_workers, num_servers, n_uncertain,
        threshold, punish_mode, contribution_filter,
    ):
        num_servers = min(num_servers, num_workers)
        uncertain = tuple(
            range(num_servers, min(num_servers + n_uncertain, num_workers))
        )
        contexts = [
            make_ctx(
                num_workers=num_workers,
                dim=24,
                num_servers=num_servers,
                round_idx=t,
                seed=seed,
                uncertain=uncertain,
            )
            for t in range(3)
        ]
        assert_records_match(*run_engines(
            contexts,
            threshold=threshold,
            punish_mode=punish_mode,
            contribution_filter=contribution_filter,
        ))


# -- differential on the paper-figure configs ---------------------------------


@pytest.mark.slow
class TestFigureConfigDifferential:
    """End-to-end training agrees across engines on real figure configs."""

    @staticmethod
    def _run_both(fed_cfg, attackers):
        from repro.experiments.common import run_federated

        out = {}
        for engine in ("scalar", "vectorized"):
            history, mech = run_federated(
                fed_cfg.scaled(engine=engine), attackers, with_fifl=True
            )
            out[engine] = (history, mech)
        (h_s, m_s), (h_v, m_v) = out["scalar"], out["vectorized"]
        acc_s = [a for a in h_s.series("test_acc") if a is not None]
        acc_v = [a for a in h_v.series("test_acc") if a is not None]
        np.testing.assert_allclose(acc_s, acc_v, atol=TOL, rtol=0)
        assert_records_match(m_s.records, m_v.records)

    def test_fig09_config(self):
        from repro.experiments import fig09_detection
        from repro.experiments.common import data_poison

        fed = fig09_detection._default_fed().scaled(
            rounds=4, eval_every=4, detection_threshold=0.1
        )
        self._run_both(fed, {6: data_poison(0.5), 7: data_poison(0.5)})

    def test_fig11_config(self):
        from repro.experiments import fig11_reputation
        from repro.experiments.common import probabilistic

        fed = fig11_reputation.default_config().scaled(rounds=4, eval_every=4)
        attackers = {
            i: probabilistic(p_a, 4.0)
            for i, p_a in zip((4, 5, 6, 7), (0.2, 0.4, 0.6, 0.8))
        }
        self._run_both(fed, attackers)

    def test_fig12_config(self):
        from repro.experiments import fig12_contribution
        from repro.experiments.common import data_poison

        fed = fig12_contribution.default_config().scaled(
            rounds=3,
            eval_every=3,
            samples_per_worker=300,
            batch_size=300,
            reference_worker=7,
        )
        attackers = {
            i: data_poison(p_d)
            for i, p_d in zip((5, 6, 7, 8, 9), (0.0, 0.1, 0.2, 0.3, 0.4))
        }
        self._run_both(fed, attackers)
