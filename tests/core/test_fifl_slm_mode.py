"""Unit tests for the mechanism's SLM reputation mode and config."""

import pytest

from repro.core import DetectionConfig, FIFLConfig, FIFLMechanism
from repro.fl import FederatedTrainer, SignFlippingWorker
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def run_mech(reputation_mode, rounds=6, slm_period=3, seed=0):
    workers, _, test = make_federation(num_workers=5, seed=seed)
    workers[4] = make_federation(
        num_workers=5, seed=seed,
        worker_cls=SignFlippingWorker, worker_kwargs={"p_s": 5.0},
    )[0][4]
    mech = FIFLMechanism(
        FIFLConfig(
            detection=DetectionConfig(threshold=0.0),
            gamma=0.3,
            reputation_mode=reputation_mode,
            slm_period=slm_period,
        )
    )
    model = build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    trainer = FederatedTrainer(model, workers, [0], test_data=test,
                               mechanism=mech, server_lr=0.1)
    trainer.run(rounds, eval_every=rounds)
    return mech


class TestSLMMode:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FIFLConfig(reputation_mode="bayesian")
        with pytest.raises(ValueError):
            FIFLConfig(reputation_mode="slm", slm_period=0)

    def test_slm_reputations_used_in_records(self):
        mech = run_mech("slm")
        # the honest workers' SLM reputation saturates at alpha_t = 1
        rec = mech.records[-1]
        for w in range(4):
            assert rec.reputations[w] == pytest.approx(1.0)
        # the consistently-rejected attacker sits at -alpha_n
        assert rec.reputations[4] == pytest.approx(-1.0)

    def test_slm_period_reset_clears_counts(self):
        mech = run_mech("slm", rounds=4, slm_period=2)
        # after the reset at round 2, round 3's counts restart: one event
        assert mech.slm.positives.get(0, 0) + mech.slm.negatives.get(0, 0) <= 2

    def test_decay_mode_still_tracks_slm_counts(self):
        mech = run_mech("decay", rounds=4, slm_period=100)
        # both estimators observe the same events regardless of mode
        assert mech.slm.positives.get(0, 0) == 4
        assert mech.slm.negatives.get(4, 0) == 4

    def test_modes_agree_on_who_is_worst(self):
        slm = run_mech("slm")
        decay = run_mech("decay")
        worst_slm = min(slm.records[-1].reputations, key=slm.records[-1].reputations.get)
        worst_decay = min(decay.records[-1].reputations, key=decay.records[-1].reputations.get)
        assert worst_slm == worst_decay == 4
