"""Tests for server-cluster selection (S4.5)."""

import pytest

from repro.core import probe_selection, reputation_selection
from repro.fl import FreeRiderWorker

from tests.helpers import make_federation


class TestProbeSelection:
    def test_selects_requested_count(self):
        workers, _, test = make_federation(num_workers=5)
        chosen = probe_selection(workers, test, num_servers=2)
        assert len(chosen) == 2
        assert all(0 <= c < 5 for c in chosen)

    def test_free_riders_not_selected(self):
        workers, _, test = make_federation(num_workers=5, local_iters=5)
        riders = make_federation(
            num_workers=5, worker_cls=FreeRiderWorker
        )[0]
        # replace two workers with free-riders who never train
        workers[1] = riders[1]
        workers[3] = riders[3]
        chosen = probe_selection(workers, test, num_servers=3, probe_rounds=5)
        assert 1 not in chosen and 3 not in chosen

    def test_models_restored_after_probe(self):
        workers, _, test = make_federation(num_workers=3)
        before = [w.model.get_flat_params() for w in workers]
        probe_selection(workers, test, num_servers=1)
        for w, params in zip(workers, before):
            assert (w.model.get_flat_params() == params).all()

    def test_validation(self):
        workers, _, test = make_federation(num_workers=3)
        with pytest.raises(ValueError):
            probe_selection(workers, test, num_servers=0)
        with pytest.raises(ValueError):
            probe_selection(workers, test, num_servers=4)
        with pytest.raises(ValueError):
            probe_selection(workers, test, num_servers=1, probe_rounds=0)


class TestReputationSelection:
    def test_top_m_by_reputation(self):
        reps = {0: 0.9, 1: 0.1, 2: 0.8, 3: 0.5}
        assert reputation_selection(reps, 2) == [0, 2]

    def test_ties_broken_by_id(self):
        reps = {5: 0.5, 1: 0.5, 3: 0.5}
        assert reputation_selection(reps, 2) == [1, 3]

    def test_returned_sorted(self):
        reps = {2: 0.9, 0: 0.95, 1: 0.1}
        assert reputation_selection(reps, 2) == [0, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            reputation_selection({0: 1.0}, 0)
        with pytest.raises(ValueError):
            reputation_selection({0: 1.0}, 2)
