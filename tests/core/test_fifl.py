"""Integration tests: FIFLMechanism inside the federated trainer."""

import numpy as np
import pytest

from repro.core import DetectionConfig, FIFLConfig, FIFLMechanism
from repro.fl import FederatedTrainer, SignFlippingWorker
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def mixed_federation(num_workers=6, attacker_ids=(0,), p_s=4.0, seed=0):
    workers, _, test = make_federation(num_workers=num_workers, seed=seed)
    for aid in attacker_ids:
        workers[aid] = make_federation(
            num_workers=num_workers, seed=seed,
            worker_cls=SignFlippingWorker, worker_kwargs={"p_s": p_s},
        )[0][aid]
    return workers, test


def fifl_trainer(workers, test, server_ranks, config=None, drop_prob=0.0, seed=0):
    mech = FIFLMechanism(config or FIFLConfig(
        detection=DetectionConfig(threshold=0.0, mode="cosine"), gamma=0.2
    ))
    model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
    trainer = FederatedTrainer(
        model, workers, server_ranks, test_data=test, mechanism=mech,
        server_lr=0.1, drop_prob=drop_prob, seed=seed,
    )
    return trainer, mech


class TestDetectionInTraining:
    def test_sign_flippers_rejected(self):
        workers, test = mixed_federation(attacker_ids=(0, 3))
        trainer, mech = fifl_trainer(workers, test, server_ranks=[1, 2])
        trainer.run(5, eval_every=5)
        for rec in mech.records:
            assert rec.accepted[0] is False
            assert rec.accepted[3] is False
            # honest non-server workers scored by both servers: stable
            assert rec.accepted[4] is True
            assert rec.accepted[5] is True

    def test_detection_preserves_accuracy_under_attack(self):
        workers, test = mixed_federation(num_workers=6, attacker_ids=(0, 1), p_s=8.0)
        defended, _ = fifl_trainer(workers, test, server_ranks=[2, 3])
        acc_defended = defended.run(30, eval_every=30).final_accuracy()

        workers2, test2 = mixed_federation(num_workers=6, attacker_ids=(0, 1), p_s=8.0)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        undefended = FederatedTrainer(model, workers2, [2, 3], test_data=test2, server_lr=0.1)
        acc_undefended = undefended.run(30, eval_every=30).final_accuracy()
        assert acc_defended > acc_undefended


class TestReputationInTraining:
    def test_attacker_reputation_low_honest_high(self):
        workers, test = mixed_federation(attacker_ids=(0,))
        trainer, mech = fifl_trainer(workers, test, server_ranks=[1])
        trainer.run(30, eval_every=30)
        reps = mech.reputation.reputations()
        assert reps[0] < 0.2
        assert all(reps[w] > 0.8 for w in range(1, 6))

    def test_uncertain_events_on_lossy_network(self):
        workers, test = mixed_federation(attacker_ids=())
        trainer, mech = fifl_trainer(workers, test, [1], drop_prob=0.3, seed=5)
        history = trainer.run(10, eval_every=10)
        assert any(r.uncertain for r in history.rounds)


class TestIncentivesInTraining:
    def test_attackers_punished_honest_rewarded(self):
        workers, test = mixed_federation(attacker_ids=(0,), p_s=6.0)
        trainer, mech = fifl_trainer(workers, test, server_ranks=[1, 2])
        trainer.run(20, eval_every=20)
        rewards = mech.cumulative_rewards()
        assert rewards[0] < 0
        # every honest worker ends far ahead of the attacker, and the
        # honest pool earns net-positive rewards
        assert all(rewards[w] > rewards[0] for w in range(1, 6))
        assert sum(rewards[w] for w in range(1, 6)) > 0

    def test_positive_shares_bounded_by_budget(self):
        workers, test = mixed_federation(attacker_ids=(0,))
        trainer, mech = fifl_trainer(workers, test, server_ranks=[1])
        trainer.run(10, eval_every=10)
        for rec in mech.records:
            paid = sum(v for v in rec.rewards.values() if v > 0)
            # positive share mass <= budget * max reputation <= budget
            assert paid <= mech.config.budget_per_round + 1e-9

    def test_round_records_complete(self):
        workers, test = mixed_federation(attacker_ids=(0,))
        trainer, mech = fifl_trainer(workers, test, server_ranks=[1])
        trainer.run(3, eval_every=3)
        assert len(mech.records) == 3
        rec = mech.records[-1]
        assert set(rec.scores) == set(range(6))
        assert rec.b_h is not None and rec.b_h > 0


class TestConfigValidation:
    def test_reference_baseline_needs_worker(self):
        with pytest.raises(ValueError):
            FIFLConfig(contribution_baseline="reference")

    def test_bad_baseline_name(self):
        with pytest.raises(ValueError):
            FIFLConfig(contribution_baseline="median")

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            FIFLConfig(budget_per_round=-1.0)

    def test_reference_baseline_runs(self):
        workers, test = mixed_federation(attacker_ids=())
        cfg = FIFLConfig(
            detection=DetectionConfig(threshold=0.0),
            contribution_baseline="reference",
            reference_worker=2,
        )
        trainer, mech = fifl_trainer(workers, test, [1], config=cfg)
        trainer.run(3, eval_every=3)
        rec = mech.records[-1]
        # the reference worker sits exactly on the baseline: C = 0
        assert rec.contribs[2] == pytest.approx(0.0, abs=1e-9)


class TestServerRecommendation:
    def test_recommends_high_reputation_workers(self):
        workers, test = mixed_federation(attacker_ids=(0,))
        trainer, mech = fifl_trainer(workers, test, server_ranks=[1])
        trainer.run(20, eval_every=20)
        recommended = mech.recommend_servers(3)
        assert 0 not in recommended
        assert len(recommended) == 3

    def test_errors(self):
        mech = FIFLMechanism()
        with pytest.raises(ValueError):
            mech.recommend_servers(0)
        with pytest.raises(RuntimeError):
            mech.recommend_servers(2)
