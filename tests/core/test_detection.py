"""Tests for the attack detection module (paper S4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttackDetector,
    DetectionConfig,
    classify,
    detection_scores,
    server_score,
)


class TestServerScore:
    def test_raw_is_inner_product(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        assert server_score(a, b, "raw") == pytest.approx(11.0)

    def test_cosine_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.normal(size=(2, 8))
            s = server_score(a, b, "cosine")
            assert -1.0 - 1e-12 <= s <= 1.0 + 1e-12

    def test_cosine_self_is_one(self):
        a = np.array([1.0, -2.0, 3.0])
        assert server_score(a, a, "cosine") == pytest.approx(1.0)

    def test_sign_flip_gives_minus_one(self):
        a = np.array([1.0, -2.0, 3.0])
        assert server_score(a, -4.0 * a, "cosine") == pytest.approx(-1.0)

    def test_zero_candidate_scores_zero(self):
        a = np.array([1.0, 2.0])
        assert server_score(a, np.zeros(2), "cosine") == 0.0

    def test_cosine_scale_free_raw_not(self):
        a = np.array([1.0, 1.0])
        b = np.array([2.0, 0.0])
        assert server_score(a, b, "cosine") == pytest.approx(
            server_score(a, 100 * b, "cosine")
        )
        assert server_score(a, 100 * b, "raw") == 100 * server_score(a, b, "raw")

    def test_validation(self):
        with pytest.raises(ValueError):
            server_score(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            server_score(np.zeros(2), np.zeros(2), "bogus")


class TestDetectionScores:
    def _setup(self, mode):
        # two servers (ranks 0, 1); worker 2 honest, worker 3 flipped
        bench = {0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])}
        slices = {
            0: {0: bench[0], 1: np.array([0.1, 0.9])},
            2: {0: np.array([0.9, 0.1]), 1: np.array([0.2, 0.8])},
            3: {0: -np.array([0.9, 0.1]), 1: -np.array([0.2, 0.8])},
        }
        return detection_scores(slices, bench, mode)

    def test_honest_positive_attacker_negative(self):
        scores = self._setup("cosine")
        assert scores[2] > 0 > scores[3]

    def test_raw_sums_cosine_averages(self):
        raw = self._setup("raw")
        cos = self._setup("cosine")
        assert abs(cos[2]) <= 1.0
        assert raw[2] > 0

    def test_missing_slice_scaled_in_raw_mode(self):
        # worker id 5 is NOT a server, so no self-scoring exclusion applies
        bench = {0: np.array([2.0]), 1: np.array([2.0])}
        full = {5: {0: np.array([1.0]), 1: np.array([1.0])}}
        partial = {5: {0: np.array([1.0])}}
        assert detection_scores(partial, bench, "raw")[5] == pytest.approx(
            detection_scores(full, bench, "raw")[5]
        )

    def test_server_never_scores_itself_with_peers(self):
        # server 0's own slice matches its benchmark exactly (cosine 1);
        # with a peer server present, only the peer's view counts
        bench = {0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])}
        slices = {0: {0: bench[0], 1: -bench[1]}}
        scores = detection_scores(slices, bench, "cosine")
        assert scores[0] == pytest.approx(-1.0)

    def test_single_server_keeps_self_score(self):
        bench = {0: np.array([1.0, 0.0])}
        slices = {0: {0: np.array([1.0, 0.0])}}
        assert detection_scores(slices, bench, "cosine")[0] == pytest.approx(1.0)

    def test_no_benchmark_raises(self):
        with pytest.raises(ValueError):
            detection_scores({0: {0: np.zeros(2)}}, {})

    def test_worker_with_no_delivered_slices_raises(self):
        bench = {0: np.array([1.0])}
        with pytest.raises(ValueError):
            detection_scores({5: {}}, bench)


class TestClassify:
    def test_threshold_boundary_inclusive(self):
        r = classify({0: 0.1, 1: 0.0999}, threshold=0.1)
        assert r[0] is True and r[1] is False

    def test_all_types(self):
        r = classify({0: -5.0, 1: 5.0}, threshold=0.0)
        assert r == {0: False, 1: True}


class TestAttackDetector:
    def test_end_to_end_separates_attackers(self):
        rng = np.random.default_rng(0)
        honest_dir = rng.normal(size=10)
        bench_slices = {0: honest_dir[:5], 1: honest_dir[5:]}
        slices = {}
        truth = {}
        for wid in range(8):
            noise = 0.2 * rng.normal(size=10)
            if wid % 3 == 0 and wid > 0:  # attackers
                g = -4.0 * (honest_dir + noise)
                truth[wid] = False
            else:
                g = honest_dir + noise
                truth[wid] = True
            slices[wid] = {0: g[:5], 1: g[5:]}
        det = AttackDetector(DetectionConfig(threshold=0.1, mode="cosine"))
        _, r = det.detect(slices, bench_slices)
        assert r == truth

    def test_default_config(self):
        det = AttackDetector()
        assert det.config.mode == "cosine"
        assert det.config.threshold == 0.0

    def test_invalid_mode_rejected_at_config(self):
        with pytest.raises(ValueError):
            DetectionConfig(mode="euclidean")

    @settings(max_examples=25, deadline=None)
    @given(p_s=st.floats(1.0, 16.0), seed=st.integers(0, 500))
    def test_property_sign_flip_always_caught_cosine(self, p_s, seed):
        # A sign-flipped gradient has cosine exactly -1 against the honest
        # direction regardless of intensity -> always below any S_y >= 0.
        rng = np.random.default_rng(seed)
        g = rng.normal(size=12)
        bench = {0: g[:6], 1: g[6:]}
        flipped = -p_s * g
        slices = {1: {0: flipped[:6], 1: flipped[6:]}}
        det = AttackDetector(DetectionConfig(threshold=0.0, mode="cosine"))
        _, r = det.detect(slices, bench)
        assert r[1] is False
