"""Tests for the baseline incentive mechanisms (Eq. 18-22)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BASELINE_WEIGHTS,
    equal_weights,
    individual_weights,
    shapley_enumeration,
    shapley_montecarlo,
    shapley_sum_dp,
    shapley_weights,
    union_weights,
)


class TestIndividual:
    def test_eq19(self):
        np.testing.assert_allclose(
            individual_weights(np.array([0.0, np.e - 1])), [0.0, 1.0]
        )

    def test_monotone_in_samples(self):
        w = individual_weights(np.array([10.0, 100.0, 1000.0]))
        assert w[0] < w[1] < w[2]


class TestEqual:
    def test_eq20(self):
        np.testing.assert_allclose(equal_weights(4), [0.25] * 4)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            equal_weights(0)


class TestUnion:
    def test_eq21_definition(self):
        samples = np.array([10.0, 20.0])
        w = union_weights(samples)
        assert w[0] == pytest.approx(np.log1p(30) - np.log1p(20))
        assert w[1] == pytest.approx(np.log1p(30) - np.log1p(10))

    def test_marginal_smaller_than_individual(self):
        # concavity: joining a large federation adds less than solo utility
        samples = np.array([100.0, 100.0, 100.0])
        assert (union_weights(samples) < individual_weights(samples)).all()

    def test_bigger_worker_bigger_weight(self):
        w = union_weights(np.array([10.0, 1000.0]))
        assert w[1] > w[0]


class TestShapleyExactness:
    @settings(max_examples=15, deadline=None)
    @given(
        samples=st.lists(st.integers(1, 500), min_size=2, max_size=7),
    )
    def test_property_dp_matches_enumeration(self, samples):
        samples = np.array(samples, dtype=float)
        np.testing.assert_allclose(
            shapley_sum_dp(samples), shapley_enumeration(samples), rtol=1e-9
        )

    def test_known_two_player(self):
        # symmetric players split the surplus equally
        phis = shapley_sum_dp(np.array([100.0, 100.0]))
        assert phis[0] == pytest.approx(phis[1])
        assert phis.sum() == pytest.approx(np.log1p(200))

    def test_efficiency_axiom(self):
        samples = np.array([3.0, 14.0, 159.0, 26.0])
        phis = shapley_sum_dp(samples)
        assert phis.sum() == pytest.approx(np.log1p(samples.sum()))

    def test_null_player_axiom(self):
        phis = shapley_sum_dp(np.array([0.0, 50.0]))
        assert phis[0] == pytest.approx(0.0)

    def test_symmetry_axiom(self):
        phis = shapley_sum_dp(np.array([7.0, 7.0, 100.0]))
        assert phis[0] == pytest.approx(phis[1])

    def test_montecarlo_close_to_exact(self):
        samples = np.array([10.0, 200.0, 3000.0, 40.0, 500.0])
        exact = shapley_sum_dp(samples)
        mc = shapley_montecarlo(samples, n_permutations=3000, seed=0)
        np.testing.assert_allclose(mc, exact, atol=0.1)
        # and the estimator tightens with more permutations
        mc_big = shapley_montecarlo(samples, n_permutations=20000, seed=0)
        assert np.abs(mc_big - exact).max() < np.abs(mc - exact).max()

    def test_montecarlo_efficiency_exact_per_permutation(self):
        # telescoping: every permutation's marginals sum to Psi(total)
        samples = np.array([5.0, 6.0, 7.0])
        mc = shapley_montecarlo(samples, n_permutations=3, seed=1)
        assert mc.sum() == pytest.approx(np.log1p(18))

    def test_enumeration_rejects_large_n(self):
        with pytest.raises(ValueError):
            shapley_enumeration(np.ones(16))

    def test_dp_rejects_non_integer(self):
        with pytest.raises(ValueError):
            shapley_sum_dp(np.array([1.5, 2.0]))


class TestShapleyDispatch:
    def test_auto_integer_uses_dp(self):
        samples = np.arange(1.0, 21.0)  # N=20, the paper's size
        phis = shapley_weights(samples)
        assert phis.sum() == pytest.approx(np.log1p(samples.sum()))

    def test_auto_non_integer_small_uses_enum(self):
        samples = np.array([1.5, 2.5, 3.5])
        np.testing.assert_allclose(
            shapley_weights(samples), shapley_enumeration(samples)
        )

    def test_explicit_methods(self):
        samples = np.array([2.0, 4.0])
        for method in ("dp", "enum", "montecarlo"):
            phis = shapley_weights(samples, method=method, n_permutations=500)
            assert phis.sum() == pytest.approx(np.log1p(6), abs=1e-6)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            shapley_weights(np.array([1.0]), method="exactish")


class TestRegistry:
    def test_all_four_baselines_present(self):
        assert set(BASELINE_WEIGHTS) == {"individual", "equal", "union", "shapley"}

    def test_registry_weights_are_positive(self):
        samples = np.array([10.0, 100.0, 1000.0])
        for name, fn in BASELINE_WEIGHTS.items():
            w = fn(samples)
            assert (np.asarray(w) > 0).all(), name

    def test_validation_shared(self):
        with pytest.raises(ValueError):
            individual_weights(np.array([]))
        with pytest.raises(ValueError):
            union_weights(np.array([-1.0]))
