"""Tests for the utility / revenue model."""

import numpy as np
import pytest

from repro.core import federation_revenue, marginal_utility, system_revenue, utility


class TestUtility:
    def test_log_form(self):
        assert utility(0) == 0.0
        assert utility(np.e - 1) == pytest.approx(1.0)

    def test_vectorized(self):
        np.testing.assert_allclose(utility(np.array([0.0, 1.0])), [0.0, np.log(2)])

    def test_monotone_concave(self):
        n = np.arange(0, 100, 5, dtype=float)
        psi = utility(n)
        assert (np.diff(psi) > 0).all()
        assert (np.diff(np.diff(psi)) < 0).all()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            utility(-1)


class TestFederationRevenue:
    def test_pool_sum(self):
        assert federation_revenue(np.array([3, 4])) == pytest.approx(np.log1p(7))

    def test_superadditive_data_pooling(self):
        # pooling beats the best individual
        samples = np.array([100.0, 200.0])
        assert federation_revenue(samples) > utility(200.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            federation_revenue(np.array([-1.0]))


class TestMarginalUtility:
    def test_matches_definition(self):
        samples = np.array([10.0, 20.0, 30.0])
        got = marginal_utility(samples, 1)
        assert got == pytest.approx(np.log1p(60) - np.log1p(40))

    def test_bigger_worker_bigger_marginal(self):
        samples = np.array([10.0, 1000.0])
        assert marginal_utility(samples, 1) > marginal_utility(samples, 0)

    def test_index_validation(self):
        with pytest.raises(ValueError):
            marginal_utility(np.array([1.0]), 5)


class TestSystemRevenue:
    def test_no_attackers_is_gross_revenue(self):
        samples = np.array([100.0, 200.0])
        rev = system_revenue(samples, np.array([False, False]), 0.385)
        assert rev == pytest.approx(federation_revenue(samples))

    def test_undetected_attacker_damages(self):
        samples = np.array([100.0, 200.0, 300.0])
        attackers = np.array([False, False, True])
        dirty = system_revenue(samples, attackers, 0.3)
        clean = system_revenue(samples, attackers, 0.3, detected_mask=attackers)
        assert dirty < clean

    def test_detection_restores_honest_revenue(self):
        samples = np.array([100.0, 200.0, 300.0])
        attackers = np.array([False, False, True])
        rev = system_revenue(samples, attackers, 0.385, detected_mask=attackers)
        assert rev == pytest.approx(np.log1p(300))

    def test_damage_scales_with_degree(self):
        samples = np.full(10, 100.0)
        attackers = np.zeros(10, dtype=bool)
        attackers[:3] = True
        r1 = system_revenue(samples, attackers, 0.1)
        r2 = system_revenue(samples, attackers, 0.2)
        assert r2 < r1

    def test_revenue_never_negative(self):
        samples = np.full(10, 100.0)
        attackers = np.ones(10, dtype=bool)
        attackers[0] = False
        assert system_revenue(samples, attackers, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            system_revenue(np.array([1.0]), np.array([False, True]), 0.1)
        with pytest.raises(ValueError):
            system_revenue(np.array([1.0]), np.array([False]), 1.5)
        with pytest.raises(ValueError):
            system_revenue(
                np.array([1.0]), np.array([False]), 0.1, detected_mask=np.array([False, True])
            )
