"""Tests for the incentive module, including Theorem 2 (fairness = 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import allocate_rewards, fairness_coefficient, reward_shares


class TestRewardShares:
    def test_eq15(self):
        reps = {0: 1.0, 1: 0.5}
        contribs = {0: 3.0, 1: 1.0}
        shares = reward_shares(reps, contribs)
        assert shares[0] == pytest.approx(0.75)
        assert shares[1] == pytest.approx(0.125)

    def test_punishment_sign(self):
        reps = {0: 1.0, 1: 0.8}
        contribs = {0: 2.0, 1: -1.0}
        shares = reward_shares(reps, contribs)
        assert shares[1] < 0

    def test_monotone_in_reputation(self):
        contribs = {0: 1.0, 1: 1.0}
        a = reward_shares({0: 0.9, 1: 0.1}, contribs)
        assert a[0] > a[1]

    def test_monotone_in_contribution(self):
        reps = {0: 0.5, 1: 0.5}
        a = reward_shares(reps, {0: 3.0, 1: 1.0})
        assert a[0] > a[1]

    def test_key_mismatch(self):
        with pytest.raises(ValueError):
            reward_shares({0: 1.0}, {1: 1.0})


class TestAllocate:
    def test_scales_by_budget(self):
        out = allocate_rewards({0: 0.25, 1: -0.5}, 100.0)
        assert out == {0: 25.0, 1: -50.0}

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            allocate_rewards({0: 1.0}, -1.0)


class TestFairnessCoefficient:
    def test_perfectly_linear_is_one(self):
        x = np.array([1.0, 2.0, 3.0])
        assert fairness_coefficient(x, 5 * x) == pytest.approx(1.0)

    def test_anti_correlated_is_minus_one(self):
        x = np.array([1.0, 2.0, 3.0])
        assert fairness_coefficient(x, -x) == pytest.approx(-1.0)

    def test_constant_vector_returns_zero(self):
        assert fairness_coefficient(np.ones(3), np.array([1.0, 2.0, 3.0])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fairness_coefficient(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            fairness_coefficient(np.zeros(1), np.zeros(1))


class TestTheorem2:
    """With equal reputations, rewards are perfectly correlated with
    contributions: the fairness coefficient is exactly 1 (Eq. 17)."""

    @settings(max_examples=40, deadline=None)
    @given(
        contribs=st.lists(
            st.floats(0.01, 100.0, allow_nan=False), min_size=2, max_size=20
        ),
        reputation=st.floats(0.1, 1.0),
    )
    def test_property_fairness_is_one(self, contribs, reputation):
        # skip degenerate all-equal contribution vectors (zero variance)
        if max(contribs) - min(contribs) < 1e-9:
            return
        workers = dict(enumerate(contribs))
        reps = {w: reputation for w in workers}
        shares = reward_shares(reps, workers)
        x = np.array([workers[w] for w in sorted(workers)])
        y = np.array([shares[w] for w in sorted(workers)])
        assert fairness_coefficient(x, y) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        reps=st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=2, max_size=20),
        contribution=st.floats(0.1, 10.0),
    )
    def test_property_reputation_fairness_is_one(self, reps, contribution):
        # symmetric claim: equal contributions -> rewards track reputation
        if max(reps) - min(reps) < 1e-9:
            return
        workers = dict(enumerate(reps))
        contribs = {w: contribution for w in workers}
        shares = reward_shares(workers, contribs)
        x = np.array([workers[w] for w in sorted(workers)])
        y = np.array([shares[w] for w in sorted(workers)])
        assert fairness_coefficient(x, y) == pytest.approx(1.0, abs=1e-9)
