"""Mechanism factory tests: one construction API for every mechanism."""

import pytest

from repro.core import (
    DetectionConfig,
    FIFLConfig,
    FIFLMechanism,
    KrumMechanism,
    MedianMechanism,
    make_mechanism,
)
from repro.core.factory import (
    MECHANISM_NAMES,
    AcceptAllMechanism,
    KrumConfig,
    MedianConfig,
)
from repro.ledger import Blockchain


class TestFIFLConstruction:
    def test_flat_keywords_route_into_both_config_layers(self):
        mech = make_mechanism(
            "fifl", threshold=0.1, mode="raw", gamma=0.3, budget_per_round=2.0
        )
        assert isinstance(mech, FIFLMechanism)
        assert mech.config.detection.threshold == 0.1
        assert mech.config.detection.mode == "raw"
        assert mech.config.gamma == 0.3
        assert mech.config.budget_per_round == 2.0

    def test_defaults_when_no_keywords(self):
        mech = make_mechanism("fifl")
        assert mech.config == FIFLConfig()

    def test_prebuilt_config_passthrough(self):
        cfg = FIFLConfig(detection=DetectionConfig(threshold=0.5), gamma=0.9)
        mech = make_mechanism("fifl", config=cfg)
        assert mech.config is cfg

    def test_config_plus_keywords_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            make_mechanism("fifl", config=FIFLConfig(), gamma=0.5)

    def test_unknown_keyword_rejected_with_valid_list(self):
        with pytest.raises(TypeError, match="threshold"):
            make_mechanism("fifl", bogus_knob=1)

    def test_ledger_forwarded(self):
        chain = Blockchain()
        mech = make_mechanism("fifl", ledger=chain)
        assert mech.ledger is chain

    def test_slm_preset(self):
        mech = make_mechanism("fifl-slm", threshold=0.1)
        assert mech.config.reputation_mode == "slm"
        assert mech.config.detection.threshold == 0.1

    def test_raw_preset(self):
        assert make_mechanism("fifl-raw").config.detection.mode == "raw"

    def test_scalar_preset(self):
        assert make_mechanism("fifl-scalar").config.engine == "scalar"

    def test_preset_override_wins_over_preset_default(self):
        # explicit keywords beat the preset's baked-in value
        mech = make_mechanism("fifl-slm", reputation_mode="decay")
        assert mech.config.reputation_mode == "decay"


class TestSimpleMechanisms:
    def test_krum(self):
        mech = make_mechanism("krum", num_byzantine=2)
        assert isinstance(mech, KrumMechanism)
        assert mech.num_byzantine == 2

    def test_krum_config_object(self):
        mech = make_mechanism("krum", config=KrumConfig(num_byzantine=3))
        assert mech.num_byzantine == 3

    def test_krum_validation(self):
        with pytest.raises(ValueError):
            make_mechanism("krum", num_byzantine=-1)

    def test_median(self):
        mech = make_mechanism("median", keep_fraction=0.6)
        assert isinstance(mech, MedianMechanism)
        assert mech.keep_fraction == 0.6

    def test_median_validation(self):
        with pytest.raises(ValueError):
            MedianConfig(keep_fraction=0.0)

    def test_accept_all_and_none_alias(self):
        assert isinstance(make_mechanism("accept_all"), AcceptAllMechanism)
        assert isinstance(make_mechanism("none"), AcceptAllMechanism)

    def test_ledger_rejected_for_mechanisms_without_audit(self):
        with pytest.raises(TypeError, match="ledger"):
            make_mechanism("krum", ledger=Blockchain())


class TestRegistry:
    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            make_mechanism("nope")

    def test_mechanism_names_cover_builders(self):
        assert set(MECHANISM_NAMES) >= {
            "fifl", "fifl-slm", "fifl-raw", "fifl-scalar",
            "krum", "median", "accept_all", "none",
        }

    def test_every_name_constructs_with_defaults(self):
        for name in MECHANISM_NAMES:
            assert make_mechanism(name) is not None
