"""Tests for reputation: SLM, time decay, and Theorem 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecayReputation, SLMReputation, theorem1_fixed_point


class TestSLM:
    def test_trust_scores_eq8(self):
        slm = SLMReputation()
        for _ in range(3):
            slm.record(0, True)
        slm.record(0, False)
        st_, sn, su = slm.trust_scores(0)
        assert su == 0.0
        assert st_ == pytest.approx(0.75)
        assert sn == pytest.approx(0.25)

    def test_uncertainty_mass(self):
        slm = SLMReputation()
        slm.record(0, True)
        slm.record(0, None)
        st_, sn, su = slm.trust_scores(0)
        assert su == pytest.approx(0.5)
        assert st_ == pytest.approx(0.5)  # (1-0.5) * 1/1

    def test_reputation_eq9_weighting(self):
        slm = SLMReputation(alpha_t=2.0, alpha_n=1.0, alpha_u=0.5)
        slm.record(0, True)
        slm.record(0, False)
        st_, sn, su = slm.trust_scores(0)
        assert slm.reputation(0) == pytest.approx(2 * st_ - sn - 0.5 * su)

    def test_unknown_worker_neutral(self):
        slm = SLMReputation()
        assert slm.reputation(42) == 0.0

    def test_reset_period(self):
        slm = SLMReputation()
        slm.record(0, True)
        slm.reset_period()
        assert slm.trust_scores(0) == (0.0, 0.0, 0.0)

    def test_all_positive_full_trust(self):
        slm = SLMReputation()
        for _ in range(10):
            slm.record(1, True)
        assert slm.reputation(1) == pytest.approx(1.0)


class TestDecayReputation:
    def test_eq10_recursion(self):
        rep = DecayReputation(gamma=0.25, initial=0.0)
        assert rep.update(0, True) == pytest.approx(0.25)
        assert rep.update(0, True) == pytest.approx(0.4375)
        assert rep.update(0, False) == pytest.approx(0.328125)

    def test_uncertain_event_freezes(self):
        rep = DecayReputation(gamma=0.5)
        rep.update(0, True)
        before = rep.reputation(0)
        rep.update(0, None)
        assert rep.reputation(0) == before
        # but history records the (unchanged) value
        assert len(rep.history(0)) == 2

    def test_initial_value(self):
        rep = DecayReputation(gamma=0.1, initial=0.7)
        assert rep.reputation(99) == 0.7

    def test_update_all(self):
        rep = DecayReputation(gamma=0.5)
        out = rep.update_all({0: True, 1: False, 2: None})
        assert out[0] == 0.5 and out[1] == 0.0 and out[2] == 0.0

    def test_bounded_in_unit_interval(self):
        rep = DecayReputation(gamma=0.3)
        rng = np.random.default_rng(0)
        for _ in range(500):
            rep.update(0, bool(rng.random() < 0.5))
            assert 0.0 <= rep.reputation(0) <= 1.0

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            DecayReputation(gamma=0.0)
        with pytest.raises(ValueError):
            DecayReputation(gamma=1.0)

    def test_reputations_snapshot(self):
        rep = DecayReputation(gamma=0.5)
        rep.update(0, True)
        rep.update(1, False)
        assert rep.reputations() == {0: 0.5, 1: 0.0}


class TestTheorem1:
    """Reputation converges to the honesty probability 1 - p."""

    def test_fixed_point_function(self):
        assert theorem1_fixed_point(0.3) == pytest.approx(0.7)
        with pytest.raises(ValueError):
            theorem1_fixed_point(1.5)

    @settings(max_examples=15, deadline=None)
    @given(
        p_evil=st.floats(0.0, 1.0),
        gamma=st.floats(0.05, 0.5),
        seed=st.integers(0, 10_000),
    )
    def test_property_convergence(self, p_evil, gamma, seed):
        rng = np.random.default_rng(seed)
        rep = DecayReputation(gamma=gamma, initial=0.0)
        burn = int(np.ceil(40 / gamma))
        vals = []
        for t in range(burn + 400):
            honest = rng.random() >= p_evil
            rep.update(0, honest)
            if t >= burn:
                vals.append(rep.reputation(0))
        mean = float(np.mean(vals))
        # EMA of Bernoulli(1-p) has mean 1-p and std <= sqrt(gamma/(2-gamma))/2
        tol = 3.5 * np.sqrt(gamma / (2 - gamma)) / 2 / np.sqrt(len(vals) * gamma) + 0.05
        assert mean == pytest.approx(theorem1_fixed_point(p_evil), abs=max(tol, 0.08))

    def test_deterministic_worker_converges_exactly(self):
        rep = DecayReputation(gamma=0.2)
        for _ in range(200):
            rep.update(0, True)
        assert rep.reputation(0) == pytest.approx(1.0, abs=1e-10)

    def test_initial_condition_forgotten(self):
        # (1-gamma)^t R(0) -> 0: two different initializations converge
        rep_a = DecayReputation(gamma=0.2, initial=0.0)
        rep_b = DecayReputation(gamma=0.2, initial=1.0)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        for _ in range(300):
            rep_a.update(0, bool(rng_a.random() < 0.5))
            rep_b.update(0, bool(rng_b.random() < 0.5))
        assert rep_a.reputation(0) == pytest.approx(rep_b.reputation(0), abs=1e-10)
