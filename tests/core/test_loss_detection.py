"""Tests for the exact marginal-loss (Zeno-style) detector."""

import numpy as np
import pytest

from repro.core import LossBasedDetector
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def make_detector(test, step=0.1, threshold=0.0):
    return LossBasedDetector(
        lambda: build_logreg(N_FEATURES, N_CLASSES, seed=0),
        test, step=step, threshold=threshold,
    )


class TestLossBasedDetector:
    def test_honest_gradient_scores_positive(self):
        workers, _, test = make_federation(num_workers=2, local_iters=4)
        det = make_detector(test)
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        g = workers[0].compute_update(theta).gradient
        assert det.score(theta, g) > 0

    def test_flipped_gradient_scores_negative(self):
        workers, _, test = make_federation(num_workers=2, local_iters=4)
        det = make_detector(test)
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        g = workers[0].compute_update(theta).gradient
        assert det.score(theta, -4.0 * g) < 0

    def test_detect_separates_workers(self):
        workers, _, test = make_federation(num_workers=4, local_iters=4)
        det = make_detector(test)
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        grads = {w.worker_id: w.compute_update(theta).gradient for w in workers}
        grads[99] = -6.0 * grads[0]  # synthetic attacker
        scores, accepted = det.detect(theta, grads)
        assert accepted[99] is False
        assert all(accepted[w.worker_id] for w in workers)
        assert scores[99] < min(scores[w.worker_id] for w in workers)

    def test_agrees_with_first_order_score_in_sign(self):
        # the paper's Taylor argument: <grad_val, G_i> approximates the
        # exact loss difference; signs should agree for honest vs flipped
        from repro.nn import SoftmaxCrossEntropy

        workers, _, test = make_federation(num_workers=3, local_iters=4)
        det = make_detector(test, step=0.05)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        theta = model.get_flat_params()
        loss_fn = SoftmaxCrossEntropy()
        loss_fn(model.forward(test.x, training=True), test.y)
        model.backward(loss_fn.backward())
        val_grad = model.get_flat_grads()
        for w in workers:
            g = w.compute_update(theta).gradient
            exact = det.score(theta, g)
            first_order = float(val_grad @ (det.step * g))
            assert np.sign(exact) == np.sign(first_order)

    def test_zero_gradient_scores_zero(self):
        _, _, test = make_federation(num_workers=2)
        det = make_detector(test)
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        assert det.score(theta, np.zeros_like(theta)) == pytest.approx(0.0)

    def test_validation(self):
        _, _, test = make_federation(num_workers=2)
        with pytest.raises(ValueError):
            make_detector(test, step=0.0)
        from repro.datasets import Dataset

        empty = Dataset(np.zeros((0, N_FEATURES)), np.zeros(0, dtype=int), N_CLASSES)
        with pytest.raises(ValueError):
            LossBasedDetector(
                lambda: build_logreg(N_FEATURES, N_CLASSES, seed=0), empty
            )
