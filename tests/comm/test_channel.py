"""Tests for the lossy message-passing network."""

import warnings

import numpy as np
import pytest

from repro.comm import Network
from repro.telemetry import Telemetry, set_telemetry


class TestSendRecv:
    def test_roundtrip(self):
        net = Network(3)
        assert net.send(0, 1, "grad", np.arange(4.0))
        msg = net.recv(1, 0, "grad")
        np.testing.assert_array_equal(msg.payload, np.arange(4.0))
        assert msg.src == 0 and msg.dst == 1 and msg.tag == "grad"

    def test_fifo_order_per_link(self):
        net = Network(2)
        net.send(0, 1, "t", 1)
        net.send(0, 1, "t", 2)
        assert net.recv(1, 0, "t").payload == 1
        assert net.recv(1, 0, "t").payload == 2

    def test_tags_are_isolated(self):
        net = Network(2)
        net.send(0, 1, "a", "first")
        net.send(0, 1, "b", "second")
        assert net.recv(1, 0, "b").payload == "second"
        assert net.recv(1, 0, "a").payload == "first"

    def test_empty_recv_returns_none(self):
        net = Network(2)
        assert net.recv(1, 0, "none") is None

    def test_rank_validation(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 5, "t", 1)
        with pytest.raises(ValueError):
            net.recv(-1, 0, "t")

    def test_pending(self):
        net = Network(2)
        net.send(0, 1, "t", 1)
        net.send(0, 1, "t", 2)
        assert net.pending(1, 0, "t") == 2
        net.recv(1, 0, "t")
        assert net.pending(1, 0, "t") == 1


class TestFailureInjection:
    def test_no_drops_by_default(self):
        net = Network(2, seed=0)
        assert all(net.send(0, 1, "t", i) for i in range(100))
        assert net.drop_log.count() == 0

    def test_global_drop_rate_approximate(self):
        net = Network(2, drop_prob=0.3, seed=1)
        sent = sum(net.send(0, 1, "t", i) for i in range(2000))
        assert 0.6 < sent / 2000 < 0.8
        assert net.drop_log.count() == 2000 - sent

    def test_per_link_override(self):
        net = Network(3, drop_prob=0.0, seed=2)
        net.set_link_drop_prob(0, 1, 1.0)
        assert not net.send(0, 1, "t", 1)
        assert net.send(0, 2, "t", 1)

    def test_drop_log_filters(self):
        net = Network(3, seed=0)
        net.set_link_drop_prob(0, 1, 1.0)
        net.set_link_drop_prob(2, 1, 1.0)
        net.send(0, 1, "t", 1)
        net.send(2, 1, "t", 1)
        assert net.drop_log.count(src=0) == 1
        assert net.drop_log.count(dst=1) == 2

    def test_invalid_drop_prob(self):
        # the endpoints 0.0 and 1.0 are valid in both the constructor and
        # the per-link override (a prob-1.0 link is a dead link)
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError):
                Network(2, drop_prob=bad)
        net = Network(2, drop_prob=1.0)
        with pytest.raises(ValueError):
            net.set_link_drop_prob(0, 1, -0.1)
        with pytest.raises(ValueError):
            net.set_link_drop_prob(0, 1, 1.1)
        net.set_link_drop_prob(0, 1, 1.0)  # endpoint accepted

    def test_fully_dead_network_drops_everything(self):
        net = Network(2, drop_prob=1.0, seed=0)
        assert not any(net.send(0, 1, "t", i) for i in range(50))
        assert net.drop_log.count() == 50
        assert net.recv(1, 0, "t") is None
        assert net.total_bytes() == 0

    def test_blocked_link_drops_without_rng(self):
        # Two networks, same seed: blocking a link must not consume drop
        # draws, so the other link's drop pattern is unchanged.
        a = Network(3, drop_prob=0.5, seed=9)
        b = Network(3, drop_prob=0.5, seed=9)
        b.block_link(0, 1)
        pattern_a = [a.send(0, 2, "t", i) for i in range(40)]
        for i in range(40):
            assert not b.send(0, 1, "t", i)
        pattern_b = [b.send(0, 2, "t", i) for i in range(40)]
        assert pattern_a == pattern_b
        b.unblock_link(0, 1)
        assert b.pending(1, 0, "t") == 0  # blocked sends never queued

    def test_set_blocked_links_replaces(self):
        net = Network(3)
        net.block_link(0, 1)
        net.set_blocked_links({(1, 2)})
        assert net.send(0, 1, "t", 1)  # old block lifted
        assert not net.send(1, 2, "t", 1)
        with pytest.raises(ValueError):
            net.set_blocked_links({(0, 9)})


class TestCollectives:
    def test_bcast_reaches_all(self):
        net = Network(4)
        reached = net.bcast(0, [1, 2, 3], "model", np.zeros(3))
        assert reached == [1, 2, 3]
        for d in (1, 2, 3):
            assert net.recv(d, 0, "model") is not None

    def test_gather_collects_present(self):
        net = Network(4)
        net.send(1, 0, "g", "one")
        net.send(3, 0, "g", "three")
        got = net.gather(0, [1, 2, 3], "g")
        assert got == {1: "one", 3: "three"}

    def test_scatter_distinct_payloads(self):
        net = Network(3)
        net.scatter(0, {1: "a", 2: "b"}, "slice")
        assert net.recv(1, 0, "slice").payload == "a"
        assert net.recv(2, 0, "slice").payload == "b"


class TestAccounting:
    def test_array_bytes_counted(self):
        net = Network(2)
        net.send(0, 1, "g", np.zeros(10))  # 80 bytes
        assert net.bytes_sent[(0, 1)] == 80
        assert net.total_bytes() == 80

    def test_nested_payload_bytes(self):
        net = Network(2)
        net.send(0, 1, "g", {"a": np.zeros(2), "b": [np.zeros(3), 1.5]})
        assert net.total_bytes() == 16 + 24 + 8

    def test_dropped_messages_not_counted(self):
        net = Network(2, seed=0)
        net.set_link_drop_prob(0, 1, 1.0)
        net.send(0, 1, "g", np.zeros(10))
        assert net.total_bytes() == 0

    def test_reset_stats_keeps_queues(self):
        net = Network(2)
        net.send(0, 1, "g", np.zeros(4))
        net.reset_stats()
        assert net.total_bytes() == 0
        assert net.recv(1, 0, "g") is not None

    def test_delivered_counter(self):
        net = Network(2)
        net.send(0, 1, "g", 1)
        net.recv(1, 0, "g")
        assert net.messages_delivered == 1

    def test_unknown_payload_type_falls_back_to_getsizeof(self):
        class Opaque:
            pass

        net = Network(2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            net.send(0, 1, "g", Opaque())
            net.send(0, 1, "g", Opaque())  # second send: no new warning
        fallback = [w for w in caught if "byte accounting" in str(w.message)]
        assert len(fallback) == 1
        assert issubclass(fallback[0].category, RuntimeWarning)
        # sys.getsizeof is never 0 for a real object
        assert net.total_bytes() > 0


class TestTelemetryCounters:
    """comm.* counters mirror the network's own accounting."""

    def _fresh_hub(self):
        tele = Telemetry()
        previous = set_telemetry(tele)
        return tele, previous

    def test_bytes_drops_delivered_counters(self):
        tele, previous = self._fresh_hub()
        try:
            net = Network(3, seed=0)
            net.set_link_drop_prob(0, 2, 1.0)
            net.send(0, 1, "g", np.zeros(10))  # 80 bytes, accepted
            net.send(0, 2, "g", np.zeros(10))  # dropped
            net.block_link(1, 2)
            net.send(1, 2, "g", 1)  # blocked => dropped
            net.recv(1, 0, "g")
            counters = tele.snapshot()["counters"]
            assert counters["comm.bytes_sent"] == 80
            assert counters["comm.drops"] == 2
            assert counters["comm.messages_delivered"] == 1
        finally:
            set_telemetry(previous)
