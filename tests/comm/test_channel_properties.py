"""Hypothesis property tests for the message-passing substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import Network


@settings(max_examples=30, deadline=None)
@given(
    payload_sizes=st.lists(st.integers(1, 50), min_size=1, max_size=20),
    seed=st.integers(0, 1000),
)
def test_reliable_delivery_preserves_order_and_bytes(payload_sizes, seed):
    """On a loss-free network every message arrives once, in order, with
    exact byte accounting."""
    net = Network(2, seed=seed)
    sent = []
    for i, size in enumerate(payload_sizes):
        payload = np.full(size, float(i))
        assert net.send(0, 1, "t", payload)
        sent.append(payload)
    assert net.total_bytes() == sum(8 * s for s in payload_sizes)
    for expected in sent:
        msg = net.recv(1, 0, "t")
        assert msg is not None
        np.testing.assert_array_equal(msg.payload, expected)
    assert net.recv(1, 0, "t") is None


@settings(max_examples=25, deadline=None)
@given(
    n_messages=st.integers(1, 200),
    drop_prob=st.floats(0.0, 0.9),
    seed=st.integers(0, 1000),
)
def test_conservation_under_loss(n_messages, drop_prob, seed):
    """delivered + dropped == sent, for any loss rate."""
    net = Network(2, drop_prob=drop_prob, seed=seed)
    delivered = sum(net.send(0, 1, "x", i) for i in range(n_messages))
    dropped = net.drop_log.count()
    assert delivered + dropped == n_messages
    received = 0
    while net.recv(1, 0, "x") is not None:
        received += 1
    assert received == delivered


@settings(max_examples=20, deadline=None)
@given(
    tags=st.lists(
        st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30
    ),
    seed=st.integers(0, 100),
)
def test_tag_isolation(tags, seed):
    """Messages on different tags never interleave."""
    net = Network(2, seed=seed)
    per_tag: dict[str, list[int]] = {}
    for i, tag in enumerate(tags):
        net.send(0, 1, tag, i)
        per_tag.setdefault(tag, []).append(i)
    for tag, expected in per_tag.items():
        got = []
        while (msg := net.recv(1, 0, tag)) is not None:
            got.append(msg.payload)
        assert got == expected


@settings(max_examples=25, deadline=None)
@given(
    n_nodes=st.integers(2, 8),
    sizes=st.lists(st.integers(1, 40), min_size=1, max_size=8),
    seed=st.integers(0, 1000),
)
def test_collective_byte_accounting_equals_per_link_sum(n_nodes, sizes, seed):
    """bcast/scatter/gather account exactly the sum of per-link sends."""
    net = Network(n_nodes, seed=seed)
    others = list(range(1, n_nodes))
    expected = 0
    for size in sizes:
        net.bcast(0, others, "b", np.zeros(size))
        expected += 8 * size * len(others)
        net.scatter(0, {d: np.zeros(size + d) for d in others}, "s")
        expected += sum(8 * (size + d) for d in others)
    for d in others:
        net.send(d, 0, "g", np.zeros(3))
        expected += 24
    net.gather(0, others, "g")  # receiving must not change accounting
    assert net.total_bytes() == expected
    assert net.total_bytes() == sum(net.bytes_sent.values())


@settings(max_examples=25, deadline=None)
@given(
    # interleaved sends over several (src, tag) lanes into one dst
    lanes=st.lists(
        st.tuples(st.integers(0, 2), st.sampled_from(["x", "y"])),
        min_size=1,
        max_size=40,
    ),
    seed=st.integers(0, 1000),
)
def test_per_link_tag_fifo_under_interleaving(lanes, seed):
    """FIFO holds per (src, tag) lane no matter how sends interleave."""
    net = Network(4, seed=seed)
    sent: dict[tuple[int, str], list[int]] = {}
    for i, (src, tag) in enumerate(lanes):
        assert net.send(src, 3, tag, i)
        sent.setdefault((src, tag), []).append(i)
    for (src, tag), expected in sent.items():
        got = []
        while (msg := net.recv(3, src, tag)) is not None:
            got.append(msg.payload)
        assert got == expected
