"""Tests for FL communication topologies."""

import pytest

from repro.comm import (
    centralized_topology,
    decentralized_topology,
    link_count,
    polycentric_topology,
    validate_roles,
)


class TestCentralized:
    def test_star_structure(self):
        g = centralized_topology(5)
        servers, workers = validate_roles(g)
        assert servers == [0]
        assert workers == [0, 1, 2, 3, 4]
        assert link_count(g) == 4

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            centralized_topology(0)


class TestDecentralized:
    def test_complete_graph(self):
        g = decentralized_topology(4)
        servers, workers = validate_roles(g)
        assert servers == workers == [0, 1, 2, 3]
        assert link_count(g) == 6  # C(4,2)

    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            decentralized_topology(1)


class TestPolycentric:
    def test_servers_subset_of_workers(self):
        g = polycentric_topology(6, [0, 2])
        servers, workers = validate_roles(g)
        assert servers == [0, 2]
        assert workers == list(range(6))

    def test_every_worker_reaches_every_server(self):
        g = polycentric_topology(6, [0, 2, 4])
        for s in (0, 2, 4):
            for w in range(6):
                if w != s:
                    assert g.has_edge(s, w)

    def test_link_count_between_extremes(self):
        # centralized <= polycentric <= decentralized
        n = 8
        c = link_count(centralized_topology(n))
        p = link_count(polycentric_topology(n, [0, 1, 2]))
        d = link_count(decentralized_topology(n))
        assert c <= p <= d

    def test_rejects_invalid_server_rank(self):
        with pytest.raises(ValueError):
            polycentric_topology(4, [5])
        with pytest.raises(ValueError):
            polycentric_topology(4, [])

    def test_reduces_to_centralized_with_one_server(self):
        g = polycentric_topology(5, [0])
        assert link_count(g) == link_count(centralized_topology(5))

    def test_reduces_to_decentralized_with_all_servers(self):
        g = polycentric_topology(4, [0, 1, 2, 3])
        assert link_count(g) == link_count(decentralized_topology(4))


class TestValidateRoles:
    def test_missing_role_raises(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            validate_roles(g)
