"""The traffic-replay harness: seeded workloads and the SLO report."""

import pytest

from repro.service import ReplayConfig, generate_workload, run_replay
from repro.telemetry import get_telemetry


class TestGenerateWorkload:
    def test_deterministic_in_seed(self):
        cfg = ReplayConfig(rounds=400, seed=7)
        assert generate_workload(cfg).churn == generate_workload(cfg).churn

    def test_different_seed_different_churn(self):
        a = generate_workload(ReplayConfig(rounds=400, seed=0))
        b = generate_workload(ReplayConfig(rounds=400, seed=1))
        assert a.churn != b.churn

    def test_churn_never_touches_servers(self):
        cfg = ReplayConfig(rounds=600, seed=3)
        scenario = generate_workload(cfg)
        touched = {wid for _, wid, _ in scenario.churn}
        assert touched
        assert touched.isdisjoint(cfg.server_ranks)

    def test_every_leave_rejoins_within_run(self):
        cfg = ReplayConfig(rounds=500, seed=0)
        out = {}
        for rnd, wid, kind in generate_workload(cfg).churn:
            if kind == "leave":
                out[(rnd, wid)] = rnd + cfg.rejoin_after
        for (rnd, wid), rejoin in out.items():
            if rejoin < cfg.rounds:
                assert (rejoin, wid, "join") in generate_workload(cfg).churn

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ReplayConfig(rounds=0)
        with pytest.raises(ValueError):
            ReplayConfig(burst_every=0)


class TestRunReplay:
    def test_short_replay_meets_slos(self, tmp_path):
        cfg = ReplayConfig(
            rounds=120,
            num_workers=8,
            burst_every=25,
            burst_size=2,
            rejoin_after=10,
            checkpoint_every=40,
            history_tail=32,
            samples_per_worker=16,
            test_samples=64,
            sample_every=10,
        )
        prev_hub = get_telemetry()
        report = run_replay(cfg, tmp_path / "replay")
        # the harness's private hub never leaks into the process
        assert get_telemetry() is prev_hub

        assert report["rounds"] == 120
        assert report["checkpoints"] == 3
        assert report["sustained_rounds_per_sec"] > 0
        assert report["rss_growth_alerts"] == 0
        # history compacts to the tail; the digest chain still covers
        # every round ever run
        assert report["history_rounds_in_memory"] <= 32
        assert len(report["history_digest"]) == 64
        assert 0.0 <= report["snapshot_overhead_pct"] < 100.0
        assert report["final_accuracy"] is not None

    def test_same_seed_same_history(self, tmp_path):
        cfg = ReplayConfig(
            rounds=60,
            num_workers=8,
            burst_every=20,
            burst_size=2,
            rejoin_after=8,
            checkpoint_every=30,
            samples_per_worker=16,
            test_samples=64,
        )
        a = run_replay(cfg, tmp_path / "a")
        b = run_replay(cfg, tmp_path / "b")
        assert a["history_digest"] == b["history_digest"]
        assert a["final_accuracy"] == b["final_accuracy"]
