"""``python -m repro.service`` across real process boundaries.

The in-process differentials (test_service_resume) prove the state
inventory; these tests prove the *operational* story: a service process
SIGKILLed mid-run leaves durable snapshots a fresh process resumes
from, byte-identical, driven entirely through the CLI.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
ROUNDS = "12"


def _run_cli(*args, check=True):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=300,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"cli {args} -> {proc.returncode}\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def _common(dir_, trace):
    return (
        "--preset", "blobs-fifl", "--dir", str(dir_), "--rounds", ROUNDS,
        "--checkpoint-every", "4", "--trace", str(trace),
        "--deterministic-clock",
    )


@pytest.fixture(scope="module")
def kill_resume(tmp_path_factory):
    """One killed-then-resumed run + one clean run, shared by the tests."""
    root = tmp_path_factory.mktemp("cli")
    clean = _run_cli(
        "run", *_common(root / "clean", root / "clean.jsonl")
    )
    killed = _run_cli(
        "run", *_common(root / "killed", root / "part1.jsonl"),
        "--kill-after-round", "7", check=False,
    )
    status = _run_cli("status", "--dir", str(root / "killed"), check=False)
    resumed = _run_cli(
        "resume", "--dir", str(root / "killed"),
        "--trace", str(root / "part2.jsonl"), "--deterministic-clock",
    )
    return {
        "root": root,
        "clean": json.loads(clean.stdout),
        "killed_proc": killed,
        "status_after_kill": status,
        "resumed": json.loads(resumed.stdout),
    }


class TestKillResume:
    def test_kill_is_a_real_sigkill(self, kill_resume):
        assert kill_resume["killed_proc"].returncode == -signal.SIGKILL

    def test_snapshots_survive_the_kill(self, kill_resume):
        # taken between the SIGKILL and the resume
        status = kill_resume["status_after_kill"]
        # status exits 0 only when snapshots exist
        assert status.returncode == 0
        out = json.loads(status.stdout)
        assert out["latest"] == "snapshot-00000008"
        assert out["round"] == 8

    def test_resumed_outputs_match_clean_run(self, kill_resume):
        clean, resumed = kill_resume["clean"], kill_resume["resumed"]
        assert resumed["next_round"] == clean["next_round"]
        assert resumed["history_digest"] == clean["history_digest"]
        assert resumed["reputation_digest"] == clean["reputation_digest"]
        assert resumed["ledger_head"] == clean["ledger_head"]
        assert resumed["ledger_intact"] is True
        assert resumed["final_accuracy"] == clean["final_accuracy"]

    def test_trace_bytes_identical_across_the_kill(self, kill_resume):
        root = kill_resume["root"]
        combined = (root / "part1.jsonl").read_bytes() + (
            root / "part2.jsonl"
        ).read_bytes()
        assert combined == (root / "clean.jsonl").read_bytes()

    def test_inspect_verifies_surviving_snapshot(self, kill_resume):
        inspect = _run_cli(
            "inspect", "--dir", str(kill_resume["root"] / "killed")
        )
        report = json.loads(inspect.stdout)
        assert report["ok"] is True
        assert set(report["components"]) >= {
            "config.pkl", "model.npz", "state.pkl",
        }

    def test_status_audit_lists_lineage_anchors(self, kill_resume):
        status = _run_cli(
            "status", "--dir", str(kill_resume["root"] / "killed"), "--audit"
        )
        payload = json.loads(status.stdout)
        anchors = payload["audit"]
        assert len(anchors) == len(payload["snapshots"])
        rounds = [a["round"] for a in anchors]
        assert rounds == sorted(rounds)
        for a in anchors:
            assert a["history_digest"]
            assert a["reputation_digest"]
            # blobs-fifl carries a ledger, so the chain head anchors too
            assert a["ledger_head"]

    def test_audit_anchors_match_clean_run(self, kill_resume):
        # the anchors are pure functions of federation state: a resumed
        # process writes the same digests the uninterrupted one did
        root = kill_resume["root"]
        def anchors(d):
            out = _run_cli("status", "--dir", str(root / d), "--audit")
            return [
                {k: v for k, v in a.items() if k != "snapshot"}
                for a in json.loads(out.stdout)["audit"]
            ]
        clean, killed = anchors("clean"), anchors("killed")
        by_round = {a["round"]: a for a in clean}
        for a in killed:
            assert a == by_round[a["round"]]


class TestErrors:
    def test_status_on_empty_dir_exits_nonzero(self, tmp_path):
        proc = _run_cli("status", "--dir", str(tmp_path), check=False)
        assert proc.returncode == 1

    def test_resume_without_snapshots_is_a_snapshot_error(self, tmp_path):
        proc = _run_cli("resume", "--dir", str(tmp_path), check=False)
        assert proc.returncode == 2
        assert "no snapshots" in proc.stderr

    def test_unknown_preset_rejected(self, tmp_path):
        proc = _run_cli(
            "run", "--preset", "nope", "--dir", str(tmp_path), check=False
        )
        assert proc.returncode == 2  # argparse choices error
