"""The durable snapshot format: atomicity, integrity, inventory listing."""

import json

import pytest

from repro.service import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    latest_snapshot,
    list_snapshots,
    read_manifest,
    verify_snapshot,
)
from repro.service.snapshot import MANIFEST_NAME, write_snapshot


def _blobs(tag=b"x"):
    return {"config.pkl": b"cfg-" + tag, "state.pkl": b"state-" + tag * 3}


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        snap = write_snapshot(tmp_path, 7, _blobs())
        assert snap.name == "snapshot-00000007"
        manifest = read_manifest(snap)
        assert manifest["round"] == 7
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert set(manifest["components"]) == {"config.pkl", "state.pkl"}
        assert verify_snapshot(snap) == []

    def test_component_digests_recorded(self, tmp_path):
        snap = write_snapshot(tmp_path, 0, _blobs())
        manifest = read_manifest(snap)
        spec = manifest["components"]["state.pkl"]
        assert spec["nbytes"] == len(_blobs()["state.pkl"])
        assert len(spec["sha256"]) == 64

    def test_extra_manifest_rides_along(self, tmp_path):
        snap = write_snapshot(
            tmp_path, 3, _blobs(), extra_manifest={"config_echo": {"seed": 5}}
        )
        assert read_manifest(snap)["config_echo"] == {"seed": 5}

    def test_rewriting_same_round_replaces(self, tmp_path):
        write_snapshot(tmp_path, 4, _blobs(b"a"))
        snap = write_snapshot(tmp_path, 4, _blobs(b"b"))
        assert (snap / "config.pkl").read_bytes() == b"cfg-b"
        assert verify_snapshot(snap) == []
        assert len(list_snapshots(tmp_path)) == 1

    def test_negative_round_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot(tmp_path, -1, _blobs())


class TestIntegrity:
    def test_tampered_blob_detected(self, tmp_path):
        snap = write_snapshot(tmp_path, 1, _blobs())
        (snap / "state.pkl").write_bytes(b"state-yyy")
        problems = verify_snapshot(snap)
        assert any("sha256" in p for p in problems)

    def test_truncated_blob_detected(self, tmp_path):
        snap = write_snapshot(tmp_path, 1, _blobs())
        payload = (snap / "state.pkl").read_bytes()
        (snap / "state.pkl").write_bytes(payload[:-1])
        problems = verify_snapshot(snap)
        assert any("size" in p for p in problems)

    def test_missing_component_detected(self, tmp_path):
        snap = write_snapshot(tmp_path, 1, _blobs())
        (snap / "config.pkl").unlink()
        problems = verify_snapshot(snap)
        assert any("missing" in p for p in problems)

    def test_tampered_manifest_detected(self, tmp_path):
        snap = write_snapshot(tmp_path, 1, _blobs())
        manifest = json.loads((snap / MANIFEST_NAME).read_text())
        manifest["round"] = 99
        (snap / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="integrity"):
            read_manifest(snap)

    def test_format_version_mismatch_rejected(self, tmp_path):
        snap = write_snapshot(tmp_path, 1, _blobs())
        manifest = json.loads((snap / MANIFEST_NAME).read_text())
        manifest["round"] = 99  # would pass if version skipped the check
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        (snap / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format"):
            read_manifest(snap)

    def test_missing_manifest(self, tmp_path):
        snap = write_snapshot(tmp_path, 1, _blobs())
        (snap / MANIFEST_NAME).unlink()
        with pytest.raises(SnapshotError):
            read_manifest(snap)


class TestListing:
    def test_sorted_by_round(self, tmp_path):
        for r in (20, 5, 300):
            write_snapshot(tmp_path, r, _blobs())
        rounds = [read_manifest(p)["round"] for p in list_snapshots(tmp_path)]
        assert rounds == [5, 20, 300]
        latest = latest_snapshot(tmp_path)
        assert read_manifest(latest)["round"] == 300

    def test_invalid_and_tmp_dirs_skipped(self, tmp_path):
        write_snapshot(tmp_path, 1, _blobs())
        # a crash mid-write leaves a temp dir; readers must ignore it
        (tmp_path / ".tmp-snapshot-00000002").mkdir()
        # a corrupted snapshot must not shadow valid ones
        bad = tmp_path / "snapshot-00000003"
        bad.mkdir()
        (bad / MANIFEST_NAME).write_text("{not json")
        snaps = list_snapshots(tmp_path)
        assert [p.name for p in snaps] == ["snapshot-00000001"]

    def test_empty_or_absent_root(self, tmp_path):
        assert list_snapshots(tmp_path) == []
        assert latest_snapshot(tmp_path / "nope") is None
