"""Kill/resume differentials: a resumed service is byte-identical.

The core contract: a run checkpointed at round k, "killed" (the process
state discarded), and resumed from the snapshot produces exactly the
same trace bytes, history digest, reputation state and ledger chain as
a process that never died. The differential runs each half under its
own fresh telemetry hub — the resumed half starts from a *new* hub the
way a new process would, and must continue the clean run's sequence
numbering from the snapshot alone.
"""

import signal

import pytest

from repro.service import FederationService, SnapshotError, list_snapshots
from repro.service.cli import make_preset
from repro.telemetry import (
    MemorySink,
    Telemetry,
    TickClock,
    encode_event,
    get_telemetry,
    set_telemetry,
)

PRESETS = ["blobs-fifl", "sim-churn", "population"]
ROUNDS = 10
CHECKPOINT_EVERY = 5


@pytest.fixture(autouse=True)
def _private_hub():
    """Each test swaps in its own hubs; restore the process hub after."""
    prev = get_telemetry()
    yield
    set_telemetry(prev)


def _fresh_hub() -> Telemetry:
    return Telemetry(sinks=[MemorySink(maxlen=None)], clock=TickClock())


def _outputs(service, hub) -> dict:
    return {
        "trace": [encode_event(ev) for ev in hub.events()],
        "history": service.history_digest(),
        "reputation": service.reputation_digest(),
        "ledger": (
            service.ledger.head_hash() if service.ledger is not None else None
        ),
        "accuracy": service.final_accuracy(),
    }


def _run_clean(preset, snap_dir, **preset_kw):
    hub = _fresh_hub()
    set_telemetry(hub)
    cfg = make_preset(
        preset, rounds=ROUNDS, checkpoint_every=CHECKPOINT_EVERY, **preset_kw
    )
    service = FederationService(cfg, snap_dir)
    service.run()
    return _outputs(service, hub)


def _run_killed_then_resumed(preset, snap_dir, stop_round, **preset_kw):
    # part 1: run to the checkpoint boundary, then drop everything the
    # process held in memory — exactly what SIGKILL leaves behind
    hub1 = _fresh_hub()
    set_telemetry(hub1)
    cfg = make_preset(
        preset, rounds=ROUNDS, checkpoint_every=CHECKPOINT_EVERY, **preset_kw
    )
    part1 = FederationService(cfg, snap_dir)
    part1.run(until_round=stop_round)
    trace1 = [encode_event(ev) for ev in hub1.events()]

    # part 2: a "new process" — fresh hub, state only from the snapshot
    hub2 = _fresh_hub()
    set_telemetry(hub2)
    part2 = FederationService.resume(snap_dir)
    assert part2.next_round == stop_round
    part2.run()
    out = _outputs(part2, hub2)
    out["trace"] = trace1 + out["trace"]
    return out


class TestKillResumeDifferential:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_byte_identical_to_uninterrupted_run(self, preset, tmp_path):
        clean = _run_clean(preset, tmp_path / "clean")
        resumed = _run_killed_then_resumed(
            preset, tmp_path / "killed", stop_round=CHECKPOINT_EVERY
        )
        assert resumed["history"] == clean["history"]
        assert resumed["reputation"] == clean["reputation"]
        assert resumed["ledger"] == clean["ledger"]
        assert resumed["accuracy"] == clean["accuracy"]
        # trace equality last: it subsumes the digests but a digest
        # mismatch is the more actionable first failure
        assert resumed["trace"] == clean["trace"]

    def test_resume_with_history_tail_matches_untrimmed(self, tmp_path):
        clean = _run_clean("blobs-fifl", tmp_path / "clean")
        resumed = _run_killed_then_resumed(
            "blobs-fifl",
            tmp_path / "killed",
            stop_round=CHECKPOINT_EVERY,
            history_tail=3,
        )
        # compaction folds old records into the rolling chain without
        # changing the end-of-run digest (or the bytes of the trace)
        assert resumed["history"] == clean["history"]
        assert resumed["trace"] == clean["trace"]


class TestHistoryCompaction:
    def test_tail_bounds_memory_and_preserves_digest(self, tmp_path):
        full = _run_clean("blobs-fifl", tmp_path / "full")
        hub = _fresh_hub()
        set_telemetry(hub)
        cfg = make_preset(
            "blobs-fifl",
            rounds=ROUNDS,
            checkpoint_every=CHECKPOINT_EVERY,
            history_tail=3,
        )
        service = FederationService(cfg, tmp_path / "tailed")
        service.run()
        assert len(service.history.rounds) == 3
        assert service._rounds_folded == ROUNDS - 3
        assert service.history_digest() == full["history"]


class TestSignals:
    def test_sigterm_checkpoints_and_stops(self, tmp_path):
        hub = _fresh_hub()
        set_telemetry(hub)
        cfg = make_preset(
            "blobs-fifl", rounds=ROUNDS, checkpoint_every=CHECKPOINT_EVERY
        )
        service = FederationService(cfg, tmp_path / "svc")
        orig_round = service.trainer.run_round

        def run_round(t):
            record = orig_round(t)
            if t == 2:
                signal.raise_signal(signal.SIGTERM)
            return record

        service.trainer.run_round = run_round
        service.run()
        # stopped right after round 2's off-schedule checkpoint
        assert service.next_round == 3
        snaps = [p.name for p in list_snapshots(tmp_path / "svc")]
        assert "snapshot-00000003" in snaps
        # the previous handler is restored on exit
        assert signal.getsignal(signal.SIGTERM) != service._handle_signal

        # a resumed service finishes the run; the training outputs match
        # a never-interrupted run (the off-schedule checkpoint perturbs
        # the trace, never the math)
        service2 = FederationService.resume(tmp_path / "svc")
        service2.run()
        clean = _run_clean("blobs-fifl", tmp_path / "clean")
        assert service2.history_digest() == clean["history"]
        assert service2.final_accuracy() == clean["accuracy"]


class TestRunValidation:
    def test_kill_round_must_be_checkpoint_boundary(self, tmp_path):
        cfg = make_preset("blobs-fifl", rounds=ROUNDS, checkpoint_every=5)
        service = FederationService(cfg, tmp_path / "svc")
        with pytest.raises(ValueError, match="checkpoint boundary"):
            service.run(kill_after_round=3)

    def test_kill_round_must_be_reachable(self, tmp_path):
        cfg = make_preset("blobs-fifl", rounds=ROUNDS, checkpoint_every=5)
        service = FederationService(cfg, tmp_path / "svc")
        with pytest.raises(ValueError, match="outside"):
            service.run(until_round=5, kill_after_round=9)

    def test_until_round_beyond_config_rejected(self, tmp_path):
        cfg = make_preset("blobs-fifl", rounds=ROUNDS)
        service = FederationService(cfg, tmp_path / "svc")
        with pytest.raises(ValueError, match="exceeds"):
            service.run(until_round=ROUNDS + 1)

    def test_resume_from_empty_dir_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshots"):
            FederationService.resume(tmp_path / "empty")


class TestPruning:
    def test_keep_snapshots_bounds_disk(self, tmp_path):
        hub = _fresh_hub()
        set_telemetry(hub)
        cfg = make_preset("blobs-fifl", rounds=ROUNDS, checkpoint_every=2)
        cfg.keep_snapshots = 2
        service = FederationService(cfg, tmp_path / "svc")
        service.run()
        snaps = [p.name for p in list_snapshots(tmp_path / "svc")]
        assert snaps == ["snapshot-00000008", "snapshot-00000010"]
