"""Shared audit-test fixture: one traced attacker federation.

A seeded 5-worker blob federation with one sign-flipping attacker, a
full ledger, and a deterministic telemetry hub — every audit test
interrogates the same run, so the fixture is session-scoped. Tests that
tamper with events must copy them first.
"""

import copy

import pytest

from repro.core import make_mechanism
from repro.fl import FederatedTrainer, SignFlippingWorker
from repro.ledger import Blockchain
from repro.nn import build_logreg
from repro.population import WorkerPopulation
from repro.telemetry import MemorySink, Telemetry, TickClock, set_telemetry

from tests.helpers import N_CLASSES, N_FEATURES, make_federation, model_fn

ROUNDS = 6
GAMMA = 0.3
THRESHOLD = 0.0
ATTACKER = 3


def run_traced(rounds=ROUNDS, *, with_ledger=True, audit=True, seed=0):
    """One seeded attacker federation under a fresh deterministic hub.

    Returns ``(mechanism, chain, events)`` — the live mechanism (round
    records + reputation store), the ledger, and the materialized
    telemetry events the run emitted.
    """
    sink = MemorySink(maxlen=None)
    hub = Telemetry(sinks=[sink], clock=TickClock())
    previous = set_telemetry(hub)
    try:
        workers, shards, test = make_federation(num_workers=5, seed=seed)
        workers[ATTACKER] = SignFlippingWorker(
            ATTACKER, shards[ATTACKER], model_fn(seed), p_s=4.0,
            lr=0.1, batch_size=32, local_iters=1, seed=seed + 100 + ATTACKER,
        )
        chain = Blockchain() if with_ledger else None
        mech = make_mechanism(
            "fifl", threshold=THRESHOLD, gamma=GAMMA, audit=audit,
            ledger=chain,
        )
        model = build_logreg(N_FEATURES, N_CLASSES, seed=seed)
        trainer = FederatedTrainer(
            model, population=WorkerPopulation.from_workers(workers),
            server_ranks=[0], test_data=test, mechanism=mech,
            server_lr=0.1,
        )
        trainer.run(rounds, eval_every=rounds)
        hub.flush()
    finally:
        set_telemetry(previous)
    return mech, chain, list(sink.events)


@pytest.fixture(scope="session")
def traced():
    """(mechanism, chain, events) of the shared attacker run."""
    return run_traced()


@pytest.fixture
def events_copy(traced):
    """A deep copy of the shared events, safe to tamper with."""
    return copy.deepcopy(traced[2])
