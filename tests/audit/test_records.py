"""LineageBuilder fold mechanics and the Decision record contract."""

import json

import pytest

from repro.audit import (
    Decision,
    LineageBuilder,
    RoundInputs,
    collect_decisions,
    encode_decision,
)


def make_inputs(
    t,
    *,
    scores=None,
    accepted=None,
    uncertain=(),
    reps=None,
    contribs=None,
    shares=None,
    rewards=None,
    b_h=1.0,
    threshold=0.1,
    budget=10.0,
    initial=0.0,
):
    return RoundInputs(
        round_idx=t,
        scores=scores or {},
        accepted=accepted or {},
        uncertain=tuple(uncertain),
        reputations=reps or {},
        contributions=contribs or {},
        shares=shares or {},
        rewards=rewards or {},
        b_h=b_h,
        threshold=threshold,
        budget=budget,
        initial_reputation=initial,
    )


class TestFold:
    def test_margin_is_score_minus_threshold(self):
        [d] = LineageBuilder().fold(
            make_inputs(0, scores={0: 0.5}, accepted={0: True},
                        reps={0: 0.2}, threshold=0.1)
        )
        assert d.margin == 0.5 - 0.1
        assert d.accepted is True
        assert not d.flagged

    def test_flagged_decision(self):
        [d] = LineageBuilder().fold(
            make_inputs(0, scores={0: -0.9}, accepted={0: False},
                        reps={0: 0.0})
        )
        assert d.flagged
        assert d.accepted is False

    def test_uncertain_decision_has_no_score_or_verdict(self):
        [d] = LineageBuilder().fold(
            make_inputs(0, uncertain=(4,), reps={4: 0.1})
        )
        assert d.uncertain
        assert d.score is None
        assert d.margin is None
        assert d.accepted is None
        assert not d.flagged

    def test_first_appearance_prev_is_initial(self):
        [d] = LineageBuilder().fold(
            make_inputs(0, scores={0: 0.5}, accepted={0: True},
                        reps={0: 0.3}, initial=0.1)
        )
        assert d.reputation_prev == 0.1
        assert d.reputation_delta == 0.3 - 0.1

    def test_prev_reputation_persists_across_absence(self):
        # worker 0 appears in round 0, is absent in round 1 (cohort
        # sampling), and returns in round 2 — the delta must be against
        # its round-0 reputation, not the initial value
        builder = LineageBuilder()
        builder.fold(make_inputs(0, scores={0: 0.5}, accepted={0: True},
                                 reps={0: 0.3}))
        builder.fold(make_inputs(1, scores={1: 0.5}, accepted={1: True},
                                 reps={1: 0.2}))
        [d] = builder.fold(
            make_inputs(2, scores={0: 0.4}, accepted={0: True},
                        reps={0: 0.5})
        )
        assert d.reputation_prev == 0.3
        assert d.reputation_delta == 0.5 - 0.3

    def test_cumulative_reward_accumulates(self):
        builder = LineageBuilder()
        builder.fold(make_inputs(0, scores={0: 0.5}, accepted={0: True},
                                 reps={0: 0.1}, rewards={0: 2.0}))
        [d] = builder.fold(
            make_inputs(1, scores={0: 0.5}, accepted={0: True},
                        reps={0: 0.2}, rewards={0: 3.0})
        )
        assert d.reward == 3.0
        assert d.cumulative_reward == 5.0
        assert builder.cumulative_rewards() == {0: 5.0}

    def test_decisions_sorted_by_worker(self):
        ds = LineageBuilder().fold(
            make_inputs(0, scores={7: 0.1, 2: 0.2}, uncertain=(5,),
                        accepted={7: True, 2: True},
                        reps={7: 0.1, 2: 0.1, 5: 0.0})
        )
        assert [d.worker for d in ds] == [2, 5, 7]


class TestEncoding:
    def test_encode_is_canonical_json(self):
        [d] = LineageBuilder().fold(
            make_inputs(0, scores={0: 0.5}, accepted={0: True},
                        reps={0: 0.2}, rewards={0: 1.0}, shares={0: 0.1})
        )
        payload = json.loads(encode_decision(d))
        assert payload["worker"] == 0
        assert payload["round"] == 0
        assert payload == d.as_dict()

    def test_identical_folds_encode_identically(self):
        args = dict(scores={0: 0.5}, accepted={0: True}, reps={0: 0.2},
                    rewards={0: 1.0})
        a = LineageBuilder().fold(make_inputs(0, **args))
        b = LineageBuilder().fold(make_inputs(0, **args))
        assert [encode_decision(d) for d in a] == [
            encode_decision(d) for d in b
        ]

    def test_decision_is_frozen(self):
        [d] = LineageBuilder().fold(
            make_inputs(0, scores={0: 0.5}, accepted={0: True},
                        reps={0: 0.2})
        )
        with pytest.raises(AttributeError):
            d.reward = 1.0


class TestCollectDecisions:
    def test_covers_every_record_and_round(self, traced):
        mech, _, _ = traced
        decisions = collect_decisions(mech)
        assert decisions
        assert {d.round for d in decisions} == {
            r.round_idx for r in mech.records
        }
        assert all(isinstance(d, Decision) for d in decisions)

    def test_reproduces_exact_mechanism_numbers(self, traced):
        # acceptance criterion: explain reproduces the exact reward and
        # reputation values the mechanism recorded — no re-derivation
        mech, _, _ = traced
        by_key = {
            (d.round, d.worker): d for d in collect_decisions(mech)
        }
        for rec in mech.records:
            for w, reward in rec.rewards.items():
                assert by_key[(rec.round_idx, w)].reward == reward
            for w, rep in rec.reputations.items():
                assert by_key[(rec.round_idx, w)].reputation == rep

    def test_cumulative_rewards_match_live_accumulator(self, traced):
        mech, _, _ = traced
        builder_totals = {}
        for d in collect_decisions(mech):
            if d.reward is not None:
                builder_totals[d.worker] = d.cumulative_reward
        assert builder_totals == mech.cumulative_rewards()
