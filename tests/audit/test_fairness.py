"""Cumulative fairness drill-down: Gini, groups, cohorts."""

import math

import pytest

from repro.audit import (
    cumulative_fairness,
    cumulative_gini,
    decisions_from_trace,
    fairness_report,
)

from .conftest import ATTACKER


class TestCumulativeGini:
    def test_equal_split_is_zero(self):
        assert cumulative_gini({0: 5.0, 1: 5.0, 2: 5.0}) == pytest.approx(0.0)

    def test_total_concentration_approaches_one(self):
        n = 10
        totals = {w: 0.0 for w in range(n - 1)}
        totals[n - 1] = 100.0
        assert cumulative_gini(totals) == pytest.approx((n - 1) / n)

    def test_punishments_clipped_to_zero(self):
        # a worker with negative cumulative reward counts as zero share,
        # exactly like the per-round gauges
        assert cumulative_gini({0: 5.0, 1: -3.0}) == cumulative_gini(
            {0: 5.0, 1: 0.0}
        )

    def test_order_independent(self):
        a = {0: 1.0, 1: 2.0, 2: 3.0}
        b = {2: 3.0, 0: 1.0, 1: 2.0}
        assert cumulative_fairness(a) == cumulative_fairness(b)

    def test_entropy_is_normalized(self):
        _, entropy = cumulative_fairness({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        assert entropy == pytest.approx(1.0)
        assert not math.isnan(entropy)


class TestFairnessReport:
    @pytest.fixture(scope="class")
    def report(self, traced):
        _, _, events = traced
        return fairness_report(
            decisions_from_trace(events), attackers={ATTACKER}
        )

    def test_shape(self, report, traced):
        mech, _, _ = traced
        assert report["rounds"] == len(mech.records)
        assert report["workers"] == 5
        assert len(report["per_worker"]) == 5
        assert 0.0 <= report["cumulative"]["reward_gini"] <= 1.0

    def test_per_worker_rows_partition_rounds(self, report):
        for row in report["per_worker"]:
            assert (
                row["accepted"] + row["flagged"] + row["uncertain"]
                == row["rounds"]
            )

    def test_attacker_group_split(self, report):
        groups = report["groups"]
        assert groups["attacker"]["workers"] == 1
        assert groups["honest"]["workers"] == 4
        # the fairness headline: the sign-flipper is starved relative to
        # honest workers
        assert (
            groups["attacker"]["reward_total"]
            < groups["honest"]["reward_mean"]
        )

    def test_attacker_accumulates_flags(self, report):
        [row] = [
            r for r in report["per_worker"] if r["worker"] == ATTACKER
        ]
        assert row["flagged"] > 0

    def test_cohort_block_from_synthetic_cohorts(self, traced):
        _, _, events = traced
        decisions = decisions_from_trace(events)
        cohorts = {
            0: {"population_size": 5, "sampled": 5, "coverage": 1.0},
            1: {"population_size": 5, "sampled": 5, "coverage": 1.0},
        }
        report = fairness_report(decisions, cohorts=cohorts)
        block = report["cohorts"]
        assert block["sampled_rounds"] == 2
        assert block["population_size"] == 5
        assert block["coverage_final"] == 1.0
        assert (
            block["participation_min"]
            <= block["participation_median"]
            <= block["participation_max"]
        )

    def test_empty_lineage(self):
        report = fairness_report([])
        assert report["rounds"] == 0
        assert report["workers"] == 0
        assert report["per_worker"] == []
