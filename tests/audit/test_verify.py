"""Trace verification battery: clean traces pass, tampered traces fail."""

from repro.audit import verify_trace

from .conftest import run_traced


def check(report, name):
    return next(c for c in report.checks if c.name == name)


def round_events(events):
    return [e for e in events if e.get("type") == "fifl.round"]


def commit_events(events):
    return [e for e in events if e.get("type") == "ledger.commit"]


class TestCleanTrace:
    def test_all_checks_pass(self, traced):
        _, _, events = traced
        report = verify_trace(events)
        assert report.ok, [c.detail for c in report.failures()]
        # with a ledger attached nothing should even be skipped
        assert report.ok_strict(), [
            (c.name, c.status) for c in report.checks if c.status != "pass"
        ]

    def test_ledger_checks_exercised(self, traced):
        _, _, events = traced
        names = {c.name for c in verify_trace(events).checks}
        assert {"ledger-digest", "ledger-chain"} <= names

    def test_ledgerless_trace_skips_ledger_checks(self):
        _, _, events = run_traced(rounds=2, with_ledger=False)
        report = verify_trace(events)
        assert report.ok
        assert not report.ok_strict()
        assert check(report, "ledger-digest").status == "skip"

    def test_report_serializes(self, traced):
        _, _, events = traced
        d = verify_trace(events).to_dict()
        assert d["ok"] is True
        assert {c["status"] for c in d["checks"]} == {"pass"}


class TestTamperedTrace:
    def test_mutated_reward_breaks_arithmetic_and_digest(self, events_copy):
        data = round_events(events_copy)[0]["data"]
        w = next(iter(data["rewards"]))
        data["rewards"][w] = float(data["rewards"][w]) + 1.0
        report = verify_trace(events_copy)
        assert not report.ok
        assert check(report, "reward-arithmetic").status == "fail"
        assert check(report, "ledger-digest").status == "fail"

    def test_dropped_round_breaks_coverage(self, events_copy):
        victim = round_events(events_copy)[2]
        events_copy.remove(victim)
        report = verify_trace(events_copy)
        assert check(report, "round-coverage").status == "fail"

    def test_tampered_commit_hash_breaks_chain(self, events_copy):
        commit_events(events_copy)[1]["data"]["hash"] = "deadbeef"
        report = verify_trace(events_copy)
        assert check(report, "ledger-chain").status == "fail"

    def test_conflicting_duplicate_round_is_a_fork(self, events_copy):
        import copy

        dup = copy.deepcopy(round_events(events_copy)[0])
        w = next(iter(dup["data"]["reputations"]))
        dup["data"]["reputations"][w] = 0.999
        events_copy.append(dup)
        report = verify_trace(events_copy)
        assert check(report, "lineage-fork").status == "fail"

    def test_audit_off_trace_fails_payload_check(self):
        _, _, events = run_traced(rounds=2, with_ledger=False, audit=False)
        report = verify_trace(events)
        assert check(report, "audit-payload").status == "fail"

    def test_mutated_reputation_breaks_delta_consistency(self, events_copy):
        # the emitted delta vector no longer matches the absolute path
        data = round_events(events_copy)[-1]["data"]
        w = next(iter(data["reputations"]))
        data["reputations"][w] = float(data["reputations"][w]) + 0.5
        report = verify_trace(events_copy)
        assert not report.ok
