"""``python -m repro.audit`` CLI: subcommands, exit codes, JSON output."""

import json

import pytest

from repro.audit.cli import main
from repro.telemetry.sinks import encode_event

from .conftest import ATTACKER, ROUNDS


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    from .conftest import run_traced

    _, _, events = run_traced()
    path = tmp_path_factory.mktemp("audit-cli") / "trace.jsonl"
    with open(path, "w") as fh:
        for ev in events:
            fh.write(encode_event(ev) + "\n")
    return path


@pytest.fixture(scope="module")
def split_traces(trace_path, tmp_path_factory):
    """The same trace split in two files (a kill/resume concatenation)."""
    lines = trace_path.read_text().splitlines()
    mid = len(lines) // 2
    root = tmp_path_factory.mktemp("audit-cli-split")
    a, b = root / "a.jsonl", root / "b.jsonl"
    a.write_text("\n".join(lines[:mid]) + "\n")
    b.write_text("\n".join(lines[mid:]) + "\n")
    return a, b


class TestExplain:
    def test_explains_a_decision(self, trace_path, capsys):
        rc = main(["explain", str(trace_path), "--worker", "0",
                   "--round", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "worker 0" in out
        assert "round 1" in out

    def test_json_payload_carries_exact_numbers(self, trace_path, capsys):
        rc = main(["explain", str(trace_path), "--worker",
                   str(ATTACKER), "--round", "0", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["worker"] == ATTACKER
        assert payload["verdict"] in {"ACCEPTED", "FLAGGED", "UNCERTAIN"}
        assert payload["reward"]["amount"] == (
            payload["contribution"]["share"] * payload["reward"]["budget"]
        )

    def test_missing_decision_is_usage_error(self, trace_path, capsys):
        rc = main(["explain", str(trace_path), "--worker", "42",
                   "--round", "0"])
        assert rc == 2
        assert "no decision" in capsys.readouterr().err


class TestWorkerAndRound:
    def test_worker_timeline_covers_every_round(self, trace_path, capsys):
        rc = main(["worker", str(trace_path), "--worker", "0", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [d["round"] for d in payload["decisions"]] == list(
            range(ROUNDS)
        )

    def test_round_table_lists_all_workers(self, trace_path, capsys):
        rc = main(["round", str(trace_path), "--round", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(d["worker"] for d in payload["decisions"]) == [
            0, 1, 2, 3, 4,
        ]


class TestFairness:
    def test_table_output(self, trace_path, capsys):
        rc = main(["fairness", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cumulative reward Gini" in out

    def test_attacker_split_via_flag(self, trace_path, capsys):
        rc = main(["fairness", str(trace_path), "--attackers",
                   str(ATTACKER), "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["groups"]["attacker"]["workers"] == 1


class TestVerify:
    def test_clean_trace_passes(self, trace_path, capsys):
        rc = main(["verify", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failed" in out

    def test_strict_fails_without_dir(self, trace_path):
        # the snapshot-continuity check can only be skipped, and strict
        # counts a skip as a failure
        assert main(["verify", str(trace_path), "--strict"]) == 1

    def test_split_trace_concatenates(self, split_traces, capsys):
        a, b = split_traces
        rc = main(["verify", str(a), str(b), "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True


class TestTraceErrors:
    def test_unreadable_trace(self, tmp_path, capsys):
        rc = main(["verify", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_truncated_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "fifl.round", "data"')
        rc = main(["verify", str(path)])
        assert rc == 2
        assert "not valid JSONL" in capsys.readouterr().err

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        rc = main(["verify", str(path)])
        assert rc == 2
        assert "no events" in capsys.readouterr().err
