"""Offline lineage reconstruction: the byte-identity contract."""

import pytest

from repro.audit import (
    AuditError,
    cohort_samples,
    collect_decisions,
    decisions_from_trace,
    encode_decision,
    inputs_from_payload,
    round_payloads,
    skipped_rounds,
)

from .conftest import run_traced


def fifl_round_event(t, **over):
    data = {
        "round": t,
        "scores": {"0": 0.5, "1": -0.8},
        "flagged": [1],
        "accepted": 1,
        "uncertain": [],
        "threshold": 0.0,
        "budget": 10.0,
        "reputations": {"0": 0.3, "1": 0.0},
        "contributions": {"0": 1.0, "1": 0.0},
        "shares": {"0": 0.1, "1": -0.02},
        "rewards": {"0": 1.0, "1": -0.2},
        "b_h": 1.0,
        "initial_reputation": 0.0,
    }
    data.update(over)
    return {"v": 1, "seq": t, "type": "fifl.round", "data": data}


class TestRoundPayloads:
    def test_first_occurrence_wins_for_exact_duplicates(self):
        ev = fifl_round_event(0)
        rounds, forks = round_payloads([ev, dict(ev)])
        assert list(rounds) == [0]
        assert forks == []

    def test_conflicting_duplicate_is_a_fork(self):
        a = fifl_round_event(0)
        b = fifl_round_event(0, rewards={"0": 99.0, "1": -0.2})
        rounds, forks = round_payloads([a, b])
        assert forks == [0]
        with pytest.raises(AuditError, match="lineage fork"):
            decisions_from_trace([a, b])

    def test_non_round_events_ignored(self):
        rounds, _ = round_payloads(
            [{"type": "span", "name": "x"}, fifl_round_event(2)]
        )
        assert list(rounds) == [2]


class TestInputsFromPayload:
    def test_string_keys_normalized_to_int(self):
        inp = inputs_from_payload(fifl_round_event(0)["data"])
        assert set(inp.scores) == {0, 1}
        assert inp.accepted == {0: True, 1: False}
        assert inp.reputations[0] == 0.3

    def test_missing_attribution_payload_raises(self):
        data = fifl_round_event(0)["data"]
        del data["reputations"]
        with pytest.raises(AuditError, match="audit=False"):
            inputs_from_payload(data)

    def test_audit_off_trace_is_not_reconstructable(self):
        _, _, events = run_traced(rounds=2, with_ledger=False, audit=False)
        with pytest.raises(AuditError, match="audit=False"):
            decisions_from_trace(events)


class TestByteIdentity:
    def test_offline_equals_live_byte_for_byte(self, traced):
        # the tentpole contract: reconstruction from the trace alone is
        # byte-for-byte the lineage the live mechanism produced
        mech, _, events = traced
        live = [encode_decision(d) for d in collect_decisions(mech)]
        offline = [
            encode_decision(d) for d in decisions_from_trace(events)
        ]
        assert len(live) > 0
        assert live == offline

    def test_reconstruction_is_order_independent(self, traced):
        _, _, events = traced
        reference = [
            encode_decision(d) for d in decisions_from_trace(events)
        ]
        reversed_events = list(reversed(events))
        assert [
            encode_decision(d) for d in decisions_from_trace(reversed_events)
        ] == reference

    def test_segmented_trace_reconstructs_identically(self, traced):
        # a killed run's trace plus its resume's trace is a concatenation;
        # splitting the stream anywhere must not change the lineage
        _, _, events = traced
        reference = [
            encode_decision(d) for d in decisions_from_trace(events)
        ]
        mid = len(events) // 2
        concatenated = events[:mid] + events[mid:]
        assert [
            encode_decision(d) for d in decisions_from_trace(concatenated)
        ] == reference


class TestSideStreams:
    def test_skipped_rounds_extracted(self):
        events = [
            {"type": "trainer.skipped_round",
             "data": {"round": 4, "reason": "empty_cohort"}},
            fifl_round_event(5),
        ]
        assert skipped_rounds(events) == {4: "empty_cohort"}

    def test_cohort_samples_extracted(self):
        events = [
            {"type": "population.cohort",
             "data": {"round": 0, "population_size": 64, "sampled": 16,
                      "live": 14, "coverage": 0.25}},
        ]
        samples = cohort_samples(events)
        assert samples[0]["population_size"] == 64
