"""Audit determinism: seeded experiment and kill/resume byte-identity.

The acceptance contract of the audit layer: on seeded runs (fig09- and
fig11-style attacker federations, and a checkpointed service that is
killed and resumed), the decision lineage reconstructed offline from
the telemetry trace equals the live mechanism's records byte-for-byte,
and the full verification battery passes.
"""

import pytest

from repro.audit import (
    collect_decisions,
    decisions_from_trace,
    encode_decision,
    verify_service,
    verify_trace,
)
from repro.experiments.common import probabilistic, run_federated, sign_flip
from repro.service import FederationService
from repro.service.cli import make_preset
from repro.telemetry import (
    MemorySink,
    Telemetry,
    TickClock,
    get_telemetry,
    set_telemetry,
)

ROUNDS = 10
CHECKPOINT_EVERY = 5


@pytest.fixture(autouse=True)
def _private_hub():
    prev = get_telemetry()
    yield
    set_telemetry(prev)


def _fresh_hub():
    sink = MemorySink(maxlen=None)
    return Telemetry(sinks=[sink], clock=TickClock()), sink


def run_experiment_traced(attackers_fn):
    """One scaled seeded federation; returns (mechanism, events)."""
    from repro.experiments.fig11_reputation import default_config

    cfg = default_config().scaled(
        num_workers=6,
        samples_per_worker=40,
        test_samples=50,
        rounds=5,
        eval_every=5,
    )
    hub, sink = _fresh_hub()
    set_telemetry(hub)
    _, mech = run_federated(cfg, attackers_fn(cfg), with_fifl=True)
    hub.flush()
    return mech, list(sink.events)


def fig09_attackers(cfg):
    """Sign-flip attackers on the tail ids (fig09's threat model)."""
    return {cfg.num_workers - 1: sign_flip(4.0)}


def fig11_attackers(cfg):
    """Probabilistic attackers at several p_a (fig11's threat model)."""
    return {
        cfg.num_workers - 2: probabilistic(0.4, 4.0),
        cfg.num_workers - 1: probabilistic(0.8, 4.0),
    }


class TestSeededExperiments:
    @pytest.mark.parametrize(
        "attackers_fn", [fig09_attackers, fig11_attackers],
        ids=["fig09-signflip", "fig11-probabilistic"],
    )
    def test_offline_lineage_equals_live_records(self, attackers_fn):
        mech, events = run_experiment_traced(attackers_fn)
        live = [encode_decision(d) for d in collect_decisions(mech)]
        offline = [
            encode_decision(d) for d in decisions_from_trace(events)
        ]
        assert len(live) > 0
        assert live == offline

    def test_trace_verifies_clean(self):
        _, events = run_experiment_traced(fig09_attackers)
        report = verify_trace(events)
        assert report.ok, [c.detail for c in report.failures()]


class TestKillResume:
    @pytest.fixture(scope="class")
    def service_run(self, tmp_path_factory):
        """Clean run vs killed+resumed run of the blobs-fifl preset."""
        root = tmp_path_factory.mktemp("audit-service")

        hub, sink = _fresh_hub()
        prev = set_telemetry(hub)
        try:
            clean = FederationService(
                make_preset("blobs-fifl", rounds=ROUNDS,
                            checkpoint_every=CHECKPOINT_EVERY),
                root / "clean",
            )
            clean.run()
            hub.flush()
            clean_events = list(sink.events)

            hub1, sink1 = _fresh_hub()
            set_telemetry(hub1)
            part1 = FederationService(
                make_preset("blobs-fifl", rounds=ROUNDS,
                            checkpoint_every=CHECKPOINT_EVERY),
                root / "killed",
            )
            part1.run(until_round=CHECKPOINT_EVERY)
            hub1.flush()

            hub2, sink2 = _fresh_hub()
            set_telemetry(hub2)
            part2 = FederationService.resume(root / "killed")
            part2.run()
            hub2.flush()
            resumed_events = list(sink1.events) + list(sink2.events)
        finally:
            set_telemetry(prev)
        return clean_events, resumed_events, root / "killed"

    def test_resumed_lineage_equals_uninterrupted(self, service_run):
        clean_events, resumed_events, _ = service_run
        clean = [
            encode_decision(d) for d in decisions_from_trace(clean_events)
        ]
        resumed = [
            encode_decision(d) for d in decisions_from_trace(resumed_events)
        ]
        assert len(clean) > 0
        assert clean == resumed

    def test_resumed_trace_verifies_strict(self, service_run):
        _, resumed_events, snap_dir = service_run
        report = verify_trace(resumed_events)
        verify_service(resumed_events, snap_dir, report=report)
        assert report.ok_strict(), [
            (c.name, c.status, c.detail)
            for c in report.checks if c.status != "pass"
        ]
