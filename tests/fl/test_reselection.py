"""Tests for S4.5 dynamic server re-selection in the trainer."""

import pytest

from repro.core import DetectionConfig, FIFLConfig, FIFLMechanism
from repro.fl import FederatedTrainer, SignFlippingWorker
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def fifl_mech(gamma=0.4):
    return FIFLMechanism(
        FIFLConfig(detection=DetectionConfig(threshold=0.0), gamma=gamma)
    )


class TestReselection:
    def test_requires_mechanism_with_recommendation(self):
        workers, _, test = make_federation(num_workers=4)
        model = build_logreg(N_FEATURES, N_CLASSES)
        with pytest.raises(ValueError):
            FederatedTrainer(model, workers, [0], test_data=test, reselect_every=2)

    def test_rejects_negative_interval(self):
        workers, _, test = make_federation(num_workers=4)
        model = build_logreg(N_FEATURES, N_CLASSES)
        with pytest.raises(ValueError):
            FederatedTrainer(
                model, workers, [0], test_data=test,
                mechanism=fifl_mech(), reselect_every=-1,
            )

    def test_attacker_server_gets_replaced(self):
        # start with the ATTACKER in the server cluster; after a few rounds
        # its reputation collapses and re-selection evicts it
        workers, _, test = make_federation(num_workers=6, seed=3)
        workers[0] = make_federation(
            num_workers=6, seed=3,
            worker_cls=SignFlippingWorker, worker_kwargs={"p_s": 6.0},
        )[0][0]
        model = build_logreg(N_FEATURES, N_CLASSES, seed=3)
        trainer = FederatedTrainer(
            model, workers, [0, 1], test_data=test,
            mechanism=fifl_mech(), server_lr=0.1, reselect_every=3,
        )
        assert 0 in trainer.server_ranks
        trainer.run(12, eval_every=12)
        assert 0 not in trainer.server_ranks
        assert len(trainer.server_ranks) == 2

    def test_static_cluster_without_interval(self):
        workers, _, test = make_federation(num_workers=4)
        model = build_logreg(N_FEATURES, N_CLASSES)
        trainer = FederatedTrainer(
            model, workers, [0], test_data=test, mechanism=fifl_mech()
        )
        trainer.run(5, eval_every=5)
        assert trainer.server_ranks == [0]

    def test_topology_follows_reselection(self):
        workers, _, test = make_federation(num_workers=6, seed=3)
        workers[0] = make_federation(
            num_workers=6, seed=3,
            worker_cls=SignFlippingWorker, worker_kwargs={"p_s": 6.0},
        )[0][0]
        model = build_logreg(N_FEATURES, N_CLASSES, seed=3)
        trainer = FederatedTrainer(
            model, workers, [0, 1], test_data=test,
            mechanism=fifl_mech(), server_lr=0.1, reselect_every=2,
        )
        trainer.run(8, eval_every=8)
        servers = {
            n for n, d in trainer.topology.nodes(data=True)
            if "server" in d["role"] and "worker" in d["role"] and
            n in trainer.server_ranks
        }
        assert sorted(servers) == trainer.server_ranks

    def test_training_still_converges_with_reselection(self):
        workers, _, test = make_federation(num_workers=5, seed=4)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=4)
        trainer = FederatedTrainer(
            model, workers, [0, 1], test_data=test,
            mechanism=fifl_mech(), server_lr=0.1, reselect_every=5,
        )
        history = trainer.run(30, eval_every=30)
        assert history.final_accuracy() > 0.7
