"""Shared fixtures: tiny blob federations with logistic-regression models."""

import numpy as np
import pytest

from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation, model_fn  # noqa: F401


@pytest.fixture
def blob_federation():
    return make_federation()


@pytest.fixture
def global_model():
    return build_logreg(N_FEATURES, N_CLASSES, seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
