"""Tests for gradient slicing and aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import fedavg, recombine, slice_bounds, split_gradient


class TestSplitRecombine:
    def test_roundtrip_exact(self):
        g = np.arange(10.0)
        np.testing.assert_array_equal(recombine(split_gradient(g, 3)), g)

    def test_slices_are_copies(self):
        g = np.arange(6.0)
        parts = split_gradient(g, 2)
        parts[0][:] = -1
        assert g[0] == 0.0

    def test_slice_count(self):
        assert len(split_gradient(np.arange(7.0), 4)) == 4

    def test_errors(self):
        with pytest.raises(ValueError):
            split_gradient(np.zeros((2, 2)), 2)
        with pytest.raises(ValueError):
            split_gradient(np.arange(3.0), 0)
        with pytest.raises(ValueError):
            split_gradient(np.arange(3.0), 5)
        with pytest.raises(ValueError):
            recombine([])

    @settings(max_examples=40, deadline=None)
    @given(length=st.integers(1, 200), m=st.integers(1, 20))
    def test_property_roundtrip_and_bounds(self, length, m):
        if m > length:
            return
        g = np.random.default_rng(length * 31 + m).normal(size=length)
        parts = split_gradient(g, m)
        np.testing.assert_array_equal(recombine(parts), g)
        bounds = slice_bounds(length, m)
        assert bounds[0][0] == 0 and bounds[-1][1] == length
        for (a, b), part in zip(bounds, parts):
            assert b - a == part.size
            np.testing.assert_array_equal(g[a:b], part)


class TestSliceBounds:
    def test_even(self):
        assert slice_bounds(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_front_loaded(self):
        assert slice_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_errors(self):
        with pytest.raises(ValueError):
            slice_bounds(5, 0)
        with pytest.raises(ValueError):
            slice_bounds(-1, 2)


class TestFedAvg:
    def test_equal_weights_is_mean(self):
        grads = [np.array([1.0, 0.0]), np.array([3.0, 2.0])]
        np.testing.assert_allclose(fedavg(grads, [1, 1]), [2.0, 1.0])

    def test_weighted_by_sample_count(self):
        grads = [np.array([0.0]), np.array([10.0])]
        np.testing.assert_allclose(fedavg(grads, [3, 1]), [2.5])

    def test_zero_weight_excludes(self):
        grads = [np.array([5.0]), np.array([-100.0])]
        np.testing.assert_allclose(fedavg(grads, [1, 0]), [5.0])

    def test_scale_invariant_in_weights(self):
        rng = np.random.default_rng(0)
        grads = [rng.normal(size=4) for _ in range(3)]
        a = fedavg(grads, [1, 2, 3])
        b = fedavg(grads, [10, 20, 30])
        np.testing.assert_allclose(a, b)

    def test_errors(self):
        with pytest.raises(ValueError):
            fedavg([], [])
        with pytest.raises(ValueError):
            fedavg([np.zeros(2)], [1, 2])
        with pytest.raises(ValueError):
            fedavg([np.zeros(2)], [-1])
        with pytest.raises(ValueError):
            fedavg([np.zeros(2)], [0])

    def test_matches_paper_equation_2(self):
        # G = sum_i n_i/sum(n) G_i
        rng = np.random.default_rng(1)
        grads = [rng.normal(size=5) for _ in range(4)]
        n = np.array([100, 50, 25, 25], dtype=float)
        expected = sum((n[i] / n.sum()) * grads[i] for i in range(4))
        np.testing.assert_allclose(fedavg(grads, n), expected)
