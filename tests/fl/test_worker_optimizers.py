"""Tests for worker-side local optimizers (momentum / Adam)."""

import numpy as np
import pytest

from repro.fl import FederatedTrainer, HonestWorker
from repro.nn import SGD, Adam, build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation, model_fn


class TestWorkerOptimizers:
    def test_default_matches_plain_sgd(self):
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        plain = make_federation(num_workers=1, seed=1)[0][0]
        explicit = make_federation(
            num_workers=1, seed=1,
            worker_kwargs={"optimizer": SGD(lr=0.1)},
        )[0][0]
        np.testing.assert_allclose(
            plain.compute_update(theta).gradient,
            explicit.compute_update(theta).gradient,
        )

    def test_momentum_changes_update(self):
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        plain = make_federation(num_workers=1, seed=1, local_iters=4)[0][0]
        momentum = make_federation(
            num_workers=1, seed=1, local_iters=4,
            worker_kwargs={"optimizer": SGD(lr=0.1, momentum=0.9)},
        )[0][0]
        g_plain = plain.compute_update(theta).gradient
        g_mom = momentum.compute_update(theta).gradient
        assert not np.allclose(g_plain, g_mom)
        # momentum amplifies consistent directions
        assert np.linalg.norm(g_mom) > np.linalg.norm(g_plain)

    def test_optimizer_state_reset_between_rounds(self):
        worker = make_federation(
            num_workers=1, seed=2, local_iters=2,
            worker_kwargs={"optimizer": SGD(lr=0.1, momentum=0.9)},
        )[0][0]
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        g1 = worker.compute_update(theta).gradient
        g2 = worker.compute_update(theta).gradient
        # same params, fresh momentum: updates differ only through batch
        # sampling, not through carried-over velocity blowup
        assert np.linalg.norm(g2) < 3 * np.linalg.norm(g1)

    def test_adam_worker_trains_in_federation(self):
        workers, _, test = make_federation(
            num_workers=3, local_iters=3,
            worker_kwargs={"optimizer": Adam(lr=0.05)},
        )
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        trainer = FederatedTrainer(model, workers, [0], test_data=test, server_lr=0.1)
        history = trainer.run(25, eval_every=25)
        assert history.final_accuracy() > 0.7
