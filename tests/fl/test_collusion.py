"""Tests for the colluding small-perturbation attacker."""

import numpy as np
import pytest

from repro.core import AttackDetector, DetectionConfig
from repro.fl import ColludingAttacker, split_gradient
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation, model_fn


def colluder(seed=0, wid=0, epsilon=0.3, direction_seed=42):
    shards = make_federation(num_workers=2, seed=seed)[1]
    return ColludingAttacker(
        wid, shards[wid], model_fn(seed), lr=0.1,
        epsilon=epsilon, direction_seed=direction_seed, seed=seed + 100 + wid,
    )


class TestColludingAttacker:
    @staticmethod
    def _bias(wid, epsilon=0.3, direction_seed=42):
        # twin workers share the RNG seed, so the honest component of the
        # (stochastic) local gradient is identical; the difference between
        # the attacked upload and the twin's honest gradient IS the bias
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        attacked = colluder(wid=wid, epsilon=epsilon,
                            direction_seed=direction_seed)
        twin = colluder(wid=wid, epsilon=epsilon, direction_seed=direction_seed)
        honest = twin._local_gradient(theta)
        bias = attacked.compute_update(theta).gradient - honest
        return honest, bias

    def test_same_seed_same_planted_direction(self):
        _, bias_a = self._bias(wid=0)
        _, bias_b = self._bias(wid=1)
        cos = bias_a @ bias_b / np.linalg.norm(bias_a) / np.linalg.norm(bias_b)
        assert cos == pytest.approx(1.0)

    def test_perturbation_is_epsilon_scaled(self):
        honest, bias = self._bias(wid=0, epsilon=0.25)
        assert np.linalg.norm(bias) == pytest.approx(
            0.25 * np.linalg.norm(honest), rel=1e-9
        )

    def test_small_epsilon_evades_cosine_detection(self):
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        honest = make_federation(num_workers=2, seed=0)[0][1]
        bench_grad = honest.compute_update(theta).gradient
        w = colluder(epsilon=0.2)
        attack_grad = w.compute_update(theta).gradient
        bench = dict(zip((0, 1), split_gradient(bench_grad, 2)))
        slices = {5: dict(zip((0, 1), split_gradient(attack_grad, 2)))}
        det = AttackDetector(DetectionConfig(threshold=0.0, mode="cosine"))
        _, accepted = det.detect(slices, bench)
        assert accepted[5] is True  # the documented evasion

    def test_marked_attacked(self):
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        assert colluder().compute_update(theta).attacked

    def test_validation(self):
        shards = make_federation(num_workers=1)[1]
        with pytest.raises(ValueError):
            ColludingAttacker(0, shards[0], model_fn(), epsilon=0.0)
