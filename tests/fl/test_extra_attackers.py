"""Tests for the extended attacker roster and systematic poisoning."""

import numpy as np
import pytest

from repro.core import DetectionConfig, FIFLConfig, FIFLMechanism
from repro.datasets import flip_labels
from repro.fl import FederatedTrainer, GaussianNoiseAttacker, ReplayFreeRider
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation, model_fn


class TestGaussianNoiseAttacker:
    def test_norm_calibrated(self, seed=0):
        workers, _, _ = make_federation(num_workers=2, seed=seed)
        attacker = make_federation(
            num_workers=2, seed=seed,
            worker_cls=GaussianNoiseAttacker, worker_kwargs={"scale": 1.0},
        )[0][0]
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        honest_norm = np.linalg.norm(workers[0].compute_update(theta).gradient)
        noise_norm = np.linalg.norm(attacker.compute_update(theta).gradient)
        assert noise_norm == pytest.approx(honest_norm, rel=0.5)

    def test_marked_attacked(self):
        attacker = make_federation(
            num_workers=1, worker_cls=GaussianNoiseAttacker
        )[0][0]
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        assert attacker.compute_update(theta).attacked
        assert attacker.is_malicious

    def test_detected_by_cosine_threshold(self):
        # random directions have near-zero cosine vs the benchmark, so a
        # small positive S_y filters them
        workers, _, test = make_federation(num_workers=6, seed=1)
        workers[3] = make_federation(
            num_workers=6, seed=1, worker_cls=GaussianNoiseAttacker
        )[0][3]
        mech = FIFLMechanism(
            FIFLConfig(detection=DetectionConfig(threshold=0.15), gamma=0.3)
        )
        model = build_logreg(N_FEATURES, N_CLASSES, seed=1)
        trainer = FederatedTrainer(model, workers, [0, 1], test_data=test,
                                   mechanism=mech, server_lr=0.1)
        trainer.run(10, eval_every=10)
        rejected = sum(1 for rec in mech.records if not rec.accepted[3])
        assert rejected >= 8

    def test_validation(self):
        _, shards, _ = make_federation(num_workers=1)
        with pytest.raises(ValueError):
            GaussianNoiseAttacker(0, shards[0], model_fn(), scale=0.0)


class TestReplayFreeRider:
    def test_first_round_uploads_zeros(self):
        rider = make_federation(num_workers=1, worker_cls=ReplayFreeRider,
                                worker_kwargs={"server_lr": 0.1})[0][0]
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        upd = rider.compute_update(theta)
        np.testing.assert_array_equal(upd.gradient, 0.0)
        assert upd.attacked

    def test_replays_global_delta(self):
        rider = make_federation(num_workers=1, worker_cls=ReplayFreeRider,
                                worker_kwargs={"server_lr": 0.1})[0][0]
        theta0 = np.ones(4)
        theta1 = np.ones(4) * 0.9
        rider.compute_update(theta0)
        upd = rider.compute_update(theta1)
        # G = (prev - cur) / eta = (1.0 - 0.9) / 0.1 = 1.0 per coordinate
        np.testing.assert_allclose(upd.gradient, 1.0)

    def test_replay_attack_defeats_fifl(self):
        # A documented LIMITATION (DESIGN.md, EXPERIMENTS.md): the replayed
        # global gradient is very close to the new global gradient, so the
        # replay free-rider both evades a zero detection threshold AND
        # earns contribution-based rewards comparable to honest workers.
        # The paper scopes FIFL to disorganized, non-adaptive attackers;
        # this test pins the behaviour so the limitation stays visible.
        workers, _, test = make_federation(num_workers=5, seed=2)
        workers[4] = make_federation(
            num_workers=5, seed=2, worker_cls=ReplayFreeRider,
            worker_kwargs={"server_lr": 0.1},
        )[0][4]
        mech = FIFLMechanism(
            FIFLConfig(detection=DetectionConfig(threshold=0.0), gamma=0.3)
        )
        model = build_logreg(N_FEATURES, N_CLASSES, seed=2)
        trainer = FederatedTrainer(model, workers, [0], test_data=test,
                                   mechanism=mech, server_lr=0.1)
        trainer.run(8, eval_every=8)
        later_scores = [rec.scores[4] for rec in mech.records[2:]]
        assert np.mean(later_scores) > 0.0  # evades a zero threshold
        rewards = mech.cumulative_rewards()
        honest_mean = np.mean([rewards[w] for w in range(4)])
        # the free-rider is NOT driven below the honest reward level
        assert rewards[4] > 0.5 * honest_mean

    def test_validation(self):
        _, shards, _ = make_federation(num_workers=1)
        with pytest.raises(ValueError):
            ReplayFreeRider(0, shards[0], model_fn(), server_lr=0.0)


class TestSystematicFlip:
    def test_all_flips_go_to_next_class(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 4, size=100)
        flipped = flip_labels(y, 1.0, 4, rng, systematic=True)
        np.testing.assert_array_equal(flipped, (y + 1) % 4)

    def test_exact_rate_respected(self):
        rng = np.random.default_rng(1)
        y = np.zeros(50, dtype=int)
        flipped = flip_labels(y, 0.4, 3, rng, systematic=True)
        assert (flipped != y).sum() == 20
        assert set(flipped[flipped != 0]) == {1}
