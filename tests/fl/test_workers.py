"""Tests for worker agents and attacker behaviours."""

import numpy as np
import pytest

from repro.fl import (
    DataPoisonWorker,
    FreeRiderWorker,
    HonestWorker,
    ProbabilisticAttacker,
    SignFlippingWorker,
)

from tests.helpers import make_federation, model_fn


class TestHonestWorker:
    def test_gradient_shape_matches_model(self, global_model):
        workers, _, _ = make_federation(num_workers=2)
        theta = global_model.get_flat_params()
        upd = workers[0].compute_update(theta)
        assert upd.gradient.shape == theta.shape
        assert not upd.attacked

    def test_gradient_equals_sum_of_step_gradients(self, global_model):
        # (theta0 - thetaK)/lr must equal the accumulated SGD gradient.
        workers, _, _ = make_federation(num_workers=2, local_iters=3)
        theta = global_model.get_flat_params()
        upd = workers[0].compute_update(theta)
        # replay: after compute_update the worker model holds thetaK
        thetaK = workers[0].model.get_flat_params()
        np.testing.assert_allclose(upd.gradient, (theta - thetaK) / workers[0].lr)

    def test_gradient_descends_local_loss(self, global_model):
        workers, shards, _ = make_federation(num_workers=2, local_iters=5)
        theta = global_model.get_flat_params()
        upd = workers[0].compute_update(theta)
        from repro.fl import evaluate

        loss_before, _ = evaluate(global_model, shards[0])
        global_model.set_flat_params(theta - 0.1 * upd.gradient)
        loss_after, _ = evaluate(global_model, shards[0])
        assert loss_after < loss_before

    def test_num_samples_truthful(self):
        workers, shards, _ = make_federation(num_workers=3)
        for w, s in zip(workers, shards):
            assert w.num_samples == len(s)

    def test_validation(self):
        workers, shards, _ = make_federation(num_workers=2)
        with pytest.raises(ValueError):
            HonestWorker(0, shards[0], model_fn(), lr=0.0)
        with pytest.raises(ValueError):
            HonestWorker(0, shards[0], model_fn(), batch_size=0)
        with pytest.raises(ValueError):
            HonestWorker(0, shards[0], model_fn(), local_iters=0)

    def test_deterministic_given_seed(self, global_model):
        theta = global_model.get_flat_params()
        w1 = make_federation(num_workers=1, seed=5)[0][0]
        w2 = make_federation(num_workers=1, seed=5)[0][0]
        np.testing.assert_array_equal(
            w1.compute_update(theta).gradient, w2.compute_update(theta).gradient
        )


class TestSignFlipping:
    def test_gradient_is_negated_and_scaled(self, global_model):
        theta = global_model.get_flat_params()
        honest = make_federation(num_workers=1, seed=3)[0][0]
        attacker = make_federation(
            num_workers=1, seed=3, worker_cls=SignFlippingWorker,
            worker_kwargs={"p_s": 4.0},
        )[0][0]
        g_h = honest.compute_update(theta).gradient
        g_a = attacker.compute_update(theta).gradient
        np.testing.assert_allclose(g_a, -4.0 * g_h)

    def test_marked_attacked(self, global_model):
        theta = global_model.get_flat_params()
        attacker = make_federation(
            num_workers=1, worker_cls=SignFlippingWorker
        )[0][0]
        assert attacker.compute_update(theta).attacked
        assert attacker.is_malicious

    def test_rejects_nonpositive_intensity(self):
        _, shards, _ = make_federation(num_workers=1)
        with pytest.raises(ValueError):
            SignFlippingWorker(0, shards[0], model_fn(), p_s=0.0)


class TestDataPoison:
    def test_labels_flipped_at_rate(self):
        worker = make_federation(
            num_workers=1, worker_cls=DataPoisonWorker, worker_kwargs={"p_d": 0.4}
        )[0][0]
        clean = make_federation(num_workers=1)[0][0]
        frac = (worker.dataset.y != clean.dataset.y).mean()
        assert frac == pytest.approx(0.4, abs=0.01)

    def test_zero_rate_not_malicious(self):
        worker = make_federation(
            num_workers=1, worker_cls=DataPoisonWorker, worker_kwargs={"p_d": 0.0}
        )[0][0]
        assert not worker.is_malicious

    def test_poisoned_gradient_deviates_more(self, global_model):
        # the core geometric fact FIFL relies on: more poison -> bigger
        # deviation from the honest gradient
        theta = global_model.get_flat_params()
        honest = make_federation(num_workers=1, seed=2, local_iters=8)[0][0]
        g_h = honest.compute_update(theta).gradient

        def deviation(p_d):
            w = make_federation(
                num_workers=1, seed=2, local_iters=8,
                worker_cls=DataPoisonWorker,
                worker_kwargs={"p_d": p_d, "poison_seed": 1},
            )[0][0]
            return np.linalg.norm(w.compute_update(theta).gradient - g_h)

        assert deviation(0.8) > deviation(0.2)

    def test_rejects_bad_rate(self):
        _, shards, _ = make_federation(num_workers=1)
        with pytest.raises(ValueError):
            DataPoisonWorker(0, shards[0], model_fn(), p_d=1.5)


class TestFreeRider:
    def test_no_training_happens(self, global_model):
        theta = global_model.get_flat_params()
        rider = make_federation(num_workers=1, worker_cls=FreeRiderWorker)[0][0]
        upd = rider.compute_update(theta)
        assert upd.attacked
        # model params untouched (no local SGD)
        np.testing.assert_array_equal(
            rider.model.get_flat_params(),
            make_federation(num_workers=1)[0][0].model.get_flat_params(),
        )
        assert np.linalg.norm(upd.gradient) < 1.0

    def test_rejects_negative_noise(self):
        _, shards, _ = make_federation(num_workers=1)
        with pytest.raises(ValueError):
            FreeRiderWorker(0, shards[0], model_fn(), noise_scale=-1.0)


class TestProbabilisticAttacker:
    def test_attack_rate_matches_p_a(self, global_model):
        theta = global_model.get_flat_params()
        attacker = make_federation(
            num_workers=1,
            worker_cls=ProbabilisticAttacker,
            worker_kwargs={"p_a": 0.3, "p_s": 2.0},
        )[0][0]
        flags = [attacker.compute_update(theta).attacked for _ in range(400)]
        assert np.mean(flags) == pytest.approx(0.3, abs=0.07)

    def test_honest_rounds_are_honest_gradients(self, global_model):
        theta = global_model.get_flat_params()
        attacker = make_federation(
            num_workers=1, seed=4,
            worker_cls=ProbabilisticAttacker,
            worker_kwargs={"p_a": 0.0},
        )[0][0]
        honest = make_federation(num_workers=1, seed=4)[0][0]
        np.testing.assert_allclose(
            attacker.compute_update(theta).gradient,
            honest.compute_update(theta).gradient,
        )

    def test_validation(self):
        _, shards, _ = make_federation(num_workers=1)
        with pytest.raises(ValueError):
            ProbabilisticAttacker(0, shards[0], model_fn(), p_a=2.0)
        with pytest.raises(ValueError):
            ProbabilisticAttacker(0, shards[0], model_fn(), p_s=-1.0)
