"""Fleet local engine: RNG fidelity, attacker parity, fallbacks, e2e differential.

The engine's contract (see ``repro.fl.fleet_compute``) is that switching
``local_engine`` between "fleet" and "scalar" is *observationally
invisible*: identical minibatch draws, identical uploads for every
worker type (honest, every attacker, free-riders), identical training
histories. These tests pin each clause.
"""

import numpy as np
import pytest

from repro.datasets import iid_partition, make_blobs, train_test_split
from repro.experiments.common import (
    FedExpConfig,
    data_poison,
    probabilistic,
    run_federated,
    sign_flip,
)
from repro.fl import (
    ColludingAttacker,
    DataPoisonWorker,
    FederatedTrainer,
    FleetLocalEngine,
    FreeRiderWorker,
    GaussianNoiseAttacker,
    HonestWorker,
    ProbabilisticAttacker,
    ReplayFreeRider,
    RoundDecision,
    SampleInflationWorker,
    SignFlippingWorker,
)
from repro.nn import SGD, Dense, Dropout, ReLU, Sequential, build_logreg, build_mlp

from tests.helpers import N_CLASSES, N_FEATURES, make_federation

TOL = 1e-8


def _theta(seed=0):
    return build_logreg(N_FEATURES, N_CLASSES, seed=seed).get_flat_params()


class TestRNGFidelity:
    def test_minibatch_indices_reproduce_worker_streams(self):
        """Fleet sampling must be byte-identical to each worker's own
        ``default_rng(seed)`` stream — draw for draw, across rounds."""
        local_iters, rounds = 3, 2
        workers, _, _ = make_federation(num_workers=4, seed=5, local_iters=local_iters)
        engine = FleetLocalEngine(workers)
        theta = _theta(5)
        per_round: list[dict] = []
        for _ in range(rounds):
            engine.compute_updates(theta)
            per_round.append(dict(engine.last_indices))
        for i, w in enumerate(workers):
            ref = np.random.default_rng(5 + 100 + i)  # the seed make_federation used
            b = min(w.batch_size, len(w.dataset))
            for r in range(rounds):
                got = per_round[r][w.worker_id]
                assert len(got) == local_iters
                for idx in got:
                    want = ref.integers(0, len(w.dataset), size=b)
                    assert idx.tobytes() == want.tobytes()
                    assert idx.dtype == want.dtype

    def test_scalar_and_fleet_workers_end_with_same_rng_state(self):
        """After a round, both paths leave the worker RNG at the same point,
        so downstream draws (attacker coin flips next round) line up."""
        theta = _theta(3)
        scalar_w = make_federation(num_workers=3, seed=3)[0]
        fleet_w = make_federation(num_workers=3, seed=3)[0]
        for w in scalar_w:
            w.compute_update(theta)
        FleetLocalEngine(fleet_w).compute_updates(theta)
        for a, b in zip(scalar_w, fleet_w):
            assert a.rng.integers(0, 1 << 30) == b.rng.integers(0, 1 << 30)


def _attacker_zoo(seed=0):
    """One worker of every type over shared blob shards."""
    data = make_blobs(n_samples=450, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed)
    shards = iid_partition(data, 9, seed=seed)

    def mf():
        return build_logreg(N_FEATURES, N_CLASSES, seed=seed)

    specs = [
        (HonestWorker, {}),
        (SignFlippingWorker, {"p_s": 4.0}),
        (DataPoisonWorker, {"p_d": 0.6, "poison_seed": 7}),
        (ProbabilisticAttacker, {"p_a": 0.5, "p_s": 4.0}),
        (GaussianNoiseAttacker, {"scale": 1.0}),
        (SampleInflationWorker, {"inflation": 5.0}),
        (ColludingAttacker, {"epsilon": 0.3}),
        (FreeRiderWorker, {}),
        (ReplayFreeRider, {"server_lr": 0.1}),
    ]
    return [
        cls(i, shards[i], mf, lr=0.1, batch_size=16, local_iters=2,
            seed=seed + 10 + i, **kw)
        for i, (cls, kw) in enumerate(specs)
    ]


class TestAttackerParity:
    def test_every_worker_type_uploads_identically(self):
        theta = _theta(1)
        scalar_updates = {
            w.worker_id: w.compute_update(theta, None) for w in _attacker_zoo(1)
        }
        engine = FleetLocalEngine(_attacker_zoo(1))
        fleet_updates = engine.compute_updates(theta, None)

        assert list(fleet_updates) == sorted(scalar_updates)  # id-ordered dict
        for wid, want in scalar_updates.items():
            got = fleet_updates[wid]
            assert np.abs(got.gradient - want.gradient).max() <= TOL
            assert got.num_samples == want.num_samples
            assert got.attacked == want.attacked

    def test_multi_round_parity(self):
        """Stateful attackers (probabilistic coin flips, replay free-rider)
        stay in lockstep across several rounds."""
        rounds = 3
        theta = _theta(2)
        scalar_zoo, fleet_zoo = _attacker_zoo(2), _attacker_zoo(2)
        engine = FleetLocalEngine(fleet_zoo)
        for _ in range(rounds):
            scalar_updates = {w.worker_id: w.compute_update(theta) for w in scalar_zoo}
            fleet_updates = engine.compute_updates(theta)
            for wid, want in scalar_updates.items():
                assert np.abs(fleet_updates[wid].gradient - want.gradient).max() <= TOL
            theta = theta - 0.05 * np.mean(
                [u.gradient for u in scalar_updates.values()], axis=0
            )


class TestFallbacks:
    def test_custom_optimizer_goes_scalar(self):
        workers, _, _ = make_federation(
            num_workers=3, worker_kwargs={"optimizer": SGD(lr=0.1, momentum=0.9)}
        )
        engine = FleetLocalEngine(workers)
        updates = engine.compute_updates(_theta())
        assert engine._groups == [] and len(engine._scalar) == 3
        assert sorted(updates) == [0, 1, 2]

    def test_dropout_model_goes_scalar(self):
        data = make_blobs(n_samples=90, n_features=N_FEATURES, num_classes=N_CLASSES, seed=0)
        shards = iid_partition(data, 2, seed=0)

        def mf():
            rng = np.random.default_rng(0)
            return Sequential(
                [Dense(N_FEATURES, 8, rng), ReLU(), Dropout(0.5, rng),
                 Dense(8, N_CLASSES, rng)]
            )

        workers = [HonestWorker(i, shards[i], mf, seed=i) for i in range(2)]
        engine = FleetLocalEngine(workers)
        engine.compute_updates(workers[0].model.get_flat_params())
        assert engine._groups == [] and len(engine._scalar) == 2

    def test_free_riders_go_scalar(self):
        engine = FleetLocalEngine(_attacker_zoo(0))
        engine.compute_updates(_theta())
        scalar_ids = {w.worker_id for w in engine._scalar}
        assert scalar_ids == {7, 8}  # FreeRider + ReplayFreeRider slots
        assert sum(len(g.workers) for g in engine._groups) == 7

    def test_heterogeneous_architectures_split_groups(self):
        data = make_blobs(n_samples=120, n_features=N_FEATURES, num_classes=N_CLASSES, seed=0)
        shards = iid_partition(data, 4, seed=0)

        # Same parameter count (so one global theta fits both), different
        # signatures (ReLU vs Tanh) — must land in separate fleet groups.
        def relu_mlp():
            rng = np.random.default_rng(0)
            return Sequential(
                [Dense(N_FEATURES, 7, rng), ReLU(), Dense(7, N_CLASSES, rng)]
            )

        def tanh_mlp():
            from repro.nn import Tanh

            rng = np.random.default_rng(0)
            return Sequential(
                [Dense(N_FEATURES, 7, rng), Tanh(), Dense(7, N_CLASSES, rng)]
            )

        workers = [
            HonestWorker(i, shards[i], relu_mlp if i < 2 else tanh_mlp, seed=i)
            for i in range(4)
        ]
        engine = FleetLocalEngine(workers)
        updates = engine.compute_updates(relu_mlp().get_flat_params())
        assert len(engine._groups) == 2
        assert sorted(len(g.workers) for g in engine._groups) == [2, 2]
        assert sorted(updates) == [0, 1, 2, 3]

    def test_exclude_drops_workers_and_caches_grouping(self):
        workers, _, _ = make_federation(num_workers=4)
        engine = FleetLocalEngine(workers)
        updates = engine.compute_updates(_theta(), exclude={1})
        assert sorted(updates) == [0, 2, 3]
        assert engine._grouped_for == frozenset({1})
        groups_before = engine._groups
        engine.compute_updates(_theta(), exclude={1})
        assert engine._groups is groups_before  # no rebuild for the same set


class _BoomMechanism:
    """Accept-all mechanism that explodes on the second round."""

    def __init__(self):
        self.calls = 0

    def process_round(self, ctx):
        self.calls += 1
        if self.calls >= 2:
            raise RuntimeError("boom")
        return RoundDecision(accept={w: True for w in ctx.slices})


class TestTrainerIntegration:
    def test_run_restores_test_data_on_exception(self):
        workers, _, test = make_federation(num_workers=3)
        trainer = FederatedTrainer(
            build_logreg(N_FEATURES, N_CLASSES, seed=0), workers, [0],
            test_data=test, mechanism=_BoomMechanism(),
        )
        with pytest.raises(RuntimeError, match="boom"):
            # eval_every=5: round 1 runs with test_data toggled to None,
            # which is exactly when the mechanism raises.
            trainer.run(5, eval_every=5)
        assert trainer.test_data is test

    def test_rejects_unknown_local_engine(self):
        workers, _, test = make_federation(num_workers=2)
        with pytest.raises(ValueError):
            FederatedTrainer(
                build_logreg(N_FEATURES, N_CLASSES, seed=0), workers, [0],
                test_data=test, local_engine="warp",
            )

    def test_failed_node_excluded_from_fleet(self):
        workers, _, test = make_federation(num_workers=4)
        trainer = FederatedTrainer(
            build_logreg(N_FEATURES, N_CLASSES, seed=0), workers, [0],
            test_data=test, local_engine="fleet",
        )
        trainer.fail_node(2)
        rec = trainer.run_round(0)
        assert 2 not in rec.accepted


#: scaled-down stand-ins for the fig07 / fig09 / fig11 federations
_E2E_CASES = {
    "fig07_attack_damage": (
        dict(rounds=4, eval_every=2),
        {2: sign_flip(2.0), 3: data_poison(0.6)},
        False,
    ),
    "fig09_detection": (
        dict(rounds=4, eval_every=2, batch_size=8),
        {3: sign_flip(4.0), 4: data_poison(0.8), 5: probabilistic(0.5)},
        True,
    ),
    "fig11_reputation": (
        dict(rounds=4, eval_every=2),
        {4: probabilistic(0.8, 4.0), 5: probabilistic(0.2, 4.0)},
        True,
    ),
}


class TestEndToEndDifferential:
    @pytest.mark.parametrize("name", sorted(_E2E_CASES))
    def test_histories_match(self, name):
        fed_kwargs, attackers, with_fifl = _E2E_CASES[name]
        histories = {}
        for engine in ("scalar", "fleet"):
            cfg = FedExpConfig(
                dataset="blobs",
                num_workers=6,
                samples_per_worker=40,
                test_samples=80,
                local_iters=1,
                server_ranks=(0, 1),
                local_engine=engine,
                **fed_kwargs,
            )
            histories[engine], _ = run_federated(cfg, attackers, with_fifl=with_fifl)
        scalar, fleet = histories["scalar"], histories["fleet"]
        assert len(scalar.rounds) == len(fleet.rounds)
        for rs, rf in zip(scalar.rounds, fleet.rounds):
            assert rs.accepted == rf.accepted
            assert rs.uncertain == rf.uncertain
            assert abs(rs.grad_norm - rf.grad_norm) <= TOL
            if rs.test_loss is not None:
                assert abs(rs.test_loss - rf.test_loss) <= TOL
                assert abs(rs.test_acc - rf.test_acc) <= TOL

    @pytest.mark.slow
    def test_histories_match_image_models(self):
        """LeNet (Conv/pool) and mini-ResNet (BatchNorm/Residual) paths."""
        for dataset in ("mnist", "cifar10"):
            histories = {}
            for engine in ("scalar", "fleet"):
                cfg = FedExpConfig(
                    dataset=dataset,
                    num_workers=4,
                    samples_per_worker=24,
                    test_samples=40,
                    image_size=14 if dataset == "mnist" else 8,
                    rounds=2,
                    eval_every=1,
                    batch_size=8,
                    server_ranks=(0, 1),
                    local_engine=engine,
                )
                histories[engine], _ = run_federated(
                    cfg, {3: sign_flip(2.0)}, with_fifl=True
                )
            for rs, rf in zip(histories["scalar"].rounds, histories["fleet"].rounds):
                assert rs.accepted == rf.accepted
                assert abs(rs.grad_norm - rf.grad_norm) <= TOL
                if rs.test_loss is not None:
                    assert abs(rs.test_loss - rf.test_loss) <= TOL
