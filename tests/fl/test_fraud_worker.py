"""Tests for the sample-inflation fraud worker."""

import numpy as np
import pytest

from repro.core import individual_weights, union_weights
from repro.fl import SampleInflationWorker
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation, model_fn


class TestSampleInflation:
    def test_claims_inflated_count(self):
        worker = make_federation(
            num_workers=2, worker_cls=SampleInflationWorker,
            worker_kwargs={"inflation": 5.0},
        )[0][0]
        assert worker.num_samples == 5 * len(worker.dataset)

    def test_gradient_is_honest(self):
        theta = build_logreg(N_FEATURES, N_CLASSES, seed=0).get_flat_params()
        honest = make_federation(num_workers=2, seed=3)[0][0]
        liar = make_federation(
            num_workers=2, seed=3, worker_cls=SampleInflationWorker,
            worker_kwargs={"inflation": 5.0},
        )[0][0]
        np.testing.assert_allclose(
            honest.compute_update(theta).gradient,
            liar.compute_update(theta).gradient,
        )
        assert not liar.compute_update(theta).attacked

    def test_inflation_boosts_baseline_weights(self):
        true_counts = np.array([100.0, 100.0, 100.0])
        claimed = np.array([100.0, 1000.0, 100.0])
        for fn in (individual_weights, union_weights):
            honest = fn(true_counts); honest = honest / honest.sum()
            lied = fn(claimed); lied = lied / lied.sum()
            assert lied[1] > honest[1]

    def test_validation(self):
        _, shards, _ = make_federation(num_workers=1)
        with pytest.raises(ValueError):
            SampleInflationWorker(0, shards[0], model_fn(), inflation=0.5)
