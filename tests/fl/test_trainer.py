"""Tests for the federated trainer across all three architectures."""

import numpy as np
import pytest

from repro.fl import FederatedTrainer, RoundDecision, SignFlippingWorker
from repro.nn import build_logreg

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def make_trainer(num_workers=4, server_ranks=(0,), mechanism=None, drop_prob=0.0,
                 worker_cls=None, worker_kwargs=None, seed=0):
    kwargs = {}
    if worker_cls is not None:
        kwargs["worker_cls"] = worker_cls
        kwargs["worker_kwargs"] = worker_kwargs
    workers, _, test = make_federation(num_workers=num_workers, seed=seed, **kwargs)
    model = build_logreg(N_FEATURES, N_CLASSES, seed=seed)
    return FederatedTrainer(
        model, workers, list(server_ranks), test_data=test,
        mechanism=mechanism, server_lr=0.1, drop_prob=drop_prob, seed=seed,
    )


class TestConstruction:
    def test_rejects_bad_worker_ids(self):
        workers, _, test = make_federation(num_workers=3)
        workers[0].worker_id = 7
        model = build_logreg(N_FEATURES, N_CLASSES)
        with pytest.raises(ValueError):
            FederatedTrainer(model, workers, [0], test_data=test)

    def test_rejects_invalid_server_rank(self):
        workers, _, test = make_federation(num_workers=3)
        model = build_logreg(N_FEATURES, N_CLASSES)
        with pytest.raises(ValueError):
            FederatedTrainer(model, workers, [9], test_data=test)

    def test_rejects_no_workers(self):
        model = build_logreg(N_FEATURES, N_CLASSES)
        with pytest.raises(ValueError):
            FederatedTrainer(model, [], [0])

    def test_architecture_extremes(self):
        assert make_trainer(server_ranks=[0]).num_servers == 1
        assert make_trainer(server_ranks=[0, 1, 2, 3]).num_servers == 4


class TestTraining:
    def test_learns_blobs(self):
        trainer = make_trainer(num_workers=4)
        history = trainer.run(num_rounds=40, eval_every=40)
        assert history.final_accuracy() > 0.7

    def test_history_length_and_eval_schedule(self):
        trainer = make_trainer()
        history = trainer.run(num_rounds=6, eval_every=3)
        assert len(history.rounds) == 6
        evals = [r.test_acc is not None for r in history.rounds]
        assert evals == [True, False, False, True, False, True]

    def test_accept_all_by_default(self):
        trainer = make_trainer()
        rec = trainer.run_round(0)
        assert all(rec.accepted.values())
        assert rec.uncertain == set()

    def test_run_validation(self):
        trainer = make_trainer()
        with pytest.raises(ValueError):
            trainer.run(0)
        with pytest.raises(ValueError):
            trainer.run(2, eval_every=0)


class TestArchitectureEquivalence:
    """Aggregating via 1, 2, or N servers must give identical models (abl-arch)."""

    @pytest.mark.parametrize("ranks", [[0], [0, 2], [0, 1, 2, 3]])
    def test_identical_global_model(self, ranks):
        trainer = make_trainer(server_ranks=ranks, seed=7)
        trainer.run(num_rounds=5, eval_every=5)
        theta = trainer.model.get_flat_params()
        ref = make_trainer(server_ranks=[0], seed=7)
        ref.run(num_rounds=5, eval_every=5)
        np.testing.assert_allclose(theta, ref.model.get_flat_params(), atol=1e-12)


class TestFailureInjection:
    def test_lossy_uplink_creates_uncertain_events(self):
        trainer = make_trainer(drop_prob=0.4, seed=1)
        total_uncertain = 0
        for t in range(10):
            rec = trainer.run_round(t)
            total_uncertain += len(rec.uncertain)
            for w in rec.uncertain:
                assert not rec.accepted[w]
        assert total_uncertain > 0

    def test_fully_reliable_network_no_uncertainty(self):
        trainer = make_trainer(drop_prob=0.0)
        rec = trainer.run_round(0)
        assert rec.uncertain == set()

    def test_all_dropped_round_keeps_model(self):
        trainer = make_trainer()
        for src in range(4):
            for dst in range(4):
                trainer.network.set_link_drop_prob(src, dst, 1.0)
        theta_before = trainer.model.get_flat_params()
        rec = trainer.run_round(0)
        np.testing.assert_array_equal(trainer.model.get_flat_params(), theta_before)
        assert rec.grad_norm == 0.0


class TestMechanismHook:
    def test_rejecting_mechanism_blocks_update(self):
        class RejectAll:
            def process_round(self, ctx):
                return RoundDecision(accept={w: False for w in ctx.slices})

        trainer = make_trainer(mechanism=RejectAll())
        theta_before = trainer.model.get_flat_params()
        trainer.run_round(0)
        np.testing.assert_array_equal(trainer.model.get_flat_params(), theta_before)

    def test_mechanism_records_propagate(self):
        class Recorder:
            def process_round(self, ctx):
                return RoundDecision(
                    accept={w: True for w in ctx.slices},
                    records={"n_workers": len(ctx.slices)},
                )

        trainer = make_trainer(mechanism=Recorder())
        rec = trainer.run_round(0)
        assert rec.mechanism_records == {"n_workers": 4}

    def test_context_slices_recombine_to_full_gradient(self):
        seen = {}

        class Check:
            def process_round(self, ctx):
                for wid, parts in ctx.slices.items():
                    flat = np.concatenate([parts[s] for s in sorted(parts)])
                    seen[wid] = np.allclose(flat, ctx.updates[wid].gradient)
                return RoundDecision(accept={w: True for w in ctx.slices})

        trainer = make_trainer(server_ranks=[0, 1, 3], mechanism=Check())
        trainer.run_round(0)
        assert seen and all(seen.values())


class TestAttackDamage:
    def test_sign_flipping_hurts_accuracy(self):
        clean = make_trainer(num_workers=4, seed=2)
        acc_clean = clean.run(30, eval_every=30).final_accuracy()

        workers, _, test = make_federation(num_workers=4, seed=2)
        attacker = make_federation(
            num_workers=4, seed=2, worker_cls=SignFlippingWorker,
            worker_kwargs={"p_s": 6.0},
        )[0][0]
        workers[0] = attacker
        model = build_logreg(N_FEATURES, N_CLASSES, seed=2)
        dirty = FederatedTrainer(model, workers, [1], test_data=test, server_lr=0.1)
        acc_dirty = dirty.run(30, eval_every=30).final_accuracy()
        assert acc_dirty < acc_clean
