"""Declarative worker registry: roles, specs, roster construction."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.fl import (
    WORKER_ROLES,
    DataPoisonWorker,
    HonestWorker,
    SignFlippingWorker,
    Worker,
    WorkerSpec,
    make_worker,
    make_workers,
    register_worker_role,
)

from ..helpers import N_CLASSES, N_FEATURES, model_fn


def dataset(seed=0):
    return make_blobs(
        n_samples=40, n_features=N_FEATURES, num_classes=N_CLASSES, seed=seed
    )


class TestRegistry:
    def test_builtin_roles_present(self):
        for role in ("honest", "sign", "poison", "free", "prob"):
            assert role in WORKER_ROLES
        assert WORKER_ROLES["honest"] is HonestWorker
        assert WORKER_ROLES["sign"] is SignFlippingWorker

    def test_register_requires_worker_subclass(self):
        with pytest.raises(TypeError, match="not a Worker subclass"):
            register_worker_role("bogus", dict)

    def test_register_and_use_custom_role(self):
        class QuietWorker(HonestWorker):
            pass

        register_worker_role("quiet", QuietWorker)
        try:
            w = make_worker(WorkerSpec("quiet"), 0, dataset(), model_fn())
            assert isinstance(w, QuietWorker)
        finally:
            del WORKER_ROLES["quiet"]


class TestWorkerSpec:
    def test_unknown_role_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown worker role"):
            WorkerSpec("nonexistent")

    def test_is_malicious_static_labels(self):
        assert WorkerSpec("honest").is_malicious is False
        assert WorkerSpec("sign", {"p_s": 2.0}).is_malicious is True
        assert WorkerSpec("free").is_malicious is True
        # poison is parameter-dependent: p_d == 0 is merely clean data
        assert WorkerSpec("poison", {"p_d": 0.0}).is_malicious is False
        assert WorkerSpec("poison", {"p_d": 0.7}).is_malicious is True

    def test_is_malicious_matches_constructed_worker(self):
        for spec in (
            WorkerSpec("honest"),
            WorkerSpec("sign", {"p_s": 2.0}),
            WorkerSpec("poison", {"p_d": 0.5}),
            WorkerSpec("poison", {"p_d": 0.0}),
        ):
            w = make_worker(spec, 0, dataset(), model_fn())
            assert spec.is_malicious == w.is_malicious, spec


class TestMakeWorker:
    def test_params_and_common_kwargs_flow_through(self):
        w = make_worker(
            WorkerSpec("sign", {"p_s": 3.0}), 5, dataset(), model_fn(),
            seed=9, lr=0.05, batch_size=16,
        )
        assert w.worker_id == 5
        assert w.p_s == 3.0
        assert w.lr == 0.05

    def test_poison_seed_defaults_to_worker_seed(self):
        a = make_worker(
            WorkerSpec("poison", {"p_d": 0.5}), 0, dataset(), model_fn(),
            seed=7,
        )
        b = DataPoisonWorker(
            0, dataset(), model_fn(), seed=7, p_d=0.5, poison_seed=7
        )
        assert np.array_equal(a.dataset.y, b.dataset.y)


class TestMakeWorkers:
    def seed_fn(self, wid):
        return 100 + wid

    def test_aligned_list_form(self):
        specs = [WorkerSpec(), WorkerSpec("sign", {"p_s": 2.0}), WorkerSpec()]
        datasets = [dataset(i) for i in range(3)]
        workers = make_workers(specs, datasets, model_fn(), self.seed_fn)
        assert [w.worker_id for w in workers] == [0, 1, 2]
        assert [w.is_malicious for w in workers] == [False, True, False]
        # seed_fn supplies each private RNG seed
        assert np.array_equal(
            workers[2].rng.integers(0, 100, size=3),
            np.random.default_rng(102).integers(0, 100, size=3),
        )

    def test_sparse_mapping_defaults_to_honest(self):
        datasets = [dataset(i) for i in range(4)]
        workers = make_workers(
            {2: WorkerSpec("free")}, datasets, model_fn(), self.seed_fn
        )
        assert [w.is_malicious for w in workers] == [False, False, True, False]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="specs for"):
            make_workers(
                [WorkerSpec()], [dataset(), dataset()], model_fn(),
                self.seed_fn,
            )

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            make_workers(
                {9: WorkerSpec()}, [dataset()], model_fn(), self.seed_fn
            )
