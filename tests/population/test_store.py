"""ReputationStore: chunk-sparse semantics, write-back, memmap backing."""

import numpy as np
import pytest

from repro.population import ReputationStore


class TestBasics:
    def test_initial_value_everywhere(self):
        store = ReputationStore(100, initial=0.5, chunk_size=16)
        assert store.get(0) == 0.5
        assert store.get(99) == 0.5
        assert store.touched_chunks == 0

    def test_set_get_roundtrip(self):
        store = ReputationStore(100, chunk_size=16)
        store.set(17, 0.9)
        assert store.get(17) == 0.9
        assert store.get(16) == 0.0  # same chunk, untouched slot
        assert store.touched_chunks == 1

    def test_get_many_mixed_chunks(self):
        store = ReputationStore(1000, chunk_size=64)
        store.set_many(np.asarray([3, 500, 999]), np.asarray([0.1, 0.2, 0.3]))
        got = store.get_many(np.asarray([999, 3, 4, 500]))
        assert got.tolist() == [0.3, 0.1, 0.0, 0.2]

    def test_out_of_range_ids_raise(self):
        store = ReputationStore(10)
        with pytest.raises(IndexError):
            store.get(10)
        with pytest.raises(IndexError):
            store.set(-1, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReputationStore(0)
        with pytest.raises(ValueError):
            ReputationStore(10, chunk_size=0)

    def test_nbytes_counts_touched_only(self):
        store = ReputationStore(10**6, chunk_size=4096)
        store.set(123456, 1.0)
        assert store.nbytes == 4096 * 8
        assert store.touched_chunks == 1


class TestWriteRound:
    def test_interleaved_round_read_modify_write(self):
        """Two alternating cohorts: each round reads the other's writes."""
        store = ReputationStore(200, chunk_size=32)
        cohort_a = [1, 50, 150]
        cohort_b = [2, 50, 199]
        for rnd in range(6):
            cohort = cohort_a if rnd % 2 == 0 else cohort_b
            current = store.get_many(np.asarray(cohort))
            store.write_round(
                {w: float(c) + 1.0 for w, c in zip(cohort, current)}
            )
        # worker 50 is in both cohorts: bumped every round
        assert store.get(50) == 6.0
        # exclusive members: bumped every other round
        assert store.get(1) == 3.0
        assert store.get(199) == 3.0
        assert store.get(0) == 0.0

    def test_write_round_returns_count_and_empty_is_noop(self):
        store = ReputationStore(10)
        assert store.write_round({}) == 0
        assert store.write_round({1: 0.5, 2: 0.6}) == 2

    def test_as_dict_covers_touched_chunks(self):
        store = ReputationStore(100, chunk_size=10)
        store.write_round({5: 0.5, 95: 0.9})
        d = store.as_dict()
        assert d[5] == 0.5 and d[95] == 0.9
        # only touched chunks appear
        assert 50 not in d


class TestIterChunks:
    def test_full_coverage_in_order(self):
        store = ReputationStore(100, initial=0.25, chunk_size=32)
        store.set(70, 0.9)
        seen = []
        for start, vals in store.iter_chunks():
            seen.append((start, len(vals)))
        assert seen == [(0, 32), (32, 32), (64, 32), (96, 4)]

    def test_untouched_chunks_share_default_block(self):
        store = ReputationStore(4096 * 4, chunk_size=4096)
        blocks = [vals for _, vals in store.iter_chunks()]
        assert all(b is store._default_chunk for b in blocks)
        with pytest.raises(ValueError):
            blocks[0][0] = 1.0  # read-only

    def test_values_reflect_writes(self):
        store = ReputationStore(64, chunk_size=16)
        store.set(40, 0.7)
        chunks = dict(store.iter_chunks())
        assert chunks[32][8] == 0.7
        assert chunks[0][0] == 0.0


class TestMemmap:
    def test_memmap_roundtrip(self, tmp_path):
        path = str(tmp_path / "reps.npy")
        store = ReputationStore(500, initial=0.1, chunk_size=64, path=path)
        store.write_round({7: 0.9, 450: 0.2})
        assert store.get(7) == 0.9
        assert store.get(8) == pytest.approx(0.1)
        # the file holds the state: re-open it cold
        arr = np.load(path, mmap_mode="r")
        assert arr[450] == 0.2
        assert arr[0] == pytest.approx(0.1)

    def test_memmap_iter_chunks_and_counters(self, tmp_path):
        path = str(tmp_path / "reps.npy")
        store = ReputationStore(100, chunk_size=32, path=path)
        store.set(99, 1.0)
        total = sum(len(v) for _, v in store.iter_chunks())
        assert total == 100
        assert store.nbytes == 100 * 8
