"""Cohort samplers: determinism (incl. process restarts), differentials."""

import subprocess
import sys

import numpy as np
import pytest

from repro.population import (
    AvailabilityAwareSampler,
    CohortSampler,
    ReputationWeightedSampler,
    UniformSampler,
    WorkerPopulation,
    make_sampler,
    reputation_weighted_reference,
)


def make_population(size=1000, **kwargs):
    return WorkerPopulation(size, **kwargs)


class TestUniform:
    def test_sorted_unique_correct_size(self):
        pop = make_population()
        cohort = UniformSampler(seed=1).sample(0, pop, 32, required=(0, 1))
        assert len(cohort) == 32
        assert len(set(cohort.tolist())) == 32
        assert cohort.tolist() == sorted(cohort.tolist())
        assert {0, 1} <= set(cohort.tolist())

    def test_deterministic_per_round(self):
        pop = make_population()
        s = UniformSampler(seed=5)
        a = s.sample(3, pop, 16)
        b = UniformSampler(seed=5).sample(3, pop, 16)
        assert np.array_equal(a, b)
        # different rounds draw different cohorts
        c = s.sample(4, pop, 16)
        assert not np.array_equal(a, c)

    def test_full_cohort_is_identity(self):
        pop = make_population(size=10)
        cohort = UniformSampler(seed=0).sample(0, pop, 10, required=(0,))
        assert cohort.tolist() == list(range(10))

    def test_near_full_cohort_dense_fallback(self):
        pop = make_population(size=20)
        cohort = UniformSampler(seed=0).sample(0, pop, 18, required=(3,))
        assert len(cohort) == 18
        assert len(set(cohort.tolist())) == 18

    def test_required_out_of_range(self):
        pop = make_population(size=10)
        with pytest.raises(ValueError):
            UniformSampler(seed=0).sample(0, pop, 5, required=(10,))

    def test_protocol_conformance(self):
        assert isinstance(UniformSampler(), CohortSampler)
        assert isinstance(ReputationWeightedSampler(), CohortSampler)
        assert isinstance(AvailabilityAwareSampler(), CohortSampler)


class TestRestartDeterminism:
    def test_cohorts_survive_process_restart(self):
        """A fresh interpreter replays the identical cohort sequence."""
        script = (
            "import numpy as np\n"
            "from repro.population import WorkerPopulation, make_sampler\n"
            "pop = WorkerPopulation(1000)\n"
            "pop.reputation_store.write_round({3: 0.9, 700: 0.5})\n"
            "for name in ('uniform', 'reputation', 'available'):\n"
            "    s = make_sampler(name, seed=7)\n"
            "    for rnd in (0, 5, 11):\n"
            "        ids = s.sample(rnd, pop, 12, required=(0, 1))\n"
            "        print(name, rnd, ','.join(map(str, ids.tolist())))\n"
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
            ).stdout
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert "uniform 0 " in runs[0]

    def test_mid_run_resume_matches_fresh_sampler(self):
        """Round t's cohort does not depend on rounds 0..t-1 being drawn."""
        pop = make_population()
        warm = UniformSampler(seed=2)
        for rnd in range(5):
            warm.sample(rnd, pop, 8)
        cold = UniformSampler(seed=2)
        assert np.array_equal(warm.sample(5, pop, 8), cold.sample(5, pop, 8))


class TestReputationWeighted:
    def test_differential_vs_scalar_reference(self):
        """Streamed top-k == per-worker Python-loop oracle, many rounds."""
        pop = make_population(size=700)
        rng = np.random.default_rng(0)
        pop.reputation_store.write_round(
            {int(w): float(r) for w, r in zip(
                rng.choice(700, size=200, replace=False), rng.random(200)
            )}
        )
        sampler = ReputationWeightedSampler(seed=3)
        for rnd in range(8):
            fast = sampler.sample(rnd, pop, 25, required=(0, 1))
            ref = reputation_weighted_reference(
                3, rnd, pop, 25, required=(0, 1)
            )
            assert np.array_equal(fast, ref), f"diverged at round {rnd}"

    def test_differential_across_chunk_boundaries(self):
        pop = WorkerPopulation(300, reputation_chunk=64)
        pop.reputation_store.write_round({10: 5.0, 100: 3.0, 299: 1.0})
        sampler = ReputationWeightedSampler(seed=9)
        for rnd in range(4):
            fast = sampler.sample(rnd, pop, 40)
            ref = reputation_weighted_reference(9, rnd, pop, 40)
            assert np.array_equal(fast, ref)

    def test_high_reputation_oversampled(self):
        pop = make_population(size=400)
        # one block of workers with overwhelming reputation weight
        pop.reputation_store.write_round({w: 50.0 for w in range(20)})
        sampler = ReputationWeightedSampler(seed=1)
        hits = sum(
            np.isin(np.arange(20), sampler.sample(rnd, pop, 20)).sum()
            for rnd in range(20)
        )
        # 20 heavy workers out of 400: uniform would give ~1/round
        assert hits > 10 * 20 * 0.5

    def test_negative_reputation_clamped_not_fatal(self):
        pop = make_population(size=50)
        pop.reputation_store.write_round({w: -1.0 for w in range(50)})
        cohort = ReputationWeightedSampler(seed=0).sample(0, pop, 10)
        assert len(cohort) == 10

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            ReputationWeightedSampler(floor=0.0)


class TestAvailabilityAware:
    def test_only_available_ids_chosen(self):
        pop = make_population(size=500, availability=0.5)
        sampler = AvailabilityAwareSampler(seed=4)
        for rnd in range(3):
            cohort = sampler.sample(rnd, pop, 20, required=(0,))
            for wid in cohort.tolist():
                if wid != 0:
                    assert pop.is_available(wid, rnd)

    def test_churned_workers_never_sampled(self):
        pop = make_population(size=50, churn=((0, 7, "leave"),))
        pop.begin_round(0)
        sampler = AvailabilityAwareSampler(seed=0)
        for rnd in range(5):
            assert 7 not in sampler.sample(rnd, pop, 20).tolist()

    def test_mostly_offline_population_yields_short_cohort(self):
        pop = make_population(size=60, availability=0.05)
        cohort = AvailabilityAwareSampler(seed=0).sample(1, pop, 40)
        assert len(cohort) < 40  # short, not a livelock


class TestFactory:
    def test_known_names(self):
        assert make_sampler("uniform", seed=1).name == "uniform"
        assert make_sampler("reputation", seed=1).name == "reputation"
        assert make_sampler("available", seed=1).name == "available"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("bogus")
