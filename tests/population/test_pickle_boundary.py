"""Worker RNG streams survive a real process boundary.

The in-process determinism contract (materialize → evict →
re-materialize draws identically) is covered by test_population. This
file proves the stronger snapshot-shaped claim: a mid-stream
:class:`WorkerPopulation` pickled in one interpreter and unpickled in a
*fresh* one continues every worker's RNG stream draw-for-draw — cached
workers, evicted workers, and the LRU/recipe bookkeeping all included.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

from repro.population import WorkerPopulation

from ..helpers import BlobDataFn, LogregFactory

REPO = Path(__file__).resolve().parents[2]

_DRAW_SCRIPT = """\
import pickle, sys
with open(sys.argv[1], "rb") as fh:
    pop = pickle.load(fh)
for wid in sorted(pop._cache):
    draws = pop._cache[wid].rng.random(4)
    print(wid, ",".join(f"{d:.17g}" for d in draws))
# an evicted worker re-materializes mid-stream in the new process too
w9 = pop.materialize(9)
print(9, ",".join(f"{d:.17g}" for d in w9.rng.random(4)))
"""


def _make_population() -> WorkerPopulation:
    pop = WorkerPopulation(
        32,
        data_fn=BlobDataFn(samples_per_worker=16),
        model_fn=LogregFactory(),
        seed=3,
        cache_size=4,
    )
    # touch more workers than the cache holds: 9 and 10 get evicted
    # (checkout trims the LRU) with their RNG streams mid-draw, the rest
    # stay cached mid-draw
    for worker in pop.checkout((9, 10)):
        worker.rng.random(3 + worker.worker_id)
    for worker in pop.checkout((2, 5, 7, 11)):
        worker.rng.random(3 + worker.worker_id)
    assert 9 not in pop._cache and 9 in pop._rng_states
    return pop


class TestProcessBoundary:
    def test_unpickled_population_draws_identically(self, tmp_path):
        pop = _make_population()
        blob_path = tmp_path / "pop.pkl"
        blob_path.write_bytes(pickle.dumps(pop))

        # expected: the parent's own copy simply keeps drawing
        expected_lines = []
        for wid in sorted(pop._cache):
            draws = pop._cache[wid].rng.random(4)
            expected_lines.append(
                f"{wid} " + ",".join(f"{d:.17g}" for d in draws)
            )
        w9 = pop.materialize(9)
        expected_lines.append(
            "9 " + ",".join(f"{d:.17g}" for d in w9.rng.random(4))
        )

        env = dict(
            os.environ, PYTHONPATH=str(REPO / "src") + os.pathsep + str(REPO)
        )
        proc = subprocess.run(
            [sys.executable, "-c", _DRAW_SCRIPT, str(blob_path)],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=REPO,
        )
        assert proc.stdout.splitlines() == expected_lines

    def test_bookkeeping_round_trips(self, tmp_path):
        pop = _make_population()
        clone = pickle.loads(pickle.dumps(pop))
        assert sorted(clone._cache) == sorted(pop._cache)
        assert clone._rng_states.keys() == pop._rng_states.keys()
        assert clone._seen == pop._seen
        assert clone.cached_count == pop.cached_count
