"""WorkerPopulation: lazy materialization, eviction, churn, from_workers."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.fl import HonestWorker, WorkerSpec
from repro.nn import build_logreg
from repro.population import WorkerPopulation

N_FEATURES, N_CLASSES = 6, 3


def model_fn():
    return build_logreg(N_FEATURES, N_CLASSES, seed=0)


def data_fn(wid):
    return make_blobs(
        n_samples=30, n_features=N_FEATURES, num_classes=N_CLASSES, seed=wid
    )


def lazy_population(size=100, **kwargs):
    kwargs.setdefault("data_fn", data_fn)
    kwargs.setdefault("model_fn", model_fn)
    return WorkerPopulation(size, **kwargs)


class TestValidation:
    def test_bad_size(self):
        with pytest.raises(ValueError):
            WorkerPopulation(0)

    def test_bad_availability(self):
        with pytest.raises(ValueError):
            WorkerPopulation(10, availability=0.0)
        with pytest.raises(ValueError):
            WorkerPopulation(10, availability=1.5)

    def test_bad_churn(self):
        with pytest.raises(ValueError):
            WorkerPopulation(10, churn=((0, 10, "leave"),))
        with pytest.raises(ValueError):
            WorkerPopulation(10, churn=((0, 1, "explode"),))


class TestDerivedState:
    def test_seed_convention(self):
        pop = lazy_population(seed=42)
        assert pop.seed_for(7) == 42 + 1000 + 7

    def test_default_spec_is_honest(self):
        pop = lazy_population()
        assert pop.spec(3).role == "honest"

    def test_spec_mapping(self):
        pop = lazy_population(
            spec_fn={5: WorkerSpec("sign", {"p_s": 2.0})}
        )
        assert pop.spec(5).role == "sign"
        assert pop.spec(6).role == "honest"

    def test_spec_callable(self):
        pop = lazy_population(
            spec_fn=lambda wid: WorkerSpec("free" if wid % 2 else "honest")
        )
        assert pop.spec(1).role == "free"
        assert pop.spec(2).role == "honest"


class TestMaterialization:
    def test_materialize_builds_correct_worker(self):
        pop = lazy_population(
            seed=3, spec_fn={2: WorkerSpec("sign", {"p_s": 4.0})}
        )
        w = pop.materialize(2)
        assert w.worker_id == 2
        assert w.is_malicious
        assert pop.materialize(1).is_malicious is False

    def test_materialize_is_cached(self):
        pop = lazy_population()
        assert pop.materialize(4) is pop.materialize(4)

    def test_checkout_orders_and_marks_seen(self):
        pop = lazy_population()
        cohort = pop.checkout([9, 2, 5])
        assert [w.worker_id for w in cohort] == [2, 5, 9]
        assert pop.seen_count == 3
        assert pop.coverage() == pytest.approx(3 / 100)

    def test_cache_trimmed_to_cohort(self):
        pop = lazy_population(cache_size=4)
        pop.checkout(range(10))
        assert pop.cached_count == 10  # cohort itself always fits
        pop.checkout([0, 1])
        assert pop.cached_count == 4

    def test_eviction_rng_roundtrip(self):
        """Evict + re-materialize == never evicted, draw-for-draw."""
        pop_a = lazy_population(cache_size=1, seed=0)
        pop_b = lazy_population(cache_size=100, seed=0)
        wa, wb = pop_a.materialize(7), pop_b.materialize(7)
        draws_a = wa.rng.integers(0, 1000, size=5)
        draws_b = wb.rng.integers(0, 1000, size=5)
        assert np.array_equal(draws_a, draws_b)
        # force 7 out of pop_a's tiny cache, keep pop_b's worker alive
        pop_a.checkout([8])
        assert 7 not in pop_a._cache
        revived = pop_a.materialize(7)
        assert revived is not wa
        assert np.array_equal(
            revived.rng.integers(0, 1000, size=5),
            wb.rng.integers(0, 1000, size=5),
        )

    def test_no_recipes_raises(self):
        pop = WorkerPopulation(10)
        with pytest.raises(RuntimeError, match="no data_fn/model_fn"):
            pop.materialize(0)


class TestChurnAvailability:
    def test_churn_schedule(self):
        pop = lazy_population(churn=((2, 5, "leave"), (4, 5, "join")))
        pop.begin_round(0)
        assert pop.is_live(5)
        pop.begin_round(2)
        assert not pop.is_live(5)
        assert not pop.is_available(5, 2)
        pop.begin_round(4)
        assert pop.is_live(5)

    def test_availability_draw_is_order_independent(self):
        pop = lazy_population(availability=0.5, seed=1)
        first = [pop.is_available(w, 3) for w in range(20)]
        second = [pop.is_available(w, 3) for w in reversed(range(20))]
        assert first == list(reversed(second))

    def test_full_availability_no_draws(self):
        pop = lazy_population(availability=1.0)
        assert all(pop.is_available(w, 0) for w in range(20))


class TestFromWorkers:
    def make_workers(self, n=4):
        return [
            HonestWorker(i, data_fn(i), model_fn, seed=1000 + i)
            for i in range(n)
        ]

    def test_roundtrip_same_objects(self):
        workers = self.make_workers()
        pop = WorkerPopulation.from_workers(workers)
        assert pop.size == 4
        got = pop.checkout(range(4))
        assert all(a is b for a, b in zip(got, workers))

    def test_pinned_roster_never_evicts(self):
        workers = self.make_workers(6)
        pop = WorkerPopulation.from_workers(workers)
        for _ in range(3):
            pop.checkout([0])
        assert pop.cached_count == 6

    def test_validation_matches_legacy_messages(self):
        with pytest.raises(ValueError, match="need at least one worker"):
            WorkerPopulation.from_workers([])
        workers = self.make_workers(3)
        workers[0].worker_id = 7
        with pytest.raises(ValueError, match="exactly 0..N-1"):
            WorkerPopulation.from_workers(workers)


class TestReputationWriteback:
    def test_write_and_read(self):
        pop = lazy_population()
        assert pop.write_reputations({3: 0.8, 9: -0.1}) == 2
        assert pop.reputation_store.get(3) == 0.8
        assert pop.reputation_store.get(9) == -0.1
