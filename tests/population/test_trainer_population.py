"""Population-first trainer surface: validation, skips, differentials."""

import warnings

import numpy as np
import pytest

from repro.core import FIFLConfig, FIFLMechanism
from repro.experiments.common import AttackerSpec, FedExpConfig, run_federated
from repro.fl import FederatedTrainer
from repro.population import WorkerPopulation
from repro.profiling import Profiler

from ..helpers import make_federation, model_fn


def make_population(num_workers=4, seed=0, **fed_kwargs):
    workers, _, test = make_federation(
        num_workers=num_workers, seed=seed, **fed_kwargs
    )
    return WorkerPopulation.from_workers(workers), test


def make_trainer(pop, test, seed=0, **kwargs):
    kwargs.setdefault("mechanism", FIFLMechanism(FIFLConfig()))
    return FederatedTrainer(
        model_fn(seed)(), population=pop, server_ranks=[0, 1],
        test_data=test, seed=seed, **kwargs,
    )


class TestConstructorValidation:
    def test_cohort_size_exceeds_population(self):
        pop, test = make_population(4)
        with pytest.raises(ValueError, match="exceeds population size"):
            make_trainer(pop, test, cohort_size=5)

    def test_cohort_size_must_be_positive(self):
        pop, test = make_population(4)
        with pytest.raises(ValueError):
            make_trainer(pop, test, cohort_size=0)

    def test_population_and_workers_are_exclusive(self):
        pop, test = make_population(4)
        workers, _, _ = make_federation(num_workers=4)
        with pytest.raises(ValueError, match="not both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                FederatedTrainer(
                    model_fn()(), workers=workers, population=pop,
                    server_ranks=[0, 1],
                )

    def test_server_ranks_required(self):
        pop, test = make_population(4)
        with pytest.raises(ValueError, match="server_ranks"):
            FederatedTrainer(model_fn()(), population=pop)

    def test_sampler_requires_explicit_population(self):
        workers, _, _ = make_federation(num_workers=4)
        with pytest.raises(ValueError, match="explicit population"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                FederatedTrainer(
                    model_fn()(), workers=workers, server_ranks=[0, 1],
                    sampler="uniform",
                )

    def test_sampler_and_scenario_are_exclusive(self):
        from repro.sim import FaultScenario

        pop, test = make_population(4)
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_trainer(
                pop, test, cohort_size=2, scenario=FaultScenario()
            )

    def test_legacy_workers_surface_warns_once_per_process(self):
        # the module-level flag may already be set by another test; reset
        import repro.fl.trainer as trainer_mod

        trainer_mod._WARNED_LEGACY_WORKERS = False
        workers, _, _ = make_federation(num_workers=4)
        with pytest.warns(DeprecationWarning, match="population"):
            FederatedTrainer(model_fn()(), workers=workers,
                             server_ranks=[0, 1])
        workers2, _, _ = make_federation(num_workers=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FederatedTrainer(model_fn()(), workers=workers2,
                             server_ranks=[0, 1])

    def test_population_accepted_positionally(self):
        pop, test = make_population(4)
        t = FederatedTrainer(model_fn()(), pop, server_ranks=[0, 1])
        assert t.population is pop


class TestSkippedRounds:
    def test_no_live_server_records_skip(self):
        pop, test = make_population(4)
        t = make_trainer(pop, test, cohort_size=3, sampler="uniform")
        before = t.model.get_flat_params().copy()
        t.fail_node(0)
        t.fail_node(1)
        rec = t._run_round(0)
        assert rec.skipped
        assert rec.mechanism_records["skipped"] == "no live server"
        assert rec.accepted == {}
        assert np.array_equal(t.model.get_flat_params(), before)

    def test_skip_counter_in_telemetry(self):
        pop, test = make_population(4)
        prof = Profiler()
        t = make_trainer(pop, test, cohort_size=3, sampler="uniform",
                         monitor=None)
        t.profiler = prof
        t.fail_node(0)
        t.fail_node(1)
        t._run_round(0)
        assert prof.snapshot()["counters"]["trainer.skipped_rounds"] == 1

    def test_normal_round_not_skipped(self):
        pop, test = make_population(4)
        t = make_trainer(pop, test, cohort_size=3, sampler="uniform")
        rec = t._run_round(0)
        assert not rec.skipped
        assert rec.accepted


class TestDifferentials:
    def fig09_style(self, **over):
        cfg = dict(
            dataset="blobs", num_workers=8, samples_per_worker=150,
            test_samples=200, rounds=6, eval_every=6, batch_size=8,
            server_ranks=(0, 1), seed=0,
        )
        cfg.update(over)
        return FedExpConfig(**cfg)

    def assert_identical(self, cfg_a, cfg_b, attackers):
        hist_a, mech_a = run_federated(cfg_a, attackers, with_fifl=True)
        hist_b, mech_b = run_federated(cfg_b, attackers, with_fifl=True)
        assert hist_a.series("test_acc") == hist_b.series("test_acc")
        for ra, rb in zip(hist_a.rounds, hist_b.rounds):
            assert ra.accepted == rb.accepted
            assert ra.grad_norm == rb.grad_norm
        assert mech_a.reputation._rep == mech_b.reputation._rep

    def test_full_cohort_matches_static_fig09_attackers(self):
        attackers = {
            5: AttackerSpec("poison", (0.8,)),
            6: AttackerSpec("sign", (2.0,)),
        }
        self.assert_identical(
            self.fig09_style(),
            self.fig09_style(cohort_size=8, sampler="uniform"),
            attackers,
        )

    def test_full_cohort_matches_static_fig11_attackers(self):
        attackers = {
            6: AttackerSpec("prob", (0.5, 4.0)),
            7: AttackerSpec("prob", (0.9, 4.0)),
        }
        self.assert_identical(
            self.fig09_style(seed=1),
            self.fig09_style(seed=1, cohort_size=8, sampler="uniform"),
            attackers,
        )


class TestReputationWriteback:
    def test_decisions_flow_into_population_store(self):
        pop, test = make_population(6)
        t = FederatedTrainer(
            model_fn()(), population=pop, server_ranks=[0, 1],
            test_data=test, mechanism=FIFLMechanism(FIFLConfig()),
            cohort_size=4, sampler="uniform", seed=0,
        )
        for r in range(3):
            t._run_round(r)
        store = pop.reputation_store
        written = [w for w in range(6) if store.get(w) != 0.0]
        assert written, "no reputations written back into the population"

    def test_cohort_event_emitted(self):
        pop, test = make_population(6)
        prof = Profiler()
        t = make_trainer(pop, test, cohort_size=4, sampler="uniform")
        t.profiler = prof
        t._run_round(0)
        snap = prof.snapshot()
        assert snap["counters"]["trainer.cohort_workers"] == 4
