"""Worker-shard streaming: row windows, RoundBatch shards, differentials."""

import numpy as np
import pytest

from repro.core import FIFLConfig, FIFLMechanism
from repro.fl import FederatedTrainer, FleetLocalEngine
from repro.fl.gradients import slice_offsets
from repro.core.engine import RoundBatch
from repro.population.sharding import (
    SharedGradientBuffer,
    allocate_gradient_matrix,
    iter_row_shards,
)

from ..helpers import make_federation, model_fn


class TestIterRowShards:
    def test_none_yields_single_full_window(self):
        assert list(iter_row_shards(10, None)) == [(0, 10)]
        assert list(iter_row_shards(10, 10)) == [(0, 10)]
        assert list(iter_row_shards(10, 99)) == [(0, 10)]

    def test_chunked_windows_cover_all_rows(self):
        windows = list(iter_row_shards(10, 4))
        assert windows == [(0, 4), (4, 8), (8, 10)]

    def test_zero_rows_yields_nothing(self):
        assert list(iter_row_shards(0, 4)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            list(iter_row_shards(-1, 4))
        with pytest.raises(ValueError):
            list(iter_row_shards(10, 0))


def toy_batch(n=6, dim=8, servers=2, seed=0):
    rng = np.random.default_rng(seed)
    return RoundBatch(
        worker_ids=np.arange(n, dtype=np.int64),
        gradients=rng.normal(size=(n, dim)),
        offsets=slice_offsets(dim, servers),
        server_ranks=np.arange(servers, dtype=np.int64),
        sample_counts=np.full(n, 10.0),
    )


class TestRoundBatchShards:
    def test_shard_is_a_view(self):
        batch = toy_batch()
        sub = batch.shard(2, 5)
        assert sub.num_workers == 3
        assert sub.gradients.base is batch.gradients
        assert sub.worker_ids.tolist() == [2, 3, 4]

    def test_shard_slices_sqnorm_cache(self):
        batch = toy_batch()
        full = batch.row_sqnorms
        sub = batch.shard(1, 4)
        assert np.array_equal(sub.row_sqnorms, full[1:4])

    def test_shard_window_validation(self):
        batch = toy_batch()
        for start, stop in ((-1, 2), (3, 3), (0, 7)):
            with pytest.raises(ValueError):
                batch.shard(start, stop)

    def test_iter_shards_full_window_yields_self(self):
        batch = toy_batch()
        assert list(batch.iter_shards(None)) == [batch]
        shards = list(batch.iter_shards(4))
        assert [s.num_workers for s in shards] == [4, 2]

    def test_sharded_rows_reassemble_exactly(self):
        batch = toy_batch(n=9)
        rows = np.vstack([s.gradients for s in batch.iter_shards(2)])
        assert np.array_equal(rows, batch.gradients)


class TestSharedGradientBuffer:
    def test_plain_allocation(self):
        arr, buf = allocate_gradient_matrix(4, 8, shared=False)
        assert arr.shape == (4, 8) and buf is None

    def test_shared_allocation_and_close(self):
        with SharedGradientBuffer(4, 8, shared=True) as buf:
            buf.array[:] = 1.5
            assert buf.array.shape == (4, 8)
            # shared segments expose a name; the fallback path does not
            if buf.is_shared:
                assert buf.name
        # after close the data survives in the (copied) array
        assert buf.array[0, 0] == 1.5
        assert not buf.is_shared

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedGradientBuffer(0, 8)


class TestFleetShardDifferential:
    def test_sharded_fleet_matches_unsharded(self):
        workers, _, _ = make_federation(num_workers=7, seed=2)
        theta = model_fn(seed=2)().get_flat_params()
        sharded = FleetLocalEngine(workers, shard_size=3)
        plain = FleetLocalEngine(make_federation(num_workers=7, seed=2)[0])
        a = sharded.compute_updates(theta)
        b = plain.compute_updates(theta)
        assert a.keys() == b.keys()
        for wid in a:
            assert np.array_equal(a[wid].gradient, b[wid].gradient), (
                f"worker {wid} diverged"
            )


class TestMechanismShardDifferential:
    @pytest.mark.parametrize("shard_size", [2, 3])
    def test_fifl_rounds_identical_under_sharding(self, shard_size):
        def run(shard):
            workers, _, test = make_federation(num_workers=6, seed=4)
            mech = FIFLMechanism(FIFLConfig(shard_size=shard))
            trainer = FederatedTrainer(
                model_fn(seed=4)(), workers=workers, server_ranks=[0, 1],
                test_data=test, mechanism=mech, seed=4,
            )
            records = [trainer._run_round(r) for r in range(4)]
            return records, trainer.model.get_flat_params()

        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            rec_a, params_a = run(shard_size)
            rec_b, params_b = run(None)
        assert np.array_equal(params_a, params_b)
        for ra, rb in zip(rec_a, rec_b):
            assert ra.accepted == rb.accepted
            assert ra.grad_norm == rb.grad_norm
