"""Tests for Sequential / Residual containers and flat-vector plumbing."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    ReLU,
    Residual,
    Sequential,
    SoftmaxCrossEntropy,
    build_mlp,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


def _small_model(seed=0):
    rng = _rng(seed)
    return Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 3, rng)])


class TestFlatParams:
    def test_roundtrip(self):
        model = _small_model()
        vec = model.get_flat_params()
        assert vec.shape == (model.num_params,)
        model2 = _small_model(seed=99)
        model2.set_flat_params(vec)
        np.testing.assert_array_equal(model2.get_flat_params(), vec)

    def test_set_changes_forward(self):
        model = _small_model()
        x = _rng(1).normal(size=(2, 4))
        out1 = model.predict(x)
        model.set_flat_params(np.zeros(model.num_params))
        out2 = model.predict(x)
        assert not np.allclose(out1, out2)
        np.testing.assert_array_equal(out2, 0.0)

    def test_set_rejects_wrong_size(self):
        model = _small_model()
        with pytest.raises(ValueError):
            model.set_flat_params(np.zeros(model.num_params + 1))

    def test_num_params_counts(self):
        model = _small_model()
        assert model.num_params == 4 * 8 + 8 + 8 * 3 + 3

    def test_get_flat_params_is_copy(self):
        model = _small_model()
        vec = model.get_flat_params()
        vec[:] = 0.0
        assert not np.allclose(model.get_flat_params(), 0.0)


class TestGrads:
    def test_flat_grads_after_backward(self):
        model = _small_model()
        x = _rng(1).normal(size=(5, 4))
        y = _rng(2).integers(0, 3, size=5)
        loss = SoftmaxCrossEntropy()
        out = model.forward(x, training=True)
        loss(out, y)
        model.backward(loss.backward())
        g = model.get_flat_grads()
        assert g.shape == (model.num_params,)
        assert np.isfinite(g).all()
        assert np.abs(g).max() > 0

    def test_flat_grads_without_backward_raises(self):
        model = _small_model()
        with pytest.raises(RuntimeError):
            model.get_flat_grads()

    def test_apply_flat_grads_is_sgd_step(self):
        model = _small_model()
        theta = model.get_flat_params()
        g = _rng(3).normal(size=model.num_params)
        model.apply_flat_grads(g, lr=0.1)
        np.testing.assert_allclose(model.get_flat_params(), theta - 0.1 * g)

    def test_zero_grads_clears(self):
        model = _small_model()
        x = _rng(1).normal(size=(2, 4))
        loss = SoftmaxCrossEntropy()
        loss(model.forward(x, training=True), np.array([0, 1]))
        model.backward(loss.backward())
        model.zero_grads()
        with pytest.raises(RuntimeError):
            model.get_flat_grads()


class TestResidual:
    def test_identity_shortcut_adds(self):
        rng = _rng(0)
        body = [Dense(4, 4, rng)]
        block = Residual(body)
        x = _rng(1).normal(size=(3, 4))
        out = block.forward(x)
        np.testing.assert_allclose(out, body[0].forward(x) + x)

    def test_backward_sums_branches(self):
        rng = _rng(0)
        block = Residual([Dense(4, 4, rng)])
        x = _rng(1).normal(size=(3, 4))
        block.forward(x)
        g = np.ones((3, 4))
        gx = block.backward(g)
        # identity branch passes g through; dense branch adds g @ W.T
        np.testing.assert_allclose(gx, g + g @ block.body[0].params["W"].T)

    def test_shape_mismatch_raises(self):
        rng = _rng(0)
        block = Residual([Dense(4, 5, rng)])
        with pytest.raises(ValueError):
            block.forward(_rng(1).normal(size=(2, 4)))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Residual([])

    def test_params_included_in_flat_vector(self):
        rng = _rng(0)
        model = Sequential([Residual([Dense(4, 4, rng)]), Dense(4, 2, rng)])
        assert model.num_params == (4 * 4 + 4) + (4 * 2 + 2)


class TestTrainingSmoke:
    def test_mlp_loss_decreases(self):
        rng = _rng(0)
        x = rng.normal(size=(128, 10))
        y = (x[:, 0] > 0).astype(int)
        model = build_mlp(10, 2, hidden=(16,), seed=1)
        loss_fn = SoftmaxCrossEntropy()
        first = None
        for _ in range(60):
            loss = loss_fn(model.forward(x, training=True), y)
            if first is None:
                first = loss
            model.backward(loss_fn.backward())
            model.apply_flat_grads(model.get_flat_grads(), lr=0.5)
        assert loss < first * 0.5
