"""Gradient correctness: backprop vs central finite differences.

These are the load-bearing tests for the whole reproduction: FIFL's
detection/contribution scores are functions of raw gradient vectors, so a
backprop bug would corrupt every downstream experiment.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    analytic_gradient,
    build_lenet,
    build_logreg,
    build_mini_resnet,
    build_mlp,
    max_relative_error,
    numerical_gradient,
)


def _check(model, x, y, n_probe=40, seed=0, tol=1e-4):
    _, g = analytic_gradient(model, x, y)
    rng = np.random.default_rng(seed)
    idx = rng.choice(g.size, size=min(n_probe, g.size), replace=False)
    num = numerical_gradient(model, x, y, indices=idx)
    err = max_relative_error(g[idx], num, floor=1e-6)
    assert err < tol, f"max relative grad error {err}"


class TestGradCheck:
    def test_logreg(self):
        rng = np.random.default_rng(0)
        model = build_logreg(6, 3, seed=1)
        _check(model, rng.normal(size=(8, 6)), rng.integers(0, 3, size=8))

    def test_mlp(self):
        rng = np.random.default_rng(1)
        model = build_mlp(5, 4, hidden=(7, 6), seed=2)
        _check(model, rng.normal(size=(9, 5)), rng.integers(0, 4, size=9))

    def test_lenet_small(self):
        rng = np.random.default_rng(2)
        model = build_lenet(num_classes=3, in_channels=1, image_size=14, seed=3)
        x = rng.normal(size=(4, 1, 14, 14))
        y = rng.integers(0, 3, size=4)
        _check(model, x, y, n_probe=25, tol=5e-4)

    def test_mini_resnet(self):
        rng = np.random.default_rng(3)
        model = build_mini_resnet(num_classes=3, in_channels=2, width=4, num_blocks=1, seed=4)
        x = rng.normal(size=(4, 2, 8, 8))
        y = rng.integers(0, 3, size=4)
        # BatchNorm batch statistics make FD slightly noisier.
        _check(model, x, y, n_probe=25, tol=2e-3)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        hidden=st.integers(2, 10),
        batch=st.integers(2, 8),
    )
    def test_property_random_mlps(self, seed, hidden, batch):
        rng = np.random.default_rng(seed)
        model = build_mlp(4, 3, hidden=(hidden,), seed=seed + 1)
        x = rng.normal(size=(batch, 4))
        y = rng.integers(0, 3, size=batch)
        _check(model, x, y, n_probe=20, seed=seed)


class TestMaxRelativeError:
    def test_identical_is_zero(self):
        a = np.array([1.0, -2.0])
        assert max_relative_error(a, a) == 0.0

    def test_scale_free(self):
        a = np.array([1e6])
        b = np.array([1.0001e6])
        assert max_relative_error(a, b) == pytest.approx(1e-4, rel=1e-2)

    def test_empty(self):
        assert max_relative_error(np.array([]), np.array([])) == 0.0
