"""Unit tests for repro.nn.functional primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(7, 5))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-12)

    def test_invariant_to_shift(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), atol=1e-12)

    def test_large_logits_stable(self):
        x = np.array([[1000.0, 0.0, -1000.0]])
        s = F.softmax(x)
        assert np.isfinite(s).all()
        assert s[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(6, 4))
        np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)), atol=1e-10)


class TestReluSigmoid:
    def test_relu_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(F.relu(x), [0.0, 0.0, 3.0])

    def test_relu_grad_mask(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu_grad(x), [0.0, 0.0, 1.0])

    def test_sigmoid_symmetry(self):
        x = np.linspace(-10, 10, 21)
        np.testing.assert_allclose(F.sigmoid(x) + F.sigmoid(-x), 1.0, atol=1e-12)

    def test_sigmoid_extremes_stable(self):
        out = F.sigmoid(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_rejects_matrix_labels(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestConvOutSize:
    def test_known_values(self):
        assert F.conv_out_size(28, 5, 1, 2) == 28
        assert F.conv_out_size(28, 2, 2, 0) == 14
        assert F.conv_out_size(10, 5, 1, 0) == 6

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            F.conv_out_size(3, 5, 1, 0)


def _naive_im2col(x, kh, kw, stride, pad):
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    rows = []
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = xp[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                rows.append(patch.ravel())
    return np.array(rows)


class TestIm2Col:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 2), (2, 0), (2, 1)])
    def test_matches_naive(self, stride, pad):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 8, 8))
        got = F.im2col(x, 3, 3, stride, pad)
        want = _naive_im2col(x, 3, 3, stride, pad)
        np.testing.assert_allclose(got, want)

    def test_col2im_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> : the scatter must be the exact
        # adjoint of the gather for backprop to be correct.
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 2, 6, 6))
        cols = F.im2col(x, 3, 3, stride=1, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, 3, 3, stride=1, pad=1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 3),
        size=st.integers(4, 9),
        k=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 2),
    )
    def test_property_shapes(self, n, c, size, k, stride, pad):
        if size + 2 * pad < k:
            return
        x = np.arange(n * c * size * size, dtype=float).reshape(n, c, size, size)
        oh = (size + 2 * pad - k) // stride + 1
        cols = F.im2col(x, k, k, stride, pad)
        assert cols.shape == (n * oh * oh, c * k * k)
        np.testing.assert_allclose(cols, _naive_im2col(x, k, k, stride, pad))


class TestIm2ColPlanCache:
    def test_plan_is_reused_for_same_geometry(self):
        F._IM2COL_PLANS.clear()
        first = F._im2col_plan(3, 8, 8, 3, 3, 1, 1)
        second = F._im2col_plan(3, 8, 8, 3, 3, 1, 1)
        assert first is second  # cached object, not a rebuild
        assert len(F._IM2COL_PLANS) == 1

    def test_plan_is_batch_size_independent(self):
        F._IM2COL_PLANS.clear()
        rng = np.random.default_rng(5)
        F.im2col(rng.normal(size=(2, 2, 6, 6)), 3, 3, 1, 1)
        F.im2col(rng.normal(size=(7, 2, 6, 6)), 3, 3, 1, 1)
        assert len(F._IM2COL_PLANS) == 1  # one plan serves every batch size

    def test_cache_is_bounded(self):
        F._IM2COL_PLANS.clear()
        for i in range(F._MAX_PLANS + 3):
            F._im2col_plan(1, 8 + i, 8 + i, 3, 3, 1, 0)
        assert len(F._IM2COL_PLANS) <= F._MAX_PLANS

    def test_cached_results_stay_correct(self):
        F._IM2COL_PLANS.clear()
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 3, 7, 7))
        for _ in range(2):  # second call hits the cache
            np.testing.assert_allclose(
                F.im2col(x, 3, 3, 2, 1), _naive_im2col(x, 3, 3, 2, 1)
            )
