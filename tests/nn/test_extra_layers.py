"""Tests for AvgPool2d, Tanh, and LeakyReLU."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Dense,
    LeakyReLU,
    Sequential,
    SoftmaxCrossEntropy,
    Tanh,
    analytic_gradient,
    max_relative_error,
    numerical_gradient,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestAvgPool2d:
    def test_forward_known(self):
        layer = AvgPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert layer.forward(x)[0, 0, 0, 0] == pytest.approx(2.5)

    def test_backward_spreads_uniformly(self):
        layer = AvgPool2d(2)
        x = np.zeros((1, 1, 2, 2))
        layer.forward(x)
        g = layer.backward(np.array([[[[8.0]]]]))
        np.testing.assert_allclose(g, np.full((1, 1, 2, 2), 2.0))

    def test_adjoint_property(self):
        layer = AvgPool2d(2)
        x = _rng(0).normal(size=(2, 3, 6, 6))
        out = layer.forward(x)
        y = _rng(1).normal(size=out.shape)
        gx = layer.backward(y)
        assert float((out * y).sum()) == pytest.approx(float((x * gx).sum()), rel=1e-10)

    def test_shape(self):
        layer = AvgPool2d(3)
        assert layer.forward(np.zeros((2, 4, 9, 9))).shape == (2, 4, 3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AvgPool2d(0)
        layer = AvgPool2d(2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 1, 1)))


class TestTanh:
    def test_forward(self):
        layer = Tanh()
        x = np.array([0.0, 100.0, -100.0])
        np.testing.assert_allclose(layer.forward(x), [0.0, 1.0, -1.0], atol=1e-12)

    def test_backward_derivative(self):
        layer = Tanh()
        x = np.array([0.5, -1.2])
        out = layer.forward(x)
        g = layer.backward(np.ones(2))
        np.testing.assert_allclose(g, 1.0 - out**2)

    def test_gradcheck_in_model(self):
        rng = _rng(1)
        model = Sequential([Dense(4, 6, rng), Tanh(), Dense(6, 3, rng)])
        x = rng.normal(size=(5, 4))
        y = rng.integers(0, 3, size=5)
        _, grad = analytic_gradient(model, x, y)
        idx = rng.choice(grad.size, size=15, replace=False)
        num = numerical_gradient(model, x, y, indices=idx)
        assert max_relative_error(grad[idx], num, floor=1e-6) < 1e-4


class TestLeakyReLU:
    def test_forward_values(self):
        layer = LeakyReLU(alpha=0.1)
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(layer.forward(x), [-0.2, 0.0, 3.0])

    def test_backward_slopes(self):
        layer = LeakyReLU(alpha=0.1)
        x = np.array([-1.0, 2.0])
        layer.forward(x)
        g = layer.backward(np.ones(2))
        np.testing.assert_allclose(g, [0.1, 1.0])

    def test_alpha_zero_is_relu(self):
        layer = LeakyReLU(alpha=0.0)
        x = np.array([-5.0, 5.0])
        np.testing.assert_allclose(layer.forward(x), [0.0, 5.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=1.0)
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.1)

    def test_trains_in_model(self):
        rng = _rng(2)
        model = Sequential([Dense(6, 8, rng), LeakyReLU(0.05), Dense(8, 2, rng)])
        x = rng.normal(size=(64, 6))
        y = (x[:, 0] > 0).astype(int)
        loss_fn = SoftmaxCrossEntropy()
        first = None
        for _ in range(40):
            loss = loss_fn(model.forward(x, training=True), y)
            first = first if first is not None else loss
            model.backward(loss_fn.backward())
            model.apply_flat_grads(model.get_flat_grads(), lr=0.5)
        assert loss < first
