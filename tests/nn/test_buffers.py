"""Tests for non-trainable buffer plumbing (FedAvg-BN support)."""

import numpy as np
import pytest

from repro.nn import BatchNorm, Dense, ReLU, Sequential, build_mini_resnet


def bn_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 6, rng), BatchNorm(6), ReLU(), Dense(6, 2, rng)])


class TestBufferVector:
    def test_buffer_count(self):
        model = bn_model()
        # one BatchNorm(6): running_mean + running_var
        assert model.num_buffer_values == 12

    def test_no_buffers_for_plain_models(self):
        rng = np.random.default_rng(0)
        model = Sequential([Dense(4, 2, rng)])
        assert model.num_buffer_values == 0
        assert model.get_flat_buffers().size == 0

    def test_roundtrip(self):
        model = bn_model()
        vec = np.arange(12.0)
        model.set_flat_buffers(vec)
        np.testing.assert_array_equal(model.get_flat_buffers(), vec)

    def test_initial_values(self):
        model = bn_model()
        buf = model.get_flat_buffers()
        # sorted keys: running_mean (zeros) then running_var (ones)
        np.testing.assert_array_equal(buf[:6], 0.0)
        np.testing.assert_array_equal(buf[6:], 1.0)

    def test_set_rejects_wrong_size(self):
        model = bn_model()
        with pytest.raises(ValueError):
            model.set_flat_buffers(np.zeros(5))

    def test_buffers_not_in_param_vector(self):
        model = bn_model()
        n_params = model.num_params
        model.set_flat_buffers(np.full(12, 7.0))
        assert model.num_params == n_params
        assert not np.isin(7.0, model.get_flat_params())

    def test_training_updates_buffers(self):
        model = bn_model()
        before = model.get_flat_buffers()
        x = np.random.default_rng(1).normal(loc=3.0, size=(32, 4))
        model.forward(x, training=True)
        after = model.get_flat_buffers()
        assert not np.allclose(before, after)

    def test_eval_uses_loaded_buffers(self):
        model = bn_model()
        x = np.random.default_rng(2).normal(size=(8, 4))
        out_default = model.predict(x)
        model.set_flat_buffers(np.concatenate([np.full(6, 5.0), np.full(6, 2.0)]))
        out_loaded = model.predict(x)
        assert not np.allclose(out_default, out_loaded)

    def test_resnet_has_buffers(self):
        model = build_mini_resnet(width=4, num_blocks=1, seed=0)
        # stem BN + 2 block BNs, 4 channels each, 2 stats each
        assert model.num_buffer_values == 3 * 4 * 2


class TestFederatedBufferSync:
    def test_worker_returns_buffers_for_bn_models(self):
        from repro.datasets import make_blobs
        from repro.fl import HonestWorker

        data = make_blobs(n_samples=40, n_features=4, num_classes=2, seed=0)
        worker = HonestWorker(0, data, lambda: bn_model(), lr=0.1, seed=0)
        theta = bn_model().get_flat_params()
        upd = worker.compute_update(theta)
        assert upd.buffers is not None
        assert upd.buffers.size == 12

    def test_worker_loads_global_buffers(self):
        from repro.datasets import make_blobs
        from repro.fl import HonestWorker

        data = make_blobs(n_samples=40, n_features=4, num_classes=2, seed=0)
        worker = HonestWorker(0, data, lambda: bn_model(), lr=0.1, seed=0)
        theta = bn_model().get_flat_params()
        fancy = np.concatenate([np.full(6, 9.0), np.full(6, 4.0)])
        worker.compute_update(theta, global_buffers=fancy)
        # after one small batch the worker's running stats moved FROM the
        # loaded global stats, not from the init stats
        got = worker.model.get_flat_buffers()
        assert np.abs(got[:6] - 9.0).max() < 5.0  # near the loaded mean

    def test_global_model_buffers_updated_by_trainer(self):
        from repro.datasets import iid_partition, make_blobs, train_test_split
        from repro.fl import FederatedTrainer, HonestWorker

        data = make_blobs(n_samples=200, n_features=4, num_classes=2, seed=0)
        train, test = train_test_split(data, 0.2, seed=0)
        shards = iid_partition(train, 3, seed=0)
        workers = [
            HonestWorker(i, shards[i], lambda: bn_model(), lr=0.1, seed=i)
            for i in range(3)
        ]
        global_model = bn_model()
        before = global_model.get_flat_buffers()
        trainer = FederatedTrainer(global_model, workers, [0], test_data=test)
        trainer.run(3, eval_every=3)
        after = global_model.get_flat_buffers()
        assert not np.allclose(before, after)
