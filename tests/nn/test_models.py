"""Tests for reference model builders."""

import numpy as np
import pytest

from repro.nn import (
    SoftmaxCrossEntropy,
    build_lenet,
    build_logreg,
    build_mini_resnet,
    build_mlp,
)


class TestBuilders:
    def test_logreg_shape(self):
        model = build_logreg(10, 4, seed=0)
        out = model.predict(np.zeros((3, 10)))
        assert out.shape == (3, 4)

    def test_mlp_shape_and_depth(self):
        model = build_mlp(8, 5, hidden=(16, 12), seed=0)
        out = model.predict(np.zeros((2, 8)))
        assert out.shape == (2, 5)
        # 3 dense + 2 relu
        assert len(model.layers) == 5

    def test_lenet_28(self):
        model = build_lenet(num_classes=10, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 1, 28, 28))
        assert model.predict(x).shape == (2, 10)

    def test_lenet_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            build_lenet(image_size=4)

    def test_mini_resnet_32(self):
        model = build_mini_resnet(num_classes=10, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        assert model.predict(x).shape == (2, 10)

    def test_mini_resnet_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            build_mini_resnet(num_blocks=0)

    def test_same_seed_same_params(self):
        a = build_mlp(4, 2, seed=7).get_flat_params()
        b = build_mlp(4, 2, seed=7).get_flat_params()
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_params(self):
        a = build_mlp(4, 2, seed=7).get_flat_params()
        b = build_mlp(4, 2, seed=8).get_flat_params()
        assert not np.allclose(a, b)


class TestTrainability:
    def _train(self, model, x, y, lr, steps):
        loss_fn = SoftmaxCrossEntropy()
        losses = []
        for _ in range(steps):
            loss = loss_fn(model.forward(x, training=True), y)
            losses.append(loss)
            model.backward(loss_fn.backward())
            model.apply_flat_grads(model.get_flat_grads(), lr=lr)
        return losses

    def test_lenet_learns_toy_task(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 1, 14, 14))
        y = (x.mean(axis=(1, 2, 3)) > 0).astype(int)
        model = build_lenet(num_classes=2, image_size=14, seed=1)
        losses = self._train(model, x, y, lr=0.05, steps=40)
        assert losses[-1] < losses[0]

    def test_mini_resnet_learns_toy_task(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(32, 3, 8, 8))
        y = (x[:, 0].mean(axis=(1, 2)) > 0).astype(int)
        model = build_mini_resnet(num_classes=2, width=8, num_blocks=1, seed=2)
        losses = self._train(model, x, y, lr=0.05, steps=40)
        assert losses[-1] < losses[0]
