"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import ConstantLR, CosineLR, StepLR


class TestConstantLR:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s(0) == s(100) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)


class TestStepLR:
    def test_halves_every_step(self):
        s = StepLR(1.0, step_size=10, gamma=0.5)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_gamma_one_is_constant(self):
        s = StepLR(0.3, step_size=5, gamma=1.0)
        assert s(100) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(0.0, 1)
        with pytest.raises(ValueError):
            StepLR(1.0, 0)
        with pytest.raises(ValueError):
            StepLR(1.0, 1, gamma=0.0)
        with pytest.raises(ValueError):
            StepLR(1.0, 1)(-1)


class TestCosineLR:
    def test_endpoints(self):
        s = CosineLR(1.0, total_rounds=100, min_lr=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(200) == pytest.approx(0.1)  # clamped past the horizon

    def test_midpoint(self):
        s = CosineLR(1.0, total_rounds=10, min_lr=0.0)
        assert s(5) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        s = CosineLR(0.5, total_rounds=50)
        vals = [s(t) for t in range(51)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineLR(0.0, 10)
        with pytest.raises(ValueError):
            CosineLR(1.0, 0)
        with pytest.raises(ValueError):
            CosineLR(1.0, 10, min_lr=2.0)


class TestTrainerIntegration:
    def test_scheduled_server_lr(self):
        from repro.fl import FederatedTrainer
        from repro.nn import build_logreg

        from tests.helpers import N_CLASSES, N_FEATURES, make_federation

        workers, _, test = make_federation(num_workers=3)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        trainer = FederatedTrainer(
            model, workers, [0], test_data=test,
            server_lr=StepLR(0.2, step_size=5, gamma=0.5),
        )
        assert trainer._round_lr(0) == 0.2
        assert trainer._round_lr(5) == 0.1
        history = trainer.run(10, eval_every=10)
        assert history.final_accuracy() > 0.5

    def test_bad_schedule_raises(self):
        from repro.fl import FederatedTrainer
        from repro.nn import build_logreg

        from tests.helpers import N_CLASSES, N_FEATURES, make_federation

        workers, _, test = make_federation(num_workers=3)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        trainer = FederatedTrainer(
            model, workers, [0], test_data=test, server_lr=lambda t: -1.0
        )
        with pytest.raises(ValueError):
            trainer.run_round(0)
