"""Tests for loss functions and optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, MSELoss, SoftmaxCrossEntropy


class TestSoftmaxCrossEntropy:
    def test_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1]])
        labels = np.array([0])
        loss = SoftmaxCrossEntropy()(logits, labels)
        probs = np.exp(logits) / np.exp(logits).sum()
        assert loss == pytest.approx(-np.log(probs[0, 0]))

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0]])
        assert SoftmaxCrossEntropy()(logits, np.array([0])) == pytest.approx(0.0, abs=1e-9)

    def test_gradient_is_probs_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = SoftmaxCrossEntropy()
        loss(logits, labels)
        g = loss.backward()
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.zeros_like(probs)
        onehot[np.arange(6), labels] = 1.0
        np.testing.assert_allclose(g, (probs - onehot) / 6)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(1)
        loss = SoftmaxCrossEntropy()
        loss(rng.normal(size=(5, 3)), rng.integers(0, 3, size=5))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss(np.zeros((3, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss(np.zeros(3), np.zeros(3, dtype=int))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestMSE:
    def test_value_and_grad(self):
        loss = MSELoss()
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        assert loss(pred, target) == pytest.approx(2.5)
        np.testing.assert_allclose(loss.backward(), [1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(3), np.zeros(4))


class TestSGD:
    def test_plain_step(self):
        opt = SGD(lr=0.1)
        p = np.array([1.0, 1.0])
        g = np.array([1.0, -1.0])
        np.testing.assert_allclose(opt.step(p, g), [0.9, 1.1])

    def test_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        p = np.zeros(1)
        g = np.ones(1)
        p = opt.step(p, g)   # v=1, p=-1
        p = opt.step(p, g)   # v=1.5, p=-2.5
        assert p[0] == pytest.approx(-2.5)

    def test_weight_decay(self):
        opt = SGD(lr=1.0, weight_decay=0.1)
        p = np.array([10.0])
        out = opt.step(p, np.zeros(1))
        assert out[0] == pytest.approx(9.0)

    def test_reset_clears_velocity(self):
        opt = SGD(lr=1.0, momentum=0.9)
        opt.step(np.zeros(2), np.ones(2))
        opt.reset()
        assert opt._velocity is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, weight_decay=-1)
        with pytest.raises(ValueError):
            SGD(lr=0.1).step(np.zeros(2), np.zeros(3))


class TestAdam:
    def test_converges_on_quadratic(self):
        # minimize f(p) = ||p - 3||^2
        opt = Adam(lr=0.1)
        p = np.zeros(4)
        for _ in range(300):
            grad = 2 * (p - 3.0)
            p = opt.step(p, grad)
        np.testing.assert_allclose(p, 3.0, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction the first Adam step is ~lr regardless of grad scale.
        opt = Adam(lr=0.01)
        p = opt.step(np.zeros(1), np.array([1e6]))
        assert abs(p[0]) == pytest.approx(0.01, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(lr=-1)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
