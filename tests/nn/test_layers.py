"""Unit tests for individual layers, including gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestDense:
    def test_forward_matches_matmul(self):
        layer = Dense(4, 3, _rng())
        x = _rng(1).normal(size=(5, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.params["W"] + layer.params["b"]
        )

    def test_backward_gradients(self):
        layer = Dense(4, 3, _rng())
        x = _rng(1).normal(size=(5, 4))
        layer.forward(x)
        g = _rng(2).normal(size=(5, 3))
        gx = layer.backward(g)
        np.testing.assert_allclose(layer.grads["W"], x.T @ g)
        np.testing.assert_allclose(layer.grads["b"], g.sum(axis=0))
        np.testing.assert_allclose(gx, g @ layer.params["W"].T)

    def test_rejects_bad_input_shape(self):
        layer = Dense(4, 3, _rng())
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, _rng())
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_eval_forward_does_not_cache(self):
        layer = Dense(2, 2, _rng())
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestReLU:
    def test_roundtrip(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]])
        out = layer.forward(x)
        np.testing.assert_array_equal(out, [[0, 2], [3, 0]])
        g = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(g, [[0, 1], [1, 0]])


class TestFlatten:
    def test_shapes(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestDropout:
    def test_eval_is_identity(self):
        layer = Dropout(0.5, _rng())
        x = _rng(1).normal(size=(4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_preserves_expectation(self):
        layer = Dropout(0.3, _rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, _rng(0))
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        g = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal((out == 0), (g == 0))

    def test_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0, _rng())
        with pytest.raises(ValueError):
            Dropout(-0.1, _rng())


def _naive_conv(x, W, b, stride, pad):
    n, c, h, w = x.shape
    oc, _, kh, kw = W.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for bi in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[bi, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[bi, o, i, j] = (patch * W[o]).sum() + b[o]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1)])
    def test_forward_matches_naive(self, stride, pad):
        layer = Conv2d(2, 3, kernel_size=3, rng=_rng(), stride=stride, padding=pad)
        x = _rng(1).normal(size=(2, 2, 7, 7))
        got = layer.forward(x)
        want = _naive_conv(x, layer.params["W"], layer.params["b"], stride, pad)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_backward_bias_grad(self):
        layer = Conv2d(1, 2, kernel_size=3, rng=_rng())
        x = _rng(1).normal(size=(2, 1, 5, 5))
        out = layer.forward(x)
        g = np.ones_like(out)
        layer.backward(g)
        np.testing.assert_allclose(layer.grads["b"], g.sum(axis=(0, 2, 3)))

    def test_input_gradient_adjoint(self):
        # <conv(x), y> == <x, conv_backward(y)> when bias is zero.
        layer = Conv2d(2, 2, kernel_size=3, rng=_rng(), padding=1)
        layer.params["b"][:] = 0.0
        x = _rng(1).normal(size=(2, 2, 6, 6))
        out = layer.forward(x)
        y = _rng(2).normal(size=out.shape)
        gx = layer.backward(y)
        assert float((out * y).sum()) == pytest.approx(float((x * gx).sum()), rel=1e-9)

    def test_rejects_wrong_channels(self):
        layer = Conv2d(3, 2, kernel_size=3, rng=_rng())
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8)))


class TestMaxPool2d:
    def test_forward_known(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert layer.forward(x)[0, 0, 0, 0] == 4.0

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x)
        g = layer.backward(np.array([[[[5.0]]]]))
        np.testing.assert_array_equal(g, [[[[0, 0], [0, 5.0]]]])

    def test_shape(self):
        layer = MaxPool2d(2)
        x = _rng(0).normal(size=(3, 4, 8, 8))
        assert layer.forward(x).shape == (3, 4, 4, 4)


class TestGlobalAvgPool2d:
    def test_forward(self):
        layer = GlobalAvgPool2d()
        x = _rng(0).normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(2, 3)))

    def test_backward_spreads_uniformly(self):
        layer = GlobalAvgPool2d()
        x = np.zeros((1, 1, 2, 2))
        layer.forward(x)
        g = layer.backward(np.array([[4.0]]))
        np.testing.assert_allclose(g, np.ones((1, 1, 2, 2)))


class TestBatchNorm:
    def test_training_normalizes(self):
        layer = BatchNorm(3)
        x = _rng(0).normal(loc=5.0, scale=3.0, size=(64, 3))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_move_toward_batch(self):
        layer = BatchNorm(2, momentum=0.5)
        x = np.full((8, 2), 10.0)
        layer.forward(x, training=True)
        np.testing.assert_allclose(layer.running_mean, [5.0, 5.0])

    def test_eval_uses_running_stats(self):
        layer = BatchNorm(2)
        x = _rng(1).normal(size=(32, 2))
        for _ in range(50):
            layer.forward(x, training=True)
        out_eval = layer.forward(x, training=False)
        out_train = layer.forward(x, training=True)
        np.testing.assert_allclose(out_eval, out_train, atol=0.2)

    def test_4d_input(self):
        layer = BatchNorm(3)
        x = _rng(2).normal(size=(4, 3, 5, 5))
        out = layer.forward(x, training=True)
        assert out.shape == x.shape
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_backward_shape_and_zero_mean(self):
        layer = BatchNorm(3)
        x = _rng(3).normal(size=(16, 3))
        layer.forward(x, training=True)
        g = _rng(4).normal(size=(16, 3))
        gx = layer.backward(g)
        assert gx.shape == x.shape
        # BN input gradient is orthogonal to constants per feature.
        np.testing.assert_allclose(gx.mean(axis=0), 0.0, atol=1e-10)

    def test_rejects_3d(self):
        layer = BatchNorm(3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3, 4)))
