"""Fleet kernels vs per-worker scalar models.

The fleet engine's correctness claim is *differential*: stacking N
replicas' parameters and running one batched kernel must reproduce the
N scalar forward/backward/step computations to <= 1e-8 (and usually
bit-exactly, since the per-worker GEMM slices perform the same scalar
BLAS calls). These tests pin that claim per architecture, check the
finite-difference gradient at the N=1 and B=1 edge cases, and cover the
eligibility / fallback rules of :func:`fleet_signature`.
"""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Dropout,
    FleetSequential,
    FleetSoftmaxCrossEntropy,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    build_lenet,
    build_logreg,
    build_mini_resnet,
    build_mlp,
    fleet_signature,
    max_relative_error,
)

TOL = 1e-8

#: name -> (model factory(seed), per-sample feature shape)
ARCHS = {
    "logreg": (lambda seed: build_logreg(6, 3, seed=seed), (6,)),
    "mlp": (lambda seed: build_mlp(5, 4, hidden=(7,), seed=seed), (5,)),
    "lenet": (
        lambda seed: build_lenet(
            num_classes=3, in_channels=1, image_size=14, seed=seed
        ),
        (1, 14, 14),
    ),
    "resnet": (
        lambda seed: build_mini_resnet(
            num_classes=3, in_channels=2, width=4, num_blocks=1, seed=seed
        ),
        (2, 8, 8),
    ),
}


def _make_case(arch, n, b, seed=0):
    """N scalar replicas with *distinct* params + per-worker batches."""
    factory, feat = ARCHS[arch]
    models = [factory(seed + i) for i in range(n)]
    num_classes = models[0].forward(np.zeros((1,) + feat)).shape[1]
    rng = np.random.default_rng(seed + 99)
    xs = rng.normal(size=(n, b) + feat)
    ys = rng.integers(0, num_classes, size=(n, b))
    fleet = FleetSequential(models[0], n)
    fleet.load_flat_params(np.stack([m.get_flat_params() for m in models]))
    if fleet.num_buffer_values:
        fleet.load_flat_buffers(np.stack([m.get_flat_buffers() for m in models]))
    return models, fleet, xs, ys


def _scalar_pass(models, xs, ys):
    """Per-worker forward/backward; stacked (logits, losses, grads, buffers)."""
    logits, losses, grads, buffers = [], [], [], []
    for model, x, y in zip(models, xs, ys):
        loss_fn = SoftmaxCrossEntropy()
        out = model.forward(x, training=True)
        losses.append(loss_fn(out, y))
        model.backward(loss_fn.backward())
        logits.append(out)
        grads.append(model.get_flat_grads())
        buffers.append(model.get_flat_buffers())
    return (
        np.stack(logits),
        np.asarray(losses),
        np.stack(grads),
        np.stack(buffers),
    )


class TestSignature:
    def test_same_architecture_same_signature(self):
        a = build_mlp(5, 4, hidden=(7,), seed=0)
        b = build_mlp(5, 4, hidden=(7,), seed=3)
        assert fleet_signature(a) == fleet_signature(b)

    def test_different_widths_differ(self):
        a = build_mlp(5, 4, hidden=(7,), seed=0)
        b = build_mlp(5, 4, hidden=(8,), seed=0)
        assert fleet_signature(a) != fleet_signature(b)

    def test_dropout_is_ineligible(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            [Dense(5, 7, rng), ReLU(), Dropout(0.5, rng), Dense(7, 3, rng)]
        )
        assert fleet_signature(model) is None
        with pytest.raises(ValueError):
            FleetSequential(model, 2)

    def test_residual_signature_recurses(self):
        a = build_mini_resnet(num_classes=3, in_channels=2, width=4, num_blocks=1)
        b = build_mini_resnet(num_classes=3, in_channels=2, width=8, num_blocks=1)
        assert fleet_signature(a) is not None
        assert fleet_signature(a) != fleet_signature(b)


class TestDifferential:
    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_forward_backward_matches_scalar(self, arch):
        models, fleet, xs, ys = _make_case(arch, n=3, b=4)
        s_logits, s_losses, s_grads, s_buffers = _scalar_pass(models, xs, ys)

        loss_fn = FleetSoftmaxCrossEntropy()
        f_logits = fleet.forward(xs, training=True)
        f_losses = loss_fn(f_logits, ys)
        fleet.backward(loss_fn.backward())

        assert np.abs(f_logits - s_logits).max() <= TOL
        assert np.abs(f_losses - s_losses).max() <= TOL
        assert np.abs(fleet.get_flat_grads() - s_grads).max() <= TOL
        if fleet.num_buffer_values:
            assert np.abs(fleet.get_flat_buffers() - s_buffers).max() <= TOL

    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_sgd_step_matches_scalar(self, arch):
        models, fleet, xs, ys = _make_case(arch, n=3, b=4, seed=1)
        _scalar_pass(models, xs, ys)
        loss_fn = FleetSoftmaxCrossEntropy()
        loss_fn(fleet.forward(xs, training=True), ys)
        fleet.backward(loss_fn.backward())

        lrs = np.array([0.1, 0.05, 0.2])
        fleet.sgd_step(lrs)
        for model, lr in zip(models, lrs):
            model.apply_flat_grads(model.get_flat_grads(), lr)
        want = np.stack([m.get_flat_params() for m in models])
        assert np.abs(fleet.get_flat_params() - want).max() <= TOL

    def test_broadcast_load_equals_tiled_load(self):
        _, fleet, _, _ = _make_case("mlp", n=4, b=2)
        theta = build_mlp(5, 4, hidden=(7,), seed=9).get_flat_params()
        fleet.load_flat_params(theta)  # (D,) broadcast
        want = np.tile(theta, (4, 1))
        np.testing.assert_array_equal(fleet.get_flat_params(), want)


class TestGradcheckEdges:
    """Finite differences on the stacked parameters at fleet edge cases."""

    @pytest.mark.parametrize("n,b", [(1, 4), (3, 1), (1, 1)])
    def test_fd_gradient(self, n, b):
        _, fleet, xs, ys = _make_case("mlp", n=n, b=b, seed=2)
        theta = fleet.get_flat_params()

        loss_fn = FleetSoftmaxCrossEntropy()
        loss_fn(fleet.forward(xs, training=True), ys)
        fleet.backward(loss_fn.backward())
        analytic = fleet.get_flat_grads()

        def losses_at(mat):
            fleet.load_flat_params(mat)
            return FleetSoftmaxCrossEntropy()(fleet.forward(xs, training=True), ys)

        rng = np.random.default_rng(7)
        flat_idx = rng.choice(theta.size, size=min(25, theta.size), replace=False)
        eps = 1e-5
        for fi in flat_idx:
            i, j = divmod(int(fi), theta.shape[1])
            plus, minus = theta.copy(), theta.copy()
            plus[i, j] += eps
            minus[i, j] -= eps
            num = (losses_at(plus)[i] - losses_at(minus)[i]) / (2 * eps)
            err = max_relative_error(
                np.array([analytic[i, j]]), np.array([num]), floor=1e-6
            )
            assert err < 1e-4, f"param ({i},{j}): fd={num} analytic={analytic[i, j]}"

    def test_fd_gradient_conv_n1(self):
        _, fleet, xs, ys = _make_case("lenet", n=1, b=2, seed=3)
        theta = fleet.get_flat_params()
        loss_fn = FleetSoftmaxCrossEntropy()
        loss_fn(fleet.forward(xs, training=True), ys)
        fleet.backward(loss_fn.backward())
        analytic = fleet.get_flat_grads()

        rng = np.random.default_rng(8)
        eps = 1e-5
        for fi in rng.choice(theta.size, size=15, replace=False):
            i, j = divmod(int(fi), theta.shape[1])
            plus, minus = theta.copy(), theta.copy()
            plus[i, j] += eps
            minus[i, j] -= eps
            fleet.load_flat_params(plus)
            lp = FleetSoftmaxCrossEntropy()(fleet.forward(xs, training=True), ys)[i]
            fleet.load_flat_params(minus)
            lm = FleetSoftmaxCrossEntropy()(fleet.forward(xs, training=True), ys)[i]
            num = (lp - lm) / (2 * eps)
            err = max_relative_error(
                np.array([analytic[i, j]]), np.array([num]), floor=1e-6
            )
            assert err < 5e-4


class TestErrors:
    def test_rejects_nonpositive_fleet_size(self):
        with pytest.raises(ValueError):
            FleetSequential(build_mlp(5, 4, hidden=(7,), seed=0), 0)

    def test_rejects_wrong_lr_shape(self):
        _, fleet, xs, ys = _make_case("mlp", n=3, b=2)
        loss_fn = FleetSoftmaxCrossEntropy()
        loss_fn(fleet.forward(xs, training=True), ys)
        fleet.backward(loss_fn.backward())
        with pytest.raises(ValueError):
            fleet.sgd_step(np.ones(2))

    def test_rejects_wrong_param_shape(self):
        _, fleet, _, _ = _make_case("mlp", n=3, b=2)
        with pytest.raises(ValueError):
            fleet.load_flat_params(np.zeros((2, fleet.num_params)))

    def test_backward_before_forward_raises(self):
        _, fleet, xs, ys = _make_case("mlp", n=2, b=2)
        with pytest.raises(RuntimeError):
            fleet.backward(np.zeros((2, 2, 4)))

    def test_grads_before_backward_raise(self):
        _, fleet, _, _ = _make_case("mlp", n=2, b=2)
        with pytest.raises(RuntimeError):
            fleet.get_flat_grads()

    def test_eval_forward_does_not_retain_cache(self):
        _, fleet, xs, ys = _make_case("mlp", n=2, b=2)
        fleet.forward(xs, training=False)
        with pytest.raises(RuntimeError):
            fleet.backward(np.zeros((2, 2, 4)))
