"""Tests for the shared experiment machinery."""

import numpy as np
import pytest

from repro.experiments import (
    AttackerSpec,
    FedExpConfig,
    build_federation,
    data_poison,
    probabilistic,
    run_federated,
    sign_flip,
)
from repro.fl import DataPoisonWorker, HonestWorker, SignFlippingWorker


def fast_cfg(**overrides):
    base = dict(
        dataset="blobs",
        num_workers=4,
        samples_per_worker=60,
        test_samples=60,
        rounds=3,
        eval_every=3,
        server_ranks=(0,),
    )
    base.update(overrides)
    return FedExpConfig(**base)


class TestAttackerSpec:
    def test_factories(self):
        assert sign_flip(4.0).kind == "sign"
        assert data_poison(0.3).kind == "poison"
        assert probabilistic(0.5, 2.0).kind == "prob"

    def test_unknown_kind_rejected(self):
        _, workers, _ = build_federation(fast_cfg())
        spec = AttackerSpec("mystery", ())
        with pytest.raises(ValueError):
            spec.build(0, workers[0].dataset, lambda: None)


class TestBuildFederation:
    def test_honest_by_default(self):
        _, workers, _ = build_federation(fast_cfg())
        assert all(isinstance(w, HonestWorker) for w in workers)

    def test_attackers_placed(self):
        _, workers, _ = build_federation(
            fast_cfg(), {1: sign_flip(4.0), 2: data_poison(0.5)}
        )
        assert isinstance(workers[1], SignFlippingWorker)
        assert isinstance(workers[2], DataPoisonWorker)
        assert isinstance(workers[0], HonestWorker)

    def test_rejects_out_of_range_attacker(self):
        with pytest.raises(ValueError):
            build_federation(fast_cfg(), {9: sign_flip(4.0)})

    def test_all_dataset_modes(self):
        for ds, size in (("blobs", None), ("mnist", 14), ("cifar10", 8)):
            cfg = fast_cfg(dataset=ds)
            if size:
                cfg = cfg.scaled(image_size=size)
            model, workers, test = build_federation(cfg)
            assert len(workers) == 4
            out = model.predict(test.x[:2])
            assert out.shape[0] == 2

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            build_federation(fast_cfg(dataset="imagenet"))

    def test_scaled_copies(self):
        cfg = fast_cfg()
        cfg2 = cfg.scaled(rounds=99)
        assert cfg.rounds == 3 and cfg2.rounds == 99


class TestRunFederated:
    def test_returns_history_without_mechanism(self):
        history, mech = run_federated(fast_cfg())
        assert mech is None
        assert len(history.rounds) == 3

    def test_returns_mechanism_with_fifl(self):
        history, mech = run_federated(fast_cfg(), with_fifl=True)
        assert mech is not None
        assert len(mech.records) == 3

    def test_deterministic(self):
        h1, _ = run_federated(fast_cfg(seed=3))
        h2, _ = run_federated(fast_cfg(seed=3))
        assert h1.final_accuracy() == h2.final_accuracy()

    def test_ledger_receives_rounds(self):
        from repro.ledger import Blockchain

        chain = Blockchain()
        run_federated(fast_cfg(), with_fifl=True, ledger=chain)
        assert len(chain) == 3
        assert chain.is_intact()
