"""Tests for the architecture communication-load experiment."""

import pytest

from repro.experiments import arch_comm


class TestArchComm:
    def test_three_architectures_reported(self):
        result = arch_comm.run(num_workers=6, rounds=2)
        assert len(result) == 3
        for r in result.values():
            assert r["total_bytes"] > 0
            assert r["max_node_load"] >= r["mean_node_load"]

    def test_bottleneck_ordering(self):
        result = arch_comm.run(num_workers=6, rounds=3)
        loads = [r["max_node_load"] for r in result.values()]
        assert loads[0] > loads[1] > loads[2]

    def test_same_accuracy_across_architectures(self):
        result = arch_comm.run(num_workers=6, rounds=3)
        accs = {r["final_acc"] for r in result.values()}
        assert len(accs) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            arch_comm.run(num_workers=3)

    def test_format_rows(self):
        result = arch_comm.run(num_workers=4, rounds=1)
        rows = arch_comm.format_rows(result)
        assert len(rows) == 5
