"""Tests for the fault-tolerance experiment and trainer failure support."""

import pytest

from repro.experiments import fault_tolerance
from repro.nn import build_logreg
from repro.fl import FederatedTrainer

from tests.helpers import N_CLASSES, N_FEATURES, make_federation


class TestFailNode:
    def test_failed_worker_stops_uploading(self):
        workers, _, test = make_federation(num_workers=4)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        trainer = FederatedTrainer(model, workers, [0], test_data=test)
        trainer.fail_node(3)
        rec = trainer.run_round(0)
        assert 3 not in rec.accepted or rec.accepted.get(3) is False
        assert trainer.failed_nodes == {3}

    def test_failed_server_stalls_training(self):
        workers, _, test = make_federation(num_workers=4)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        trainer = FederatedTrainer(model, workers, [0], test_data=test)
        trainer.fail_node(0)
        theta = model.get_flat_params()
        rec = trainer.run_round(0)
        assert rec.grad_norm == 0.0
        assert (model.get_flat_params() == theta).all()

    def test_rank_validation(self):
        workers, _, test = make_federation(num_workers=3)
        model = build_logreg(N_FEATURES, N_CLASSES, seed=0)
        trainer = FederatedTrainer(model, workers, [0], test_data=test)
        with pytest.raises(ValueError):
            trainer.fail_node(7)


class TestExperiment:
    def test_scenarios_present(self):
        res = fault_tolerance.run(num_workers=6, rounds=8, fail_at=3)
        assert set(res["scenarios"]) == {
            "no_failure", "worker_fails", "server_fails", "server_fails_reselect",
        }

    def test_stall_vs_recovery(self):
        res = fault_tolerance.run(num_workers=6, rounds=12, fail_at=3)
        s = res["scenarios"]
        assert s["server_fails"]["final_acc"] == pytest.approx(
            s["server_fails"]["acc_at_failure"], abs=0.02
        )
        assert s["server_fails_reselect"]["final_acc"] > s["server_fails"]["final_acc"]

    def test_dead_server_not_reselected(self):
        res = fault_tolerance.run(num_workers=6, rounds=10, fail_at=3)
        assert 1 not in res["scenarios"]["server_fails_reselect"]["final_servers"]

    def test_validation(self):
        with pytest.raises(ValueError):
            fault_tolerance.run(rounds=5, fail_at=5)
