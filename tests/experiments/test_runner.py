"""Tests for the experiment runner CLI."""

import json

import pytest

from repro.experiments.runner import FIGURES, main, run_figure


class TestRunFigure:
    def test_all_figures_registered(self):
        paper = [f"fig{i:02d}" for i in range(4, 15)]
        extensions = ["ext-comm", "ext-fault", "ext-noniid"]
        sims = ["sim-churn", "sim-stragglers"]
        scale = ["population-scale"]
        assert sorted(FIGURES) == sorted(paper + extensions + sims + scale)

    def test_extension_fast_runs(self):
        result, rows = run_figure("ext-fault", fast=True)
        assert "scenarios" in result
        assert rows

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            run_figure("fig99")

    def test_fast_run_returns_rows(self):
        result, rows = run_figure("fig11", fast=True)
        assert "tail_means" in result
        assert any("Fig 11" in r for r in rows)


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "fig14" in out

    def test_requires_a_selection(self):
        with pytest.raises(SystemExit):
            main([])

    def test_runs_and_saves_json(self, tmp_path, capsys):
        assert main(["--figures", "fig12", "--fast", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "=== fig12" in out
        saved = json.loads((tmp_path / "fig12.json").read_text())
        assert "means" in saved
        # tuple/float keys serialized as strings
        assert all(isinstance(k, str) for k in saved["means"])

    def test_multiple_figures(self, capsys):
        assert main(["--figures", "fig13,fig14", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "=== fig13" in out and "=== fig14" in out

    def test_nan_serialized_as_null(self, tmp_path):
        from repro.experiments.runner import _jsonable

        assert _jsonable({"x": float("nan")}) == {"x": None}
        assert _jsonable({(1, 2): [3]}) == {"(1, 2)": [3]}
