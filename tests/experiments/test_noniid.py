"""Tests for the non-iid detection experiment."""

import pytest

from repro.experiments import noniid


class TestNonIID:
    def test_iid_limit_is_clean(self):
        res = noniid.run(alphas=(100.0,), rounds=6)
        r = res["by_alpha"][100.0]
        assert r["honest_false_reject"] < 0.05
        assert r["attacker_reject"] > 0.9

    def test_skew_increases_false_rejections(self):
        res = noniid.run(alphas=(100.0, 0.1), rounds=8)
        mild = res["by_alpha"][100.0]["honest_false_reject"]
        extreme = res["by_alpha"][0.1]["honest_false_reject"]
        assert extreme >= mild

    def test_validation(self):
        with pytest.raises(ValueError):
            noniid.run(alphas=())

    def test_format_rows(self):
        res = noniid.run(alphas=(1.0,), rounds=3)
        rows = noniid.format_rows(res)
        assert len(rows) == 3
