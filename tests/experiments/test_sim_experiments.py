"""Tests for the simulation-scenario experiment drivers."""

from repro.experiments.registry import FIGURES


class TestSimChurn:
    def test_fast_run_shape_and_fault_coverage(self):
        result, rows = FIGURES["sim-churn"].run(fast=True)
        sched = result["schedule"]
        R = len(result["uncertain_per_round"])
        assert R == len(result["durations_s"])
        # the schedule fits inside the (fast) round budget
        assert 0 < sched["worker_away"][0] < sched["server_down"][1] <= R
        # the server outage shows up as an uncertain-event spike
        assert (
            result["mean_uncertain_during_outage"]
            > result["mean_uncertain_elsewhere"]
        )
        for name in ("churned", "stable"):
            assert len(result["reputations"][name]) > 0
            assert len(result["cumulative_rewards"][name]) > 0
        assert rows and "churn" in rows[0]

    def test_deterministic_across_runs(self):
        spec = FIGURES["sim-churn"]
        r1, _ = spec.run(fast=True)
        r2, _ = spec.run(fast=True)
        assert r1["uncertain_per_round"] == r2["uncertain_per_round"]
        assert r1["durations_s"] == r2["durations_s"]
        assert r1["reputations"] == r2["reputations"]


class TestSimStragglers:
    def test_fast_run_round_time_grows_with_rate(self):
        result, rows = FIGURES["sim-stragglers"].run(fast=True)
        sweep = result["sweep"]
        rates = sorted(sweep)
        assert len(rates) >= 2
        durations = [sweep[r]["mean_duration_s"] for r in rates]
        assert durations == sorted(durations)
        assert durations[0] < durations[-1]
        # the deadline caps every round
        for r in rates:
            assert sweep[r]["max_duration_s"] <= result["round_timeout_s"] + 1e-9
        assert rows and "straggler" in rows[0]

    def test_zero_rate_has_no_stragglers_or_misses(self):
        result, _ = FIGURES["sim-stragglers"].run(fast=True)
        base = result["sweep"][min(result["sweep"])]
        assert base["stragglers_per_round"] == 0.0
        assert base["late_per_round"] == 0.0
        assert base["uncertain_per_round"] == 0.0
