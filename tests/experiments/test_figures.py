"""Smoke + shape tests for every figure driver (reduced scales).

Each test runs the driver at a small scale and asserts the *qualitative*
property the paper's figure demonstrates — the same property the
full-scale benchmark regenerates.
"""

import numpy as np
import pytest

from repro.experiments import (
    FedExpConfig,
    fig04_rewards,
    fig05_market,
    fig06_unreliable,
    fig07_attack_damage,
    fig08_cifar_damage,
    fig09_detection,
    fig10_defense,
    fig11_reputation,
    fig12_contribution,
    fig13_cumulative_rewards,
    fig14_punishments,
)
from repro.market import MECHANISMS


class TestFig4:
    def test_shapes_and_formatting(self):
        res = fig04_rewards.run(repetitions=2, probe_rounds=2)
        assert set(res["rewards"]) == set(MECHANISMS)
        for m in MECHANISMS:
            assert len(res["rewards"][m]) == 10
        rows = fig04_rewards.format_rows(res)
        assert any("Fig 4(a)" in r for r in rows)

    def test_equal_flat_fifl_skewed(self):
        res = fig04_rewards.run(repetitions=3, probe_rounds=2)
        eq = np.array(res["rewards"]["equal"])
        fifl = np.array(res["rewards"]["fifl"])
        populated = eq > 0
        # Equal pays every populated group the same
        assert eq[populated].std() < 0.02
        # FIFL pays the top groups more than the bottom groups
        assert fifl[-3:].mean() > fifl[:3].mean()


class TestFig5:
    def test_shares_sum_to_one(self):
        res = fig05_market.run(repetitions=3, iterations=20, probe_rounds=2)
        assert sum(res["data_share"].values()) == pytest.approx(1.0)
        assert res["relative_revenue"]["fifl"] == 0.0
        rows = fig05_market.format_rows(res)
        assert len(rows) == len(MECHANISMS) + 2


class TestFig6:
    def test_monotone_decline(self):
        res = fig06_unreliable.run(
            attack_degrees=(0.15, 0.385), repetitions=3, probe_rounds=2
        )
        rel = res["relative_revenue"]
        for m in MECHANISMS:
            if m == "fifl":
                continue
            assert rel[0.385][m] < rel[0.15][m] < 0
        # paper's headline: at 0.385 FIFL outperforms every baseline by a
        # large margin (>30%)
        for m, gain in res["fifl_outperforms_by"][0.385].items():
            assert gain > 30.0, m


def tiny_image_cfg(**overrides):
    base = dict(
        num_workers=6,
        samples_per_worker=80,
        test_samples=100,
        rounds=6,
        eval_every=6,
        lr=0.02,
        server_lr=0.02,
        local_iters=2,
        server_ranks=(0, 1),
    )
    base.update(overrides)
    return FedExpConfig(**base)


class TestFig7:
    def test_high_intensity_damages_more(self):
        cfg = tiny_image_cfg(rounds=12, eval_every=12)
        res = fig07_attack_damage.run_intensity_sweep(
            cfg, intensities=(0.0, 8.0), num_attackers=1
        )
        clean = [v for v in res["curves"][0.0] if v is not None][-1]
        attacked = [v for v in res["curves"][8.0] if v is not None][-1]
        assert attacked < clean

    def test_type_comparison_runs(self):
        cfg = tiny_image_cfg()
        res = fig07_attack_damage.run_type_comparison(cfg)
        assert set(res["curves"]) == {"none", "sign_flip", "data_poison", "joint"}


class TestFig8:
    def test_sign_flip_hurts_cifar(self):
        cfg = tiny_image_cfg(dataset="cifar10", image_size=8, rounds=10, eval_every=10,
                             lr=0.05, server_lr=0.05)
        res = fig08_cifar_damage.run(cfg, p_s=8.0)
        clean = [v for v in res["accuracy"]["none"] if v is not None][-1]
        flip = [v for v in res["accuracy"]["sign_flip"] if v is not None][-1]
        assert flip <= clean
        rows = fig08_cifar_damage.format_rows(res)
        assert len(rows) == 5


class TestFig9:
    def test_accuracy_improves_with_deviation(self):
        res = fig09_detection.run_accuracy_sweep(
            poison_rates=(0.3, 0.9), thresholds=(0.1,)
        )
        acc = res["accuracy"][0.1]
        assert acc[0.9] >= acc[0.3]

    def test_sign_flip_always_caught(self):
        res = fig09_detection.run_accuracy_sweep(
            poison_rates=(0.5,), thresholds=(0.0,)
        )
        for rate in res["sign_flip_tn_rate"].values():
            assert rate == 1.0

    def test_tradeoff_direction(self):
        res = fig09_detection.run_tradeoff(thresholds=(0.0, 0.5))
        assert res["tp_rate"][0.5] <= res["tp_rate"][0.0]
        assert res["tn_rate"][0.5] >= res["tn_rate"][0.0]


class TestFig10:
    def test_defense_recovers_accuracy(self):
        cfg = tiny_image_cfg(rounds=12, eval_every=12)
        res = fig10_defense.run(cfg, p_s=10.0)
        final = {k: [v for v in s if v is not None][-1] for k, s in res["accuracy"].items()}
        assert final["defended"] > final["undefended"]


class TestFig11:
    def test_reputation_ordering_matches_trust(self):
        res = fig11_reputation.run()
        tails = res["tail_means"]
        # higher attack probability -> lower reputation, strictly ordered
        probs = sorted(tails)
        values = [tails[p] for p in probs]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_tail_mean_near_fixed_point(self):
        res = fig11_reputation.run()
        for p_a, mean in res["tail_means"].items():
            assert mean == pytest.approx(1.0 - p_a, abs=0.2)


class TestFig12:
    def test_threshold_splits_sign(self):
        res = fig12_contribution.run()
        means = res["means"]
        assert means[0.0] > 0 and means[0.1] > 0
        assert means[0.3] < 0 and means[0.4] < 0
        assert abs(means[0.2]) < 0.05  # the reference sits at C = 0

    def test_monotone_in_quality(self):
        means = fig12_contribution.run()["means"]
        rates = sorted(means)
        values = [means[r] for r in rates]
        assert all(a > b for a, b in zip(values, values[1:]))


class TestFig13:
    def test_rewards_ordered_and_signed(self):
        finals = fig13_cumulative_rewards.run()["finals"]
        assert finals[0.0] > finals[0.1] > 0
        assert 0 > finals[0.3] > finals[0.4]


class TestFig14:
    def test_punishment_grows_with_intensity(self):
        finals = fig14_punishments.run()["finals"]
        intensities = sorted(finals)
        values = [finals[p] for p in intensities]
        assert all(v < 0 for v in values)
        assert all(a > b for a, b in zip(values, values[1:]))
