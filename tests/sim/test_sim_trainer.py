"""Fault-scenario behaviour of the event-driven trainer rounds."""

import numpy as np
import pytest

from repro.fl import FederatedTrainer, HonestWorker
from repro.nn import build_logreg
from repro.sim import FaultScenario, LatencyConfig
from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def make_trainer(scenario, num_workers=5, drop_prob=0.0, seed=7, **worker_kwargs):
    workers, _, test = make_federation(
        num_workers=num_workers, n_samples=200, seed=3, worker_kwargs=worker_kwargs
    )
    model = build_logreg(N_FEATURES, N_CLASSES, seed=3)
    return FederatedTrainer(
        model,
        workers,
        [0, 1],
        test_data=test,
        drop_prob=drop_prob,
        seed=seed,
        scenario=scenario,
    )


class TestLatency:
    def test_rounds_take_virtual_time(self):
        scen = FaultScenario(latency=LatencyConfig(kind="constant", a=0.25))
        trainer = make_trainer(scen)
        history = trainer.run(3)
        # one uplink hop: every slice arrives 0.25s after the round opens
        assert all(r.duration_s == pytest.approx(0.25) for r in history.rounds)
        assert all(not r.uncertain for r in history.rounds)

    def test_per_byte_term_scales_with_payload(self):
        scen = FaultScenario(
            latency=LatencyConfig(kind="constant", a=0.0, per_byte_s=1e-3)
        )
        history = make_trainer(scen).run(1)
        assert history.rounds[0].duration_s > 0.0

    def test_virtual_clock_is_monotonic_across_rounds(self):
        scen = FaultScenario(latency=LatencyConfig(kind="uniform", a=0.1, b=0.5))
        trainer = make_trainer(scen)
        history = trainer.run(4)
        starts = [r.sim["t_start_s"] for r in history.rounds]
        assert starts == sorted(starts)
        assert trainer._sim_runner.sim.now >= starts[-1]


class TestStragglersAndComputeTime:
    def test_stragglers_inflate_round_duration(self):
        base = FaultScenario(base_compute_s=1.0)
        slow = FaultScenario(
            base_compute_s=1.0, straggler_rate=1.0, straggler_slowdown=3.0
        )
        h_base = make_trainer(base).run(2)
        h_slow = make_trainer(slow).run(2)
        assert all(r.duration_s == pytest.approx(1.0) for r in h_base.rounds)
        assert all(r.duration_s == pytest.approx(3.0) for r in h_slow.rounds)
        assert all(
            len(r.sim["stragglers"]) == 5 for r in h_slow.rounds
        )

    def test_worker_compute_time_constant_overrides_scenario(self):
        scen = FaultScenario(base_compute_s=0.5)
        trainer = make_trainer(scen, compute_time=2.0)
        history = trainer.run(1)
        assert history.rounds[0].duration_s == pytest.approx(2.0)
        times = history.rounds[0].sim["worker_time_s"]
        assert all(t == pytest.approx(2.0) for t in times.values())

    def test_worker_compute_time_callable_gets_round_and_rng(self):
        seen = []

        def model_time(round_idx, rng):
            seen.append(round_idx)
            return 0.1 * (round_idx + 1)

        scen = FaultScenario(base_compute_s=9.0)
        trainer = make_trainer(scen, compute_time=model_time)
        history = trainer.run(2)
        assert history.rounds[0].duration_s == pytest.approx(0.1)
        assert history.rounds[1].duration_s == pytest.approx(0.2)
        assert set(seen) == {0, 1}

    def test_negative_compute_time_rejected(self):
        with pytest.raises(ValueError):
            HonestWorker(
                0,
                make_federation(num_workers=1, n_samples=60)[1][0],
                lambda: build_logreg(N_FEATURES, N_CLASSES),
                compute_time=-1.0,
            )


class TestChurn:
    def test_departed_worker_is_absent_not_uncertain(self):
        scen = FaultScenario(churn=((1, 4, "leave"), (3, 4, "join")))
        history = make_trainer(scen).run(4)
        r0, r1, r2, r3 = history.rounds
        assert 4 in r0.accepted and 4 in r3.accepted
        for r in (r1, r2):
            assert 4 not in r.accepted
            assert 4 not in r.uncertain
            assert r.sim["offline"] == [4]

    def test_server_crash_makes_everyone_uncertain_until_restart(self):
        scen = FaultScenario(churn=((1, 1, "leave"), (2, 1, "join")))
        history = make_trainer(scen).run(3)
        outage = history.rounds[1]
        # server 1 is down: every online worker loses a slice
        assert outage.uncertain == {0, 2, 3, 4}
        assert not history.rounds[0].uncertain
        assert not history.rounds[2].uncertain


class TestPartitions:
    def test_partitioned_workers_become_uncertain_for_the_window(self):
        scen = FaultScenario(partitions=((1, 2, (3, 4), (0, 1)),))
        history = make_trainer(scen).run(3)
        assert not history.rounds[0].uncertain
        assert history.rounds[1].uncertain == {3, 4}
        assert not history.rounds[2].uncertain


class TestTimeoutAndRetry:
    def test_retries_recover_transient_drops(self):
        # with a high drop rate and generous retries, far fewer uploads
        # are lost than the no-retry baseline
        base = FaultScenario(round_timeout_s=60.0)
        retry = FaultScenario(round_timeout_s=60.0, max_retries=8)
        lost_base = sum(
            len(r.uncertain)
            for r in make_trainer(base, drop_prob=0.3).run(4).rounds
        )
        lost_retry = sum(
            len(r.uncertain)
            for r in make_trainer(retry, drop_prob=0.3).run(4).rounds
        )
        assert lost_base > 0
        assert lost_retry < lost_base

    def test_retry_counter_reported(self):
        scen = FaultScenario(round_timeout_s=60.0, max_retries=4)
        history = make_trainer(scen, drop_prob=0.3).run(3)
        assert sum(r.sim["retries"] for r in history.rounds) > 0

    def test_deadline_caps_round_duration_and_marks_late(self):
        scen = FaultScenario(
            latency=LatencyConfig(kind="constant", a=5.0), round_timeout_s=1.0
        )
        history = make_trainer(scen).run(2)
        for r in history.rounds:
            assert r.duration_s == pytest.approx(1.0)
            assert r.uncertain == {0, 1, 2, 3, 4}
            assert set(r.sim["late"]) == {0, 1, 2, 3, 4}


class TestDeadNetwork:
    """Satellite: drop_prob=1.0 is a fully dead network, not an error."""

    @pytest.mark.parametrize("scenario", [None, FaultScenario.none()])
    def test_training_terminates_with_all_uploads_uncertain(self, scenario):
        trainer = make_trainer(scenario, drop_prob=1.0)
        history = trainer.run(3)
        for r in history.rounds:
            assert r.uncertain == {0, 1, 2, 3, 4}
            assert not any(r.accepted.values())
            assert r.grad_norm == 0.0
        assert trainer.network.total_bytes() == 0


class TestDeterminism:
    def test_identical_seeded_runs_are_identical(self):
        scen = FaultScenario(
            latency=LatencyConfig(kind="lognormal", a=0.05, b=0.8),
            round_timeout_s=2.0,
            max_retries=2,
            base_compute_s=0.5,
            straggler_rate=0.3,
            churn=((1, 4, "leave"), (3, 4, "join")),
            seed=11,
        )
        t1 = make_trainer(scen, drop_prob=0.05)
        t2 = make_trainer(scen, drop_prob=0.05)
        h1, h2 = t1.run(4), t2.run(4)
        assert [r.sim for r in h1.rounds] == [r.sim for r in h2.rounds]
        assert [sorted(r.uncertain) for r in h1.rounds] == [
            sorted(r.uncertain) for r in h2.rounds
        ]
        assert (
            t1.model.get_flat_params().tobytes()
            == t2.model.get_flat_params().tobytes()
        )

    def test_fault_streams_do_not_disturb_training_randomness(self):
        # same drop seed, faults on vs off: the drop *pattern* changes
        # only through retries, but local-training randomness must not
        null = make_trainer(FaultScenario.none())
        faulted = make_trainer(
            FaultScenario(base_compute_s=1.0, straggler_rate=0.5)
        )
        h_null, h_faulted = null.run(2), faulted.run(2)
        # same gradients uploaded => same accepted sets and same model
        assert [r.accepted for r in h_null.rounds] == [
            r.accepted for r in h_faulted.rounds
        ]
        assert (
            null.model.get_flat_params().tobytes()
            == faulted.model.get_flat_params().tobytes()
        )
