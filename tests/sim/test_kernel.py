"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator


class TestClock:
    def test_starts_at_zero_and_only_events_advance_it(self):
        sim = Simulator()
        assert sim.now == 0.0
        sim.schedule(2.5, lambda: None)
        assert sim.now == 0.0
        sim.step()
        assert sim.now == 2.5

    def test_advance_to_moves_forward(self):
        sim = Simulator()
        sim.advance_to(3.0)
        assert sim.now == 3.0
        with pytest.raises(ValueError):
            sim.advance_to(1.0)

    def test_advance_to_refuses_to_jump_pending_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.advance_to(5.0)


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for name in "abcde":
            sim.schedule(1.0, order.append, name)
        sim.run()
        assert order == list("abcde")

    def test_schedule_in_the_past_raises(self):
        sim = Simulator()
        sim.advance_to(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_cancel_is_lazy_but_effective(self):
        sim = Simulator()
        ran = []
        eid = sim.schedule(1.0, ran.append, "x")
        sim.schedule(2.0, ran.append, "y")
        sim.cancel(eid)
        sim.run()
        assert ran == ["y"]
        assert sim.now == 2.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append((sim.now, n))
            if n:
                sim.schedule(1.0, chain, n - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert seen == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]


class TestActors:
    def test_generator_actor_yields_delays(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield 1.5
            trace.append(("mid", sim.now))
            yield 0.5
            trace.append(("end", sim.now))

        sim.spawn(proc(), delay=1.0)
        sim.run()
        assert trace == [("start", 1.0), ("mid", 2.5), ("end", 3.0)]

    def test_actor_without_yield_runs_once(self):
        sim = Simulator()
        ran = []

        def proc():
            ran.append(sim.now)
            return
            yield  # pragma: no cover - makes this a generator function

        sim.spawn(proc())
        sim.run()
        assert ran == [0.0]


class TestExecution:
    def test_peek_and_idle(self):
        sim = Simulator()
        assert sim.idle() and sim.peek() is None
        sim.schedule(4.0, lambda: None)
        assert not sim.idle() and sim.peek() == 4.0

    def test_run_batch_runs_one_timestamp_only(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule(1.0, order.append, "b")
        sim.schedule(2.0, order.append, "later")
        assert sim.run_batch() == 2
        assert order == ["a", "b"]
        assert sim.now == 1.0

    def test_run_batch_includes_same_time_events_scheduled_during_batch(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, order.append, "child"))
        sim.schedule(1.0, order.append, "sibling")
        sim.run_batch()
        assert order == ["sibling", "child"]

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, ran.append, 1)
        sim.schedule(5.0, ran.append, 5)
        assert sim.run_until(3.0) == 1
        assert ran == [1] and sim.now == 3.0

    def test_run_bounded_by_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.events_run == 4


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        a, b = Simulator(seed=42), Simulator(seed=42)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_composite_seed_accepted(self):
        sim = Simulator(seed=(7, 3, 0x51D))
        assert 0.0 <= sim.rng.random() < 1.0
