"""Tests for the declarative fault scenarios."""

import pytest

from repro.sim import FaultScenario, LatencyConfig


class TestValidation:
    def test_defaults_are_null(self):
        assert FaultScenario().is_null
        assert FaultScenario.none().is_null

    def test_any_fault_breaks_nullness(self):
        assert not FaultScenario(latency=LatencyConfig()).is_null
        assert not FaultScenario(round_timeout_s=1.0).is_null
        assert not FaultScenario(straggler_rate=0.1).is_null
        assert not FaultScenario(churn=((0, 1, "leave"),)).is_null
        assert not FaultScenario(partitions=((0, 1, (0,), (1,)),)).is_null

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FaultScenario(round_timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultScenario(max_retries=-1)
        with pytest.raises(ValueError):
            FaultScenario(backoff_factor=0.5)
        with pytest.raises(ValueError):
            FaultScenario(straggler_rate=1.5)
        with pytest.raises(ValueError):
            FaultScenario(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultScenario(churn=((0, 1, "explode"),))
        with pytest.raises(ValueError):
            FaultScenario(partitions=((3, 1, (0,), (1,)),))
        with pytest.raises(ValueError):
            FaultScenario(partitions=((0, 2, (0, 1), (1, 2)),))  # overlap


class TestSchedules:
    def test_churn_at_filters_by_round(self):
        s = FaultScenario(
            churn=((2, 5, "leave"), (4, 5, "join"), (2, 3, "leave"))
        )
        assert s.churn_at(2) == [(5, "leave"), (3, "leave")]
        assert s.churn_at(4) == [(5, "join")]
        assert s.churn_at(0) == []

    def test_partition_links_window_and_symmetry(self):
        s = FaultScenario(partitions=((1, 3, (0, 1), (2,)),))
        assert s.partition_links(0, 4) == set()
        assert s.partition_links(1, 4) == {(0, 2), (2, 0), (1, 2), (2, 1)}
        assert s.partition_links(2, 4) == s.partition_links(1, 4)
        assert s.partition_links(3, 4) == set()  # end-exclusive

    def test_partition_links_ignores_out_of_range_ranks(self):
        s = FaultScenario(partitions=((0, 1, (0,), (9,)),))
        assert s.partition_links(0, 4) == set()

    def test_retry_delay_backs_off_exponentially(self):
        s = FaultScenario(max_retries=3, retry_backoff_s=0.1, backoff_factor=2.0)
        assert s.retry_delay(0) == pytest.approx(0.1)
        assert s.retry_delay(1) == pytest.approx(0.2)
        assert s.retry_delay(2) == pytest.approx(0.4)
