"""Tests for the pluggable latency models."""

import numpy as np
import pytest

from repro.sim import (
    ConstantLatency,
    LatencyConfig,
    LognormalLatency,
    PerLinkLatency,
    UniformLatency,
    make_latency,
)


def rng():
    return np.random.default_rng(0)


class TestConstant:
    def test_fixed_delay(self):
        m = ConstantLatency(0.2)
        assert m.sample(rng(), 0, 1, 10**6) == 0.2

    def test_per_byte_term(self):
        m = ConstantLatency(0.1, per_byte_s=1e-6)
        assert m.sample(rng(), 0, 1, 100_000) == pytest.approx(0.2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniform:
    def test_within_band(self):
        m = UniformLatency(0.1, 0.3)
        r = rng()
        samples = [m.sample(r, 0, 1, 0) for _ in range(200)]
        assert all(0.1 <= s <= 0.3 for s in samples)
        assert len(set(samples)) > 1

    def test_degenerate_band_draws_nothing(self):
        # low == high must not consume an RNG draw (determinism contract)
        r1, r2 = rng(), rng()
        m = UniformLatency(0.2, 0.2)
        assert m.sample(r1, 0, 1, 0) == 0.2
        assert r1.random() == r2.random()

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.1)


class TestLognormal:
    def test_positive_and_heavy_tailed(self):
        m = LognormalLatency(0.1, sigma=1.0)
        r = rng()
        samples = np.array([m.sample(r, 0, 1, 0) for _ in range(2000)])
        assert (samples > 0).all()
        assert np.median(samples) == pytest.approx(0.1, rel=0.2)
        assert samples.max() > 10 * np.median(samples)  # the tail exists

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalLatency(0.0, sigma=1.0)


class TestPerLink:
    def test_override_selected_by_directed_link(self):
        m = PerLinkLatency(
            ConstantLatency(0.1), {(0, 1): ConstantLatency(9.0)}
        )
        assert m.sample(rng(), 0, 1, 0) == 9.0
        assert m.sample(rng(), 1, 0, 0) == 0.1  # direction matters
        assert m.sample(rng(), 2, 3, 0) == 0.1


class TestLatencyConfig:
    def test_make_latency_by_kind(self):
        assert make_latency(None) is None
        assert isinstance(
            make_latency(LatencyConfig(kind="constant", a=0.1)), ConstantLatency
        )
        assert isinstance(
            make_latency(LatencyConfig(kind="uniform", a=0.1, b=0.2)),
            UniformLatency,
        )
        assert isinstance(
            make_latency(LatencyConfig(kind="lognormal", a=0.1, b=0.5)),
            LognormalLatency,
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LatencyConfig(kind="gaussian")
