"""Differential contract: the null scenario reproduces the direct trainer.

The tentpole's acceptance criterion: running the upload phase through
the discrete-event kernel with zero faults and zero latency must be
*bit-for-bit* identical to the direct (instantaneous) loop — same
accepted/uncertain sets, same losses, same gradient norms, same final
parameters, same byte accounting, same drop log — even with a nonzero
drop probability, because drop draws happen in the same order on both
paths.
"""

import pytest

from repro.core import FIFLMechanism
from repro.experiments import data_poison, probabilistic, run_federated
from repro.experiments.fig09_detection import default_config as fig09_config
from repro.experiments.fig11_reputation import default_config as fig11_config
from repro.fl import FederatedTrainer
from repro.nn import build_logreg
from repro.sim import FaultScenario
from tests.helpers import N_CLASSES, N_FEATURES, make_federation


def _run_trainer(scenario, drop_prob=0.1, rounds=6):
    workers, _, test = make_federation(num_workers=6, n_samples=240, seed=3)
    model = build_logreg(N_FEATURES, N_CLASSES, seed=3)
    trainer = FederatedTrainer(
        model,
        workers,
        [0, 1],
        test_data=test,
        mechanism=FIFLMechanism(),
        drop_prob=drop_prob,
        seed=7,
        scenario=scenario,
    )
    return trainer.run(rounds), trainer


def _assert_histories_identical(h_direct, h_sim):
    assert len(h_direct.rounds) == len(h_sim.rounds)
    for a, b in zip(h_direct.rounds, h_sim.rounds):
        assert a.accepted == b.accepted
        assert a.uncertain == b.uncertain
        assert a.test_loss == b.test_loss and a.test_acc == b.test_acc
        assert a.grad_norm == b.grad_norm


class TestNullScenarioBitwise:
    def test_matches_direct_trainer_with_drops(self):
        h1, t1 = _run_trainer(None)
        h2, t2 = _run_trainer(FaultScenario.none())
        _assert_histories_identical(h1, h2)
        # identical down to the raw parameter bytes and the wire accounting
        assert (
            t1.model.get_flat_params().tobytes()
            == t2.model.get_flat_params().tobytes()
        )
        assert t1.network.bytes_sent == t2.network.bytes_sent
        assert t1.network.drop_log.drops == t2.network.drop_log.drops

    def test_null_rounds_take_zero_virtual_time(self):
        h, t = _run_trainer(FaultScenario.none(), drop_prob=0.0, rounds=3)
        assert all(r.duration_s == 0.0 for r in h.rounds)
        assert all(r.sim is not None for r in h.rounds)
        assert t.network.in_flight == 0


def _scaled(cfg_fed, **overrides):
    return cfg_fed.scaled(
        samples_per_worker=40, test_samples=50, rounds=4, eval_every=4, **overrides
    )


class TestExperimentConfigDifferential:
    """fig09/fig11-shaped runs agree exactly between the two paths."""

    @pytest.mark.parametrize("drop_prob", [0.0, 0.15])
    def test_fig09_config(self, drop_prob):
        fed = _scaled(fig09_config().fed, drop_prob=drop_prob)
        attackers = {6: data_poison(0.5), 7: data_poison(0.9)}
        h1, m1 = run_federated(fed, attackers, with_fifl=True)
        h2, m2 = run_federated(
            fed.scaled(scenario=FaultScenario.none()), attackers, with_fifl=True
        )
        _assert_histories_identical(h1, h2)
        for wid in range(fed.num_workers):
            assert m1.reputation_history(wid) == m2.reputation_history(wid)

    def test_fig11_config(self):
        fed = _scaled(fig11_config(), drop_prob=0.1)
        attackers = {6: probabilistic(0.4), 7: probabilistic(0.8)}
        h1, m1 = run_federated(fed, attackers, with_fifl=True)
        h2, m2 = run_federated(
            fed.scaled(scenario=FaultScenario.none()), attackers, with_fifl=True
        )
        _assert_histories_identical(h1, h2)
        for wid in range(fed.num_workers):
            assert m1.reputation_history(wid) == m2.reputation_history(wid)
