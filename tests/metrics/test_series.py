"""Tests for series utilities."""

import numpy as np
import pytest

from repro.metrics import auc, final_value, moving_average, relative_percent


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = [1.0, 5.0, 3.0]
        np.testing.assert_array_equal(moving_average(x, 1), x)

    def test_trailing_window(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_warmup_prefix(self):
        out = moving_average([2.0, 4.0, 6.0], 10)
        np.testing.assert_allclose(out, [2.0, 3.0, 4.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)
        with pytest.raises(ValueError):
            moving_average(np.zeros((2, 2)), 1)


class TestFinalValue:
    def test_skips_trailing_nones(self):
        assert final_value([0.1, 0.5, None, None]) == 0.5

    def test_all_none_raises(self):
        with pytest.raises(ValueError):
            final_value([None, None])


class TestRelativePercent:
    def test_basic(self):
        assert relative_percent(110.0, 100.0) == pytest.approx(10.0)
        assert relative_percent(50.0, 100.0) == pytest.approx(-50.0)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            relative_percent(1.0, 0.0)


class TestAUC:
    def test_constant_series(self):
        assert auc([2.0, 2.0, 2.0]) == pytest.approx(4.0)

    def test_faster_convergence_larger_auc(self):
        fast = [0.5, 0.9, 0.95, 0.95]
        slow = [0.3, 0.5, 0.7, 0.9]
        assert auc(fast) > auc(slow)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            auc([1.0])
