"""Tests for detection confusion metrics."""

import pytest

from repro.metrics import ConfusionCounts, aggregate_confusion, confusion


class TestConfusion:
    def test_all_quadrants(self):
        accepted = {0: True, 1: False, 2: True, 3: False}
        truth = {0: True, 1: True, 2: False, 3: False}
        c = confusion(accepted, truth)
        assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)
        assert c.accuracy == 0.5
        assert c.tp_rate == 0.5
        assert c.tn_rate == 0.5

    def test_perfect_detection(self):
        accepted = {0: True, 1: False}
        truth = {0: True, 1: False}
        c = confusion(accepted, truth)
        assert c.accuracy == 1.0
        assert c.tp_rate == 1.0
        assert c.tn_rate == 1.0

    def test_missing_truth_ignored(self):
        c = confusion({0: True, 9: False}, {0: True})
        assert c.total == 1

    def test_empty_rates_are_zero(self):
        c = ConfusionCounts()
        assert c.accuracy == 0.0
        assert c.tp_rate == 0.0
        assert c.tn_rate == 0.0

    def test_rates_with_single_class(self):
        # all honest: TN rate undefined -> 0, accuracy = TP rate
        accepted = {0: True, 1: True, 2: False}
        truth = {0: True, 1: True, 2: True}
        c = confusion(accepted, truth)
        assert c.tn_rate == 0.0
        assert c.accuracy == pytest.approx(2 / 3)


class TestAggregate:
    def test_sum_over_rounds(self):
        rounds = [
            confusion({0: True}, {0: True}),
            confusion({0: False}, {0: True}),
            confusion({1: False}, {1: False}),
        ]
        total = aggregate_confusion(rounds)
        assert (total.tp, total.fn, total.tn) == (1, 1, 1)
        assert total.accuracy == pytest.approx(2 / 3)

    def test_empty_aggregate(self):
        assert aggregate_confusion([]).total == 0
