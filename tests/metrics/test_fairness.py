"""Fairness metrics: Gini coefficient, share entropy, fused fast path."""

import math

import numpy as np
import pytest

from repro.metrics import gini, reward_fairness, share_entropy


def brute_force_gini(values):
    """Mean-absolute-difference definition, O(n^2) reference."""
    v = np.asarray(values, dtype=np.float64)
    n, total = v.size, v.sum()
    return float(
        np.abs(v[:, None] - v[None, :]).sum() / (2 * n * n * (total / n))
    )


class TestGini:
    def test_equal_shares_is_zero(self):
        assert gini([2.0, 2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_one_takes_all(self):
        # fully concentrated: G = (n - 1) / n
        assert gini([0.0, 0.0, 0.0, 1.0]) == pytest.approx(0.75)

    def test_matches_brute_force_definition(self):
        rng = np.random.default_rng(7)
        v = rng.uniform(0.0, 5.0, size=57)
        assert gini(v) == pytest.approx(brute_force_gini(v), abs=1e-12)

    def test_scale_invariant(self):
        v = [1.0, 2.0, 5.0]
        assert gini(v) == pytest.approx(gini([x * 1000 for x in v]))

    def test_degenerate_inputs_are_trivially_equal(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0
        assert gini([3.0]) == pytest.approx(0.0)

    def test_rejects_negative_and_non_1d(self):
        with pytest.raises(ValueError):
            gini([1.0, -0.5])
        with pytest.raises(ValueError):
            gini([[1.0, 2.0]])


class TestShareEntropy:
    def test_uniform_shares_is_one(self):
        assert share_entropy([3.0] * 8) == pytest.approx(1.0)

    def test_fully_concentrated_is_zero(self):
        assert share_entropy([0.0, 0.0, 4.0]) == pytest.approx(0.0)

    def test_zero_shares_contribute_nothing(self):
        # entropy over the positive pair, normalized by log(n=4)
        expected = math.log(2) / math.log(4)
        assert share_entropy([1.0, 1.0, 0.0, 0.0]) == pytest.approx(expected)

    def test_degenerate_inputs(self):
        assert share_entropy([]) == 0.0
        assert share_entropy([5.0]) == 0.0
        assert share_entropy([0.0, 0.0]) == 0.0

    def test_rejects_negative_and_non_1d(self):
        with pytest.raises(ValueError):
            share_entropy([1.0, -1.0])
        with pytest.raises(ValueError):
            share_entropy([[1.0]])


class TestRewardFairness:
    def test_matches_standalone_functions(self):
        rng = np.random.default_rng(11)
        for v in ([], [0.0, 0.0], [4.0], rng.uniform(0.0, 3.0, size=64),
                  np.concatenate([np.zeros(5), rng.uniform(1, 2, 10)])):
            g, h = reward_fairness(v)
            assert g == pytest.approx(gini(v), abs=1e-12)
            assert h == pytest.approx(share_entropy(v), abs=1e-12)

    def test_validation_matches_standalone(self):
        with pytest.raises(ValueError):
            reward_fairness([1.0, -1.0])
        with pytest.raises(ValueError):
            reward_fairness([[1.0, 2.0]])

    def test_validate_false_skips_checks(self):
        # caller vouches for the input; the fused path must not raise
        g, h = reward_fairness(np.array([1.0, 2.0]), validate=False)
        assert g == pytest.approx(gini([1.0, 2.0]))
        assert h == pytest.approx(share_entropy([1.0, 2.0]))


class TestMechanismRewardVectors:
    """Edge cases of real mechanism reward vectors (S4.4).

    The mechanism clips punishments to zero and calls
    ``reward_fairness(positive, validate=False)`` every round, so the
    degenerate vectors below must come back finite — a NaN here would
    poison the telemetry gauges and the monitor's Gini detector.
    """

    def test_all_zero_rewards_are_finite(self):
        # every worker punished: the positive part is the zero vector
        g, h = reward_fairness(np.zeros(8), validate=False)
        assert (g, h) == (0.0, 0.0)
        assert math.isfinite(g) and math.isfinite(h)

    def test_single_worker_is_finite(self):
        g, h = reward_fairness(np.array([0.7]), validate=False)
        assert (g, h) == (0.0, 0.0)

    def test_single_worker_zero_reward(self):
        g, h = reward_fairness(np.array([0.0]), validate=False)
        assert (g, h) == (0.0, 0.0)

    def test_negative_punishments_rejected_when_validating(self):
        mixed = np.array([0.5, 0.3, -0.2, -0.6])
        with pytest.raises(ValueError):
            gini(mixed)
        with pytest.raises(ValueError):
            share_entropy(mixed)
        with pytest.raises(ValueError):
            reward_fairness(mixed)

    def test_clip_then_skip_validation_matches_validating_path(self):
        # the mechanism's pattern: clip punishments, skip re-validation
        mixed = np.array([0.5, 0.3, -0.2, -0.6])
        positive = np.maximum(mixed, 0.0)
        fast = reward_fairness(positive, validate=False)
        slow = (gini(positive), share_entropy(positive))
        assert fast == pytest.approx(slow)
