"""Tests for the measured FIFL market weights."""

import numpy as np
import pytest

from repro.core import union_weights
from repro.market import measure_fifl_weights

SAMPLES = np.array([100, 500, 1000, 2000, 4000, 6000, 8000, 9500])


class TestMeasuredWeights:
    def test_nonnegative_and_finite(self):
        w = measure_fifl_weights(SAMPLES, seed=0, n_probe_rounds=3)
        assert (w >= 0).all()
        assert np.isfinite(w).all()

    def test_free_rider_guard_zeroes_small_workers(self):
        w = measure_fifl_weights(SAMPLES, seed=0, n_probe_rounds=5)
        assert w[0] == 0.0  # 100 samples, far below the guard
        assert w[-1] > 0.0

    def test_top_workers_beat_bottom(self):
        w = measure_fifl_weights(SAMPLES, seed=1, n_probe_rounds=5)
        top = w[-2:].sum()
        bottom = w[:2].sum()
        assert top > bottom

    def test_pays_more_to_top_than_union(self):
        # the paper's Fig. 4 claim: FIFL spends the most on high-quality
        # workers and the least on low-quality ones. Checked on the
        # paper's population shape (20 workers ~ U[1, 10000]), averaged
        # over draws because a single draw is noisy.
        rng = np.random.default_rng(0)
        top_fifl, top_union, bot_fifl, bot_union = [], [], [], []
        for rep in range(6):
            samples = rng.integers(1, 10_001, size=20)
            w = measure_fifl_weights(samples, seed=rep, n_probe_rounds=4)
            total = w.sum()
            w = w / total if total > 0 else w
            u = union_weights(samples.astype(float))
            u = u / u.sum()
            top_fifl.append(w[samples.argmax()])
            top_union.append(u[samples.argmax()])
            bot_fifl.append(w[samples.argmin()])
            bot_union.append(u[samples.argmin()])
        assert np.mean(top_fifl) > np.mean(top_union)
        assert np.mean(bot_fifl) < np.mean(bot_union)

    def test_deterministic(self):
        a = measure_fifl_weights(SAMPLES, seed=3, n_probe_rounds=2)
        b = measure_fifl_weights(SAMPLES, seed=3, n_probe_rounds=2)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_fifl_weights(np.array([5]))
        with pytest.raises(ValueError):
            measure_fifl_weights(np.array([0, 10]))
        with pytest.raises(ValueError):
            measure_fifl_weights(SAMPLES, reference_quantile=1.5)
        with pytest.raises(ValueError):
            measure_fifl_weights(SAMPLES, n_probe_rounds=0)
