"""Tests for the worker-market simulator (Figs. 4-6 machinery)."""

import numpy as np
import pytest

from repro.market import MECHANISMS, MarketConfig, MarketSimulator


def fast_sim(seed=0, **overrides):
    cfg = dict(repetitions=4, iterations=30, fifl_probe_rounds=2)
    cfg.update(overrides)
    return MarketSimulator(MarketConfig(**cfg), seed=seed)


class TestConfig:
    def test_paper_defaults(self):
        cfg = MarketConfig()
        assert cfg.num_workers == 20
        assert cfg.max_samples == 10_000
        assert cfg.iterations == 500
        assert cfg.repetitions == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            MarketConfig(num_workers=1)
        with pytest.raises(ValueError):
            MarketConfig(min_samples=100, max_samples=100)
        with pytest.raises(ValueError):
            MarketConfig(iterations=0)
        with pytest.raises(ValueError):
            MarketConfig(total_budget=0)


class TestPopulation:
    def test_draw_in_range(self):
        sim = fast_sim()
        rng = np.random.default_rng(0)
        samples = sim.draw_population(rng)
        assert samples.shape == (20,)
        assert samples.min() >= 1 and samples.max() <= 10_000

    def test_grouping_decile_width(self):
        sim = fast_sim()
        groups = sim.group_of(np.array([1, 999, 1000, 5500, 10000]))
        assert list(groups) == [0, 0, 0, 5, 9]


class TestMechanismWeights:
    def test_all_mechanisms_present_and_normalized(self):
        sim = fast_sim()
        samples = np.array([100, 1000, 5000, 9000, 2500])
        shares = sim.mechanism_weights(samples, seed=1)
        assert set(shares) == set(MECHANISMS)
        for m in MECHANISMS:
            assert shares[m].shape == (5,)
            assert shares[m].sum() == pytest.approx(1.0)
            assert (shares[m] >= 0).all()

    def test_equal_is_uniform(self):
        sim = fast_sim()
        shares = sim.mechanism_weights(np.array([10, 20, 30]), seed=0)
        np.testing.assert_allclose(shares["equal"], 1 / 3)


class TestAttractiveness:
    def test_columns_sum_to_one(self):
        sim = fast_sim()
        shares = sim.mechanism_weights(np.array([100, 4000, 9000]), seed=2)
        attr = sim.attractiveness_of(shares)
        total = sum(attr[m] for m in MECHANISMS)
        np.testing.assert_allclose(total, 1.0)

    def test_equal_most_attractive_to_smallest_worker(self):
        # the paper: Equal attracts most low-quality workers
        sim = fast_sim()
        samples = np.array([50, 3000, 6000, 9500])
        shares = sim.mechanism_weights(samples, seed=3)
        attr = sim.attractiveness_of(shares)
        assert attr["equal"][0] == max(attr[m][0] for m in MECHANISMS)

    def test_fifl_most_attractive_to_top_worker(self):
        # averaged over population draws at the paper's scale (N=20)
        sim = fast_sim()
        rng = np.random.default_rng(1)
        wins = []
        for rep in range(5):
            samples = rng.integers(1, 10_001, size=20)
            shares = sim.mechanism_weights(samples, seed=rep)
            attr = sim.attractiveness_of(shares)
            top = int(samples.argmax())
            top_attr = {m: attr[m][top] for m in MECHANISMS}
            wins.append(top_attr["fifl"] == max(top_attr.values()))
        assert sum(wins) >= 3


class TestMarketSimulation:
    def test_outcome_shapes(self):
        out = fast_sim(seed=1).simulate_market()
        assert set(out.data_share) == set(MECHANISMS)
        assert sum(out.data_share.values()) == pytest.approx(1.0)
        assert out.relative_revenue["fifl"] == 0.0
        for m in MECHANISMS:
            assert out.group_rewards[m].shape == (10,)
            assert out.group_attractiveness[m].shape == (10,)

    def test_fifl_and_union_attract_most_data(self):
        # Fig. 5(a): fifl > union > {shapley, individual, equal}
        out = fast_sim(seed=0, repetitions=8).simulate_market()
        ds = out.data_share
        assert ds["fifl"] > ds["equal"]
        assert ds["union"] > ds["equal"]

    def test_deterministic_given_seed(self):
        a = fast_sim(seed=7).simulate_market()
        b = fast_sim(seed=7).simulate_market()
        assert a.data_share == b.data_share


class TestUnreliableRevenues:
    def test_fifl_zero_baselines_negative(self):
        rev = fast_sim(seed=2).unreliable_revenues(
            attack_degrees=(0.15, 0.385), repetitions=5
        )
        for degree, row in rev.items():
            assert row["fifl"] == 0.0
            for m in MECHANISMS:
                if m != "fifl":
                    assert row[m] < 0, (degree, m)

    def test_damage_grows_with_attack_degree(self):
        rev = fast_sim(seed=2).unreliable_revenues(
            attack_degrees=(0.15, 0.385), repetitions=5
        )
        for m in MECHANISMS:
            if m != "fifl":
                assert rev[0.385][m] < rev[0.15][m]

    def test_imperfect_detection_hurts_fifl_less_than_none(self):
        rev_perfect = fast_sim(seed=3).unreliable_revenues(
            attack_degrees=(0.385,), repetitions=5, detection_rate=1.0
        )
        # with detection off, FIFL degenerates toward the baselines
        rev_none = fast_sim(seed=3).unreliable_revenues(
            attack_degrees=(0.385,), repetitions=5, detection_rate=0.0
        )
        gap_perfect = abs(rev_perfect[0.385]["union"])
        gap_none = abs(rev_none[0.385]["union"])
        assert gap_none < gap_perfect

    def test_validation(self):
        sim = fast_sim()
        with pytest.raises(ValueError):
            sim.unreliable_revenues(unreliable_fraction=0.0)
        with pytest.raises(ValueError):
            sim.unreliable_revenues(detection_rate=2.0)
        with pytest.raises(ValueError):
            sim.unreliable_revenues(attack_degrees=(1.5,))
