"""Telemetry CLI: render JSONL traces from the command line.

Usage::

    python -m repro.telemetry summarize results/trace.jsonl
    python -m repro.telemetry summarize trace.jsonl --rounds 0 --json
    python -m repro.telemetry summarize trace.jsonl --worker 5

``summarize`` reads a JSONL trace (written by
:class:`repro.telemetry.JsonlSink`) and prints the per-round mechanism
table (flagged workers, reward Gini, share entropy), the phase-time
breakdown, last gauge values, and any embedded run manifests.
``--json`` prints the machine-readable :func:`trace_summary` block
instead of tables.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core import SCHEMA_VERSION
from .sinks import read_trace
from .summary import (
    render_summary,
    render_worker,
    trace_summary,
    worker_trajectory,
)

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser(
        "summarize", help="render a JSONL trace as per-round tables"
    )
    p_sum.add_argument("trace", help="path to a .jsonl trace file")
    p_sum.add_argument(
        "--rounds", type=int, default=20,
        help="max per-round rows to print (0 = all; default 20)",
    )
    p_sum.add_argument(
        "--json", action="store_true",
        help="print the machine-readable summary block instead of tables",
    )
    p_sum.add_argument(
        "--worker", type=int, default=None,
        help="print one worker's reward/reputation trajectory instead",
    )
    args = parser.parse_args(argv)

    try:
        events = read_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        # Truncated tail (crashed producer) or not JSONL at all — either
        # way a clear diagnostic beats a traceback.
        print(
            f"trace {args.trace} is not valid JSONL ({exc.msg}); "
            f"the file may be truncated",
            file=sys.stderr,
        )
        return 1
    if not events:
        print(f"trace {args.trace} contains no events", file=sys.stderr)
        return 1
    bad = [
        ev for ev in events
        if ev.get("v") not in (None, SCHEMA_VERSION)
    ]
    if bad:
        print(
            f"warning: {len(bad)} events with unknown schema version "
            f"(this reader understands v{SCHEMA_VERSION})",
            file=sys.stderr,
        )
    if args.worker is not None:
        if args.json:
            print(json.dumps(worker_trajectory(events, args.worker), indent=2))
        else:
            for row in render_worker(events, args.worker):
                print(row)
    elif args.json:
        print(json.dumps(trace_summary(events), indent=2))
    else:
        for row in render_summary(events, max_rounds=args.rounds):
            print(row)
    return 0
