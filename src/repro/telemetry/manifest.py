"""Deterministic run manifests for benchmarks and experiment drivers.

A manifest is one ``manifest`` event carrying everything needed to
reproduce and compare a run: a name, the exact configuration (including
the seed — the whole stack is seeded, so config + seed pins the run),
and the measured results (timings, speedups). Benchmarks route their
``BENCH_*.json`` payloads through here so the manifest also lands in
whatever sinks are active (in-memory, JSONL trace, console).
"""

from __future__ import annotations

import json
from pathlib import Path

from .core import SCHEMA_VERSION, Telemetry, get_telemetry

__all__ = ["run_manifest", "write_manifest"]


def run_manifest(
    name: str,
    config: dict,
    results: dict,
    telemetry: Telemetry | None = None,
) -> dict:
    """Build a run manifest and emit it as a ``manifest`` event."""
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "config": dict(config),
        "results": results,
    }
    tele = telemetry if telemetry is not None else get_telemetry()
    tele.event("manifest", manifest)
    return manifest


def write_manifest(path, manifest: dict) -> Path:
    """Persist a manifest as pretty-printed JSON (returns the path)."""
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return path
