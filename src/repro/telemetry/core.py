"""Telemetry hub: hierarchical spans, metrics registry, pluggable sinks.

The :class:`Telemetry` object is the observability backbone of the whole
simulator — always on, near-zero overhead, shared process-wide (see
:func:`get_telemetry` / :func:`set_telemetry`). It subsumes the old flat
profiler (``repro.profiling`` is now a thin shim over this module) and
adds three layers on top of the phase-timing table:

* **Hierarchical spans** — :meth:`Telemetry.span` opens a named span
  (run → round → phase → per-server slice) with free-form attributes and
  monotonic timing; closing a span emits one ``span`` event to every
  sink and folds its duration into the phase-timing table, so the old
  ``snapshot()`` / ``profile_delta`` contract keeps working unchanged.
  :meth:`Telemetry.phase` is the back-compat alias the trainer and
  mechanism have always used.
* **Metrics registry** — :meth:`count` (monotonic counters),
  :meth:`gauge` (last-value, emits a ``metric`` event) and
  :meth:`observe` / :meth:`observe_many` (fixed-bucket histograms, pure
  aggregation, no per-observation events) for mechanism signals:
  detection margins, reward Gini, fleet-group sizes, gradient norms.
* **Events** — :meth:`event` emits an arbitrary typed payload (per-round
  mechanism records, benchmark run manifests) with a monotonically
  increasing ``seq`` and the trace schema version ``v``.

Emission is *deferred*: hot paths append compact records (span tuples,
plain event dicts, or :meth:`Telemetry.defer` thunks with reserved
``seq`` ranges) to one ordered queue, and sinks see materialized dicts
at the next flush boundary — :meth:`Telemetry.events`,
:meth:`Telemetry.metrics_snapshot`, :meth:`Telemetry.close`,
:meth:`Telemetry.flush`, or a bounded queue cap. Sequence numbers are
assigned at record time, so the materialized stream reads exactly as if
every event had been emitted inline; only the dict-building and sink
forwarding move off the round loop's critical path.

Determinism: the clock is injectable. With the default
``time.perf_counter`` span durations are wall-clock; with a
:class:`TickClock` every clock read returns a deterministic logical
time, so a fully seeded run writes a byte-identical JSONL trace on every
repeat — traces double as regression fixtures (see
``tests/telemetry/test_trace_determinism.py``).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

import numpy as np

from .sinks import MemorySink

__all__ = [
    "SCHEMA_VERSION",
    "TickClock",
    "Histogram",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "profile_delta",
    "format_profile",
]

#: version stamped (as ``"v"``) on every emitted trace event
SCHEMA_VERSION = 1

#: default histogram bucket edges (log-ish grid around zero) used when a
#: metric is observed before an explicit register_histogram call
DEFAULT_BUCKET_EDGES = (
    -8.0, -4.0, -2.0, -1.0, -0.5, -0.2, -0.1, 0.0,
    0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0,
)


class TickClock:
    """Deterministic logical clock: each read advances by ``step``.

    Installed via ``Telemetry(clock=TickClock())`` it makes span
    durations a pure function of control flow (number of intervening
    clock reads), so seeded runs produce byte-identical traces.
    """

    def __init__(self, start: float = 0.0, step: float = 0.001):
        if step <= 0:
            raise ValueError("step must be positive")
        self._t = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        t = self._t
        self._t += self._step
        return t


class Histogram:
    """Fixed-bucket histogram: counts per ``(-inf, e0], (e0, e1], ...``.

    Batched observations are buffered and bucketed lazily: the hot path
    (:meth:`observe_many` from a per-round mechanism loop) is one list
    append, and the searchsorted/bincount pass runs on the next
    :meth:`snapshot` (or when the buffer exceeds a bounded chunk count).
    """

    _MAX_PENDING = 256

    def __init__(self, edges: Iterable[float]):
        self.edges = np.asarray(sorted(edges), dtype=np.float64)
        if self.edges.size == 0:
            raise ValueError("need at least one bucket edge")
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.total = 0
        self.sum = 0.0
        self._pending: list[np.ndarray] = []

    def observe(self, value: float) -> None:
        self.counts[int(np.searchsorted(self.edges, value))] += 1
        self.total += 1
        self.sum += float(value)

    def observe_many(self, values) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self._pending.append(values)
        if len(self._pending) > self._MAX_PENDING:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        values = np.concatenate(self._pending)
        self._pending.clear()
        idx = np.searchsorted(self.edges, values)
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.total += int(values.size)
        self.sum += float(values.sum())

    def snapshot(self) -> dict:
        self._flush()
        return {
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "total": int(self.total),
            "sum": float(self.sum),
        }


class _SpanHandle:
    """Context manager for one span occurrence.

    Handles are pooled per hub (:attr:`Telemetry._span_pool`) and the
    close path appends one compact tuple to the hub's pending queue
    instead of building an event dict — spans wrap phases that can be
    only a few hundred microseconds long, so every allocation here
    shows up in the benchmarks' overhead number. The dict is
    materialized later by :meth:`Telemetry._flush_pending`, with the
    ``seq`` reserved here so stream order is exactly emission order.
    """

    __slots__ = ("_tele", "_name", "_kind", "_attrs", "_t0")

    def __init__(self, tele: "Telemetry", name: str, kind: str, attrs: dict):
        self._tele = tele
        self._name = name
        self._kind = kind
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        self._t0 = self._tele._clock()
        self._tele._stack.append(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tele = self._tele
        dur = tele._clock() - self._t0
        stack = tele._stack
        depth = len(stack)
        stack.pop()
        slot = tele._timings.get(self._name)
        if slot is None:
            tele._timings[self._name] = [dur, 1]
        else:
            slot[0] += dur
            slot[1] += 1
        pending = tele._pending
        pending.append((_SPAN, self._name, self._kind, depth, dur, tele._seq,
                        self._attrs))
        tele._seq += 1
        tele._span_pool.append(self)
        if len(pending) >= _PENDING_CAP:
            tele._flush_pending()


class _NullSpan:
    """Shared no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()

#: shared attrs dict for attribute-less phases — read-only by contract
_NO_ATTRS: dict = {}

#: pending-queue record tags (span tuple / deferred thunk)
_SPAN = 0
_THUNK = 1

#: pending records buffered before a forced flush to the sinks
_PENDING_CAP = 4096


class Telemetry:
    """Span tracer + metrics registry + event bus behind one object.

    Implements the legacy ``Profiler`` contract exactly (``phase``,
    ``add_time``, ``count``, ``snapshot``, ``reset``) so every existing
    consumer keeps working, and layers spans/gauges/histograms/events on
    top. ``enabled=False`` turns every entry point into a no-op, which
    the benchmarks use to measure the always-on overhead.
    """

    def __init__(
        self,
        sinks: list | None = None,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ):
        self.sinks = list(sinks) if sinks is not None else [MemorySink()]
        self._clock = clock if clock is not None else time.perf_counter
        self.enabled = enabled
        self._stack: list[str] = []
        self._seq = 0
        # bound ``emit`` methods, refreshed when ``sinks`` changes
        # (hot paths loop these instead of re-resolving attributes);
        # ``_sink_cache`` remembers which sink list the cache was built
        # from, so replacing one sink with another is detected even when
        # the list length is unchanged
        self._sink_emits = [s.emit for s in self.sinks]
        self._sink_cache = list(self.sinks)
        self._span_pool: list[_SpanHandle] = []
        # Deferred-emission queue: hot paths append compact records
        # (span tuples, thunks with reserved seq ranges, plain event
        # dicts) and the sinks see materialized dicts at the next flush
        # boundary — events()/close()/metrics_snapshot() or the cap.
        self._pending: list = []
        # phase name -> [total seconds, calls] (legacy profiler table)
        self._timings: dict[str, list[float]] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- events ----------------------------------------------------------------

    @property
    def seq(self) -> int:
        """The sequence number the *next* emitted event will carry."""
        return self._seq

    def _emit(self, event: dict) -> None:
        event["v"] = SCHEMA_VERSION
        event["seq"] = self._seq
        self._seq += 1
        self._pending.append(event)
        if len(self._pending) >= _PENDING_CAP:
            self._flush_pending()

    def defer(self, fn, args: tuple, n_events: int) -> None:
        """Defer building ``n_events`` events until the next flush.

        ``fn(self, *args)`` runs at flush time and must return exactly
        ``n_events`` event dicts (without ``v``/``seq`` — their sequence
        numbers are reserved *now*, so the trace reads as if the events
        were emitted inline). This keeps expensive per-round summaries
        (sorting reward vectors, entropy) off the hot path while
        preserving stream order and determinism; aggregate side effects
        inside ``fn`` (gauges, histograms) also run in emission order.
        """
        if not self.enabled:
            return
        seq0 = self._seq
        self._seq += n_events
        self._pending.append((_THUNK, fn, args, seq0, n_events))
        if len(self._pending) >= _PENDING_CAP:
            self._flush_pending()

    def _flush_pending(self) -> None:
        """Materialize queued records and forward them to every sink."""
        if not self._pending:
            return
        if self._sink_cache != self.sinks:
            self._sink_emits = [s.emit for s in self.sinks]
            self._sink_cache = list(self.sinks)
        emits = self._sink_emits
        # swap the queue out first: thunks may defer/observe re-entrantly
        queue, self._pending = self._pending, []
        for item in queue:
            if type(item) is dict:
                for emit in emits:
                    emit(item)
                continue
            if item[0] == _SPAN:
                _, name, kind, depth, dur, seq, attrs = item
                event = {
                    "type": "span",
                    "name": name,
                    "kind": kind,
                    "depth": depth,
                    "dur_s": dur,
                    "v": SCHEMA_VERSION,
                    "seq": seq,
                }
                if attrs:
                    event["attrs"] = attrs
                for emit in emits:
                    emit(event)
                continue
            _, fn, args, seq0, n_events = item
            events = fn(self, *args)
            if len(events) != n_events:
                raise RuntimeError(
                    f"deferred emitter returned {len(events)} events, "
                    f"reserved {n_events}"
                )
            for i, event in enumerate(events):
                event["v"] = SCHEMA_VERSION
                event["seq"] = seq0 + i
                for emit in emits:
                    emit(event)

    def flush(self) -> None:
        """Materialize all deferred events into the sinks now.

        Reading APIs (:meth:`events`, :meth:`metrics_snapshot`,
        :meth:`close`) flush implicitly; call this directly to bound
        deferred work at a known point, e.g. between benchmark windows.

        Sinks exposing their own ``flush`` (e.g. :class:`JsonlSink`
        with ``fsync_on_flush``) are drained too, so a flush boundary
        is also a durability boundary for file-backed traces.
        """
        self._flush_pending()
        for sink in self.sinks:
            sink_flush = getattr(sink, "flush", None)
            if sink_flush is not None:
                sink_flush()

    def event(self, etype: str, data: dict) -> None:
        """Emit one arbitrary typed event (payload under ``data``)."""
        if not self.enabled:
            return
        self._emit({"type": etype, "data": data})

    def events(self) -> list[dict]:
        """Events retained by the first in-memory sink (else empty)."""
        self._flush_pending()
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return list(sink.events)
        return []

    def close(self) -> None:
        """Flush/close every sink (JSONL files, console summaries)."""
        self._flush_pending()
        for sink in self.sinks:
            sink.close()

    # -- spans -----------------------------------------------------------------

    def _span(self, name: str, kind: str, attrs: dict) -> _SpanHandle:
        pool = self._span_pool
        if pool:
            handle = pool.pop()
            handle._name = name
            handle._kind = kind
            handle._attrs = attrs
            return handle
        return _SpanHandle(self, name, kind, attrs)

    def span(self, name: str, kind: str = "span", **attrs):
        """Open a named hierarchical span (context manager).

        Nesting is tracked by an explicit stack: the emitted ``span``
        event records its ``depth`` at close time. Duration also folds
        into the flat phase-timing table, so spans and legacy phases
        share one accounting. Handles are single-use (and recycled
        internally): call :meth:`span` again rather than re-entering a
        kept reference.
        """
        if not self.enabled:
            return _NULL_SPAN
        return self._span(name, kind, attrs)

    def phase(self, name: str):
        """Time one phase (legacy profiler API; a span of kind 'phase')."""
        if not self.enabled:
            return _NULL_SPAN
        return self._span(name, "phase", _NO_ATTRS)

    def current_depth(self) -> int:
        """How many spans are currently open on this hub."""
        return len(self._stack)

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold an externally measured duration into a phase."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        if not self.enabled:
            return
        slot = self._timings.get(name)
        if slot is None:
            self._timings[name] = [seconds, calls]
        else:
            slot[0] += seconds
            slot[1] += calls

    # -- metrics ---------------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Bump a named counter (workers scored, bytes moved, ...)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record a last-value gauge and emit a ``metric`` event."""
        if not self.enabled:
            return
        value = float(value)
        self._gauges[name] = value
        event = {"type": "metric", "kind": "gauge", "name": name, "value": value}
        if attrs:
            event["attrs"] = attrs
        self._emit(event)

    def register_histogram(self, name: str, edges: Iterable[float]) -> None:
        """Pre-register a histogram's fixed bucket edges (idempotent)."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(edges)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a fixed-bucket histogram (no event)."""
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(DEFAULT_BUCKET_EDGES)
        hist.observe(value)

    def observe_many(self, name: str, values) -> None:
        """Vectorized :meth:`observe` for a whole batch of values."""
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(DEFAULT_BUCKET_EDGES)
        hist.observe_many(values)

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Legacy profiler snapshot: ``{"timings": ..., "counters": ...}``.

        The shape is frozen — downstream JSON (``TrainingHistory.profile``,
        runner ``_meta.profile``, BENCH manifests) depends on it; gauges
        and histograms live in :meth:`metrics_snapshot`.
        """
        return {
            "timings": {
                name: {"seconds": total, "calls": int(calls)}
                for name, (total, calls) in self._timings.items()
            },
            "counters": dict(self._counters),
        }

    def metrics_snapshot(self) -> dict:
        """Gauges (last values) and histogram bucket tables."""
        self._flush_pending()
        return {
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.snapshot() for name, hist in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Clear aggregated state (timings, counters, gauges, histograms).

        Does not touch sinks or the event sequence — a reset mid-trace
        must not make two different events share a ``seq``. Pending
        deferred events are flushed first so their aggregate side
        effects land in the pre-reset state they were recorded under.
        """
        self._flush_pending()
        self._timings.clear()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def profile_delta(before: dict, after: dict) -> dict:
    """What happened between two snapshots (phases new to ``after`` kept)."""
    timings = {}
    for name, stat in after["timings"].items():
        prev = before["timings"].get(name, {"seconds": 0.0, "calls": 0})
        seconds = stat["seconds"] - prev["seconds"]
        calls = stat["calls"] - prev["calls"]
        if calls > 0 or seconds > 0:
            timings[name] = {"seconds": seconds, "calls": calls}
    counters = {}
    for name, value in after["counters"].items():
        diff = value - before["counters"].get(name, 0)
        if diff:
            counters[name] = diff
    return {"timings": timings, "counters": counters}


def format_profile(profile: dict) -> list[str]:
    """Human-readable rows for a snapshot/delta, longest phase first."""
    rows = []
    timings = profile.get("timings", {})
    total = sum(s["seconds"] for s in timings.values())
    for name, stat in sorted(
        timings.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        share = 100.0 * stat["seconds"] / total if total > 0 else 0.0
        rows.append(
            f"{name:>16}  {stat['seconds'] * 1e3:10.2f} ms"
            f"  {stat['calls']:>7} calls  {share:5.1f}%"
        )
    for name, value in sorted(profile.get("counters", {}).items()):
        rows.append(f"{name:>16}  {value:g}")
    return rows


_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide hub shared by trainer, mechanism, and engines."""
    return _TELEMETRY


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the process-wide hub (returns the previous one)."""
    global _TELEMETRY
    previous = _TELEMETRY
    _TELEMETRY = telemetry
    return previous
