"""``python -m repro.telemetry`` entry point."""

import sys

from .cli import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
