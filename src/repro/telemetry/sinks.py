"""Telemetry sinks: in-memory ring, JSONL event stream, console summary.

Every sink receives each emitted event exactly once, in emission order,
as a plain dict already stamped with the schema version (``v``) and the
sequence number (``seq``). Sinks never mutate events.

``encode_event`` defines the canonical wire encoding: sorted keys, no
whitespace, NaN rejected, numpy scalars coerced. Canonical bytes are
what makes seeded traces byte-identical across runs — and therefore
usable as regression fixtures, not just logs.
"""

from __future__ import annotations

import json
import os
import sys
from collections import deque
from pathlib import Path

__all__ = [
    "encode_event",
    "decode_event",
    "read_trace",
    "MemorySink",
    "JsonlSink",
    "ConsoleSink",
]


def _json_default(obj):
    """Coerce numpy scalars/arrays and sets into JSON-native values."""
    import numpy as np

    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def encode_event(event: dict) -> str:
    """One canonical JSONL line (no trailing newline) for an event."""
    return json.dumps(
        event,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        default=_json_default,
    )


def decode_event(line: str) -> dict:
    """Parse one JSONL trace line back into an event dict."""
    return json.loads(line)


def read_trace(path) -> list[dict]:
    """All events of a JSONL trace file, in file order."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(decode_event(line))
    return events


class MemorySink:
    """Default sink: a bounded in-memory ring of event dicts.

    The ``maxlen`` cap keeps week-long runs from growing without bound;
    eviction drops the *oldest* events, so recent history (what a
    summary or a crash post-mortem wants) is always retained.
    """

    def __init__(self, maxlen: int | None = 65536):
        self.events: deque = deque(maxlen=maxlen)

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams every event as one canonical JSON line to a file.

    The file is opened eagerly (truncating) so a crashed run still
    leaves a readable prefix. ``close()`` is idempotent; the sink also
    works as a context manager.

    With ``fsync_on_flush=True`` every :meth:`flush` pushes buffered
    lines through the OS to the disk (``fsync``), so the trace written
    up to the last flush boundary survives a SIGKILL or power loss —
    the crash scenarios the service snapshots are built for. Off by
    default: durability costs a syscall per flush, and most traces only
    need to survive a clean exit.
    """

    def __init__(self, path, *, fsync_on_flush: bool = False):
        self.path = Path(path)
        self.fsync_on_flush = bool(fsync_on_flush)
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            raise RuntimeError(f"JsonlSink({self.path}) is closed")
        self._fh.write(encode_event(event))
        self._fh.write("\n")

    def flush(self) -> None:
        """Drain userspace buffers (and hit the disk when configured)."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync_on_flush:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ConsoleSink(MemorySink):
    """Buffers events and prints a rendered summary on ``close()``."""

    def __init__(self, stream=None, maxlen: int | None = 65536):
        super().__init__(maxlen=maxlen)
        self.stream = stream if stream is not None else sys.stdout

    def close(self) -> None:
        # Imported here: summary renders *from* events, sinks must not
        # depend on it at import time (summary imports this module).
        from .summary import render_summary

        for row in render_summary(list(self.events)):
            print(row, file=self.stream)
