"""Telemetry sinks: in-memory ring, JSONL event stream, console summary.

Every sink receives each emitted event exactly once, in emission order,
as a plain dict already stamped with the schema version (``v``) and the
sequence number (``seq``). Sinks never mutate events.

``encode_event`` defines the canonical wire encoding: sorted keys, no
whitespace, NaN rejected, numpy scalars coerced. Canonical bytes are
what makes seeded traces byte-identical across runs — and therefore
usable as regression fixtures, not just logs.
"""

from __future__ import annotations

import json
import os
import sys
from collections import deque
from pathlib import Path

__all__ = [
    "encode_event",
    "decode_event",
    "read_trace",
    "MemorySink",
    "JsonlSink",
    "ConsoleSink",
    "MetricsTextSink",
]


def _json_default(obj):
    """Coerce numpy scalars/arrays and sets into JSON-native values."""
    import numpy as np

    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def encode_event(event: dict) -> str:
    """One canonical JSONL line (no trailing newline) for an event."""
    return json.dumps(
        event,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        default=_json_default,
    )


def decode_event(line: str) -> dict:
    """Parse one JSONL trace line back into an event dict."""
    return json.loads(line)


def read_trace(path) -> list[dict]:
    """All events of a JSONL trace file, in file order."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(decode_event(line))
    return events


class MemorySink:
    """Default sink: a bounded in-memory ring of event dicts.

    The ``maxlen`` cap keeps week-long runs from growing without bound;
    eviction drops the *oldest* events, so recent history (what a
    summary or a crash post-mortem wants) is always retained.
    """

    def __init__(self, maxlen: int | None = 65536):
        self.events: deque = deque(maxlen=maxlen)

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams every event as one canonical JSON line to a file.

    The file is opened eagerly (truncating) so a crashed run still
    leaves a readable prefix. ``close()`` is idempotent; the sink also
    works as a context manager.

    With ``fsync_on_flush=True`` every :meth:`flush` pushes buffered
    lines through the OS to the disk (``fsync``), so the trace written
    up to the last flush boundary survives a SIGKILL or power loss —
    the crash scenarios the service snapshots are built for. Off by
    default: durability costs a syscall per flush, and most traces only
    need to survive a clean exit.
    """

    def __init__(self, path, *, fsync_on_flush: bool = False):
        self.path = Path(path)
        self.fsync_on_flush = bool(fsync_on_flush)
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            raise RuntimeError(f"JsonlSink({self.path}) is closed")
        self._fh.write(encode_event(event))
        self._fh.write("\n")

    def flush(self) -> None:
        """Drain userspace buffers (and hit the disk when configured)."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync_on_flush:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _metric_name(name: str, namespace: str) -> str:
    """Sanitize to the exposition-format name charset ``[a-zA-Z0-9_:]``."""
    safe = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_"
        for ch in name
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"{namespace}_{safe}" if namespace else safe


def _label_value(value) -> str:
    """Escape a label value per the exposition format (\\\\, \\", \\n)."""
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class MetricsTextSink:
    """Prometheus-textfile-style metrics endpoint for long-running services.

    Tracks last-value gauges from ``metric`` events (per distinct label
    set) and counts every event type; each hub :meth:`flush` atomically
    rewrites ``path`` in the text exposition format, so a node-exporter
    textfile collector (or a ``cat``) scrapes a consistent view while
    ``repro.service`` keeps running. Bind the hub (``bind(hub)``) to
    also export its internal counters at flush time.

    The sink never touches event bytes or ordering — attaching it to a
    seeded run changes nothing about the JSONL trace.
    """

    def __init__(self, path, *, namespace: str = "repro", hub=None):
        self.path = Path(path)
        self.namespace = namespace
        self._hub = hub
        # gauge name -> {sorted-label-tuple: value}
        self._gauges: dict[str, dict[tuple, float]] = {}
        self._event_counts: dict[str, int] = {}
        self._closed = False

    def bind(self, hub) -> None:
        """Export ``hub``'s internal counters in every future flush."""
        self._hub = hub

    def emit(self, event: dict) -> None:
        kind = str(event.get("type"))
        self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
        if kind == "metric" and event.get("kind") == "gauge":
            labels = tuple(sorted((event.get("attrs") or {}).items()))
            series = self._gauges.setdefault(event["name"], {})
            series[labels] = float(event["value"])

    def render(self) -> str:
        """The full exposition-format payload for the current state."""
        lines: list[str] = []

        def sample(name: str, labels: tuple, value) -> str:
            if labels:
                body = ",".join(
                    f'{_metric_name(k, "")}="{_label_value(v)}"'
                    for k, v in labels
                )
                return f"{name}{{{body}}} {value}"
            return f"{name} {value}"

        for raw in sorted(self._gauges):
            name = _metric_name(raw, self.namespace)
            lines.append(f"# TYPE {name} gauge")
            series = self._gauges[raw]
            for labels in sorted(series):
                lines.append(sample(name, labels, series[labels]))
        counters = dict(self._hub.snapshot()["counters"]) if self._hub else {}
        for raw in sorted(counters):
            name = _metric_name(raw, self.namespace) + "_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(sample(name, (), counters[raw]))
        events_name = _metric_name("events", self.namespace) + "_total"
        lines.append(f"# TYPE {events_name} counter")
        for kind in sorted(self._event_counts):
            lines.append(
                sample(events_name, (("type", kind),), self._event_counts[kind])
            )
        return "\n".join(lines) + "\n"

    def flush(self) -> None:
        """Atomically rewrite the textfile (write-new + rename)."""
        if self._closed:
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(self.render(), encoding="utf-8")
        os.replace(tmp, self.path)

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._closed = True


class ConsoleSink(MemorySink):
    """Buffers events and prints a rendered summary on ``close()``."""

    def __init__(self, stream=None, maxlen: int | None = 65536):
        super().__init__(maxlen=maxlen)
        self.stream = stream if stream is not None else sys.stdout

    def close(self) -> None:
        # Imported here: summary renders *from* events, sinks must not
        # depend on it at import time (summary imports this module).
        from .summary import render_summary

        for row in render_summary(list(self.events)):
            print(row, file=self.stream)
