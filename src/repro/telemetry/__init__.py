"""Structured telemetry: spans, mechanism metrics, sinks, run manifests.

The always-on observability layer of the simulator (ISSUE 3). One
process-wide :class:`Telemetry` hub (:func:`get_telemetry` /
:func:`set_telemetry`) carries:

* hierarchical **spans** (run → round → phase → per-server slice) with
  attributes and monotonic timing — the old flat profiler's phase table
  is maintained underneath, so ``repro.profiling`` remains a working
  thin shim;
* a **metrics registry**: counters, last-value gauges, and fixed-bucket
  histograms for mechanism signals (detection margins, reward Gini,
  reputation deltas, fleet-group sizes);
* pluggable **sinks**: :class:`MemorySink` (default, bounded ring),
  :class:`JsonlSink` (canonical versioned JSONL event stream — seeded
  runs with a :class:`TickClock` produce byte-identical traces), and
  :class:`ConsoleSink` (summary on close);
* **run manifests** (:func:`run_manifest`) and trace analysis
  (:func:`trace_summary`, :func:`render_summary`) backing the
  ``python -m repro.telemetry summarize`` CLI.
"""

from .core import (
    SCHEMA_VERSION,
    Histogram,
    Telemetry,
    TickClock,
    format_profile,
    get_telemetry,
    profile_delta,
    set_telemetry,
)
from .manifest import run_manifest, write_manifest
from .sinks import (
    ConsoleSink,
    JsonlSink,
    MemorySink,
    MetricsTextSink,
    decode_event,
    encode_event,
    read_trace,
)
from .summary import (
    aggregate_spans,
    parallel_summary,
    render_summary,
    trace_summary,
    worker_trajectory,
)

__all__ = [
    "SCHEMA_VERSION",
    "Telemetry",
    "TickClock",
    "Histogram",
    "get_telemetry",
    "set_telemetry",
    "profile_delta",
    "format_profile",
    "MemorySink",
    "JsonlSink",
    "ConsoleSink",
    "MetricsTextSink",
    "encode_event",
    "decode_event",
    "read_trace",
    "trace_summary",
    "render_summary",
    "worker_trajectory",
    "aggregate_spans",
    "parallel_summary",
    "run_manifest",
    "write_manifest",
]
