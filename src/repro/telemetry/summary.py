"""Trace analysis: compact summaries and human-readable tables.

Works on any list of trace events — live from a :class:`MemorySink`,
or re-read from a JSONL trace file via :func:`repro.telemetry.read_trace`.
Two consumers:

* :func:`trace_summary` — the machine-readable block the experiment
  runner embeds as ``_meta.trace`` in every saved figure JSON;
* :func:`render_summary` — the per-round mechanism table (flagged
  workers, reward Gini, share entropy) plus the phase-time breakdown
  that the ``python -m repro.telemetry summarize`` CLI prints.
"""

from __future__ import annotations

from .core import SCHEMA_VERSION, format_profile

__all__ = [
    "trace_summary",
    "render_summary",
    "worker_trajectory",
    "render_worker",
    "aggregate_spans",
    "parallel_summary",
]

#: event type emitted once per round by the FIFL mechanism
ROUND_EVENT = "fifl.round"


def aggregate_spans(events: list[dict]) -> dict:
    """Fold span events into a flat ``{name: {"seconds", "calls"}}`` table."""
    timings: dict[str, dict] = {}
    for ev in events:
        if ev.get("type") != "span":
            continue
        slot = timings.setdefault(ev["name"], {"seconds": 0.0, "calls": 0})
        slot["seconds"] += ev.get("dur_s", 0.0)
        slot["calls"] += 1
    return timings


def _round_events(events: list[dict]) -> list[dict]:
    return [ev["data"] for ev in events if ev.get("type") == ROUND_EVENT]


def parallel_summary(events: list[dict]) -> dict | None:
    """Fold ``parallel.round`` dispatch events into one digest.

    Totals the shard run and queue-wait seconds across every dispatch
    and reports the worst *straggler factor* — max shard time over the
    dispatch median — the single number that says whether the pool's
    wall clock was set by one slow shard. None when the trace has no
    parallel dispatches (serial runs stay silent).
    """
    dispatches = [
        ev["data"] for ev in events if ev.get("type") == "parallel.round"
    ]
    if not dispatches:
        return None
    run_s = 0.0
    wait_s = 0.0
    shards = 0
    worst = 0.0
    by_phase: dict[str, dict] = {}
    for d in dispatches:
        d_run = float(sum(d.get("shard_s", ())))
        d_wait = float(sum(d.get("queue_wait_s", ())))
        run_s += d_run
        wait_s += d_wait
        shards += int(d.get("shards", len(d.get("shard_s", ()))))
        med = float(d.get("median_shard_s", 0.0))
        if med > 0.0:
            worst = max(worst, float(d.get("max_shard_s", 0.0)) / med)
        slot = by_phase.setdefault(
            str(d.get("phase")),
            {"dispatches": 0, "shards": 0, "run_s": 0.0, "queue_wait_s": 0.0},
        )
        slot["dispatches"] += 1
        slot["shards"] += int(d.get("shards", 0))
        slot["run_s"] += d_run
        slot["queue_wait_s"] += d_wait
    last = dispatches[-1]
    return {
        "dispatches": len(dispatches),
        "shards": shards,
        "backend": last.get("backend"),
        "pool_size": last.get("pool_size"),
        "run_s_total": run_s,
        "queue_wait_s_total": wait_s,
        "straggler_factor_max": worst,
        "by_phase": by_phase,
    }


def trace_summary(events: list[dict]) -> dict:
    """Machine-readable digest of one event stream.

    Includes the schema version, event/span/round counts, total flagged
    workers across rounds, the mean per-round reward Gini and share
    entropy, and the aggregated span-timing table.
    """
    rounds = _round_events(events)
    ginis = [r["reward_gini"] for r in rounds if r.get("reward_gini") is not None]
    entropies = [
        r["share_entropy"] for r in rounds if r.get("share_entropy") is not None
    ]
    manifests = [ev["data"] for ev in events if ev.get("type") == "manifest"]
    return {
        "schema_version": SCHEMA_VERSION,
        "events": len(events),
        "rounds": len(rounds),
        "flagged_total": sum(len(r.get("flagged", [])) for r in rounds),
        "uncertain_total": sum(len(r.get("uncertain", [])) for r in rounds),
        "reward_gini_mean": sum(ginis) / len(ginis) if ginis else None,
        "share_entropy_mean": (
            sum(entropies) / len(entropies) if entropies else None
        ),
        "manifests": [m.get("name") for m in manifests],
        "spans": aggregate_spans(events),
        "parallel": parallel_summary(events),
    }


def _fmt_ids(ids: list) -> str:
    return ",".join(str(i) for i in ids) if ids else "-"


def worker_trajectory(events: list[dict], worker: int) -> dict:
    """One worker's per-round reward/reputation path through a trace.

    Works on any v1 trace: rewards and the flagged/uncertain sets are
    always on the ``fifl.round`` event; absolute reputations ride along
    when the trace was recorded with ``FIFLConfig.audit`` (the default)
    and are ``None`` otherwise. Rounds the worker was not scored in are
    omitted; trainer-skipped rounds are counted separately so a
    skipped-only trace still summarizes cleanly.
    """
    key = str(worker)
    rows = []
    cumulative = 0.0
    for r in _round_events(events):
        rewards = r.get("rewards", {})
        reward = rewards.get(worker, rewards.get(key))
        uncertain = any(int(w) == worker for w in r.get("uncertain", ()))
        scored = (
            worker in r.get("scores", {}) or key in r.get("scores", {})
        )
        if reward is None and not uncertain and not scored:
            continue
        flagged = any(int(w) == worker for w in r.get("flagged", ()))
        reps = r.get("reputations")
        reputation = (
            reps.get(worker, reps.get(key)) if reps is not None else None
        )
        if reward is not None:
            cumulative += reward
        rows.append(
            {
                "round": r.get("round"),
                "status": (
                    "uncertain" if uncertain
                    else "flagged" if flagged
                    else "accepted"
                ),
                "reward": reward,
                "cumulative_reward": cumulative,
                "reputation": reputation,
            }
        )
    skipped = sum(
        1 for ev in events if ev.get("type") == "trainer.skipped_round"
    )
    return {"worker": worker, "rounds": rows, "skipped_rounds": skipped}


def render_worker(events: list[dict], worker: int) -> list[str]:
    """Printable per-worker trajectory table for the ``--worker`` filter."""
    traj = worker_trajectory(events, worker)
    rows = traj["rounds"]
    skipped = traj["skipped_rounds"]
    if not rows:
        note = (
            f" ({skipped} trainer-skipped rounds — no mechanism decisions)"
            if skipped
            else ""
        )
        return [f"worker {worker}: no mechanism rounds in this trace{note}"]
    flagged = sum(1 for r in rows if r["status"] == "flagged")
    uncertain = sum(1 for r in rows if r["status"] == "uncertain")
    last = rows[-1]
    head = (
        f"worker {worker}: {len(rows)} rounds ({flagged} flagged, "
        f"{uncertain} uncertain), cumulative reward "
        f"{last['cumulative_reward']:+.4f}"
    )
    if last["reputation"] is not None:
        head += f", final reputation {last['reputation']:.4f}"
    out = [
        head,
        f"{'round':>7} {'status':>10} {'reward':>10} {'cum_reward':>11} "
        f"{'reputation':>11}",
    ]
    for r in rows:
        reward = "-" if r["reward"] is None else f"{r['reward']:+.4f}"
        rep = "-" if r["reputation"] is None else f"{r['reputation']:.4f}"
        out.append(
            f"{r['round']:>7} {r['status']:>10} {reward:>10} "
            f"{r['cumulative_reward']:>+11.4f} {rep:>11}"
        )
    if skipped:
        out.append(f"(+{skipped} trainer-skipped rounds)")
    return out


def render_summary(
    events: list[dict], max_rounds: int = 20
) -> list[str]:
    """Printable report: header, per-round mechanism table, phase times.

    ``max_rounds`` bounds the per-round table to the trailing rounds
    (0 = unlimited); the header always reports the full totals.
    """
    summary = trace_summary(events)
    rounds = _round_events(events)
    rows = [
        f"trace summary (schema v{summary['schema_version']}): "
        f"{summary['events']} events, {summary['rounds']} rounds, "
        f"{summary['flagged_total']} flagged-worker rounds"
    ]

    if rounds:
        shown = rounds if not max_rounds else rounds[-max_rounds:]
        if len(shown) < len(rounds):
            rows.append(
                f"  (per-round table: last {len(shown)} of {len(rounds)} rounds)"
            )
        rows.append(
            f"{'round':>7} {'accepted':>9} {'flagged':>12} {'uncertain':>10} "
            f"{'reward_gini':>12} {'share_entropy':>14}"
        )
        for r in shown:
            gini = r.get("reward_gini")
            ent = r.get("share_entropy")
            rows.append(
                f"{r.get('round', '?'):>7} {r.get('accepted', 0):>9} "
                f"{_fmt_ids(r.get('flagged', [])):>12} "
                f"{_fmt_ids(r.get('uncertain', [])):>10} "
                f"{(f'{gini:.4f}' if gini is not None else '-'):>12} "
                f"{(f'{ent:.4f}' if ent is not None else '-'):>14}"
            )

    timings = summary["spans"]
    if timings:
        rows.append("phase time breakdown:")
        rows.extend(format_profile({"timings": timings}))

    par = summary["parallel"]
    if par:
        rows.append(
            f"parallel execution: {par['dispatches']} dispatches, "
            f"{par['shards']} shards on {par['backend']} "
            f"(pool={par['pool_size']}), run={par['run_s_total']:.4f}s "
            f"queue-wait={par['queue_wait_s_total']:.4f}s, "
            f"worst straggler {par['straggler_factor_max']:.1f}x median"
        )
        for phase in sorted(par["by_phase"]):
            p = par["by_phase"][phase]
            rows.append(
                f"  {phase:<24} {p['dispatches']:>4} dispatches "
                f"{p['shards']:>5} shards  run={p['run_s']:.4f}s  "
                f"wait={p['queue_wait_s']:.4f}s"
            )

    res = [ev["data"] for ev in events if ev.get("type") == "resource.sample"]
    if res:
        rss = [r.get("rss_bytes", 0) for r in res]
        last = res[-1]
        rows.append(
            f"resource samples: {len(res)}, rss last="
            f"{rss[-1] / 2**20:.1f} MiB peak={max(rss) / 2**20:.1f} MiB "
            f"growth={(rss[-1] - rss[0]) / 2**20:+.1f} MiB, "
            f"gc collections={last.get('gc_collections', 0)} "
            f"pauses={last.get('gc_pause_s_total', 0.0):.4f}s"
        )

    gauges: dict[str, float] = {}
    for ev in events:
        if ev.get("type") == "metric" and ev.get("kind") == "gauge":
            gauges[ev["name"]] = ev["value"]
    if gauges:
        rows.append("last gauge values:")
        for name in sorted(gauges):
            rows.append(f"  {name:<24} {gauges[name]:g}")

    manifests = [ev["data"] for ev in events if ev.get("type") == "manifest"]
    for m in manifests:
        rows.append(f"run manifest: {m.get('name', '?')}")
        cfg = m.get("config", {})
        if cfg:
            rows.append(
                "  config: "
                + " ".join(f"{k}={cfg[k]}" for k in sorted(cfg))
            )
    return rows
