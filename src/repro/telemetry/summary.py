"""Trace analysis: compact summaries and human-readable tables.

Works on any list of trace events — live from a :class:`MemorySink`,
or re-read from a JSONL trace file via :func:`repro.telemetry.read_trace`.
Two consumers:

* :func:`trace_summary` — the machine-readable block the experiment
  runner embeds as ``_meta.trace`` in every saved figure JSON;
* :func:`render_summary` — the per-round mechanism table (flagged
  workers, reward Gini, share entropy) plus the phase-time breakdown
  that the ``python -m repro.telemetry summarize`` CLI prints.
"""

from __future__ import annotations

from .core import SCHEMA_VERSION, format_profile

__all__ = ["trace_summary", "render_summary", "aggregate_spans"]

#: event type emitted once per round by the FIFL mechanism
ROUND_EVENT = "fifl.round"


def aggregate_spans(events: list[dict]) -> dict:
    """Fold span events into a flat ``{name: {"seconds", "calls"}}`` table."""
    timings: dict[str, dict] = {}
    for ev in events:
        if ev.get("type") != "span":
            continue
        slot = timings.setdefault(ev["name"], {"seconds": 0.0, "calls": 0})
        slot["seconds"] += ev.get("dur_s", 0.0)
        slot["calls"] += 1
    return timings


def _round_events(events: list[dict]) -> list[dict]:
    return [ev["data"] for ev in events if ev.get("type") == ROUND_EVENT]


def trace_summary(events: list[dict]) -> dict:
    """Machine-readable digest of one event stream.

    Includes the schema version, event/span/round counts, total flagged
    workers across rounds, the mean per-round reward Gini and share
    entropy, and the aggregated span-timing table.
    """
    rounds = _round_events(events)
    ginis = [r["reward_gini"] for r in rounds if r.get("reward_gini") is not None]
    entropies = [
        r["share_entropy"] for r in rounds if r.get("share_entropy") is not None
    ]
    manifests = [ev["data"] for ev in events if ev.get("type") == "manifest"]
    return {
        "schema_version": SCHEMA_VERSION,
        "events": len(events),
        "rounds": len(rounds),
        "flagged_total": sum(len(r.get("flagged", [])) for r in rounds),
        "uncertain_total": sum(len(r.get("uncertain", [])) for r in rounds),
        "reward_gini_mean": sum(ginis) / len(ginis) if ginis else None,
        "share_entropy_mean": (
            sum(entropies) / len(entropies) if entropies else None
        ),
        "manifests": [m.get("name") for m in manifests],
        "spans": aggregate_spans(events),
    }


def _fmt_ids(ids: list) -> str:
    return ",".join(str(i) for i in ids) if ids else "-"


def render_summary(
    events: list[dict], max_rounds: int = 20
) -> list[str]:
    """Printable report: header, per-round mechanism table, phase times.

    ``max_rounds`` bounds the per-round table to the trailing rounds
    (0 = unlimited); the header always reports the full totals.
    """
    summary = trace_summary(events)
    rounds = _round_events(events)
    rows = [
        f"trace summary (schema v{summary['schema_version']}): "
        f"{summary['events']} events, {summary['rounds']} rounds, "
        f"{summary['flagged_total']} flagged-worker rounds"
    ]

    if rounds:
        shown = rounds if not max_rounds else rounds[-max_rounds:]
        if len(shown) < len(rounds):
            rows.append(
                f"  (per-round table: last {len(shown)} of {len(rounds)} rounds)"
            )
        rows.append(
            f"{'round':>7} {'accepted':>9} {'flagged':>12} {'uncertain':>10} "
            f"{'reward_gini':>12} {'share_entropy':>14}"
        )
        for r in shown:
            gini = r.get("reward_gini")
            ent = r.get("share_entropy")
            rows.append(
                f"{r.get('round', '?'):>7} {r.get('accepted', 0):>9} "
                f"{_fmt_ids(r.get('flagged', [])):>12} "
                f"{_fmt_ids(r.get('uncertain', [])):>10} "
                f"{(f'{gini:.4f}' if gini is not None else '-'):>12} "
                f"{(f'{ent:.4f}' if ent is not None else '-'):>14}"
            )

    timings = summary["spans"]
    if timings:
        rows.append("phase time breakdown:")
        rows.extend(format_profile({"timings": timings}))

    gauges: dict[str, float] = {}
    for ev in events:
        if ev.get("type") == "metric" and ev.get("kind") == "gauge":
            gauges[ev["name"]] = ev["value"]
    if gauges:
        rows.append("last gauge values:")
        for name in sorted(gauges):
            rows.append(f"  {name:<24} {gauges[name]:g}")

    manifests = [ev["data"] for ev in events if ev.get("type") == "manifest"]
    for m in manifests:
        rows.append(f"run manifest: {m.get('name', '?')}")
        cfg = m.get("config", {})
        if cfg:
            rows.append(
                "  config: "
                + " ".join(f"{k}={cfg[k]}" for k in sorted(cfg))
            )
    return rows
