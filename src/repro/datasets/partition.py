"""Partition a dataset across federated workers.

Three schemes cover everything in the paper's evaluation:

* :func:`iid_partition` — uniform random split (Figures 7-14 use this);
* :func:`sized_partition` — explicit per-worker sample counts (the market
  experiments draw counts ~ U[1, 10000]);
* :func:`dirichlet_partition` — label-skewed non-iid split, used by the
  ablations to show detection tolerates non-iid deviation (S 4.1 discusses
  that attacker deviation must exceed non-iid deviation).
"""

from __future__ import annotations

import numpy as np

from .synth import Dataset

__all__ = ["iid_partition", "sized_partition", "dirichlet_partition"]


def iid_partition(data: Dataset, num_workers: int, seed: int = 0) -> list[Dataset]:
    """Split uniformly at random into ``num_workers`` near-equal shards."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if len(data) < num_workers:
        raise ValueError(f"{len(data)} samples cannot cover {num_workers} workers")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(data))
    return [data.subset(chunk) for chunk in np.array_split(order, num_workers)]


def sized_partition(
    data: Dataset, sizes: list[int] | np.ndarray, seed: int = 0, replace: bool = True
) -> list[Dataset]:
    """Give worker ``i`` exactly ``sizes[i]`` samples.

    With ``replace=True`` (default) workers draw independently with
    replacement, so the total may exceed ``len(data)`` — this mirrors the
    paper's market setup where each worker "owns" an amount of data
    unrelated to a global pool. With ``replace=False`` the sizes must sum
    to at most ``len(data)`` and shards are disjoint.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise ValueError("sizes must be a non-empty 1-D sequence")
    if (sizes <= 0).any():
        raise ValueError("all sizes must be positive")
    rng = np.random.default_rng(seed)
    if replace:
        return [
            data.subset(rng.integers(0, len(data), size=int(s))) for s in sizes
        ]
    if sizes.sum() > len(data):
        raise ValueError(
            f"disjoint partition needs {sizes.sum()} samples, have {len(data)}"
        )
    order = rng.permutation(len(data))
    shards, offset = [], 0
    for s in sizes:
        shards.append(data.subset(order[offset : offset + int(s)]))
        offset += int(s)
    return shards


def dirichlet_partition(
    data: Dataset, num_workers: int, alpha: float = 0.5, seed: int = 0
) -> list[Dataset]:
    """Label-skewed split: class proportions per worker ~ Dirichlet(alpha).

    Smaller ``alpha`` -> more skew. Every worker is guaranteed at least one
    sample (spillover from the largest shard if needed).
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if len(data) < num_workers:
        raise ValueError(f"{len(data)} samples cannot cover {num_workers} workers")
    rng = np.random.default_rng(seed)
    worker_indices: list[list[int]] = [[] for _ in range(num_workers)]
    for c in range(data.num_classes):
        idx = np.flatnonzero(data.y == c)
        if idx.size == 0:
            continue
        rng.shuffle(idx)
        props = rng.dirichlet(np.full(num_workers, alpha))
        # Cumulative proportions -> split points over this class's samples.
        cuts = (np.cumsum(props)[:-1] * idx.size).astype(int)
        for w, chunk in enumerate(np.split(idx, cuts)):
            worker_indices[w].extend(chunk.tolist())
    # Guarantee non-empty shards by stealing from the largest.
    for w in range(num_workers):
        if not worker_indices[w]:
            donor = max(range(num_workers), key=lambda k: len(worker_indices[k]))
            worker_indices[w].append(worker_indices[donor].pop())
    return [data.subset(np.array(sorted(ix))) for ix in worker_indices]
