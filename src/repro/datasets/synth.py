"""Seeded synthetic datasets standing in for MNIST and CIFAR10.

The paper's experiments need only three properties from a dataset: it is
learnable by a small network, it can be partitioned across workers, and
label corruption degrades gradients in proportion to the corruption rate.
Class-prototype Gaussian data provides all three: each class ``c`` has a
fixed prototype tensor; samples are ``signal * prototype + noise``. The
Bayes-optimal accuracy is controlled by the signal-to-noise ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Dataset",
    "make_blobs",
    "make_mnist_like",
    "make_cifar10_like",
    "train_test_split",
]


@dataclass
class Dataset:
    """A supervised dataset: features ``x``, integer labels ``y``."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"x has {self.x.shape[0]} rows but y has {self.y.shape[0]}"
            )
        if self.num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if self.y.size and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise ValueError("labels out of range")

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """New dataset restricted to ``indices`` (copies)."""
        indices = np.asarray(indices)
        return Dataset(
            self.x[indices].copy(), self.y[indices].copy(), self.num_classes, self.name
        )

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield ``(x, y)`` minibatches; shuffled when an rng is given."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            sel = order[start : start + batch_size]
            yield self.x[sel], self.y[sel]


def _prototype_dataset(
    n_samples: int,
    shape: tuple[int, ...],
    num_classes: int,
    signal: float,
    noise: float,
    seed: int,
    name: str,
) -> Dataset:
    """Balanced class-prototype Gaussian dataset with given sample shape."""
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = np.random.default_rng(seed)
    protos = rng.normal(size=(num_classes, *shape))
    y = rng.integers(0, num_classes, size=n_samples)
    x = signal * protos[y] + noise * rng.normal(size=(n_samples, *shape))
    return Dataset(x, y, num_classes, name)


def make_blobs(
    n_samples: int = 500,
    n_features: int = 10,
    num_classes: int = 3,
    signal: float = 2.0,
    noise: float = 1.0,
    seed: int = 0,
) -> Dataset:
    """Low-dimensional Gaussian-blob classification data (fast unit tests)."""
    return _prototype_dataset(
        n_samples, (n_features,), num_classes, signal, noise, seed, "blobs"
    )


def make_mnist_like(
    n_samples: int = 2000,
    num_classes: int = 10,
    image_size: int = 28,
    signal: float = 1.5,
    noise: float = 1.0,
    seed: int = 0,
) -> Dataset:
    """MNIST stand-in: grayscale ``(1, image_size, image_size)`` images.

    Matches MNIST's interface (10 balanced classes, 1x28x28 float input)
    with controllable difficulty; used wherever the paper uses MNIST.
    """
    return _prototype_dataset(
        n_samples,
        (1, image_size, image_size),
        num_classes,
        signal,
        noise,
        seed,
        "mnist_like",
    )


def make_cifar10_like(
    n_samples: int = 2000,
    num_classes: int = 10,
    image_size: int = 32,
    signal: float = 1.0,
    noise: float = 1.2,
    seed: int = 0,
) -> Dataset:
    """CIFAR10 stand-in: ``(3, image_size, image_size)`` images.

    Lower signal-to-noise than :func:`make_mnist_like`, mirroring CIFAR10
    being the harder of the paper's two tasks.
    """
    return _prototype_dataset(
        n_samples,
        (3, image_size, image_size),
        num_classes,
        signal,
        noise,
        seed,
        "cifar10_like",
    )


def train_test_split(
    data: Dataset, test_fraction: float = 0.2, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Shuffle and split into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(data))
    n_test = max(1, int(round(len(data) * test_fraction)))
    if n_test >= len(data):
        raise ValueError("split leaves no training data")
    return data.subset(order[n_test:]), data.subset(order[:n_test])
