"""Synthetic datasets, federated partitioners, and label poisoning."""

from .partition import dirichlet_partition, iid_partition, sized_partition
from .poisoning import flip_labels, poison_dataset
from .synth import (
    Dataset,
    make_blobs,
    make_cifar10_like,
    make_mnist_like,
    train_test_split,
)

__all__ = [
    "Dataset",
    "make_blobs",
    "make_mnist_like",
    "make_cifar10_like",
    "train_test_split",
    "iid_partition",
    "sized_partition",
    "dirichlet_partition",
    "flip_labels",
    "poison_dataset",
]
