"""Label poisoning utilities for data-poison attackers (paper S5.1).

A data-poison worker trains on a dataset in which a fraction ``p_d`` of
labels are wrong; ``p_d`` is the paper's "degree of unreliability".
"""

from __future__ import annotations

import numpy as np

from .synth import Dataset

__all__ = ["flip_labels", "poison_dataset"]


def flip_labels(
    y: np.ndarray,
    p_d: float,
    num_classes: int,
    rng: np.random.Generator,
    systematic: bool = False,
) -> np.ndarray:
    """Return a copy of ``y`` with a ``p_d`` fraction of labels wrong.

    Exactly ``round(p_d * len(y))`` entries are re-labelled, so the
    realized error rate equals the requested one (no accidental no-op
    flips). Two flip modes:

    * random (default) — each flipped label moves to a uniformly random
      *incorrect* class, modelling noisy/unreliable labelling;
    * ``systematic=True`` — every flipped label moves to the next class
      ``(y + 1) mod C``, modelling a *targeted* label-flipping attack
      (class A consistently relabelled as class B), whose gradient
      deviation is directional rather than cancelling.
    """
    if not 0.0 <= p_d <= 1.0:
        raise ValueError(f"p_d must be in [0, 1], got {p_d}")
    if num_classes < 2:
        raise ValueError("need at least 2 classes to mislabel")
    y = np.asarray(y, dtype=np.int64).copy()
    n_flip = int(round(p_d * y.size))
    if n_flip == 0:
        return y
    idx = rng.choice(y.size, size=n_flip, replace=False)
    if systematic:
        offsets = np.ones(n_flip, dtype=np.int64)
    else:
        # random offset in [1, num_classes) mod C: always incorrect
        offsets = rng.integers(1, num_classes, size=n_flip)
    y[idx] = (y[idx] + offsets) % num_classes
    return y


def poison_dataset(
    data: Dataset,
    p_d: float,
    rng: np.random.Generator,
    systematic: bool = False,
) -> Dataset:
    """Dataset copy whose labels are flipped at rate ``p_d``."""
    return Dataset(
        data.x.copy(),
        flip_labels(data.y, p_d, data.num_classes, rng, systematic=systematic),
        data.num_classes,
        f"{data.name}[poison p_d={p_d}]",
    )
