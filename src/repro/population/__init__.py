"""Cross-device scale: lazy worker populations, cohort sampling, sharding.

The population layer is what takes the federation from "every worker is
a live object" (cross-silo, N ≲ 10^3) to "10^6 registered ids, O(cohort)
per-round cost" (cross-device):

* :class:`WorkerPopulation` — derived per-worker state (spec, seeds,
  availability, churn) + an LRU cache of materialized workers;
* :class:`ReputationStore` — chunked out-of-core reputation ledger that
  round decisions write back into;
* :class:`CohortSampler` implementations — seeded, restart-deterministic
  uniform / reputation-weighted / availability-aware cohort selection;
* shard streaming helpers for the batched round kernels.
"""

from .population import WorkerPopulation
from .sampler import (
    SAMPLER_NAMES,
    AvailabilityAwareSampler,
    CohortSampler,
    ReputationWeightedSampler,
    UniformSampler,
    make_sampler,
    reputation_weighted_reference,
)
from .sharding import SharedGradientBuffer, allocate_gradient_matrix, iter_row_shards
from .store import ReputationStore

__all__ = [
    "WorkerPopulation",
    "ReputationStore",
    "CohortSampler",
    "UniformSampler",
    "ReputationWeightedSampler",
    "AvailabilityAwareSampler",
    "reputation_weighted_reference",
    "make_sampler",
    "SAMPLER_NAMES",
    "iter_row_shards",
    "SharedGradientBuffer",
    "allocate_gradient_matrix",
]
