"""Lazy million-worker registry: per-worker state without per-worker objects.

A cross-device federation registers up to 10^6 workers but trains only a
cohort per round. :class:`WorkerPopulation` therefore stores *recipes*,
not objects: a worker's spec (attack role + parameters), data-partition
seed, RNG seed and availability are all **derived** from its id through
pure functions, so registration costs O(1) memory per worker and the
only per-worker state ever allocated belongs to workers that were
actually sampled (an LRU cache of live :class:`~repro.fl.Worker`
objects, plus saved RNG streams for evicted ones and the chunked
:class:`~repro.population.ReputationStore`).

State ownership (see DESIGN §13):

* population owns: specs/seeds (derived), availability + churn schedule,
  the reputation store, saved RNG states of evicted workers;
* a live cohort owns: materialized ``Worker`` objects (model replica,
  dataset shard, RNG) — recreated deterministically on demand;
* the trainer owns: the global model, the network, the round loop.

Determinism contract: materialize → evict → re-materialize yields a
worker whose future RNG draws are identical to one that stayed alive
(``bit_generator.state`` round-trips through the eviction), so cohort
sampling never perturbs training randomness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Mapping

import numpy as np

from ..datasets import Dataset
from ..fl.workers import Worker, WorkerSpec, make_worker
from .store import ReputationStore

__all__ = ["WorkerPopulation"]

_SALT_AVAILABILITY = 0xA1B2
_CHURN_ACTIONS = ("leave", "join")

#: offset folded into per-worker RNG seeds; matches the long-standing
#: experiment convention ``seed + 1000 + worker_id``
SEED_OFFSET = 1000


class _MappingSpecFn:
    """Spec lookup over a ``{worker_id: WorkerSpec}`` mapping.

    A module-level class (not a lambda) so populations built from a
    mapping survive pickling — snapshots and subprocess transfer both
    need the whole population to round-trip through ``pickle``.
    """

    def __init__(self, overrides: Mapping[int, WorkerSpec]):
        self.overrides = dict(overrides)
        self.default = WorkerSpec()

    def __call__(self, worker_id: int) -> WorkerSpec:
        return self.overrides.get(worker_id, self.default)


class WorkerPopulation:
    """Registry of ``size`` workers with O(touched) materialized state."""

    def __init__(
        self,
        size: int,
        *,
        data_fn: Callable[[int], Dataset] | None = None,
        model_fn: Callable[[], object] | None = None,
        spec_fn: Callable[[int], WorkerSpec] | Mapping[int, WorkerSpec] | None = None,
        seed: int = 0,
        worker_kwargs: dict | None = None,
        availability: float = 1.0,
        churn: tuple[tuple[int, int, str], ...] = (),
        cache_size: int = 512,
        initial_reputation: float = 0.0,
        reputation_path: str | None = None,
        reputation_chunk: int = 4096,
    ):
        if size <= 0:
            raise ValueError("population size must be positive")
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        for entry in churn:
            rnd, wid, action = entry
            if rnd < 0 or not 0 <= wid < size:
                raise ValueError(f"bad churn entry {entry!r}")
            if action not in _CHURN_ACTIONS:
                raise ValueError(
                    f"churn action must be one of {_CHURN_ACTIONS}, got {action!r}"
                )
        self.size = int(size)
        self.seed = int(seed)
        self._data_fn = data_fn
        self._model_fn = model_fn
        if spec_fn is None:
            self._spec_fn = None
        elif callable(spec_fn):
            self._spec_fn = spec_fn
        else:
            self._spec_fn = _MappingSpecFn(spec_fn)
        self._worker_kwargs = dict(worker_kwargs or {})
        self.availability = float(availability)
        self.churn = tuple(churn)
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[int, Worker] = OrderedDict()
        self._pinned = False  # from_workers: never evict the seed roster
        self._rng_states: dict[int, dict] = {}
        self._seen: set[int] = set()
        self._left: set[int] = set()
        self._churn_applied_through = -1
        self._store: ReputationStore | None = None
        self._initial_reputation = float(initial_reputation)
        self._reputation_path = reputation_path
        self._reputation_chunk = int(reputation_chunk)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_workers(cls, workers: list[Worker], **kwargs) -> "WorkerPopulation":
        """Adapter for the legacy ``workers=[...]`` trainer surface.

        The roster is pinned in the cache (never evicted, no data/model
        recipes needed), so a full-population cohort reuses the exact
        objects a legacy trainer would have held.
        """
        if not workers:
            raise ValueError("need at least one worker")
        ids = sorted(w.worker_id for w in workers)
        if ids != list(range(len(workers))):
            raise ValueError("worker ids must be exactly 0..N-1")
        pop = cls(len(workers), cache_size=len(workers), **kwargs)
        for w in sorted(workers, key=lambda w: w.worker_id):
            pop._cache[w.worker_id] = w
        pop._pinned = True
        return pop

    # -- derived per-worker state ----------------------------------------------

    def spec(self, worker_id: int) -> WorkerSpec:
        """The declarative recipe for one worker (default honest)."""
        self._check_id(worker_id)
        if self._spec_fn is None:
            return WorkerSpec()
        return self._spec_fn(worker_id)

    def seed_for(self, worker_id: int) -> int:
        """The worker's private RNG seed (derived, never stored)."""
        return self.seed + SEED_OFFSET + worker_id

    def _check_id(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.size:
            raise IndexError(f"worker id {worker_id} outside [0, {self.size})")

    # -- availability / churn --------------------------------------------------

    def begin_round(self, round_idx: int) -> None:
        """Apply the churn schedule up to and including ``round_idx``."""
        if round_idx <= self._churn_applied_through:
            return
        for rnd, wid, action in self.churn:
            if self._churn_applied_through < rnd <= round_idx:
                if action == "leave":
                    self._left.add(wid)
                else:
                    self._left.discard(wid)
        self._churn_applied_through = round_idx

    def is_live(self, worker_id: int) -> bool:
        """False once the worker churned out (until it rejoins)."""
        return worker_id not in self._left

    def is_available(self, worker_id: int, round_idx: int) -> bool:
        """Live *and* checked-in this round (seeded per-(round, id) draw).

        The draw depends only on ``(population seed, round, id)`` — not
        on query order — so samplers may probe candidates in any order
        without perturbing each other.
        """
        self._check_id(worker_id)
        if worker_id in self._left:
            return False
        if self.availability >= 1.0:
            return True
        rng = np.random.default_rng(
            (_SALT_AVAILABILITY, self.seed, round_idx, worker_id)
        )
        return bool(rng.random() < self.availability)

    @property
    def offline_count(self) -> int:
        return len(self._left)

    # -- materialization -------------------------------------------------------

    def materialize(self, worker_id: int) -> Worker:
        """The live ``Worker`` for one id, building (or reviving) it."""
        self._check_id(worker_id)
        worker = self._cache.get(worker_id)
        if worker is not None:
            self._cache.move_to_end(worker_id)
            return worker
        if self._data_fn is None or self._model_fn is None:
            raise RuntimeError(
                f"worker {worker_id} is not cached and the population has "
                f"no data_fn/model_fn recipes to rebuild it"
            )
        worker = make_worker(
            self.spec(worker_id),
            worker_id,
            self._data_fn(worker_id),
            self._model_fn,
            seed=self.seed_for(worker_id),
            **self._worker_kwargs,
        )
        state = self._rng_states.pop(worker_id, None)
        if state is not None:
            # Revive the evicted worker's RNG stream mid-sequence so its
            # future draws match a worker that was never evicted.
            worker.rng.bit_generator.state = state
        self._cache[worker_id] = worker
        return worker

    def checkout(self, ids, round_idx: int | None = None) -> list[Worker]:
        """Materialize a cohort (ascending id order) and mark it seen.

        The cache is trimmed back to ``max(cache_size, len(ids))``
        afterwards, saving evicted workers' RNG states — peak live-worker
        memory is O(cohort), not O(ever-sampled).
        """
        ids = sorted(int(w) for w in ids)
        workers = [self.materialize(wid) for wid in ids]
        self._seen.update(ids)
        if not self._pinned:
            limit = max(self.cache_size, len(ids))
            while len(self._cache) > limit:
                wid, worker = self._cache.popitem(last=False)
                self._rng_states[wid] = worker.rng.bit_generator.state
        return workers

    @property
    def cached_count(self) -> int:
        return len(self._cache)

    # -- round-decision state --------------------------------------------------

    @property
    def reputation_store(self) -> ReputationStore:
        """The out-of-core reputation ledger (allocated on first use)."""
        if self._store is None:
            self._store = ReputationStore(
                self.size,
                initial=self._initial_reputation,
                chunk_size=self._reputation_chunk,
                path=self._reputation_path,
            )
        return self._store

    def write_reputations(self, reputations: dict[int, float]) -> int:
        """Write one round's reputation verdicts back into the store."""
        return self.reputation_store.write_round(reputations)

    # -- introspection ---------------------------------------------------------

    @property
    def seen_count(self) -> int:
        """Distinct workers ever sampled into a cohort."""
        return len(self._seen)

    def coverage(self) -> float:
        """Fraction of the registered population ever sampled."""
        return len(self._seen) / self.size
