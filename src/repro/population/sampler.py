"""Seeded cohort samplers over a :class:`~repro.population.WorkerPopulation`.

Every sampler is *stateless between rounds*: each round's randomness is
derived from ``(salt, sampler_seed, round_idx)`` with
``np.random.default_rng``, so the cohort id sequence is identical across
process restarts — resuming a federation at round ``t`` re-draws exactly
the cohort a fresh process would (see
``tests/population/test_sampler_determinism.py``, which replays in a
subprocess).

Memory contract: sampling ``k`` ids from a population of ``n`` costs
O(k) (uniform, availability-aware; rejection sampling with a dense
fallback when ``k`` approaches ``n``) or O(chunk + k)
(reputation-weighted; Efraimidis–Spirakis exponential keys streamed
chunk-by-chunk from the :class:`~repro.population.ReputationStore` with
a running top-k) — never O(n) for small cohorts.

``required`` ids (the server cluster — they produce the detection
benchmarks) are always included and never count against availability.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "CohortSampler",
    "UniformSampler",
    "ReputationWeightedSampler",
    "AvailabilityAwareSampler",
    "reputation_weighted_reference",
    "make_sampler",
    "SAMPLER_NAMES",
]

# Domain-separation salts: each sampler family derives its per-round rng
# from a distinct stream so sharing one seed across samplers is safe.
_SALT_UNIFORM = 0x5A17
_SALT_WEIGHTED = 0x4E57
_SALT_AVAILABLE = 0xAB1E


def _round_rng(salt: int, seed: int, round_idx: int, *extra: int):
    return np.random.default_rng((salt, seed, round_idx, *extra))


@runtime_checkable
class CohortSampler(Protocol):
    """Protocol every cohort sampler implements."""

    def sample(
        self,
        round_idx: int,
        population,
        cohort_size: int,
        required: tuple[int, ...] = (),
    ) -> np.ndarray:
        """Sorted unique worker ids for one round (includes ``required``)."""
        ...


def _required_array(required, size: int) -> np.ndarray:
    req = np.unique(np.asarray(list(required), dtype=np.int64))
    if req.size and (req[0] < 0 or req[-1] >= size):
        raise ValueError(f"required id outside [0, {size})")
    return req


def _draw_without_replacement(
    rng: np.random.Generator, n: int, k: int, exclude: np.ndarray
) -> np.ndarray:
    """``k`` distinct ids from ``[0, n)`` minus ``exclude``, O(k) memory.

    Rejection sampling keeps memory at O(k) for the cross-device regime
    (k << n); when k is a large fraction of n the rejection rate blows
    up, so a dense permutation fallback (O(n), but then k ~ n anyway)
    takes over.
    """
    avail = n - exclude.size
    if k > avail:
        raise ValueError(f"cannot draw {k} distinct ids from {avail}")
    if k * 2 >= avail:
        pool = np.setdiff1d(rng.permutation(n), exclude, assume_unique=False)
        return pool[:k]
    seen = set(int(e) for e in exclude)
    chosen: list[int] = []
    while len(chosen) < k:
        for v in rng.integers(0, n, size=2 * (k - len(chosen)) + 8).tolist():
            if v not in seen:
                seen.add(v)
                chosen.append(v)
                if len(chosen) == k:
                    break
    return np.asarray(chosen, dtype=np.int64)


def _with_required(req: np.ndarray, extras: np.ndarray) -> np.ndarray:
    return np.sort(np.concatenate([req, extras.astype(np.int64)]))


class UniformSampler:
    """Uniform without replacement; the cross-device default."""

    name = "uniform"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def sample(self, round_idx, population, cohort_size, required=()):
        n = population.size
        req = _required_array(required, n)
        if cohort_size < 0:
            raise ValueError("cohort_size must be non-negative")
        k = min(cohort_size, n) - req.size
        if k <= 0:
            return req
        if req.size + k >= n:
            return np.arange(n, dtype=np.int64)
        rng = _round_rng(_SALT_UNIFORM, self.seed, round_idx)
        extras = _draw_without_replacement(rng, n, k, exclude=req)
        return _with_required(req, extras)


class ReputationWeightedSampler:
    """Weight ~ ``floor + max(reputation, 0)`` via Efraimidis–Spirakis keys.

    Sampling without replacement with per-item weights: each item gets
    key ``u ** (1/w)`` (u uniform) and the top-k keys win. Keys are
    computed chunk-by-chunk over the population's reputation store with
    a running top-k, so the full weight vector never materializes. The
    per-chunk rng is derived from ``(seed, round_idx, chunk_start)``,
    which is what makes the scalar reference
    (:func:`reputation_weighted_reference`) replay the identical draws.
    """

    name = "reputation"

    def __init__(self, seed: int = 0, floor: float = 0.05):
        if floor <= 0:
            raise ValueError("floor must be positive (weights must be > 0)")
        self.seed = int(seed)
        self.floor = float(floor)

    def _chunk_keys(self, round_idx: int, start: int, reps: np.ndarray):
        rng = _round_rng(_SALT_WEIGHTED, self.seed, round_idx, start)
        u = rng.random(reps.size)
        w = self.floor + np.maximum(np.asarray(reps, dtype=np.float64), 0.0)
        return u ** (1.0 / w)

    def sample(self, round_idx, population, cohort_size, required=()):
        n = population.size
        req = _required_array(required, n)
        if cohort_size < 0:
            raise ValueError("cohort_size must be non-negative")
        k = min(cohort_size, n) - req.size
        if k <= 0:
            return req
        store = population.reputation_store
        best_ids = np.empty(0, dtype=np.int64)
        best_keys = np.empty(0)
        for start, reps in store.iter_chunks():
            keys = self._chunk_keys(round_idx, start, reps)
            ids = np.arange(start, start + reps.size, dtype=np.int64)
            if req.size:
                keep = ~np.isin(ids, req)
                ids, keys = ids[keep], keys[keep]
            all_ids = np.concatenate([best_ids, ids])
            all_keys = np.concatenate([best_keys, keys])
            # top-k by (key desc, id asc) — the id tiebreak keeps the
            # selection deterministic even on (improbable) equal keys
            order = np.lexsort((all_ids, -all_keys))[:k]
            best_ids, best_keys = all_ids[order], all_keys[order]
        return _with_required(req, best_ids)


def reputation_weighted_reference(
    seed: int,
    round_idx: int,
    population,
    cohort_size: int,
    required=(),
    floor: float = 0.05,
) -> np.ndarray:
    """Per-worker Python-loop reference for the weighted sampler.

    Replays the identical per-chunk uniform draws, computes every key
    with scalar ``math``-level arithmetic, and sorts the full key list —
    O(n) memory, kept only as the differential oracle for the streamed
    top-k implementation.
    """
    n = population.size
    req = _required_array(required, n)
    k = min(cohort_size, n) - req.size
    if k <= 0:
        return req
    req_set = set(int(r) for r in req)
    keyed: list[tuple[float, int]] = []
    for start, reps in population.reputation_store.iter_chunks():
        rng = _round_rng(_SALT_WEIGHTED, seed, round_idx, start)
        u = rng.random(len(reps))
        for i in range(len(reps)):
            wid = start + i
            if wid in req_set:
                continue
            w = floor + max(float(reps[i]), 0.0)
            keyed.append((float(u[i]) ** (1.0 / w), wid))
    keyed.sort(key=lambda kv: (-kv[0], kv[1]))
    extras = np.asarray([wid for _, wid in keyed[:k]], dtype=np.int64)
    return _with_required(req, extras)


class AvailabilityAwareSampler:
    """Uniform over the ids *available* this round (device check-in model).

    Rejection-samples candidate ids and keeps those the population
    reports available (online per its churn schedule and per-round
    availability draw). Attempts are capped, so a mostly-offline
    population yields a short cohort rather than a livelock — the
    trainer records an explicit skipped round when nobody is left.
    """

    name = "available"

    def __init__(self, seed: int = 0, max_attempt_factor: int = 64):
        if max_attempt_factor <= 0:
            raise ValueError("max_attempt_factor must be positive")
        self.seed = int(seed)
        self.max_attempt_factor = int(max_attempt_factor)

    def sample(self, round_idx, population, cohort_size, required=()):
        n = population.size
        req = _required_array(required, n)
        if cohort_size < 0:
            raise ValueError("cohort_size must be non-negative")
        k = min(cohort_size, n) - req.size
        if k <= 0:
            return req
        rng = _round_rng(_SALT_AVAILABLE, self.seed, round_idx)
        seen = set(int(r) for r in req)
        chosen: list[int] = []
        budget = self.max_attempt_factor * k + 256
        while len(chosen) < k and budget > 0:
            draws = rng.integers(0, n, size=min(budget, 2 * (k - len(chosen)) + 8))
            budget -= draws.size
            for v in draws.tolist():
                if v in seen:
                    continue
                seen.add(v)
                if population.is_available(v, round_idx):
                    chosen.append(v)
                    if len(chosen) == k:
                        break
        return _with_required(req, np.asarray(chosen, dtype=np.int64))


SAMPLER_NAMES = ("uniform", "reputation", "available")


def make_sampler(name: str, seed: int = 0, **kwargs) -> CohortSampler:
    """Construct a sampler by registry name."""
    if name == "uniform":
        return UniformSampler(seed=seed, **kwargs)
    if name == "reputation":
        return ReputationWeightedSampler(seed=seed, **kwargs)
    if name == "available":
        return AvailabilityAwareSampler(seed=seed, **kwargs)
    raise ValueError(
        f"unknown sampler {name!r}; available: {', '.join(SAMPLER_NAMES)}"
    )
