"""Worker-shard streaming utilities for the batched round kernels.

The round engine's ``(N, D)`` gradient matrix and the fleet trainer's
stacked parameter blocks both grow linearly with the cohort. These
helpers let every row-wise kernel stream over bounded *worker shards*
instead:

* :func:`iter_row_shards` — chunked ``[start, stop)`` row windows (the
  kernels in :mod:`repro.core.detection` / :mod:`repro.core.contribution`
  are pure per-row reductions, so sharding is exact);
* :class:`SharedGradientBuffer` — an optional
  ``multiprocessing.shared_memory`` backing for the stacked gradient
  matrix, so a future multi-process backend can map the same round
  batch zero-copy. Creation falls back to a plain array when the
  platform denies shared memory (some sandboxes do), keeping the
  single-process path dependency-free.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "iter_row_shards",
    "balanced_shards",
    "SharedGradientBuffer",
    "allocate_gradient_matrix",
]


def iter_row_shards(num_rows: int, shard_size: int | None):
    """Yield ``(start, stop)`` row windows of at most ``shard_size`` rows.

    ``shard_size=None`` (or >= num_rows) yields the single full window,
    which is how the unsharded fast path stays literally the same code.
    """
    if num_rows < 0:
        raise ValueError("num_rows must be non-negative")
    if shard_size is not None and shard_size <= 0:
        raise ValueError("shard_size must be positive (or None)")
    if num_rows == 0:
        return
    if shard_size is None or shard_size >= num_rows:
        yield 0, num_rows
        return
    for start in range(0, num_rows, shard_size):
        yield start, min(start + shard_size, num_rows)


def balanced_shards(num_rows: int, num_shards: int) -> list[tuple[int, int]]:
    """Split ``num_rows`` into at most ``num_shards`` near-equal windows.

    The parallel backends use this to cut one dispatch into one task per
    pool slot: sizes differ by at most one row, empty windows are never
    emitted, and the windows tile ``[0, num_rows)`` in order — so a
    shard-order concatenation reproduces the unsharded result exactly.
    """
    if num_rows < 0:
        raise ValueError("num_rows must be non-negative")
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    num_shards = min(num_shards, num_rows)
    shards = []
    start = 0
    for i in range(num_shards):
        size = num_rows // num_shards + (1 if i < num_rows % num_shards else 0)
        shards.append((start, start + size))
        start += size
    return shards


class SharedGradientBuffer:
    """A ``(rows, dim)`` float64 matrix, optionally in shared memory."""

    def __init__(self, rows: int, dim: int, shared: bool = False):
        if rows <= 0 or dim <= 0:
            raise ValueError("rows and dim must be positive")
        self.rows, self.dim = int(rows), int(dim)
        self._shm = None
        if shared:
            try:
                from multiprocessing import shared_memory

                self._shm = shared_memory.SharedMemory(
                    create=True, size=rows * dim * 8
                )
                self.array = np.ndarray(
                    (rows, dim), dtype=np.float64, buffer=self._shm.buf
                )
            except (ImportError, OSError):
                self._shm = None
        if self._shm is None:
            self.array = np.empty((rows, dim), dtype=np.float64)

    @property
    def is_shared(self) -> bool:
        return self._shm is not None

    @property
    def name(self) -> str | None:
        """Shared-memory segment name for cross-process attach (or None)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Release the shared segment (no-op for the plain-array fallback)."""
        if self._shm is not None:
            # Drop the mapping before unlinking; the array keeps the
            # buffer alive otherwise and unlink would leak on some OSes.
            self.array = self.array.copy()
            self._shm.close()
            self._shm.unlink()
            self._shm = None

    def __enter__(self) -> "SharedGradientBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def allocate_gradient_matrix(
    rows: int, dim: int, shared: bool = False
) -> tuple[np.ndarray, SharedGradientBuffer | None]:
    """The round batch's backing store: plain array or shared segment."""
    if not shared:
        return np.empty((rows, dim), dtype=np.float64), None
    buf = SharedGradientBuffer(rows, dim, shared=True)
    return buf.array, buf
