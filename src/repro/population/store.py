"""Out-of-core reputation/ledger state keyed by worker id.

A million-worker federation cannot keep a Python ``dict[int, float]`` of
reputations hot in every component — and it must not pay O(population)
per round when only a cohort's reputations change. :class:`ReputationStore`
is the population-scale answer: a chunked dense array where chunks are
allocated on first touch (untouched spans of the id space cost nothing),
with an optional ``numpy`` memmap backing for runs whose state should
live on disk and survive the process.

Round decisions write back through :meth:`write_round`; samplers stream
the full population through :meth:`iter_chunks` at O(chunk) peak memory
(untouched chunks yield one shared read-only default block).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReputationStore"]


class ReputationStore:
    """Chunk-sparse dense float store over ids ``0..size-1``."""

    def __init__(
        self,
        size: int,
        initial: float = 0.0,
        chunk_size: int = 4096,
        path: str | None = None,
    ):
        if size <= 0:
            raise ValueError("size must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.size = int(size)
        self.initial = float(initial)
        self.chunk_size = int(chunk_size)
        self._chunks: dict[int, np.ndarray] = {}
        self._dense: np.ndarray | None = None
        if path is not None:
            # Out-of-core mode: one memmapped vector, paged by the OS.
            self._dense = np.lib.format.open_memmap(
                path, mode="w+", dtype=np.float64, shape=(self.size,)
            )
            self._dense[:] = self.initial
        # One shared default block for untouched chunks in iter_chunks.
        self._default_chunk = np.full(self.chunk_size, self.initial)
        self._default_chunk.flags.writeable = False

    def __len__(self) -> int:
        return self.size

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.size):
            raise IndexError(f"worker id outside [0, {self.size})")
        return ids

    def _chunk(self, cidx: int, create: bool) -> np.ndarray | None:
        chunk = self._chunks.get(cidx)
        if chunk is None and create:
            length = min(self.chunk_size, self.size - cidx * self.chunk_size)
            chunk = np.full(length, self.initial)
            self._chunks[cidx] = chunk
        return chunk

    # -- point/batch access ----------------------------------------------------

    def get(self, worker_id: int) -> float:
        return float(self.get_many(np.asarray([worker_id]))[0])

    def get_many(self, ids) -> np.ndarray:
        """Values for ``ids`` (any order, duplicates allowed)."""
        ids = self._check_ids(ids)
        if self._dense is not None:
            return np.asarray(self._dense[ids], dtype=np.float64)
        out = np.full(ids.size, self.initial)
        cidxs = ids // self.chunk_size
        for cidx in np.unique(cidxs):
            chunk = self._chunks.get(int(cidx))
            if chunk is None:
                continue
            sel = cidxs == cidx
            out[sel] = chunk[ids[sel] - cidx * self.chunk_size]
        return out

    def set(self, worker_id: int, value: float) -> None:
        self.set_many(np.asarray([worker_id]), np.asarray([value]))

    def set_many(self, ids, values) -> None:
        ids = self._check_ids(ids)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != ids.shape:
            raise ValueError("ids and values must align")
        if self._dense is not None:
            self._dense[ids] = values
            return
        cidxs = ids // self.chunk_size
        for cidx in np.unique(cidxs):
            sel = cidxs == cidx
            chunk = self._chunk(int(cidx), create=True)
            chunk[ids[sel] - cidx * self.chunk_size] = values[sel]

    def write_round(self, reputations: dict[int, float]) -> int:
        """Fold one round's ``{worker_id: reputation}`` verdicts in.

        Returns the number of entries written; O(cohort), not O(size).
        """
        if not reputations:
            return 0
        ids = np.fromiter(reputations.keys(), np.int64, len(reputations))
        vals = np.fromiter(reputations.values(), np.float64, len(reputations))
        self.set_many(ids, vals)
        return ids.size

    # -- streaming -------------------------------------------------------------

    def iter_chunks(self):
        """Yield ``(start_id, values)`` blocks covering the full id space.

        Untouched chunks yield a shared read-only default-filled block, so
        a full sweep allocates O(chunk_size) — the contract the weighted
        cohort samplers rely on.
        """
        for cidx in range(0, -(-self.size // self.chunk_size)):
            start = cidx * self.chunk_size
            length = min(self.chunk_size, self.size - start)
            if self._dense is not None:
                yield start, self._dense[start : start + length]
                continue
            chunk = self._chunks.get(cidx)
            if chunk is None:
                chunk = (
                    self._default_chunk
                    if length == self.chunk_size
                    else self._default_chunk[:length]
                )
            yield start, chunk

    # -- introspection ---------------------------------------------------------

    @property
    def touched_chunks(self) -> int:
        if self._dense is not None:
            return -(-self.size // self.chunk_size)
        return len(self._chunks)

    @property
    def nbytes(self) -> int:
        """Resident bytes of backed state (memmap counts its full extent)."""
        if self._dense is not None:
            return int(self._dense.nbytes)
        return sum(c.nbytes for c in self._chunks.values())

    def as_dict(self) -> dict[int, float]:
        """All ids living in touched chunks (tests / small populations)."""
        out: dict[int, float] = {}
        if self._dense is not None:
            return {i: float(v) for i, v in enumerate(self._dense)}
        for cidx, chunk in sorted(self._chunks.items()):
            start = cidx * self.chunk_size
            for i, v in enumerate(chunk):
                out[start + i] = float(v)
        return out
