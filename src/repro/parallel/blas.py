"""BLAS/OMP thread-count guard: stop library-level oversubscription.

NumPy's BLAS (OpenBLAS here) keeps its own thread pool. When the
execution backend shards a GEMM-heavy phase across Python threads or
processes, every shard's BLAS call would otherwise fan out over *all*
cores — ``pool_size x blas_threads`` runnable threads on ``cores``
cores, which thrashes caches and routinely makes "parallel" slower than
serial. :func:`blas_limits` pins the BLAS pool for the duration of a
block::

    with blas_limits(1):          # one BLAS thread per worker
        backend.run(tasks)

Resolution order (best effort, degrading gracefully):

1. ``threadpoolctl`` when importable — controls every loaded pool
   (OpenBLAS, MKL, OpenMP) properly;
2. the OpenBLAS control symbols of NumPy's own bundled library, found
   via :mod:`ctypes` (covers the scipy-openblas wheels where
   ``threadpoolctl`` is absent);
3. the ``*_NUM_THREADS`` environment variables — only effective for
   libraries loaded (or processes spawned) afterwards, which is exactly
   the process-pool case that needs the guard most.

All three paths restore the previous state on exit, and the context
manager is a silent no-op when nothing can be controlled — a guard, not
a dependency.
"""

from __future__ import annotations

import ctypes
import glob
import os
from contextlib import contextmanager

__all__ = ["blas_limits", "blas_thread_count"]

#: env vars the fallback path pins (the usual suspects across BLAS builds)
_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: (get, set) symbol-name pairs probed on candidate BLAS shared objects
_SYMBOL_PAIRS = (
    ("openblas_get_num_threads", "openblas_set_num_threads"),
    ("openblas_get_num_threads64_", "openblas_set_num_threads64_"),
    ("scipy_openblas_get_num_threads64_", "scipy_openblas_set_num_threads64_"),
)

_PROBED = False
_GETTER = None
_SETTER = None


def _probe_openblas() -> None:
    """Locate get/set thread-count symbols in the loaded BLAS (once)."""
    global _PROBED, _GETTER, _SETTER
    if _PROBED:
        return
    _PROBED = True
    candidates: list[str | None] = [None]  # the process's global symbols
    try:
        import numpy as np

        np_dir = os.path.dirname(np.__file__)
        for pattern in (
            os.path.join(np_dir, os.pardir, "numpy.libs", "*openblas*.so*"),
            os.path.join(np_dir, ".libs", "*openblas*.so*"),
            os.path.join(np_dir, ".dylibs", "*openblas*.dylib"),
        ):
            candidates.extend(sorted(glob.glob(pattern)))
    except Exception:  # pragma: no cover - numpy always importable here
        pass
    for cand in candidates:
        try:
            lib = ctypes.CDLL(cand)
        except OSError:
            continue
        for get_name, set_name in _SYMBOL_PAIRS:
            getter = getattr(lib, get_name, None)
            setter = getattr(lib, set_name, None)
            if getter is not None and setter is not None:
                getter.restype = ctypes.c_int
                setter.argtypes = [ctypes.c_int]
                _GETTER, _SETTER = getter, setter
                return


def blas_thread_count() -> int | None:
    """Current BLAS pool size, or ``None`` when it cannot be read."""
    try:
        import threadpoolctl

        for pool in threadpoolctl.threadpool_info():
            if pool.get("user_api") == "blas":
                return int(pool["num_threads"])
    except ImportError:
        pass
    _probe_openblas()
    if _GETTER is not None:
        return int(_GETTER())
    return None


@contextmanager
def blas_limits(limit: int | None = 1):
    """Pin BLAS/OMP pools to ``limit`` threads inside the block.

    ``limit=None`` is an explicit no-op (convenient for call sites that
    make the guard conditional). The previous pool size / environment is
    restored on exit, including on exceptions.
    """
    if limit is not None and limit <= 0:
        raise ValueError("limit must be positive (or None)")
    if limit is None:
        yield
        return

    # 1) threadpoolctl: the real thing, when available.
    try:
        import threadpoolctl
    except ImportError:
        threadpoolctl = None
    if threadpoolctl is not None:
        with threadpoolctl.threadpool_limits(limits=limit):
            yield
        return

    # 2) direct OpenBLAS control on NumPy's bundled library.
    _probe_openblas()
    if _SETTER is not None:
        previous = int(_GETTER()) if _GETTER is not None else None
        _SETTER(int(limit))
        try:
            yield
        finally:
            if previous is not None and previous > 0:
                _SETTER(previous)
        return

    # 3) env-var fallback: affects libraries/processes started afterwards.
    saved = {name: os.environ.get(name) for name in _ENV_VARS}
    for name in _ENV_VARS:
        os.environ[name] = str(limit)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
