"""Process-pool side of the parallel fleet engine (picklable, stateless API).

The fleet local-SGD step is the textbook case for a process pool: pure
GEMM chains over read-only inputs. What must NOT cross the process
boundary every round is the bulky read-only state — the architecture
template and every shard worker's private dataset. This module implements
the lazy-replication protocol the parent
(:class:`repro.fl.fleet_compute.FleetLocalEngine`) drives:

* the parent ships :class:`FleetShardState` **once** per (shard, slot) —
  the deterministic task→slot assignment of
  :class:`~repro.parallel.backend.ProcessBackend` makes "which slot
  already has it" a pure parent-side bookkeeping fact;
* every round thereafter ships only the global parameter vector, the
  minibatch index plan and (optionally) a shared-memory write window;
* the child stacks the template into a cached
  :class:`~repro.nn.fleet.FleetSequential`, replays the local steps, and
  writes the resulting ``(n, D)`` gradient block either **zero-copy into
  the parent's** :class:`~repro.population.sharding.SharedGradientBuffer`
  segment or (shm-denied sandboxes) back over the pipe.

RNG fidelity: the child never touches a worker RNG. The parent draws
every minibatch index from each worker's own generator — the exact calls
the serial paths make — and ships the plan, so worker streams stay
byte-identical no matter where the GEMMs ran, and attacker draws in
``finalize_update`` (parent-side) line up draw-for-draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.fleet import FleetSequential, FleetSoftmaxCrossEntropy

__all__ = ["FleetShardState", "fleet_shard_task", "evict_shard_state"]


@dataclass
class FleetShardState:
    """Read-only per-shard state, replicated to a slot process once."""

    template: object  # Sequential architecture template (picklable)
    xs: list  # per-worker feature arrays, shard order
    ys: list  # per-worker label arrays, shard order
    lrs: np.ndarray  # (n,) float64 per-worker learning rates
    batch: int
    local_iters: int


class _CachedShard:
    """Child-side materialization of one :class:`FleetShardState`."""

    def __init__(self, state: FleetShardState):
        self.fleet = FleetSequential(state.template, len(state.xs))
        self.loss_fn = FleetSoftmaxCrossEntropy()
        self.xs = state.xs
        self.ys = state.ys
        self.lrs = np.asarray(state.lrs, dtype=np.float64)
        self.batch = int(state.batch)
        self.local_iters = int(state.local_iters)


#: per-process shard-state cache, keyed by the parent's state key
_STATE: dict = {}
#: per-process shm attachments, keyed by segment name
_SHM: dict = {}


def _attach_shm(name: str, rows: int, dim: int) -> np.ndarray:
    entry = _SHM.get(name)
    if entry is None:
        from multiprocessing import resource_tracker, shared_memory

        # The parent owns the segment's lifetime (it created it and will
        # unlink it); an attach must not also register it with a resource
        # tracker, or the attacher's tracker "cleans up" a segment the
        # owner already unlinked and warns at exit. CPython < 3.13
        # registers unconditionally on attach, so suppress it here
        # (3.13+ has SharedMemory(..., track=False) for exactly this).
        register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register
        array = np.ndarray((rows, dim), dtype=np.float64, buffer=shm.buf)
        _SHM[name] = entry = (shm, array)
    return entry[1]


def evict_shard_state(keys=(), shm_names=()) -> int:
    """Drop cached shard state / shm attachments (regroup housekeeping)."""
    dropped = 0
    for key in keys:
        if _STATE.pop(key, None) is not None:
            dropped += 1
    for name in shm_names:
        entry = _SHM.pop(name, None)
        if entry is not None:
            entry[0].close()
            dropped += 1
    return dropped


def fleet_shard_task(
    key,
    state: FleetShardState | None,
    theta: np.ndarray,
    global_buffers: np.ndarray | None,
    indices: np.ndarray,
    shm_spec: tuple | None,
):
    """Run one shard's fleet local steps; return ``(grads|None, buffers)``.

    ``indices`` is the parent-drawn ``(local_iters, n, b)`` minibatch
    plan. With ``shm_spec=(name, rows, dim, row_start)`` the gradient
    block is written into the shared segment and ``grads`` comes back
    ``None``; otherwise the block returns over the pipe.

    The arithmetic is line-for-line the serial
    ``FleetLocalEngine._run_group`` body, which is what makes the
    process backend bit-identical to serial: sharding commutes with every
    per-worker kernel (PR 6's property), and this task adds no other op.
    """
    if state is not None:
        _STATE[key] = _CachedShard(state)
    cached = _STATE.get(key)
    if cached is None:
        raise RuntimeError(
            f"fleet shard state {key!r} not replicated to this slot "
            f"(task/slot assignment drifted?)"
        )
    fleet, loss_fn = cached.fleet, cached.loss_fn
    n, b = len(cached.xs), cached.batch
    fleet.load_flat_params(theta)
    if (
        global_buffers is not None
        and global_buffers.size
        and fleet.num_buffer_values
    ):
        fleet.load_flat_buffers(global_buffers)
    feat = cached.xs[0].shape[1:]
    xb = np.empty((n, b) + feat)
    yb = np.empty((n, b), dtype=np.int64)
    for it in range(cached.local_iters):
        for i in range(n):
            idx = indices[it, i]
            xb[i] = cached.xs[i][idx]
            yb[i] = cached.ys[i][idx]
        logits = fleet.forward(xb, training=True)
        loss_fn(logits, yb)
        fleet.backward(loss_fn.backward())
        fleet.sgd_step(cached.lrs)
    grads = (theta[None, :] - fleet.get_flat_params()) / cached.lrs[:, None]
    bufs = fleet.get_flat_buffers() if fleet.num_buffer_values else None
    if shm_spec is not None:
        name, rows, dim, row_start = shm_spec
        block = _attach_shm(name, rows, dim)
        block[row_start : row_start + n] = grads
        return None, bufs
    return grads, bufs
