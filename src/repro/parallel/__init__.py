"""Parallel execution backend: multi-core fleet GEMMs and sharded kernels.

FIFL's per-round pipeline is embarrassingly parallel across workers —
fleet local SGD stacks N private models into one batched kernel, and the
detection/contribution/reward kernels are pure per-row reductions. This
package adds the execution layer that spreads those row shards across
cores behind one switch::

    FederatedTrainer(..., backend="thread", max_workers=4)
    FedExpConfig(backend="process")

* :mod:`repro.parallel.backend` — ``serial`` (the differential oracle),
  ``thread`` (persistent pool; the big NumPy kernels release the GIL) and
  ``process`` (dedicated slot processes with lazily-replicated read-only
  state and shared-memory gradient writes) behind
  :func:`make_backend`, all with ordered-reduce semantics so results are
  byte-identical to serial regardless of shard completion order.
* :mod:`repro.parallel.blas` — :func:`blas_limits`, the BLAS/OMP
  thread-count guard against ``pool x blas`` oversubscription.
* :mod:`repro.parallel.fleet_tasks` — the picklable process-pool side of
  the fleet engine.

Telemetry: every parallel dispatch emits ``parallel.*`` metrics and one
``parallel.round`` event (pool size, shard count, per-shard wall time,
queue wait); the monitor's ``shard-straggler`` rule watches those for
shards stalling far beyond their siblings.
"""

from .backend import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ShardCrash,
    ThreadBackend,
    auto_workers,
    backend_summary,
    emit_parallel_telemetry,
    make_backend,
)
from .blas import blas_limits, blas_thread_count
from .fleet_tasks import FleetShardState, evict_shard_state, fleet_shard_task

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ShardCrash",
    "auto_workers",
    "backend_summary",
    "emit_parallel_telemetry",
    "make_backend",
    "blas_limits",
    "blas_thread_count",
    "FleetShardState",
    "fleet_shard_task",
    "evict_shard_state",
]
