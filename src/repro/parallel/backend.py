"""Execution backends: one API over serial, thread-pool and process-pool.

The hot paths this package shards (fleet local SGD, the round engine's
detection/contribution kernels) are per-worker-row computations, so the
orchestration they need is deliberately small:

    backend = make_backend("thread", max_workers=4)
    results = backend.run([(fn, args, kwargs), ...])   # task-order results

The contract every backend honours:

* **Ordered reduce** — ``run`` returns results in *task order* no matter
  which shard finishes first, so a caller that concatenates them gets
  byte-identical output to the serial loop.
* **Original tracebacks** — a task that raises surfaces the original
  exception (thread/serial re-raise the object itself; the process pool
  wraps the child's formatted traceback in :class:`ShardCrash`, so the
  real stack is in the error text, not swallowed by pickling).
* **Per-task stats** — after each ``run``, ``last_stats`` holds one
  ``{"queue_wait_s", "run_s"}`` dict per task (monotonic-clock seconds),
  which the callers fold into ``parallel.*`` telemetry.

Backends are persistent: thread and process pools are created once and
reused across rounds. The process pool uses *dedicated slot processes*
with deterministic task→slot assignment (``task_index % pool_size``)
instead of a shared task queue — that is what makes per-slot state
caching (lazily replicated read-only model/batch state, see
:mod:`repro.parallel.fleet_tasks`) reliable: the parent always knows
which slot has which state. Slot children pin their BLAS pool to one
thread on startup (:func:`repro.parallel.blas.blas_limits`), the guard
against ``pool_size x blas_threads`` oversubscription.
"""

from __future__ import annotations

import os
import time
import traceback
import weakref
from concurrent.futures import ThreadPoolExecutor

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ShardCrash",
    "auto_workers",
    "backend_summary",
    "make_backend",
]

BACKENDS = ("serial", "thread", "process")


class ShardCrash(RuntimeError):
    """A shard task died in a pool worker; carries the original traceback."""

    def __init__(self, message: str, original_traceback: str = ""):
        self.original_traceback = original_traceback
        detail = f"\n--- original traceback ---\n{original_traceback}" if (
            original_traceback
        ) else ""
        super().__init__(message + detail)


def auto_workers() -> int:
    """Usable core count: CPU affinity mask when set, else cpu_count."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _normalize_task(task):
    """Accept ``(fn, args)`` or ``(fn, args, kwargs)``."""
    if len(task) == 2:
        fn, args = task
        return fn, args, {}
    fn, args, kwargs = task
    return fn, args, kwargs or {}


class ExecutionBackend:
    """Common surface; concrete backends implement ``_execute``."""

    name: str = "?"
    pool_size: int = 1

    def __init__(self) -> None:
        #: per-task ``{"queue_wait_s", "run_s"}`` dicts for the last run
        self.last_stats: list[dict] = []

    def run(self, tasks) -> list:
        """Execute ``tasks`` (``(fn, args[, kwargs])`` tuples), in order."""
        tasks = [_normalize_task(t) for t in tasks]
        if not tasks:
            self.last_stats = []
            return []
        return self._execute(tasks)

    def map(self, fn, args_list) -> list:
        """Convenience: one function over many positional-arg tuples."""
        return self.run([(fn, args) for args in args_list])

    def _execute(self, tasks) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent; no-op for serial)."""


class SerialBackend(ExecutionBackend):
    """Run every task inline — the differential oracle for the pools."""

    name = "serial"
    pool_size = 1

    def _execute(self, tasks) -> list:
        results = []
        stats = []
        for fn, args, kwargs in tasks:
            t0 = time.monotonic()
            results.append(fn(*args, **kwargs))
            stats.append({"queue_wait_s": 0.0, "run_s": time.monotonic() - t0})
        self.last_stats = stats
        return results


class ThreadBackend(ExecutionBackend):
    """Persistent thread pool; cheap because the big NumPy kernels
    (batched matmul, ufuncs, reductions) release the GIL."""

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        super().__init__()
        self.pool_size = int(max_workers) if max_workers else auto_workers()
        if self.pool_size <= 0:
            raise ValueError("max_workers must be positive")
        self._pool = ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="repro-shard"
        )
        self._closed = False

    def _execute(self, tasks) -> list:
        submit_t = time.monotonic()

        def timed(fn, args, kwargs):
            start = time.monotonic()
            result = fn(*args, **kwargs)
            return result, start, time.monotonic()

        futures = [
            self._pool.submit(timed, fn, args, kwargs)
            for fn, args, kwargs in tasks
        ]
        results = []
        stats = []
        # .result() re-raises the task's original exception object with
        # its original traceback chained — nothing to wrap.
        for fut in futures:
            result, start, end = fut.result()
            results.append(result)
            stats.append(
                {"queue_wait_s": max(0.0, start - submit_t), "run_s": end - start}
            )
        self.last_stats = stats
        return results

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=False, cancel_futures=True)


def _slot_main(conn) -> None:  # pragma: no cover - runs in child processes
    """Slot-process loop: recv (fn, args, kwargs), send (ok, result, t0, t1).

    Entered via fork or spawn; pins the child's BLAS pool to one thread
    for its whole lifetime — each slot is one core's worth of work.
    """
    from .blas import blas_limits

    with blas_limits(1):
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            except BaseException:
                # Unpicklable/undecodable task: report instead of dying,
                # so the parent gets the real traceback in a ShardCrash.
                now = time.monotonic()
                conn.send(("err", traceback.format_exc(), now, now))
                continue
            if msg is None:
                break
            fn, args, kwargs = msg
            start = time.monotonic()
            try:
                result = fn(*args, **kwargs)
                conn.send(("ok", result, start, time.monotonic()))
            except BaseException:
                conn.send(("err", traceback.format_exc(), start, time.monotonic()))
    conn.close()


class ProcessBackend(ExecutionBackend):
    """Dedicated slot processes with deterministic task→slot assignment.

    Task ``i`` always runs on slot ``i % pool_size``; each slot executes
    its tasks FIFO over a private pipe. Determinism of *results* never
    depends on this (the ordered reduce re-sorts), but determinism of
    *state placement* does: the fleet path caches read-only model/batch
    state per slot, and a fixed assignment is what lets the parent track
    which slot already holds which state without a handshake.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, start_method: str | None = None):
        super().__init__()
        import multiprocessing as mp

        self.pool_size = int(max_workers) if max_workers else auto_workers()
        if self.pool_size <= 0:
            raise ValueError("max_workers must be positive")
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(start_method)
        # Start the resource tracker before forking the slots: children
        # then inherit the parent's tracker instead of each spawning
        # their own (a child-owned tracker would warn at exit about
        # shared-memory segments the parent legitimately unlinked).
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker unavailable
            pass
        self.start_method = start_method
        self._conns = []
        self._procs = []
        self._closed = False
        for _ in range(self.pool_size):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_slot_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        # Daemon children die with the interpreter, but close cleanly on
        # normal exit / gc so pipes and shm attachments unwind in order
        # (weakref.finalize self-registers with atexit).
        self._finalizer = weakref.finalize(self, _close_pool, self._conns, self._procs)

    def slot_for(self, index: int) -> int:
        """The slot process task ``index`` will run on (stable contract)."""
        return index % self.pool_size

    def _execute(self, tasks) -> list:
        if self._closed:
            raise RuntimeError("backend is closed")
        submit_t = time.monotonic()
        per_slot: list[list[int]] = [[] for _ in range(self.pool_size)]
        for i, (fn, args, kwargs) in enumerate(tasks):
            slot = self.slot_for(i)
            per_slot[slot].append(i)
            self._conns[slot].send((fn, args, kwargs))
        results: list = [None] * len(tasks)
        stats: list = [None] * len(tasks)
        failure: ShardCrash | None = None
        for slot, indices in enumerate(per_slot):
            for i in indices:
                try:
                    status, payload, start, end = self._conns[slot].recv()
                except (EOFError, OSError) as exc:
                    raise ShardCrash(
                        f"slot process {slot} died while running shard task {i} "
                        f"(exitcode={self._procs[slot].exitcode})"
                    ) from exc
                if status == "err" and failure is None:
                    failure = ShardCrash(
                        f"shard task {i} raised in slot process {slot}", payload
                    )
                results[i] = payload if status == "ok" else None
                stats[i] = {
                    "queue_wait_s": max(0.0, start - submit_t),
                    "run_s": end - start,
                }
        self.last_stats = stats
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._finalizer()


def _close_pool(conns, procs) -> None:
    """Module-level so the weakref finalizer holds no backend reference."""
    for conn in conns:
        try:
            conn.send(None)
        except (OSError, BrokenPipeError):
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck child
            proc.terminate()
    for conn in conns:
        conn.close()


#: wall-time histogram edges for parallel.shard_seconds (log-ish, seconds)
_SHARD_SECONDS_EDGES = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0
)


def emit_parallel_telemetry(profiler, phase: str, backend: ExecutionBackend) -> None:
    """Fold one parallel dispatch's stats into the telemetry stream.

    Emits the ``parallel.*`` gauges/counters plus a ``parallel.round``
    event carrying per-shard wall time and queue wait — the stream the
    monitor's ``shard-straggler`` rule watches. Called from the
    coordinating thread only (never from inside shard tasks), so the
    hub's single-writer discipline holds.
    """
    stats = backend.last_stats
    if profiler is None or not getattr(profiler, "enabled", True) or not stats:
        return
    shard_s = [s["run_s"] for s in stats]
    queue_s = [s["queue_wait_s"] for s in stats]
    profiler.gauge("parallel.pool_size", backend.pool_size)
    profiler.count("parallel.dispatches")
    profiler.count("parallel.shards", len(stats))
    profiler.register_histogram("parallel.shard_seconds", _SHARD_SECONDS_EDGES)
    profiler.observe_many("parallel.shard_seconds", shard_s)
    ordered = sorted(shard_s)
    mid = len(ordered) // 2
    median = (
        ordered[mid]
        if len(ordered) % 2
        else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    profiler.event(
        "parallel.round",
        {
            "phase": phase,
            "backend": backend.name,
            "pool_size": backend.pool_size,
            "shards": len(stats),
            "shard_s": shard_s,
            "queue_wait_s": queue_s,
            "max_shard_s": max(shard_s),
            "median_shard_s": median,
        },
    )


def backend_summary(backend: ExecutionBackend | None) -> dict | None:
    """Plain-JSON snapshot of a backend for crash context / postmortems.

    Folds ``last_stats`` down to totals so the block stays one line in a
    dump header no matter how many shards the last dispatch had.
    """
    if backend is None:
        return None
    stats = backend.last_stats
    last = None
    if stats:
        run_s = [s["run_s"] for s in stats]
        last = {
            "tasks": len(stats),
            "run_s_total": float(sum(run_s)),
            "queue_wait_s_total": float(
                sum(s["queue_wait_s"] for s in stats)
            ),
            "max_run_s": float(max(run_s)),
        }
    return {
        "backend": backend.name,
        "pool_size": backend.pool_size,
        "last_dispatch": last,
    }


def make_backend(
    backend: str | ExecutionBackend = "serial",
    max_workers: int | None = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through unchanged)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if max_workers is not None and max_workers <= 0:
        raise ValueError("max_workers must be positive (or None for auto)")
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(max_workers)
    if backend == "process":
        return ProcessBackend(max_workers)
    raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
