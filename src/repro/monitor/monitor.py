"""The live monitor: a telemetry sink wrapping the rule engine.

:class:`Monitor` subscribes to a :class:`~repro.telemetry.Telemetry`
hub like any other sink. Each materialized event is recorded into the
flight-recorder ring and run through the :class:`RuleEngine`; alerts
accumulate on :attr:`Monitor.alerts` (a separate stream — the monitor
never emits back into the hub, so attaching it cannot change a trace's
bytes). The first alert triggers a post-mortem dump when a dump
directory is configured; in strict mode it also raises
:class:`MonitorError` out of the flush boundary that materialized the
offending event.

``scan_events`` is the offline entry point: the same engine replayed
over a decoded trace, used by ``python -m repro.monitor scan`` and the
offline/online differential tests.
"""

from __future__ import annotations

from typing import Iterable

from .alerts import Alert, MonitorConfig, MonitorError
from .recorder import FlightRecorder
from .rules import RuleEngine

__all__ = ["Monitor", "scan_events"]


class Monitor:
    """Streaming health monitor (telemetry sink)."""

    def __init__(self, config: MonitorConfig | None = None):
        self.config = config if config is not None else MonitorConfig()
        self.engine = RuleEngine(self.config)
        self.recorder = FlightRecorder(
            ring_size=self.config.ring_size,
            out_dir=self.config.postmortem_dir,
            run_id=self.config.run_id,
        )
        self.alerts: list[Alert] = []
        self._hub = None
        # bound-method locals: emit runs once per materialized event on
        # the flush path, so shave the attribute walks
        self._record = self.recorder.ring.append
        self._process = self.engine.process

    # -- sink protocol -----------------------------------------------------------

    def emit(self, event: dict) -> None:
        self._record(event)
        fired = self._process(event)
        if not fired:
            return
        self.alerts.extend(fired)
        self.recorder.dump("alert", self.alerts)
        if self.config.strict:
            raise MonitorError(fired)

    def close(self) -> None:
        pass

    def observe_resource(self, sample: dict) -> None:
        """Feed one :class:`~repro.perf.ResourceProbe` sample to the rules.

        Resource samples travel on a side stream — they are handed to the
        monitor directly (never emitted into the hub), so the leak and
        GC-pause watchdogs run without changing a seeded trace's bytes.
        The wrapped event lands in the flight-recorder ring like any
        other, so post-mortems show the resource history too.
        """
        self.emit({"type": "resource.sample", "data": dict(sample)})

    # -- hub wiring --------------------------------------------------------------

    def install(self, hub) -> "Monitor":
        """Attach to a telemetry hub as an additional sink."""
        if self not in hub.sinks:
            hub.sinks.append(self)
        self._hub = hub
        return self

    def uninstall(self) -> None:
        """Detach from the hub installed via :meth:`install`."""
        hub = self._hub
        if hub is not None and self in hub.sinks:
            hub.sinks.remove(self)
        self._hub = None

    # -- queries / post-mortem ---------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.alerts

    def alerts_summary(self) -> dict:
        """Aggregate block for run metadata: counts per rule + details."""
        by_rule: dict[str, int] = {}
        for a in self.alerts:
            by_rule[a.rule] = by_rule.get(a.rule, 0) + 1
        return {
            "total": len(self.alerts),
            "by_rule": dict(sorted(by_rule.items())),
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def dump_postmortem(
        self, reason: str, context: dict | None = None
    ) -> str | None:
        """Force a post-mortem dump (e.g. from a trainer crash handler).

        ``context`` is an optional caller-supplied block for the dump
        header — e.g. the execution-backend summary at crash time.
        """
        return self.recorder.dump(reason, self.alerts, context=context)


def scan_events(
    events: Iterable[dict], config: MonitorConfig | None = None
) -> list[Alert]:
    """Replay decoded trace events through a fresh rule engine."""
    engine = RuleEngine(config if config is not None else MonitorConfig())
    alerts: list[Alert] = []
    for event in events:
        alerts.extend(engine.process(event))
    return alerts
