"""Alert records and monitor configuration.

An :class:`Alert` is one structured finding of the health-monitoring
layer: a named rule, the sequence number and round of the event that
triggered it, a human-readable message, and a payload of plain JSON
types. Alerts are deliberately *not* telemetry events — they live on a
separate stream (the :class:`~repro.monitor.Monitor`'s alert list and
its post-mortem dumps), so attaching a monitor never changes the bytes
of a v1 trace.

Determinism contract: every field of every alert is a pure function of
the event stream and the :class:`MonitorConfig` — no wall-clock reads,
no randomness — so replaying a recorded trace offline through
``python -m repro.monitor scan`` reproduces the live run's alerts
exactly (see ``tests/monitor/test_monitor.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Alert", "MonitorConfig", "MonitorError"]


class MonitorError(RuntimeError):
    """Raised in strict mode when an invariant or detector fires."""

    def __init__(self, alerts: list["Alert"]):
        self.alerts = list(alerts)
        first = alerts[0] if alerts else None
        detail = f": {first.rule}: {first.message}" if first else ""
        super().__init__(f"{len(alerts)} monitor alert(s){detail}")


@dataclass(frozen=True)
class Alert:
    """One monitor finding (invariant violation or statistical anomaly)."""

    rule: str  # rule catalogue name, e.g. "budget-conservation"
    kind: str  # "invariant" | "anomaly"
    message: str
    seq: int | None = None  # seq of the triggering trace event
    round: int | None = None
    data: dict = field(default_factory=dict)  # plain JSON types only

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "message": self.message,
            "seq": self.seq,
            "round": self.round,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class MonitorConfig:
    """All watchdog tolerances and detector thresholds in one place.

    Every threshold is a fixed constant — detectors adapt their internal
    EWMA state to the stream, but the decision boundaries are config, so
    two replays of the same event stream produce identical alerts.
    """

    #: raise :class:`MonitorError` from the sink on the first alert
    strict: bool = False

    # -- invariant watchdog tolerances --------------------------------------
    #: relative slack on the reward-budget conservation law
    budget_tolerance: float = 1e-6
    #: allowed closed interval for reputations (decay mode: [0, 1])
    reputation_bounds: tuple[float, float] = (0.0, 1.0)
    #: slack on "a flagged worker's reputation must not increase"
    reputation_tolerance: float = 1e-9
    #: slack on cumulative comm counters (they are exact integers)
    comm_tolerance: float = 0.0

    # -- anomaly detectors --------------------------------------------------
    #: hard floor for the per-round minimum detection margin: a score
    #: this far below S_y is adversarial, not noise (sign-flip sits ~ -1)
    margin_floor: float = -0.5
    #: EWMA smoothing for the drift detectors (margin, reward Gini)
    ewma_alpha: float = 0.25
    #: z-score boundary for EWMA drift alerts
    z_threshold: float = 4.0
    #: observations before a drift detector may fire
    warmup_rounds: int = 5
    #: standard-deviation floor so quiet series don't amplify jitter
    min_std: float = 0.05
    #: absolute ceiling for the per-round positive-reward Gini
    gini_cap: float = 0.9
    #: deviation floor for the Gini EWMA specifically: clean runs swing
    #: the per-round Gini by several tenths (contribution-proportional
    #: rewards are noisy), so the generic ``min_std`` would alert on
    #: healthy variation
    gini_min_std: float = 0.15
    #: absolute ceiling for the *cumulative* positive-reward Gini — the
    #: run-so-far concentration FIFL's fairness claim is about. Clean
    #: runs settle well below this (per-round noise averages out of the
    #: cumulative sum); a sustained breach means rewards are pooling on
    #: a few workers
    cumulative_gini_cap: float = 0.85
    #: evaluate the cumulative-fairness scan every this-many mechanism
    #: rounds (it is a slow signal, like the reputation drift scan)
    fairness_check_stride: int = 8
    #: leave-one-out cohort z-score for per-worker cumulative
    #: reputation drift (each worker is compared against the mean/σ of
    #: the *other* workers, so one drifter in a small cohort is visible)
    drift_sigma: float = 3.0
    #: minimum absolute reputation gap below the rest-of-cohort mean
    drift_min_gap: float = 0.25
    #: evaluate the cohort drift scan every this-many accumulated rounds
    #: (cumulative drift is a slow signal; a stride keeps the per-round
    #: cost down without changing what can be detected)
    drift_check_stride: int = 8
    #: a parallel shard is a straggler when its wall time exceeds this
    #: multiple of the dispatch's median shard time...
    shard_straggler_factor: float = 4.0
    #: ...and is at least this many seconds (filters micro-dispatch noise,
    #: where scheduler jitter alone spans orders of magnitude)
    shard_straggler_min_s: float = 0.05
    #: sliding window (rounds) for the sim SLO rate
    slo_window: int = 8
    #: sim rounds observed before the SLO detector may fire
    slo_min_rounds: int = 4
    #: alert when more than this fraction of windowed rounds degraded
    slo_max_degraded_frac: float = 0.25

    # -- resource probes (repro.perf side stream) ---------------------------
    #: rss-growth leak watchdog: alert when RSS exceeds this multiple of
    #: the baseline (the minimum over the warmup samples)...
    rss_growth_factor: float = 1.5
    #: ...and has grown by at least this many bytes — allocator noise on
    #: a small process can easily double RSS without meaning anything
    rss_growth_min_bytes: int = 256 * 1024 * 1024
    #: resource samples observed before the leak watchdog may fire
    rss_warmup_samples: int = 3
    #: gc-pause SLO: alert when a sampling window's longest collector
    #: pause exceeds this many seconds
    gc_pause_slo_s: float = 0.05

    # -- round wall-time degradation (trainer.round spans) ------------------
    #: rounds/sec degradation: alert when the sliding-window median round
    #: wall time exceeds this multiple of the warmup baseline median...
    round_time_factor: float = 2.5
    #: ...and is at least this many seconds (micro-round scheduler jitter
    #: spans orders of magnitude and means nothing)
    round_time_min_s: float = 0.005
    #: rounds forming the baseline median (the warmup prefix)
    round_time_warmup: int = 8
    #: sliding-window length for the degraded median
    round_time_window: int = 8

    # -- flight recorder ----------------------------------------------------
    #: events retained in the post-mortem ring
    ring_size: int = 512
    #: directory for ``postmortem-<run>.jsonl`` dumps (None = no dumps)
    postmortem_dir: str | None = None
    #: run identifier stamped into the post-mortem file name
    run_id: str = "run"
