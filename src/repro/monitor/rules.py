"""Streaming rule engine: the invariant watchdog + anomaly detectors.

:class:`RuleEngine.process` consumes one materialized telemetry event
(v1 schema) and returns any alerts it triggers. The engine is shared
between the live :class:`~repro.monitor.Monitor` sink and the offline
``python -m repro.monitor scan`` replay, so every check tolerates the
two spellings an event can arrive in:

* live (hub → sink): numpy scalars/arrays, int dict keys, tuples;
* replayed (JSONL → ``json.loads``): floats, string dict keys, lists.

Rules therefore depend only on event *content* — never on hub counters,
wall clocks or ambient state — which is the determinism contract that
makes the offline/online differential exact. Both spellings go through
bit-identical IEEE arithmetic, so detector state evolves identically.

The fifl.round path is hot (it runs inside the trainer's per-round
flush), so it is written as single passes over the event's mappings
with running aggregates — no intermediate dict rebuilds — and the
per-worker drift statistics are maintained incrementally instead of
recomputed over the cohort every round.

Rule catalogue (names appear in ``Alert.rule``):

Invariants (``fifl.round``):
  ``worker-partition``      flagged ⊆ scored, scored ∩ uncertain = ∅,
                            accepted + flagged = scored
  ``budget-conservation``   Σ positive rewards ≤ budget and
                            Σ punishments ≥ -budget (Eq. 15 bounds)
  ``reputation-bounds``     all reputations inside the configured range
  ``flagged-reputation-monotone``  a flagged worker's reputation never
                            increases that round (Eq. 10 direction)

Invariants (``sim.round`` / ledger):
  ``comm-accounting``       cumulative delivered+dropped ≤ sent, all
                            counters non-negative and monotone
  ``ledger-chain``          every commit links to a known parent block
  ``ledger-audit``          an audit report came back unclean

Anomalies:
  ``margin-collapse``       min detection margin EWMA down-drift, or
                            below the absolute adversarial floor
                            (edge-triggered: fires on the crossing and
                            re-arms once the margin recovers)
  ``reward-gini-spike``     reward Gini EWMA up-drift or above cap
                            (cap breach is edge-triggered likewise)
  ``fairness-drift``        *cumulative* positive-reward Gini (the
                            run-so-far concentration, computed exactly
                            as ``repro.audit.fairness.cumulative_gini``)
                            above the cap or EWMA up-drifting; scanned
                            every ``fairness_check_stride`` rounds
  ``slo-degraded``          windowed fraction of degraded sim rounds
                            (late/offline) above the SLO budget
  ``shard-straggler``       one parallel shard's wall time far above its
                            siblings' median in a ``parallel.round``
                            dispatch (load imbalance / a stalled pool
                            slot), gated by an absolute time floor
  ``reputation-drift``      one worker's cumulative reputation delta
                            falls ``drift_sigma`` leave-one-out cohort-σ
                            (and an absolute gap) below the mean of the
                            *other* workers; scanned every
                            ``drift_check_stride`` rounds
  ``non-finite-metric``     a metric event carries NaN/Inf
  ``round-time-degraded``   sliding-window median ``trainer.round`` span
                            wall time above ``round_time_factor x`` the
                            warmup-prefix baseline (rounds/sec SLO;
                            edge-triggered, re-arms on recovery)

Resource probes (``resource.sample`` — the :mod:`repro.perf` side
stream, routed through the monitor directly, never through the hub):
  ``rss-growth``            RSS above ``rss_growth_factor x`` the warmup
                            baseline *and* grown by an absolute floor —
                            the leak watchdog for long-lived services
  ``gc-pause``              a sampling window's longest measured GC
                            pause above the ``gc_pause_slo_s`` SLO

Invariants (``population.cohort``):
  ``cohort-coverage``       live ≤ sampled ≤ population, all counts
                            non-negative, coverage in [0, 1] and
                            non-decreasing across rounds
"""

from __future__ import annotations

import math

import numpy as np

from ..ledger.blockchain import GENESIS_HASH
from .alerts import Alert, MonitorConfig
from .detectors import EwmaDetector, RateWindow

__all__ = ["RuleEngine"]

_NO_ALERTS: tuple = ()


class RuleEngine:
    """Stateful per-run rule evaluator (one engine per trace/run)."""

    def __init__(self, config: MonitorConfig | None = None):
        self.config = config if config is not None else MonitorConfig()
        cfg = self.config
        self._margin = EwmaDetector(
            alpha=cfg.ewma_alpha,
            z_threshold=cfg.z_threshold,
            warmup=cfg.warmup_rounds,
            min_std=cfg.min_std,
            direction="down",
        )
        self._gini = EwmaDetector(
            alpha=cfg.ewma_alpha,
            z_threshold=cfg.z_threshold,
            warmup=cfg.warmup_rounds,
            min_std=cfg.gini_min_std,
            direction="up",
        )
        self._slo = RateWindow(
            window=cfg.slo_window,
            min_count=cfg.slo_min_rounds,
            max_frac=cfg.slo_max_degraded_frac,
        )
        # cumulative reputation movement per cohort member, kept as a
        # vector aligned with the (usually stable) worker tuple so the
        # per-round update is one array add instead of a dict loop
        self._rep_workers: tuple = ()
        self._rep_raw = None  # last raw workers value, to skip renormalizing
        self._rep_cumvec = None
        self._rep_index: dict = {}
        self._rep_rounds = 0
        self._cum_gini = EwmaDetector(
            alpha=cfg.ewma_alpha,
            z_threshold=cfg.z_threshold,
            warmup=cfg.warmup_rounds,
            min_std=cfg.gini_min_std,
            direction="up",
        )
        # cumulative reward per worker, for the run-so-far fairness scan
        self._cum_reward: dict[int, float] = {}
        self._fairness_rounds = 0
        # level-alert latches: a persistently-collapsed signal fires once
        # at the crossing, not every round until it recovers
        self._margin_below = False
        self._gini_above = False
        self._cum_gini_above = False
        self._drift_fired: set[int] = set()
        # previous cumulative comm counters, for monotonicity
        self._prev_comm: dict[str, float] | None = None
        # last seen population coverage, for monotonicity
        self._prev_coverage: float | None = None
        # resource-probe state: RSS baseline over the warmup samples,
        # plus edge-trigger latches for the leak and gc-pause watchdogs
        self._rss_samples = 0
        self._rss_baseline: float | None = None
        self._rss_fired = False
        self._gc_pause_above = False
        # trainer.round wall-time state: warmup prefix -> baseline
        # median, then a bounded sliding window for the degraded median
        self._round_times: list[float] = []
        self._round_time_baseline: float | None = None
        self._round_time_fired = False
        # block hash -> index of every ledger commit seen, for linkage
        self._blocks: dict[str, int] = {GENESIS_HASH: -1}
        self._dispatch = {
            "fifl.round": self._on_fifl_round,
            "sim.round": self._on_sim_round,
            "ledger.commit": self._on_ledger_commit,
            "ledger.audit": self._on_ledger_audit,
            "population.cohort": self._on_population_cohort,
            "parallel.round": self._on_parallel_round,
            "resource.sample": self._on_resource_sample,
            "span": self._on_span,
            "metric": self._on_metric,
        }

    # -- dispatch ----------------------------------------------------------------

    def process(self, event: dict) -> list[Alert]:
        handler = self._dispatch.get(event.get("type"))
        if handler is None:
            return _NO_ALERTS  # shared empty: most events carry no rules
        return handler(event)

    # -- fifl.round --------------------------------------------------------------

    def _on_fifl_round(self, event: dict) -> list[Alert]:
        data = event.get("data") or {}
        seq = event.get("seq")
        rnd = data.get("round")
        cfg = self.config
        alerts: list[Alert] = []

        scores = data.get("scores", {})
        flagged = data.get("flagged", ())
        uncertain = data.get("uncertain", ())
        rewards = data.get("rewards", {})

        def alert(rule, kind, message, **payload):
            alerts.append(
                Alert(rule=rule, kind=kind, message=message, seq=seq,
                      round=rnd, data=payload)
            )

        # worker-partition: flagged ∪ accepted partitions the scored set,
        # and no scored worker is simultaneously an uncertain event.
        # flagged/uncertain are short lists, so membership is checked by
        # dict lookup against ``scores`` (keys are ints live, strings in
        # a replayed JSON trace — probe the spelling once).
        accepted_count = data.get("accepted")
        expect_accepted = len(scores) - len(flagged)
        # clean path: short-circuit membership checks, no list building
        ok = accepted_count is None or accepted_count == expect_accepted
        str_keys = bool(scores) and isinstance(next(iter(scores)), str)
        if ok and (flagged or uncertain):
            if scores:
                if str_keys:
                    ok = (
                        all(str(w) in scores for w in flagged)
                        and not any(str(w) in scores for w in uncertain)
                    )
                else:
                    ok = (
                        all(w in scores for w in flagged)
                        and not any(w in scores for w in uncertain)
                    )
            elif flagged:
                ok = False
        if not ok:
            if str_keys:
                bad_flagged = sorted(
                    int(w) for w in flagged if str(w) not in scores
                )
                overlap = sorted(int(w) for w in uncertain if str(w) in scores)
            else:
                bad_flagged = sorted(int(w) for w in flagged if w not in scores)
                overlap = sorted(int(w) for w in uncertain if w in scores)
            alert(
                "worker-partition", "invariant",
                f"round {rnd}: accepted/flagged/uncertain do not partition "
                f"the scored worker set",
                flagged_not_scored=bad_flagged,
                scored_and_uncertain=overlap,
                accepted=int(accepted_count) if accepted_count is not None else None,
                expected_accepted=expect_accepted,
            )

        # budget-conservation: Eq. 15 — positive shares sum to at most the
        # round budget (exactly it when every accepted worker contributes),
        # punishments are bounded by the budget in magnitude
        budget = data.get("budget")
        if budget is not None and rewards:
            budget = float(budget)
            tol = cfg.budget_tolerance * max(1.0, budget)
            pos = 0.0
            neg = 0.0
            for v in rewards.values():
                if v > 0.0:
                    pos += v
                elif v < 0.0:
                    neg += v
            if pos > budget + tol or neg < -(budget + tol):
                alert(
                    "budget-conservation", "invariant",
                    f"round {rnd}: rewards violate the budget bound "
                    f"(pos={pos:.6g}, neg={neg:.6g}, budget={budget:.6g})",
                    positive_sum=float(pos), negative_sum=float(neg),
                    budget=budget,
                )

        # reputation-bounds
        rep_min = data.get("rep_min")
        rep_max = data.get("rep_max")
        lo, hi = cfg.reputation_bounds
        rtol = cfg.reputation_tolerance
        if rep_min is not None and rep_max is not None:
            if rep_min < lo - rtol or rep_max > hi + rtol:
                alert(
                    "reputation-bounds", "invariant",
                    f"round {rnd}: reputation outside [{lo}, {hi}] "
                    f"(min={rep_min:.6g}, max={rep_max:.6g})",
                    rep_min=float(rep_min), rep_max=float(rep_max),
                    bounds=[lo, hi],
                )

        # Reputation-delta vector: one array add accumulates the cohort's
        # cumulative movement; flagged workers whose reputation *rose*
        # this round violate the Eq. 10 update direction.
        rep_delta = data.get("reputation_delta") or {}
        workers = rep_delta.get("workers", ())
        dvec = None
        if len(workers):
            dvec = np.asarray(rep_delta.get("delta", ()), dtype=np.float64)
            if workers is not self._rep_raw and workers != self._rep_raw:
                workers_t = tuple(int(w) for w in workers)
                if workers_t != self._rep_workers:
                    # cohort reshape (churn/failure): carry forward current
                    # members' movement, drop departed ones
                    old = (
                        dict(zip(self._rep_workers, self._rep_cumvec))
                        if self._rep_cumvec is not None else {}
                    )
                    self._rep_workers = workers_t
                    self._rep_cumvec = np.asarray(
                        [old.get(w, 0.0) for w in workers_t], dtype=np.float64
                    )
                    self._rep_index = {w: i for i, w in enumerate(workers_t)}
                self._rep_raw = workers
            self._rep_cumvec += dvec
            self._rep_rounds += 1
            if flagged:
                idx = self._rep_index
                grew: list[int] = []
                # flagged carries plain ints in both event spellings
                for w in flagged:
                    j = idx.get(w)
                    if j is not None and dvec[j] > rtol:
                        grew.append(int(w))
                if grew:
                    alert(
                        "flagged-reputation-monotone", "invariant",
                        f"round {rnd}: flagged worker(s) {grew} gained "
                        f"reputation",
                        workers=grew,
                        deltas={str(w): float(dvec[self._rep_index[w]])
                                for w in grew},
                    )

        # margin-collapse: absolute adversarial floor, then EWMA drift
        margin_min = data.get("margin_min")
        if margin_min is not None:
            if margin_min < cfg.margin_floor:
                if not self._margin_below:
                    self._margin_below = True
                    alert(
                        "margin-collapse", "anomaly",
                        f"round {rnd}: min detection margin {margin_min:.4f} "
                        f"below floor {cfg.margin_floor}",
                        margin_min=float(margin_min), floor=cfg.margin_floor,
                    )
            else:
                self._margin_below = False
                z = self._margin.update(margin_min)
                if z is not None:
                    alert(
                        "margin-collapse", "anomaly",
                        f"round {rnd}: min detection margin drifted down "
                        f"(z={z:.2f})",
                        margin_min=float(margin_min), z=float(z),
                    )

        # reward-gini-spike: absolute cap, then EWMA up-drift
        gini = data.get("reward_gini")
        if gini is not None:
            if gini > cfg.gini_cap:
                if not self._gini_above:
                    self._gini_above = True
                    alert(
                        "reward-gini-spike", "anomaly",
                        f"round {rnd}: reward Gini {gini:.4f} above cap "
                        f"{cfg.gini_cap}",
                        reward_gini=float(gini), cap=cfg.gini_cap,
                    )
            else:
                self._gini_above = False
                z = self._gini.update(gini)
                if z is not None:
                    alert(
                        "reward-gini-spike", "anomaly",
                        f"round {rnd}: reward Gini spiked (z={z:.2f})",
                        reward_gini=float(gini), z=float(z),
                    )

        # fairness-drift: the cumulative positive-reward Gini across the
        # whole run so far — the quantity FIFL's fairness claim is about.
        # Per-round Gini is noisy (reward-gini-spike covers spikes);
        # sustained concentration of the *cumulative* pot is the drift
        # signal. Per-worker-keyed accumulation, so live int keys and
        # replayed string keys fold to bit-identical state. Imported
        # lazily: audit pulls in the service layer, which imports this
        # package.
        if rewards:
            cum = self._cum_reward
            for w, v in rewards.items():
                k = int(w)
                cum[k] = cum.get(k, 0.0) + float(v)
            self._fairness_rounds += 1
            if (
                self._fairness_rounds >= cfg.warmup_rounds
                and self._fairness_rounds % cfg.fairness_check_stride == 0
                and len(cum) >= 2
            ):
                from ..audit.fairness import cumulative_gini

                cgini = cumulative_gini(cum)
                if cgini > cfg.cumulative_gini_cap:
                    if not self._cum_gini_above:
                        self._cum_gini_above = True
                        alert(
                            "fairness-drift", "anomaly",
                            f"round {rnd}: cumulative reward Gini "
                            f"{cgini:.4f} above cap "
                            f"{cfg.cumulative_gini_cap}",
                            cumulative_gini=float(cgini),
                            cap=cfg.cumulative_gini_cap,
                        )
                else:
                    self._cum_gini_above = False
                    z = self._cum_gini.update(cgini)
                    if z is not None:
                        alert(
                            "fairness-drift", "anomaly",
                            f"round {rnd}: cumulative reward Gini drifted "
                            f"up (z={z:.2f}, gini={cgini:.4f})",
                            cumulative_gini=float(cgini), z=float(z),
                        )

        # reputation-drift: any worker whose cumulative movement sits both
        # an absolute gap and drift_sigma leave-one-out cohort-σ below the
        # mean of the *other* workers. Leave-one-out matters: a single
        # drifter in a cohort of n can sit at most sqrt(n-1) plain-cohort
        # σ below the plain-cohort mean (it drags both estimates toward
        # itself), so small federations could never trip a whole-cohort
        # z-test. Everything is vectorized from one sum and one dot.
        cumvec = self._rep_cumvec
        if (
            cumvec is not None
            and self._rep_rounds >= cfg.warmup_rounds
            and self._rep_rounds % cfg.drift_check_stride == 0
            and cumvec.size >= 3
        ):
            n = cumvec.size
            total = float(cumvec.sum())
            sumsq = float(np.dot(cumvec, cumvec))
            mean_others = (total - cumvec) / (n - 1)
            var_others = (
                (sumsq - cumvec * cumvec) / (n - 1) - mean_others * mean_others
            )
            std_others = np.sqrt(np.maximum(var_others, 0.0))
            thr = mean_others - np.maximum(
                cfg.drift_min_gap, cfg.drift_sigma * std_others
            )
            low = np.nonzero(cumvec < thr)[0]
            if low.size:
                fired = self._drift_fired
                rep_workers = self._rep_workers
                for j in low:
                    w = rep_workers[j]
                    if w in fired:
                        continue
                    fired.add(w)
                    gap = float(mean_others[j]) - float(cumvec[j])
                    alert(
                        "reputation-drift", "anomaly",
                        f"round {rnd}: worker {w} reputation drifted "
                        f"{gap:.4f} below the rest of the cohort",
                        worker=int(w), gap=gap,
                        cohort_mean=float(mean_others[j]),
                        cohort_std=float(std_others[j]),
                    )
        return alerts

    # -- sim.round ---------------------------------------------------------------

    def _on_sim_round(self, event: dict) -> list[Alert]:
        data = event.get("data") or {}
        seq = event.get("seq")
        rnd = data.get("round")
        alerts: list[Alert] = []

        comm = data.get("comm")
        if comm is not None:
            sent = float(comm.get("messages_sent", 0))
            delivered = float(comm.get("delivered", 0))
            dropped = float(comm.get("dropped", 0))
            nbytes = float(comm.get("bytes_sent", 0))
            tol = self.config.comm_tolerance
            problems = []
            if min(sent, delivered, dropped, nbytes) < 0:
                problems.append("negative counter")
            if delivered + dropped > sent + tol:
                problems.append("delivered+dropped exceeds messages_sent")
            prev = self._prev_comm
            if prev is not None and (
                sent < prev["sent"] - tol
                or delivered < prev["delivered"] - tol
                or dropped < prev["dropped"] - tol
                or nbytes < prev["bytes"] - tol
            ):
                problems.append("cumulative counter decreased")
            self._prev_comm = {
                "sent": sent, "delivered": delivered,
                "dropped": dropped, "bytes": nbytes,
            }
            if problems:
                alerts.append(Alert(
                    rule="comm-accounting", kind="invariant",
                    message=f"round {rnd}: comm byte-accounting inconsistent "
                            f"({'; '.join(problems)})",
                    seq=seq, round=rnd,
                    data={"comm": {"messages_sent": sent,
                                   "delivered": delivered,
                                   "dropped": dropped,
                                   "bytes_sent": nbytes},
                          "problems": problems},
                ))

        degraded = bool(data.get("late")) or bool(data.get("offline"))
        frac = self._slo.update(degraded)
        if frac is not None:
            alerts.append(Alert(
                rule="slo-degraded", kind="anomaly",
                message=f"round {rnd}: {frac:.0%} of recent sim rounds "
                        f"degraded (late/offline uploads), SLO is "
                        f"{self.config.slo_max_degraded_frac:.0%}",
                seq=seq, round=rnd,
                data={"degraded_frac": frac,
                      "slo": self.config.slo_max_degraded_frac,
                      "window": self._slo.window},
            ))
        return alerts

    # -- ledger ------------------------------------------------------------------

    def _on_ledger_commit(self, event: dict) -> list[Alert]:
        data = event.get("data", {})
        index = int(data.get("index", -1))
        prev_hash = data.get("prev_hash")
        block_hash = data.get("hash")
        alerts: list[Alert] = []
        parent_index = self._blocks.get(prev_hash)
        if parent_index is None or parent_index != index - 1:
            alerts.append(Alert(
                rule="ledger-chain", kind="invariant",
                message=f"block {index}: prev_hash does not link to a "
                        f"known block at index {index - 1}",
                seq=event.get("seq"), round=data.get("round"),
                data={"index": index, "prev_hash": prev_hash,
                      "parent_index": parent_index},
            ))
        if block_hash:
            self._blocks[block_hash] = index
        return alerts

    def _on_ledger_audit(self, event: dict) -> list[Alert]:
        data = event.get("data", {})
        if data.get("clean", True):
            return []
        findings = list(data.get("findings", []))
        return [Alert(
            rule="ledger-audit", kind="invariant",
            message=f"audit of worker {data.get('worker')} unclean: "
                    f"{len(findings)} finding(s), chain_intact="
                    f"{data.get('chain_intact')}",
            seq=event.get("seq"), round=None,
            data={"worker": data.get("worker"),
                  "chain_intact": data.get("chain_intact"),
                  "findings": findings,
                  "rounds_checked": data.get("rounds_checked")},
        )]

    # -- population.cohort -------------------------------------------------------

    def _on_population_cohort(self, event: dict) -> list[Alert]:
        data = event.get("data") or {}
        rnd = data.get("round")
        pop = float(data.get("population_size", 0))
        sampled = float(data.get("sampled", 0))
        live = float(data.get("live", 0))
        coverage = data.get("coverage")
        problems: list[str] = []
        if min(pop, sampled, live) < 0:
            problems.append("negative count")
        if live > sampled:
            problems.append("live cohort exceeds sampled cohort")
        if sampled > pop:
            problems.append("sampled cohort exceeds population")
        if coverage is not None:
            coverage = float(coverage)
            if not 0.0 <= coverage <= 1.0:
                problems.append("coverage outside [0, 1]")
            prev = self._prev_coverage
            # coverage counts distinct workers ever sampled: it can only grow
            if prev is not None and coverage < prev - 1e-12:
                problems.append("coverage decreased")
            self._prev_coverage = coverage
        if not problems:
            return _NO_ALERTS
        return [Alert(
            rule="cohort-coverage", kind="invariant",
            message=f"round {rnd}: cohort accounting inconsistent "
                    f"({'; '.join(problems)})",
            seq=event.get("seq"), round=rnd,
            data={"population_size": pop, "sampled": sampled,
                  "live": live, "coverage": coverage,
                  "problems": problems},
        )]

    # -- parallel.round ----------------------------------------------------------

    def _on_parallel_round(self, event: dict) -> list[Alert]:
        """One shard running far longer than its dispatch siblings.

        Pure function of the event's own shard-time list (no cross-round
        state): a shard is a straggler when it exceeds ``factor x`` the
        dispatch median *and* an absolute floor — tiny dispatches see
        orders-of-magnitude scheduler jitter that means nothing.
        """
        data = event.get("data") or {}
        cfg = self.config
        max_s = data.get("max_shard_s")
        median_s = data.get("median_shard_s")
        if max_s is None or median_s is None:
            return _NO_ALERTS
        max_s = float(max_s)
        median_s = float(median_s)
        if max_s < cfg.shard_straggler_min_s:
            return _NO_ALERTS
        if max_s <= cfg.shard_straggler_factor * median_s:
            return _NO_ALERTS
        shard_s = [float(s) for s in data.get("shard_s", ())]
        worst = shard_s.index(max_s) if max_s in shard_s else None
        return [Alert(
            rule="shard-straggler", kind="anomaly",
            message=f"{data.get('phase')}: shard {worst} took {max_s:.3f}s, "
                    f"{max_s / median_s if median_s > 0 else float('inf'):.1f}x "
                    f"the dispatch median ({median_s:.3f}s) on backend "
                    f"{data.get('backend')!r}",
            seq=event.get("seq"), round=None,
            data={"phase": data.get("phase"),
                  "backend": data.get("backend"),
                  "pool_size": data.get("pool_size"),
                  "shard": worst,
                  "max_shard_s": max_s,
                  "median_shard_s": median_s,
                  "factor": cfg.shard_straggler_factor},
        )]

    # -- resource.sample (repro.perf side stream) --------------------------------

    def _on_resource_sample(self, event: dict) -> list[Alert]:
        """RSS leak watchdog + GC-pause SLO over probe samples.

        Samples arrive via :meth:`Monitor.observe_resource`, never via
        the hub, so these rules exist without perturbing seeded traces.
        The RSS baseline is the minimum over the first
        ``rss_warmup_samples`` samples (allocator warmup inflates early
        readings); both rules are edge-triggered latches that re-arm on
        recovery, matching the margin/gini level alerts.
        """
        data = event.get("data") or {}
        cfg = self.config
        rnd = data.get("round")
        seq = event.get("seq")
        alerts: list[Alert] = []

        rss = data.get("rss_bytes")
        if rss is not None and rss > 0:
            rss = float(rss)
            if self._rss_samples < cfg.rss_warmup_samples:
                self._rss_samples += 1
                base = self._rss_baseline
                self._rss_baseline = rss if base is None else min(base, rss)
            else:
                base = self._rss_baseline
                leaking = (
                    rss > cfg.rss_growth_factor * base
                    and rss - base > cfg.rss_growth_min_bytes
                )
                if leaking and not self._rss_fired:
                    self._rss_fired = True
                    alerts.append(Alert(
                        rule="rss-growth", kind="anomaly",
                        message=f"round {rnd}: RSS {rss / 2**20:.0f} MiB is "
                                f"{rss / base:.1f}x the warmup baseline "
                                f"({base / 2**20:.0f} MiB) — possible leak",
                        seq=seq, round=rnd,
                        data={"rss_bytes": rss, "baseline_bytes": base,
                              "factor": cfg.rss_growth_factor,
                              "min_growth_bytes": cfg.rss_growth_min_bytes},
                    ))
                elif not leaking:
                    self._rss_fired = False

        pause = data.get("gc_pause_max_s")
        if pause is not None:
            pause = float(pause)
            if pause > cfg.gc_pause_slo_s:
                if not self._gc_pause_above:
                    self._gc_pause_above = True
                    alerts.append(Alert(
                        rule="gc-pause", kind="anomaly",
                        message=f"round {rnd}: longest GC pause "
                                f"{pause * 1e3:.1f} ms exceeds the "
                                f"{cfg.gc_pause_slo_s * 1e3:.0f} ms SLO",
                        seq=seq, round=rnd,
                        data={"gc_pause_max_s": pause,
                              "slo_s": cfg.gc_pause_slo_s},
                    ))
            else:
                self._gc_pause_above = False
        return alerts if alerts else _NO_ALERTS

    # -- span --------------------------------------------------------------------

    def _on_span(self, event: dict) -> list[Alert]:
        """Rounds/sec degradation over ``trainer.round`` span wall times.

        Baseline = median of the first ``round_time_warmup`` round
        durations; alert (latched) when the sliding-window median
        exceeds ``round_time_factor x`` that baseline and the absolute
        floor. Spans carry durations, not timestamps, so this is a pure
        function of the stream — replays reproduce it exactly.
        """
        if event.get("name") != "trainer.round":
            return _NO_ALERTS
        dur = event.get("dur_s")
        if dur is None:
            return _NO_ALERTS
        cfg = self.config
        times = self._round_times
        times.append(float(dur))
        if self._round_time_baseline is None:
            if len(times) < cfg.round_time_warmup:
                return _NO_ALERTS
            self._round_time_baseline = float(np.median(times))
            del times[:]
            return _NO_ALERTS
        if len(times) > cfg.round_time_window:
            del times[0]
        if len(times) < cfg.round_time_window:
            return _NO_ALERTS
        win_med = float(np.median(times))
        base = self._round_time_baseline
        degraded = (
            win_med > cfg.round_time_factor * base
            and win_med > cfg.round_time_min_s
        )
        if not degraded:
            self._round_time_fired = False
            return _NO_ALERTS
        if self._round_time_fired:
            return _NO_ALERTS
        self._round_time_fired = True
        attrs = event.get("attrs") or {}
        return [Alert(
            rule="round-time-degraded", kind="anomaly",
            message=f"median round wall time {win_med * 1e3:.1f} ms over the "
                    f"last {cfg.round_time_window} rounds is "
                    f"{win_med / base:.1f}x the warmup baseline "
                    f"({base * 1e3:.1f} ms)",
            seq=event.get("seq"), round=attrs.get("round"),
            data={"window_median_s": win_med, "baseline_s": base,
                  "factor": cfg.round_time_factor,
                  "window": cfg.round_time_window},
        )]

    # -- metric ------------------------------------------------------------------

    def _on_metric(self, event: dict) -> list[Alert]:
        value = event.get("value")
        if value is None or math.isfinite(value):
            return _NO_ALERTS
        return [Alert(
            rule="non-finite-metric", kind="invariant",
            message=f"metric {event.get('name')!r} is non-finite",
            seq=event.get("seq"), round=None,
            data={"name": event.get("name"), "value": repr(value)},
        )]
