"""Flight recorder: bounded event ring + post-mortem dumps.

The recorder keeps the last ``ring_size`` materialized events. When an
alert fires (or the trainer raises), :meth:`FlightRecorder.dump` writes
``postmortem-<run>.jsonl``: a header line describing why the dump
happened and which alerts were active, followed by the ring contents.

Dump encoding is *tolerant*, unlike the canonical trace encoder: a
post-mortem must never fail because the very anomaly it is capturing
(say, a NaN gauge) is unencodable — such events are written with their
offending values stringified.
"""

from __future__ import annotations

import json
import os
from collections import deque

from ..telemetry.sinks import _json_default
from .alerts import Alert

__all__ = ["FlightRecorder"]


def _safe_resource_snapshot() -> dict | None:
    """Resource state for the dump header; never lets a probe failure
    prevent the post-mortem itself from being written."""
    try:
        from ..perf.resources import resource_snapshot

        return resource_snapshot()
    except Exception:
        return None


def _encode_line(obj: dict) -> str:
    """Canonical encoding, falling back to a repr-everything encoder."""
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"),
            allow_nan=False, default=_json_default,
        )
    except (TypeError, ValueError):
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"), default=repr
        )


class FlightRecorder:
    """Last-K event ring with JSONL post-mortem dumps."""

    def __init__(self, ring_size: int = 512, out_dir: str | None = None,
                 run_id: str = "run"):
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.ring: deque[dict] = deque(maxlen=ring_size)
        self.out_dir = out_dir
        self.run_id = run_id
        self.dumped_path: str | None = None

    def record(self, event: dict) -> None:
        self.ring.append(event)

    def dump(
        self,
        reason: str,
        alerts: list[Alert] | None = None,
        context: dict | None = None,
    ) -> str | None:
        """Write the post-mortem file; returns its path (None if disabled).

        Only the first dump per recorder is written — the interesting
        state is the ring at the *first* failure, and later alerts in
        the same run would otherwise clobber it. The header carries a
        best-effort resource snapshot (RSS, GC counters) taken at dump
        time plus any caller-supplied ``context`` block (e.g. the
        execution-backend summary) — the first things a postmortem
        reader wants for an OOM or a stall.
        """
        if self.out_dir is None or self.dumped_path is not None:
            return self.dumped_path
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, f"postmortem-{self.run_id}.jsonl")
        header = {
            "type": "postmortem",
            "run": self.run_id,
            "reason": reason,
            "ring_events": len(self.ring),
            "alerts": [a.to_dict() for a in (alerts or [])],
            "resources": _safe_resource_snapshot(),
        }
        if context:
            header["context"] = context
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_encode_line(header) + "\n")
            for event in self.ring:
                fh.write(_encode_line(event) + "\n")
            # A post-mortem exists precisely because the process is
            # dying; push it to disk so a follow-up SIGKILL (or the OOM
            # killer that triggered the dump) can't take it along.
            fh.flush()
            os.fsync(fh.fileno())
        self.dumped_path = path
        return path
