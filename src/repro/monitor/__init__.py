"""Streaming health monitoring for the FIFL reproduction.

``repro.monitor`` watches the telemetry event stream online: a hard
invariant watchdog (budget conservation, reputation bounds, worker-set
partition, comm byte accounting, ledger chain/audit integrity),
deterministic EWMA anomaly detectors (detection-margin collapse,
reward-Gini spikes, sim SLO rate, per-worker reputation drift), and a
flight recorder that dumps a post-mortem JSONL when something fires.

The :class:`Monitor` attaches to a :class:`repro.telemetry.Telemetry`
hub as a sink; ``python -m repro.monitor scan`` replays recorded traces
offline through the identical rule engine. See DESIGN.md §12.
"""

from .alerts import Alert, MonitorConfig, MonitorError
from .detectors import EwmaDetector, RateWindow
from .monitor import Monitor, scan_events
from .recorder import FlightRecorder
from .rules import RuleEngine

__all__ = [
    "Alert",
    "MonitorConfig",
    "MonitorError",
    "Monitor",
    "scan_events",
    "EwmaDetector",
    "RateWindow",
    "FlightRecorder",
    "RuleEngine",
]
