"""Deterministic streaming detectors for the anomaly layer.

Both detectors are tiny pure-Python state machines: they consume one
observation at a time and return a *decision* (fire / stay silent) that
depends only on the observation history and the fixed thresholds handed
in at construction. No clocks, no RNG — replaying the same series
yields the same firing pattern, which is what makes the offline
``monitor scan`` differential exact.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["EwmaDetector", "RateWindow"]


class EwmaDetector:
    """EWMA mean/variance tracker with a z-score firing boundary.

    The detector maintains exponentially-weighted estimates of the mean
    and variance of a metric series. After ``warmup`` observations it
    fires when a new observation deviates from the tracked mean by more
    than ``z_threshold`` standard deviations in the watched
    ``direction`` ("down", "up", or "both"). ``min_std`` floors the
    deviation estimate so near-constant series (e.g. a margin that is
    exactly 0.0 for ten rounds) don't turn float jitter into alerts.

    ``update`` returns the signed z-score when the detector fires and
    ``None`` otherwise. The triggering observation is *not* folded into
    the state, so a single outlier can't drag the baseline toward
    itself and mask a subsequent collapse.
    """

    __slots__ = (
        "alpha", "z_threshold", "warmup", "min_std", "direction",
        "_watch_down", "_watch_up", "n", "mean", "var",
    )

    def __init__(
        self,
        alpha: float = 0.25,
        z_threshold: float = 4.0,
        warmup: int = 5,
        min_std: float = 0.05,
        direction: str = "both",
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if direction not in ("down", "up", "both"):
            raise ValueError(f"direction must be down/up/both, got {direction!r}")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.min_std = min_std
        self.direction = direction
        self._watch_down = direction in ("down", "both")
        self._watch_up = direction in ("up", "both")
        self.n = 0
        self.mean = 0.0
        self.var = 0.0

    def _fold(self, x: float) -> None:
        if self.n == 0:
            self.mean = x
            self.var = 0.0
        else:
            delta = x - self.mean
            self.mean += self.alpha * delta
            self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta)
        self.n += 1

    def update(self, x: float) -> float | None:
        if not math.isfinite(x):
            # non-finite values are handled by the invariant layer
            return None
        if self.n < self.warmup:
            self._fold(x)
            return None
        std = math.sqrt(self.var)
        if std < self.min_std:
            std = self.min_std
        z = (x - self.mean) / std
        if (self._watch_down and z < -self.z_threshold) or (
            self._watch_up and z > self.z_threshold
        ):
            return z
        self._fold(x)
        return None


class RateWindow:
    """Sliding window of boolean outcomes with a fraction threshold.

    ``update(flag)`` appends one outcome and returns the degraded
    fraction when (a) at least ``min_count`` outcomes have been seen
    and (b) the fraction of True outcomes in the last ``window``
    observations exceeds ``max_frac``; otherwise ``None``.
    """

    __slots__ = ("window", "min_count", "max_frac", "_buf", "total")

    def __init__(self, window: int = 8, min_count: int = 4, max_frac: float = 0.25):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.min_count = min_count
        self.max_frac = max_frac
        self._buf: deque[bool] = deque(maxlen=window)
        self.total = 0

    def update(self, flag: bool) -> float | None:
        self._buf.append(bool(flag))
        self.total += 1
        if self.total < self.min_count:
            return None
        frac = sum(self._buf) / len(self._buf)
        if frac > self.max_frac:
            return frac
        return None
