"""Monitor CLI: replay recorded traces through the rule engine.

Usage::

    python -m repro.monitor scan results/trace.jsonl
    python -m repro.monitor scan trace.jsonl --strict          # CI gate
    python -m repro.monitor scan fault-trace.jsonl --expect-alerts
    python -m repro.monitor scan trace.jsonl --watch           # live tail

``scan`` feeds every event of a JSONL trace to the same
:class:`~repro.monitor.RuleEngine` the live :class:`Monitor` sink runs,
so its verdict on a recorded trace matches the live run exactly (the
offline/online differential). ``--strict`` exits non-zero when any
alert fires (clean-run CI gate); ``--expect-alerts`` inverts that for
fault-injection traces that *must* trip the monitor. ``--watch`` tails
a growing trace and prints alerts as the producing run emits events.

Exit codes: 0 clean (or alerts present with ``--expect-alerts``),
1 alert gate failed, 2 unreadable/empty trace.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .alerts import MonitorConfig
from .monitor import scan_events
from .recorder import FlightRecorder
from .rules import RuleEngine

__all__ = ["main", "read_trace_tolerant"]


def read_trace_tolerant(path) -> tuple[list[dict], int]:
    """Decode a JSONL trace line by line, counting undecodable lines.

    Unlike :func:`repro.telemetry.read_trace` this never raises on a
    truncated tail (a crashed producer's last line is routinely cut mid
    record) — it returns every decodable event plus the bad-line count.
    """
    events: list[dict] = []
    bad = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                bad += 1
    return events, bad


def _print_alert(alert, stream) -> None:
    where = f"seq={alert.seq}" if alert.seq is not None else "seq=?"
    rnd = f" round={alert.round}" if alert.round is not None else ""
    print(
        f"ALERT [{alert.kind}] {alert.rule} ({where}{rnd}): {alert.message}",
        file=stream,
    )


def _watch(path, config: MonitorConfig, poll_s: float,
           idle_exit_s: float | None) -> int:
    """Tail a growing trace, alerting live; returns a scan exit code."""
    engine = RuleEngine(config)
    recorder = FlightRecorder(
        ring_size=config.ring_size, out_dir=config.postmortem_dir,
        run_id=config.run_id,
    )
    alerts = []
    buf = ""
    last_data = time.monotonic()
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            chunk = fh.read()
            if chunk:
                last_data = time.monotonic()
                buf += chunk
                *lines, buf = buf.split("\n")
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(event, dict):
                        continue
                    recorder.record(event)
                    fired = engine.process(event)
                    if fired:
                        alerts.extend(fired)
                        for a in fired:
                            _print_alert(a, sys.stderr)
                        recorder.dump("alert", alerts)
            else:
                if (
                    idle_exit_s is not None
                    and time.monotonic() - last_data > idle_exit_s
                ):
                    break
                try:
                    time.sleep(poll_s)
                except KeyboardInterrupt:
                    break
    print(f"watch: {len(alerts)} alert(s)", file=sys.stderr)
    return 1 if alerts and config.strict else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.monitor", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser(
        "scan", help="replay a JSONL trace through the monitor rule engine"
    )
    p.add_argument("trace", help="path to a .jsonl trace file")
    p.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any alert fires (clean-run gate)",
    )
    p.add_argument(
        "--expect-alerts", action="store_true",
        help="exit 1 if NO alert fires (fault-injection gate)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the alert list as JSON instead of text lines",
    )
    p.add_argument(
        "--postmortem", metavar="DIR", default=None,
        help="write postmortem-<run>.jsonl under DIR when alerts fire",
    )
    p.add_argument(
        "--run-id", default=None,
        help="run id for the post-mortem file name (default: trace stem)",
    )
    p.add_argument(
        "--watch", action="store_true",
        help="tail the trace as it grows, printing alerts live",
    )
    p.add_argument(
        "--poll", type=float, default=0.2,
        help="watch-mode poll interval in seconds (default 0.2)",
    )
    p.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="watch mode: exit after this long with no new trace data",
    )
    args = parser.parse_args(argv)

    run_id = args.run_id
    if run_id is None:
        stem = str(args.trace).rsplit("/", 1)[-1]
        run_id = stem[:-6] if stem.endswith(".jsonl") else stem
    config = MonitorConfig(
        strict=args.strict, postmortem_dir=args.postmortem, run_id=run_id
    )

    if args.watch:
        try:
            return _watch(args.trace, config, args.poll, args.idle_exit)
        except OSError as exc:
            print(f"cannot read trace: {exc}", file=sys.stderr)
            return 2

    try:
        events, bad = read_trace_tolerant(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(
            f"trace {args.trace} contains no decodable events"
            + (f" ({bad} undecodable line(s))" if bad else ""),
            file=sys.stderr,
        )
        return 2
    if bad:
        print(f"warning: skipped {bad} undecodable line(s)", file=sys.stderr)

    alerts = scan_events(events, config)
    if args.json:
        print(json.dumps(
            {
                "trace": str(args.trace),
                "events": len(events),
                "alerts": [a.to_dict() for a in alerts],
            },
            indent=2,
        ))
    else:
        for a in alerts:
            _print_alert(a, sys.stdout)
        print(f"scanned {len(events)} events: {len(alerts)} alert(s)")

    if alerts and args.postmortem:
        recorder = FlightRecorder(
            ring_size=config.ring_size, out_dir=args.postmortem, run_id=run_id
        )
        for event in events[-config.ring_size:]:
            recorder.record(event)
        path = recorder.dump("scan", alerts)
        print(f"postmortem: {path}", file=sys.stderr)

    if args.expect_alerts:
        if not alerts:
            print("expected alerts, none fired", file=sys.stderr)
            return 1
        return 0
    if alerts and args.strict:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
