"""Metrics: detection confusion rates, fairness, reporting utilities."""

from .detection import ConfusionCounts, aggregate_confusion, confusion
from .fairness import gini, reward_fairness, share_entropy
from .series import auc, final_value, moving_average, relative_percent

__all__ = [
    "ConfusionCounts",
    "confusion",
    "aggregate_confusion",
    "gini",
    "reward_fairness",
    "share_entropy",
    "moving_average",
    "final_value",
    "relative_percent",
    "auc",
]
