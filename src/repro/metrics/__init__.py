"""Metrics: detection confusion rates and reporting utilities."""

from .detection import ConfusionCounts, aggregate_confusion, confusion
from .series import auc, final_value, moving_average, relative_percent

__all__ = [
    "ConfusionCounts",
    "confusion",
    "aggregate_confusion",
    "moving_average",
    "final_value",
    "relative_percent",
    "auc",
]
