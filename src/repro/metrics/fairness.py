"""Reward-fairness summary metrics: Gini coefficient and share entropy.

FIFL's headline claim is *fair* incentive allocation; these two scalars
compress a round's reward vector into how unequal (Gini) and how spread
out (normalized entropy) the distribution is. The mechanism emits both
as per-round telemetry gauges (``fifl.reward_gini``,
``fifl.share_entropy``), computed over the non-negative part of the
reward vector — punishments are negative transfers and belong to a
different axis (Fig. 14), not to the share distribution.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["gini", "share_entropy", "reward_fairness"]


def gini(values) -> float:
    """Gini coefficient of a non-negative distribution, in ``[0, 1)``.

    0 = perfectly equal shares, -> 1 as one participant takes all.
    Degenerate inputs (empty, all-zero) return 0.0 — an empty market is
    trivially equal. Negative values raise: clip punishments to zero (or
    drop them) before measuring concentration.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError("values must be 1-D")
    if v.size == 0:
        return 0.0
    if (v < 0).any():
        raise ValueError("gini needs non-negative values")
    total = v.sum()
    if total <= 0:
        return 0.0
    v = np.sort(v)
    n = v.size
    # Mean absolute difference identity over the sorted vector:
    # G = 2 * sum(i * v_i) / (n * sum(v)) - (n + 1) / n, i = 1..n
    idx = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * (idx * v).sum() / (n * total) - (n + 1) / n)


def share_entropy(values) -> float:
    """Normalized Shannon entropy of a share distribution, in ``[0, 1]``.

    Shares are ``v_i / sum(v)`` over non-negative ``values``; entropy is
    normalized by ``log(n)`` (n = len(values)), so 1.0 means perfectly
    even shares across *all* participants and 0.0 means fully
    concentrated. Zero shares contribute nothing (``0 log 0 = 0``).
    Degenerate inputs (fewer than two values, or an all-zero vector)
    return 0.0. Negative values raise, as in :func:`gini`.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError("values must be 1-D")
    if (v < 0).any():
        raise ValueError("share_entropy needs non-negative values")
    if v.size <= 1:
        return 0.0
    total = v.sum()
    if total <= 0:
        return 0.0
    p = v[v > 0] / total
    return float(-(p * np.log(p)).sum() / np.log(v.size))


def reward_fairness(values, validate: bool = True) -> tuple[float, float]:
    """``(gini, share_entropy)`` in one pass over the same vector.

    The mechanism computes both every round on its hot path; sharing the
    validation, the sum and the array conversion roughly halves the cost
    versus calling :func:`gini` and :func:`share_entropy` separately.
    Semantics are identical to the two standalone functions.
    ``validate=False`` skips the shape/sign checks for callers that just
    clipped the vector themselves.
    """
    v = np.asarray(values, dtype=np.float64)
    if validate:
        if v.ndim != 1:
            raise ValueError("values must be 1-D")
        if (v < 0).any():
            raise ValueError("reward_fairness needs non-negative values")
    n = v.size
    if n == 0:
        return 0.0, 0.0
    s = np.sort(v)
    c = np.cumsum(s)
    total = float(c[-1])
    if total <= 0:
        return 0.0, 0.0
    # sum(i * s_i) == (n + 1) * total - sum(cumsum), so the Gini identity
    # needs one cumulative sum instead of an index vector and a product.
    g = float(
        2.0 * ((n + 1) * total - c.sum()) / (n * total) - (n + 1) / n
    )
    if n <= 1:
        return g, 0.0
    # s is sorted, so the positive entries are one tail slice (0 log 0 = 0)
    first = int(np.searchsorted(s, 0.0, side="right"))
    p = s[first:] / total
    h = float(-(p @ np.log(p)) / math.log(n))
    return g, h
