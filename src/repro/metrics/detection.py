"""Detection-quality metrics for the attack-detection experiments (Fig. 9).

Convention follows the paper: a *positive* event is an honest/useful
gradient (``r_i = 1``), a *negative* event is a Byzantine one. So

* TP rate — fraction of honest gradients accepted;
* TN rate — fraction of attacker gradients rejected;
* detection accuracy — overall fraction classified correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConfusionCounts", "confusion", "aggregate_confusion"]


@dataclass
class ConfusionCounts:
    """Counts over (prediction = accepted?, truth = honest?)."""

    tp: int = 0  # honest, accepted
    fn: int = 0  # honest, rejected (false alarm)
    tn: int = 0  # attacker, rejected
    fp: int = 0  # attacker, accepted (missed attack)

    @property
    def total(self) -> int:
        return self.tp + self.fn + self.tn + self.fp

    @property
    def accuracy(self) -> float:
        """Overall detection accuracy; 0 when no events."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def tp_rate(self) -> float:
        """Honest gradients accepted / honest gradients (sensitivity)."""
        pos = self.tp + self.fn
        return self.tp / pos if pos else 0.0

    @property
    def tn_rate(self) -> float:
        """Attacker gradients rejected / attacker gradients (specificity)."""
        neg = self.tn + self.fp
        return self.tn / neg if neg else 0.0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            self.tp + other.tp,
            self.fn + other.fn,
            self.tn + other.tn,
            self.fp + other.fp,
        )


def confusion(
    accepted: dict[int, bool], honest_truth: dict[int, bool]
) -> ConfusionCounts:
    """Confusion counts for one round.

    ``accepted`` is the detector's ``r_i``; ``honest_truth[i]`` is True if
    worker ``i`` actually uploaded an honest gradient this round. Workers
    present in only one mapping are ignored (e.g. lost uploads).
    """
    c = ConfusionCounts()
    for wid, r in accepted.items():
        if wid not in honest_truth:
            continue
        if honest_truth[wid]:
            if r:
                c.tp += 1
            else:
                c.fn += 1
        else:
            if r:
                c.fp += 1
            else:
                c.tn += 1
    return c


def aggregate_confusion(counts: list[ConfusionCounts]) -> ConfusionCounts:
    """Sum per-round confusion counts over a training run."""
    total = ConfusionCounts()
    for c in counts:
        total = total + c
    return total
