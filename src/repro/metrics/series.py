"""Small series utilities used when reporting figure data."""

from __future__ import annotations

import numpy as np

__all__ = ["moving_average", "final_value", "relative_percent", "auc"]


def moving_average(values: list[float] | np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average with a warm-up (shorter prefix windows)."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    if values.ndim != 1:
        raise ValueError("values must be 1-D")
    out = np.empty_like(values)
    csum = np.cumsum(values)
    for i in range(values.size):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def final_value(values: list) -> float:
    """Last non-None entry of a telemetry series."""
    for v in reversed(values):
        if v is not None:
            return float(v)
    raise ValueError("series has no recorded values")


def relative_percent(value: float, reference: float) -> float:
    """``100 * (value - reference) / reference``."""
    if reference == 0.0:
        raise ValueError("reference must be non-zero")
    return 100.0 * (value - reference) / reference


def auc(values: list[float] | np.ndarray) -> float:
    """Trapezoidal area under a per-round series (convergence speed proxy)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        raise ValueError("need at least two points")
    return float(np.trapezoid(values))
