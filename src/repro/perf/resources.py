"""Process resource probes: RSS, GC activity, tracemalloc, BLAS threads.

:class:`ResourceProbe` samples cheap process-level counters at round
boundaries (one ``/proc/self/statm`` read plus a few attribute loads —
single-digit microseconds, far under the 1% overhead budget) and keeps
the samples on a **side stream**: nothing a probe measures ever enters
the telemetry hub, so seeded hub traces stay byte-identical with probes
attached — the same isolation contract the health monitor honours.
Consumers of the side stream:

* :meth:`ResourceProbe.summary` — the compact block the trainer attaches
  to ``TrainingHistory.resources`` and the runner embeds as
  ``_meta.resources`` (RSS start/peak/growth, GC pauses, sample count);
* an ``on_sample`` callback — the trainer routes samples into the health
  monitor as ``resource.sample`` events (rule catalogue: ``rss-growth``,
  ``gc-pause``), again without touching the hub;
* an optional ``jsonl_path`` — samples stream to their own JSONL file,
  which ``python -m repro.perf --resources`` merges into Perfetto
  counter lanes.

GC pauses are *measured*, not estimated from counts: the probe registers
a ``gc.callbacks`` pair timing every collection between its own start
and stop, so ``gc_pause_s_total`` is the real stop-the-world seconds the
collector cost this process. Always detach probes (:meth:`close` or use
as a context manager) so the callback list does not grow.
"""

from __future__ import annotations

import gc
import json
import os
import time

__all__ = ["ResourceProbe", "resource_snapshot", "rss_bytes"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Current resident set size in bytes (best effort, 0 if unknown).

    Linux: one read of ``/proc/self/statm`` (microseconds). Elsewhere:
    ``ru_maxrss`` (the *peak*, the closest portable signal).
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover
        return 0


def resource_snapshot() -> dict:
    """One-shot process snapshot (no probe state needed).

    Used by the flight recorder's post-mortem header: RSS, GC counters
    and totals at dump time — the process state that produced the crash.
    """
    counts = gc.get_count()
    stats = gc.get_stats()
    return {
        "rss_bytes": rss_bytes(),
        "gc_counts": list(counts),
        "gc_collections": sum(s.get("collections", 0) for s in stats),
        "gc_uncollectable": sum(s.get("uncollectable", 0) for s in stats),
    }


class ResourceProbe:
    """Round-boundary resource sampler with measured GC pauses.

    Parameters
    ----------
    sample_every:
        Sample on every ``sample_every``-th call to :meth:`sample`
        (default 1 = every round boundary).
    tracemalloc_peak:
        Include the tracemalloc peak in samples — only when tracemalloc
        is already tracing (the probe never starts it: tracing costs far
        more than 1%, opting in is the caller's decision).
    on_sample:
        Called with each sample dict as it is taken (monitor wiring).
    jsonl_path:
        Stream each sample as a ``resource.sample`` JSONL line (side
        file, never the hub trace).
    """

    def __init__(
        self,
        sample_every: int = 1,
        tracemalloc_peak: bool = False,
        on_sample=None,
        jsonl_path=None,
    ):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = int(sample_every)
        self.tracemalloc_peak = tracemalloc_peak
        self.on_sample = on_sample
        self.samples: list[dict] = []
        self._calls = 0
        self._gc_pause_total = 0.0
        self._gc_pauses = 0
        self._gc_pause_max_window = 0.0  # max pause since the last sample
        self._gc_t0 = None
        self._closed = False
        self._fh = open(jsonl_path, "w", encoding="utf-8") if jsonl_path else None
        # keep /proc/self/statm open for the probe's lifetime: pread on a
        # held fd skips the open/close syscall pair, the bulk of a
        # sample's cost on the ~1% budget
        try:
            self._statm_fd = os.open("/proc/self/statm", os.O_RDONLY)
        except OSError:  # pragma: no cover - non-Linux
            self._statm_fd = None
        # one-time: the ctypes/threadpoolctl probe is too slow per round
        from ..parallel.blas import blas_thread_count

        self.blas_threads = blas_thread_count()
        gc.callbacks.append(self._gc_callback)

    # -- gc pause measurement ----------------------------------------------

    def _gc_callback(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_t0 = time.perf_counter()
        elif phase == "stop" and self._gc_t0 is not None:
            pause = time.perf_counter() - self._gc_t0
            self._gc_t0 = None
            self._gc_pause_total += pause
            self._gc_pauses += 1
            if pause > self._gc_pause_max_window:
                self._gc_pause_max_window = pause

    # -- sampling ----------------------------------------------------------

    def sample(self, round_idx: int | None = None) -> dict | None:
        """Take one sample (subject to ``sample_every``); returns it."""
        if self._closed:
            raise RuntimeError("probe is closed")
        self._calls += 1
        if (self._calls - 1) % self.sample_every:
            return None
        counts = gc.get_count()
        sample = {
            "round": round_idx,
            "rss_bytes": self._rss(),
            "gc_counts": list(counts),
            "gc_collections": self._gc_pauses,
            "gc_pause_s_total": self._gc_pause_total,
            "gc_pause_max_s": self._gc_pause_max_window,
            "blas_threads": self.blas_threads,
        }
        self._gc_pause_max_window = 0.0
        if self.tracemalloc_peak:
            import tracemalloc

            if tracemalloc.is_tracing():
                sample["tracemalloc_peak_bytes"] = (
                    tracemalloc.get_traced_memory()[1]
                )
        self.samples.append(sample)
        if self._fh is not None:
            self._fh.write(json.dumps(
                {"type": "resource.sample", "data": sample},
                sort_keys=True, separators=(",", ":"),
            ) + "\n")
        if self.on_sample is not None:
            self.on_sample(sample)
        return sample

    def _rss(self) -> int:
        fd = self._statm_fd
        if fd is not None:
            try:
                return int(os.pread(fd, 64, 0).split()[1]) * _PAGE_SIZE
            except (OSError, ValueError, IndexError):  # pragma: no cover
                pass
        return rss_bytes()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """Compact digest: RSS envelope, GC totals, sample count."""
        rss = [s["rss_bytes"] for s in self.samples]
        return {
            "samples": len(self.samples),
            "rss_start_bytes": rss[0] if rss else None,
            "rss_last_bytes": rss[-1] if rss else None,
            "rss_peak_bytes": max(rss) if rss else None,
            "rss_growth_bytes": (rss[-1] - rss[0]) if rss else None,
            "gc_collections": self._gc_pauses,
            "gc_pause_s_total": self._gc_pause_total,
            "blas_threads": self.blas_threads,
        }

    def events(self) -> list[dict]:
        """Samples as ``resource.sample`` event dicts (exporter merges)."""
        return [{"type": "resource.sample", "data": dict(s)}
                for s in self.samples]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach the GC callback and close the side file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            gc.callbacks.remove(self._gc_callback)
        except ValueError:  # pragma: no cover - already detached
            pass
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._statm_fd is not None:
            os.close(self._statm_fd)
            self._statm_fd = None

    def __enter__(self) -> "ResourceProbe":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
