"""Chrome-trace-event (Perfetto) export of telemetry traces.

Converts a materialized telemetry event stream into the JSON object
format the ``chrome://tracing`` and https://ui.perfetto.dev viewers
load: ``{"traceEvents": [...], "displayTimeUnit": "ms"}``. Three lane
groups come out of one trace:

* **pid 1 — "trainer"**: the reconstructed span hierarchy (run → round
  → phase → per-server slice) as nested complete (``"ph": "X"``)
  events on one thread lane. Span events carry durations but no
  timestamps (the byte-identical-trace contract forbids wall stamps),
  so the exporter lays spans out on a synthetic timeline: roots are
  placed end to end in close order and children packed from their
  parent's start — durations, nesting and ordering are exact; absolute
  positions are synthetic.
* **pid 2 — "parallel backend"**: one lane per backend slot. Every
  ``parallel.round`` dispatch turns into per-task *queue-wait* and
  *run* segments from the per-task stats the execution backend
  recorded (``queue_wait_s`` / ``run_s``). Tasks map to the nominal
  slot lane ``task_index % pool_size`` — exact for the process backend
  (its contract), task-order nominal for threads.
* **pid 3 — "resources"**: ``resource.sample`` events (when present —
  they live on the probe's side stream, not in hub traces) become
  Perfetto counter (``"ph": "C"``) tracks: RSS, GC collections and
  pause time, tracemalloc peak.

:func:`validate_trace` checks the structural contract of the emitted
JSON (the fields chrome://tracing requires per phase type) and is run
on every export, so a malformed trace fails loudly at write time, not
in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path

from .aggregate import SpanNode, build_span_tree

__all__ = [
    "events_to_perfetto",
    "write_perfetto",
    "validate_trace",
]

#: timeline unit: trace-event ``ts``/``dur`` are microseconds
_US = 1e6

#: pid per lane group
_PID_TRAINER = 1
_PID_PARALLEL = 2
_PID_RESOURCES = 3


def _process_meta(pid: int, name: str) -> dict:
    return {"ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": name}}


def _thread_meta(pid: int, tid: int, name: str) -> dict:
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name}}


def _span_events(roots: list[SpanNode], out: list[dict]) -> float:
    """Lay the span forest onto the synthetic timeline; returns its end."""
    cursor = 0.0

    def place(node: SpanNode, start_s: float) -> None:
        args = {"kind": node.kind, "seq": node.seq}
        args.update(node.attrs)
        out.append({
            "ph": "X",
            "pid": _PID_TRAINER,
            "tid": 1,
            "name": node.name,
            "cat": node.kind,
            "ts": start_s * _US,
            "dur": max(node.dur_s, 0.0) * _US,
            "args": args,
        })
        # children packed contiguously from the parent's start: their
        # relative durations and order are real, the gaps are not known
        child_t = start_s
        for child in node.children:
            place(child, child_t)
            child_t += child.dur_s

    for root in roots:
        place(root, cursor)
        cursor += root.dur_s
    return cursor


def _parallel_events(events: list[dict], out: list[dict]) -> set[int]:
    """Per-slot queue-wait/run segments for every parallel.round dispatch.

    Dispatches are placed end to end on their own timeline (the hub
    stream records no dispatch timestamps). Within a dispatch, task
    ``i`` lands on slot lane ``i % pool_size``; its *run* segment spans
    ``[t0 + queue_wait, t0 + queue_wait + run]`` and its *queue-wait*
    segment fills the lane idle gap before that, so FIFO slots render
    as contiguous wait/run stripes without overlapping slices.
    """
    cursor = 0.0
    slots_seen: set[int] = set()
    for ev in events:
        if ev.get("type") != "parallel.round":
            continue
        data = ev.get("data") or {}
        shard_s = [float(s) for s in data.get("shard_s", ())]
        queue_s = [float(s) for s in data.get("queue_wait_s", ())]
        if not shard_s:
            continue
        pool = max(1, int(data.get("pool_size", 1)))
        phase = data.get("phase", "parallel")
        t0 = cursor
        slot_end = {}
        dispatch_end = t0
        for i, run_s in enumerate(shard_s):
            slot = i % pool
            slots_seen.add(slot)
            wait = queue_s[i] if i < len(queue_s) else 0.0
            run_start = t0 + wait
            # wait stripe: from when this slot lane went idle (or the
            # dispatch start) until the task actually started running
            wait_start = max(t0, slot_end.get(slot, t0))
            run_start = max(run_start, wait_start)
            if run_start > wait_start:
                out.append({
                    "ph": "X",
                    "pid": _PID_PARALLEL,
                    "tid": slot,
                    "name": f"{phase} (queue-wait)",
                    "cat": "queue",
                    "ts": wait_start * _US,
                    "dur": (run_start - wait_start) * _US,
                    "args": {"task": i, "seq": ev.get("seq")},
                })
            out.append({
                "ph": "X",
                "pid": _PID_PARALLEL,
                "tid": slot,
                "name": f"{phase} shard {i}",
                "cat": "shard",
                "ts": run_start * _US,
                "dur": run_s * _US,
                "args": {
                    "task": i,
                    "backend": data.get("backend"),
                    "queue_wait_s": wait,
                    "seq": ev.get("seq"),
                },
            })
            slot_end[slot] = run_start + run_s
            dispatch_end = max(dispatch_end, slot_end[slot])
        cursor = dispatch_end
    return slots_seen


#: resource.sample payload key -> (counter track name, scale)
_COUNTERS = (
    ("rss_bytes", "rss_mb", 1.0 / (1024 * 1024)),
    ("gc_collections", "gc_collections", 1.0),
    ("gc_pause_s_total", "gc_pause_ms_total", 1e3),
    ("tracemalloc_peak_bytes", "tracemalloc_peak_mb", 1.0 / (1024 * 1024)),
)


def _resource_events(
    events: list[dict], out: list[dict], round_ends: list[float]
) -> bool:
    """Counter tracks from resource.sample events (side-stream merges).

    Samples are taken at round boundaries; when the trace also contains
    the round spans, the *k*-th sample is pinned to the *k*-th round's
    reconstructed end so counters line up with the span lanes.
    """
    k = 0
    found = False
    for ev in events:
        if ev.get("type") != "resource.sample":
            continue
        data = ev.get("data") or {}
        found = True
        ts = (round_ends[k] if k < len(round_ends) else float(k)) * _US
        k += 1
        for key, track, scale in _COUNTERS:
            if key in data:
                out.append({
                    "ph": "C",
                    "pid": _PID_RESOURCES,
                    "tid": 0,
                    "name": track,
                    "ts": ts,
                    "args": {"value": float(data[key]) * scale},
                })
    return found


def events_to_perfetto(events: list[dict]) -> dict:
    """Convert one telemetry event stream to a trace-event JSON object."""
    trace_events: list[dict] = [
        _process_meta(_PID_TRAINER, "trainer"),
        _thread_meta(_PID_TRAINER, 1, "spans"),
    ]
    roots = build_span_tree(events)
    _span_events(roots, trace_events)

    # round-end positions, for pinning resource counters to the timeline
    round_ends: list[float] = []

    def collect_round_ends(node: SpanNode, start: float) -> None:
        if node.name == "trainer.round":
            round_ends.append(start + node.dur_s)
        child_t = start
        for child in node.children:
            collect_round_ends(child, child_t)
            child_t += child.dur_s

    cursor = 0.0
    for root in roots:
        collect_round_ends(root, cursor)
        cursor += root.dur_s

    slots = _parallel_events(events, trace_events)
    if slots:
        trace_events.insert(
            1, _process_meta(_PID_PARALLEL, "parallel backend")
        )
        for slot in sorted(slots):
            trace_events.append(
                _thread_meta(_PID_PARALLEL, slot, f"slot {slot}")
            )
    if _resource_events(events, trace_events, round_ends):
        trace_events.insert(1, _process_meta(_PID_RESOURCES, "resources"))
    trace = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.perf",
            "note": (
                "synthetic timeline: span durations/nesting are measured, "
                "absolute positions are reconstructed from close order"
            ),
        },
    }
    validate_trace(trace)
    return trace


def validate_trace(trace: dict) -> None:
    """Structural check of a trace-event JSON object (raises ValueError).

    Verifies what the viewers actually require: a ``traceEvents`` list;
    every event a dict with a ``ph``; complete events with finite
    non-negative ``ts``/``dur`` plus ``pid``/``tid``/``name``; counter
    events with numeric ``args`` values; metadata events with ``args``.
    """
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        raise ValueError("trace must be a dict with a traceEvents list")
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise ValueError(f"traceEvents[{i}]: not an event dict with ph")
        ph = ev["ph"]
        if ph == "M":
            if "name" not in ev or not isinstance(ev.get("args"), dict):
                raise ValueError(f"traceEvents[{i}]: metadata needs name+args")
            continue
        for key in ("pid", "tid", "name", "ts"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}]: {ph!r} event missing {key}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            raise ValueError(f"traceEvents[{i}]: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                raise ValueError(f"traceEvents[{i}]: bad dur {dur!r}")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) and v == v for v in args.values()
            ):
                raise ValueError(
                    f"traceEvents[{i}]: counter args must be finite numbers"
                )
        else:
            raise ValueError(f"traceEvents[{i}]: unsupported phase {ph!r}")


def write_perfetto(path, events: list[dict]) -> Path:
    """Export ``events`` as validated trace-event JSON at ``path``."""
    path = Path(path)
    trace = events_to_perfetto(events)
    path.write_text(json.dumps(trace, separators=(",", ":")) + "\n")
    return path
