"""Perf CLI: flame-style span breakdowns, Perfetto export, trace diffs.

Usage::

    python -m repro.perf trace.jsonl                    # top-down table
    python -m repro.perf trace.jsonl --json             # machine-readable
    python -m repro.perf trace.jsonl --perfetto out.json
    python -m repro.perf trace.jsonl --perfetto out.json --resources res.jsonl
    python -m repro.perf --diff old.jsonl new.jsonl
    python -m repro.perf --diff old.jsonl new.jsonl --fail-above 25

The default view aggregates the trace's span hierarchy top-down
(total/self seconds and call counts per path). ``--perfetto`` exports
a validated Chrome-trace-event JSON for ``chrome://tracing`` /
https://ui.perfetto.dev, optionally merging a resource side stream
(``--resources``, written by ``ResourceProbe(jsonl_path=...)``) into
counter lanes. ``--diff`` attributes a wall-time regression to phases:
positive deltas mean the *second* (new) trace is slower. With
``--fail-above P`` the diff exits 1 when the total self-time regression
exceeds ``P`` percent — otherwise the diff is purely informational.

Exit codes: 0 ok, 1 empty trace or failed ``--fail-above`` gate,
2 unreadable trace file.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..telemetry.sinks import read_trace
from .aggregate import (
    aggregate_tree,
    build_span_tree,
    diff_traces,
    format_diff,
    format_tree_table,
    perf_summary,
)
from .perfetto import write_perfetto

__all__ = ["main"]


def _read(path) -> list[dict] | None:
    """Events of ``path`` or None (message already printed, exit 2)."""
    try:
        return read_trace(path)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
    except json.JSONDecodeError as exc:
        print(
            f"trace {path} is not valid JSONL ({exc.msg}); the file may be "
            f"truncated",
            file=sys.stderr,
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.perf", description=__doc__)
    parser.add_argument(
        "trace", nargs="?", help="JSONL telemetry trace to analyse"
    )
    parser.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"),
        help="attribute per-phase wall-time deltas between two traces",
    )
    parser.add_argument(
        "--perfetto", default="",
        help="export the trace as Chrome-trace-event JSON at this path",
    )
    parser.add_argument(
        "--resources", default="",
        help="resource.sample JSONL side stream to merge into the export",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of tables",
    )
    parser.add_argument(
        "--min-share", type=float, default=0.0,
        help="hide span paths below this fraction of total time (default 0)",
    )
    parser.add_argument(
        "--top", type=int, default=15,
        help="max phases in the diff report (default 15, 0 = all)",
    )
    parser.add_argument(
        "--threshold-s", type=float, default=0.0,
        help="hide diff rows with |delta| below this many seconds",
    )
    parser.add_argument(
        "--fail-above", type=float, default=None,
        help="exit 1 when the diff's total self-time regression exceeds "
             "this percentage of the old total (default: never fail)",
    )
    args = parser.parse_args(argv)

    if args.diff:
        if args.trace:
            parser.error("--diff takes its two traces as flag arguments")
        return _run_diff(args)
    if not args.trace:
        parser.error("pass a trace file or --diff OLD NEW")
    return _run_top(args)


def _run_top(args) -> int:
    events = _read(args.trace)
    if events is None:
        return 2
    if not events:
        print(f"trace {args.trace} contains no events", file=sys.stderr)
        return 1
    extra = []
    if args.resources:
        res_events = _read(args.resources)
        if res_events is None:
            return 2
        extra = res_events
    if args.perfetto:
        path = write_perfetto(args.perfetto, events + extra)
        print(f"[perfetto trace saved to {path}]", file=sys.stderr)
    summary = perf_summary(events)
    if args.json:
        table = aggregate_tree(build_span_tree(events))
        print(json.dumps({
            "summary": summary,
            "spans": {
                "/".join(path): stat for path, stat in sorted(table.items())
            },
        }, indent=2))
        return 0
    rw = summary["round_wall_s"]
    print(
        f"perf: {summary['rounds']} rounds, round wall p50={rw['p50']:.4f}s "
        f"p90={rw['p90']:.4f}s max={rw['max']:.4f}s"
    )
    top = summary["top_phase"]
    if top is not None:
        print(
            f"top phase by self time: {top['name']} "
            f"({top['self_s']:.4f}s self, {top['share']:.0%} of self time, "
            f"{top['calls']} calls)"
        )
    for row in format_tree_table(
        aggregate_tree(build_span_tree(events)), min_share=args.min_share
    ):
        print(row)
    return 0


def _run_diff(args) -> int:
    old_path, new_path = args.diff
    events_a = _read(old_path)
    if events_a is None:
        return 2
    events_b = _read(new_path)
    if events_b is None:
        return 2
    diff = diff_traces(events_a, events_b)
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        for row in format_diff(
            diff, top=args.top, threshold_s=args.threshold_s
        ):
            print(row)
    if args.fail_above is not None:
        # self times partition the wall clock exactly, so the gate ratio
        # is (new self total - old self total) / old self total
        old_total = sum(p["a_self_s"] for p in diff["phases"])
        regression_pct = (
            100.0 * diff["total_delta_s"] / old_total if old_total > 0 else 0.0
        )
        if regression_pct > args.fail_above:
            print(
                f"perf --diff: total regression {regression_pct:+.1f}% "
                f"exceeds --fail-above {args.fail_above}%",
                file=sys.stderr,
            )
            return 1
    return 0
