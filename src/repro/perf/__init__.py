"""Performance observability: Perfetto timelines, resource probes, diffs.

The layer that turns the telemetry hub's raw stream into answers to
"where did the time go" and "what regressed" (ISSUE 8):

* :mod:`repro.perf.perfetto` — export a trace's span hierarchy plus the
  execution backend's per-task stats as Chrome-trace-event JSON, with
  one lane per backend slot and queue-wait vs run segments, viewable in
  ``chrome://tracing`` / https://ui.perfetto.dev;
* :mod:`repro.perf.resources` — :class:`ResourceProbe`, a round-boundary
  sampler of RSS, measured GC pauses, optional tracemalloc peak and the
  BLAS thread count, kept on a side stream so seeded hub traces stay
  byte-identical with probes attached;
* :mod:`repro.perf.aggregate` — span-tree reconstruction, flame-style
  top-down aggregation (self/total seconds, calls), per-phase trace
  diffs (``delta > 0`` = regression) and the ``_meta.perf`` headline
  summary;
* ``python -m repro.perf`` — the CLI over all of it (see
  :mod:`repro.perf.cli`).
"""

from .aggregate import (
    SpanNode,
    aggregate_tree,
    build_span_tree,
    diff_traces,
    flat_spans,
    format_diff,
    format_tree_table,
    perf_summary,
    round_durations,
)
from .perfetto import events_to_perfetto, validate_trace, write_perfetto
from .resources import ResourceProbe, resource_snapshot, rss_bytes

__all__ = [
    "SpanNode",
    "build_span_tree",
    "aggregate_tree",
    "flat_spans",
    "format_tree_table",
    "diff_traces",
    "format_diff",
    "round_durations",
    "perf_summary",
    "events_to_perfetto",
    "write_perfetto",
    "validate_trace",
    "ResourceProbe",
    "resource_snapshot",
    "rss_bytes",
]
