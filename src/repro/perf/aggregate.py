"""Span-tree reconstruction and flame-style aggregation over traces.

The telemetry hub emits one ``span`` event per occurrence *at close
time*, carrying its duration and the stack ``depth`` it closed at —
never an absolute timestamp (wall-clock stamps would break the
byte-identical seeded-trace contract). Everything in this module (and
the Perfetto exporter built on it) therefore works from the close-order
stream:

* :func:`build_span_tree` — rebuild the span hierarchy from the
  ``(seq, depth)`` sequence alone. Spans close in stream order, and a
  parent closes after all of its children, so the children of a span
  closing at depth *d* are exactly the not-yet-claimed spans that closed
  at depth *d+1* before it.
* :func:`aggregate_tree` — fold the tree into per-*path* rows
  (``trainer.run/trainer.round/trainer.mechanism``) with total seconds,
  **self** seconds (total minus direct children) and call counts: the
  top-down flame view the ``python -m repro.perf`` CLI renders.
* :func:`diff_traces` — per-phase wall-time deltas between two traces,
  ranked by absolute delta: the regression-attribution half of the CLI.
  Sign convention: ``delta_s = new - old``, so **positive means the new
  trace is slower** (a regression), negative means it got faster.
* :func:`perf_summary` — the compact headline block the experiment
  runner embeds as ``_meta.perf``: round wall-time percentiles and the
  top self-time phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SpanNode",
    "build_span_tree",
    "aggregate_tree",
    "flat_spans",
    "format_tree_table",
    "diff_traces",
    "format_diff",
    "round_durations",
    "perf_summary",
]


@dataclass
class SpanNode:
    """One span occurrence in the reconstructed hierarchy."""

    name: str
    kind: str
    depth: int
    dur_s: float
    seq: int
    attrs: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Duration not accounted for by direct children."""
        return max(0.0, self.dur_s - sum(c.dur_s for c in self.children))


def build_span_tree(events: list[dict]) -> list[SpanNode]:
    """Rebuild the span forest from a materialized event stream.

    Returns the roots in close order. Tolerates truncated traces: spans
    whose parent never closed (a crashed run) simply surface as roots.
    """
    pending: dict[int, list[SpanNode]] = {}
    for ev in events:
        if ev.get("type") != "span":
            continue
        depth = int(ev.get("depth", 1))
        node = SpanNode(
            name=ev.get("name", "?"),
            kind=ev.get("kind", "span"),
            depth=depth,
            dur_s=float(ev.get("dur_s", 0.0)),
            seq=int(ev.get("seq", -1)),
            attrs=dict(ev.get("attrs") or {}),
            children=pending.pop(depth + 1, []),
        )
        pending.setdefault(depth, []).append(node)
    # Anything left unclaimed (normally just depth-1 spans; deeper only
    # when the enclosing span never closed) becomes a root, in seq order.
    roots: list[SpanNode] = []
    for nodes in pending.values():
        roots.extend(nodes)
    roots.sort(key=lambda n: n.seq)
    return roots


def aggregate_tree(roots: list[SpanNode]) -> dict[tuple, dict]:
    """Per-path totals: ``{(name, ...): {"total_s", "self_s", "calls"}}``.

    Paths are name tuples from the root down, so the same phase nested
    under different parents (``trainer.evaluate`` inside vs outside a
    round) aggregates separately — the top-down flame view.
    """
    table: dict[tuple, dict] = {}

    def visit(node: SpanNode, prefix: tuple) -> None:
        path = prefix + (node.name,)
        slot = table.setdefault(
            path, {"total_s": 0.0, "self_s": 0.0, "calls": 0}
        )
        slot["total_s"] += node.dur_s
        slot["self_s"] += node.self_s
        slot["calls"] += 1
        for child in node.children:
            visit(child, path)

    for root in roots:
        visit(root, ())
    return table


def flat_spans(events: list[dict]) -> dict[str, dict]:
    """Flat per-name totals (every occurrence, any nesting) with self time."""
    roots = build_span_tree(events)
    flat: dict[str, dict] = {}

    def visit(node: SpanNode) -> None:
        slot = flat.setdefault(
            node.name, {"total_s": 0.0, "self_s": 0.0, "calls": 0}
        )
        slot["total_s"] += node.dur_s
        slot["self_s"] += node.self_s
        slot["calls"] += 1
        for child in node.children:
            visit(child)

    for root in roots:
        visit(root)
    return flat


def format_tree_table(table: dict[tuple, dict], min_share: float = 0.0) -> list[str]:
    """Indented flame-style rows, siblings ordered by total time.

    ``min_share`` hides paths below that fraction of the root total
    (0 = show everything).
    """
    roots_total = sum(
        stat["total_s"] for path, stat in table.items() if len(path) == 1
    )
    rows = [
        f"{'total_s':>10} {'self_s':>10} {'calls':>7}  span"
    ]

    def emit(prefix: tuple) -> None:
        children = sorted(
            (
                (path, stat)
                for path, stat in table.items()
                if len(path) == len(prefix) + 1 and path[: len(prefix)] == prefix
            ),
            key=lambda kv: -kv[1]["total_s"],
        )
        for path, stat in children:
            if roots_total > 0 and stat["total_s"] / roots_total < min_share:
                continue
            indent = "  " * (len(path) - 1)
            rows.append(
                f"{stat['total_s']:>10.4f} {stat['self_s']:>10.4f} "
                f"{stat['calls']:>7}  {indent}{path[-1]}"
            )
            emit(path)

    emit(())
    return rows


def diff_traces(
    events_a: list[dict], events_b: list[dict]
) -> dict:
    """Per-phase wall-time deltas between two traces (flat, per name).

    ``a`` is the baseline (old), ``b`` the candidate (new). For every
    span name appearing in either trace the report carries the two
    totals and ``delta_s = b - a`` — **positive = the candidate spends
    more time there (regression)**, negative = improvement. Phases are
    ranked by absolute delta, biggest mover first. Identical traces
    produce an all-zero report.
    """
    flat_a = flat_spans(events_a)
    flat_b = flat_spans(events_b)
    phases = []
    for name in set(flat_a) | set(flat_b):
        a = flat_a.get(name, {"total_s": 0.0, "self_s": 0.0, "calls": 0})
        b = flat_b.get(name, {"total_s": 0.0, "self_s": 0.0, "calls": 0})
        delta = b["total_s"] - a["total_s"]
        phases.append({
            "name": name,
            "a_s": a["total_s"],
            "b_s": b["total_s"],
            "a_self_s": a["self_s"],
            "b_self_s": b["self_s"],
            "a_calls": a["calls"],
            "b_calls": b["calls"],
            "delta_s": delta,
            "delta_self_s": b["self_s"] - a["self_s"],
            "delta_pct": (
                100.0 * delta / a["total_s"] if a["total_s"] > 0 else None
            ),
        })
    phases.sort(key=lambda p: -abs(p["delta_s"]))
    return {
        "phases": phases,
        "rounds_a": len(round_durations(events_a)),
        "rounds_b": len(round_durations(events_b)),
        # self-time deltas partition the wall-clock movement exactly
        # (total_s would double-count nested children)
        "total_delta_s": sum(p["delta_self_s"] for p in phases),
    }


def format_diff(diff: dict, top: int = 15, threshold_s: float = 0.0) -> list[str]:
    """Human-readable diff report: biggest movers first, signed deltas."""
    rows = [
        f"perf diff ({diff['rounds_a']} -> {diff['rounds_b']} rounds): "
        f"positive delta = candidate slower"
    ]
    rows.append(
        f"{'phase':<28} {'old_s':>10} {'new_s':>10} {'delta_s':>10} {'pct':>8}"
    )
    shown = 0
    for p in diff["phases"]:
        if abs(p["delta_s"]) < threshold_s:
            continue
        if top and shown >= top:
            rows.append(f"  ... ({len(diff['phases']) - shown} more phases)")
            break
        pct = f"{p['delta_pct']:+.1f}%" if p["delta_pct"] is not None else "new"
        rows.append(
            f"{p['name']:<28} {p['a_s']:>10.4f} {p['b_s']:>10.4f} "
            f"{p['delta_s']:>+10.4f} {pct:>8}"
        )
        shown += 1
    if shown == 0:
        rows.append("  (no phase deltas above threshold)")
    return rows


def round_durations(events: list[dict], name: str = "trainer.round") -> list[float]:
    """Wall seconds of every round span, in round order."""
    return [
        float(ev.get("dur_s", 0.0))
        for ev in events
        if ev.get("type") == "span" and ev.get("name") == name
    ]


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


def perf_summary(events: list[dict]) -> dict:
    """Headline block for run metadata: round percentiles + top phase.

    ``top_phase`` is the phase-kind span with the largest *self* time —
    the single best answer to "where did this run's wall clock go" that
    doesn't double-count nested children.
    """
    durs = sorted(round_durations(events))
    flat = flat_spans(events)
    phases = {
        name: stat for name, stat in flat.items()
        if name not in ("trainer.run", "trainer.round")
    }
    top_name = max(phases, key=lambda n: phases[n]["self_s"], default=None)
    total_self = sum(stat["self_s"] for stat in phases.values())
    top_block = None
    if top_name is not None:
        top = phases[top_name]
        top_block = {
            "name": top_name,
            "self_s": top["self_s"],
            "total_s": top["total_s"],
            "calls": top["calls"],
            "share": (
                top["self_s"] / total_self if total_self > 0 else 0.0
            ),
        }
    return {
        "rounds": len(durs),
        "round_wall_s": {
            "p50": _percentile(durs, 0.50),
            "p90": _percentile(durs, 0.90),
            "max": durs[-1] if durs else 0.0,
            "mean": sum(durs) / len(durs) if durs else 0.0,
        },
        "top_phase": top_block,
    }
