"""Fairness drill-down over decision lineage: who earned what, and why.

The per-round ``reward_gini`` / ``share_entropy`` gauges (emitted by the
mechanism) measure each round in isolation; sustained unfairness shows
in the *cumulative* reward split. This module folds a decision lineage
into:

* cumulative-reward concentration (Gini + normalized share entropy over
  per-worker totals, punishments clipped to zero as in the per-round
  gauges);
* a per-worker attribution table (rounds, flagged/uncertain counts,
  final reputation, reward totals);
* attacker-vs-honest group breakdowns when attacker ids are known;
* participation cohorts — workers grouped by how many rounds they were
  actually sampled into, which in population mode is the cohort-
  membership axis of the fairness claim (a worker sampled rarely cannot
  earn much regardless of quality).

:func:`cumulative_gini` is the single scalar the monitor's
``fairness-drift`` rule consumes online.
"""

from __future__ import annotations

import numpy as np

from ..metrics.fairness import reward_fairness
from .records import Decision

__all__ = ["cumulative_gini", "cumulative_fairness", "fairness_report"]


def cumulative_gini(cumulative_rewards: dict[int, float]) -> float:
    """Gini of the positive cumulative-reward split (0 = equal)."""
    return cumulative_fairness(cumulative_rewards)[0]


def cumulative_fairness(
    cumulative_rewards: dict[int, float],
) -> tuple[float, float]:
    """``(gini, share_entropy)`` over clipped per-worker totals.

    Values are folded in ascending worker order so the result is a pure
    function of the mapping's *content*, independent of insertion order
    (live int keys and replayed traces agree bitwise).
    """
    n = len(cumulative_rewards)
    vec = np.fromiter(
        (cumulative_rewards[w] for w in sorted(cumulative_rewards)),
        np.float64,
        n,
    )
    return reward_fairness(np.maximum(vec, 0.0), validate=False)


def _group_stats(rows: list[dict]) -> dict:
    n = len(rows)
    reward_total = float(sum(r["cumulative_reward"] for r in rows))
    return {
        "workers": n,
        "reward_total": reward_total,
        "reward_mean": reward_total / n if n else None,
        "reputation_mean": (
            float(sum(r["final_reputation"] for r in rows)) / n if n else None
        ),
        "flagged_rounds": int(sum(r["flagged"] for r in rows)),
        "uncertain_rounds": int(sum(r["uncertain"] for r in rows)),
    }


def fairness_report(
    decisions: list[Decision],
    *,
    attackers: set[int] | None = None,
    cohorts: dict[int, dict] | None = None,
) -> dict:
    """Full drill-down: overall, per-worker, per-group, per-cohort.

    ``attackers`` enables the attacker-vs-honest split; ``cohorts`` is
    the ``{round: population.cohort data}`` map from a population-mode
    trace (see :func:`repro.audit.reconstruct.cohort_samples`).
    """
    per_worker: dict[int, dict] = {}
    round_ids: set[int] = set()
    for d in decisions:
        round_ids.add(d.round)
        row = per_worker.get(d.worker)
        if row is None:
            row = per_worker[d.worker] = {
                "worker": d.worker,
                "rounds": 0,
                "accepted": 0,
                "flagged": 0,
                "uncertain": 0,
                "final_reputation": 0.0,
                "cumulative_reward": 0.0,
            }
        row["rounds"] += 1
        if d.uncertain:
            row["uncertain"] += 1
        elif d.accepted is True:
            row["accepted"] += 1
        elif d.accepted is False:
            row["flagged"] += 1
        row["final_reputation"] = d.reputation
        row["cumulative_reward"] = d.cumulative_reward

    totals = {w: per_worker[w]["cumulative_reward"] for w in per_worker}
    gini, entropy = cumulative_fairness(totals)
    report: dict = {
        "rounds": len(round_ids),
        "workers": len(per_worker),
        "cumulative": {"reward_gini": gini, "share_entropy": entropy},
        "per_worker": [per_worker[w] for w in sorted(per_worker)],
    }

    if attackers is not None:
        attacker_rows = [per_worker[w] for w in sorted(per_worker) if w in attackers]
        honest_rows = [per_worker[w] for w in sorted(per_worker) if w not in attackers]
        groups = {
            "attacker": _group_stats(attacker_rows),
            "honest": _group_stats(honest_rows),
        }
        att, hon = groups["attacker"], groups["honest"]
        if att["reward_mean"] is not None and hon["reward_mean"] not in (None, 0.0):
            # the fairness headline: how starved attackers are relative
            # to honest workers on mean cumulative reward
            groups["attacker_reward_ratio"] = att["reward_mean"] / hon["reward_mean"]
        report["groups"] = groups

    if cohorts:
        participation = sorted(r["rounds"] for r in report["per_worker"])
        coverages = [
            float(cohorts[t]["coverage"])
            for t in sorted(cohorts)
            if "coverage" in cohorts[t]
        ]
        report["cohorts"] = {
            "sampled_rounds": len(cohorts),
            "population_size": max(
                int(c.get("population_size", 0)) for c in cohorts.values()
            ),
            "coverage_final": coverages[-1] if coverages else None,
            "participation_min": participation[0],
            "participation_median": participation[len(participation) // 2],
            "participation_max": participation[-1],
        }
    return report
