"""Entry point for ``python -m repro.audit``."""

import sys

from .cli import main

sys.exit(main())
