"""Decision lineage records: one :class:`Decision` per (worker, round).

A :class:`Decision` decomposes one worker's per-round outcome into its
causal inputs — detection score vs. the threshold ``S_y`` (the margin),
the reputation delta path, the contribution share against the baseline
``b_h``, and the budget-scaled reward — exactly the quantities the FIFL
pipeline computed, never re-derived approximations.

Two builders produce the same records:

* :func:`collect_decisions` — live, from a mechanism's in-memory
  :class:`~repro.core.fifl.FIFLRoundRecord` list;
* :func:`repro.audit.reconstruct.decisions_from_trace` — offline, from
  the ``fifl.round`` events of a JSONL telemetry trace.

Both funnel through the shared :class:`LineageBuilder`, so every
derived float (margin, reputation delta, cumulative reward) goes
through the *same sequence of IEEE operations* — the reconstruction is
byte-for-byte equal to the live records, not merely close (enforced by
``tests/audit/test_determinism.py``). All per-worker folds (previous
reputation, cumulative reward) are keyed per worker, so mapping
iteration order never affects the values.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..telemetry.sinks import encode_event

__all__ = [
    "AuditError",
    "Decision",
    "RoundInputs",
    "LineageBuilder",
    "collect_decisions",
    "encode_decision",
]


class AuditError(RuntimeError):
    """A trace or state store cannot support the requested audit."""


@dataclass(frozen=True)
class Decision:
    """One worker's fully-attributed outcome for one round.

    ``score``/``margin``/``accepted`` are ``None`` for uncertain events
    (the upload was lost before scoring); ``contribution``/``share``/
    ``reward`` are ``None`` whenever the round produced no aggregate for
    that worker (uncertain, or an empty round). ``reputation_prev`` is
    the worker's reputation after its *previous appearance* (the
    configured initial value on first appearance), so
    ``reputation_delta = reputation - reputation_prev`` is the actual
    Eq. 10 movement even across cohort absences.
    """

    round: int
    worker: int
    uncertain: bool
    threshold: float
    budget: float
    score: float | None
    margin: float | None
    accepted: bool | None
    reputation: float
    reputation_prev: float
    reputation_delta: float
    contribution: float | None
    share: float | None
    b_h: float | None
    reward: float | None
    cumulative_reward: float

    @property
    def flagged(self) -> bool:
        """Scored and rejected by the detector."""
        return self.accepted is False

    def as_dict(self) -> dict:
        return asdict(self)


def encode_decision(decision: Decision) -> str:
    """Canonical one-line JSON encoding (the byte-identity currency)."""
    return encode_event(decision.as_dict())


@dataclass(frozen=True)
class RoundInputs:
    """One round's mechanism outputs, normalized to plain-int worker keys.

    The adapter layer: live records and trace events both reduce to this
    shape before the shared fold. ``reputations`` covers every worker
    with an outcome this round (scored or uncertain); ``scores`` /
    ``contributions`` / ``shares`` / ``rewards`` cover scored workers.
    """

    round_idx: int
    scores: dict[int, float]
    accepted: dict[int, bool]
    uncertain: tuple[int, ...]
    reputations: dict[int, float]
    contributions: dict[int, float]
    shares: dict[int, float]
    rewards: dict[int, float]
    b_h: float | None
    threshold: float
    budget: float
    initial_reputation: float


class LineageBuilder:
    """Folds successive :class:`RoundInputs` into :class:`Decision` rows.

    Stateful across rounds: tracks each worker's last reputation (for
    the delta path) and cumulative reward — per-worker sums accumulated
    with the same ``prev + amount`` float additions the live mechanism
    performs, so the running totals match ``cumulative_rewards()``
    bit-for-bit.
    """

    def __init__(self) -> None:
        self._prev_rep: dict[int, float] = {}
        self._cum_reward: dict[int, float] = {}

    def cumulative_rewards(self) -> dict[int, float]:
        """Running per-worker reward totals after the folded rounds."""
        return dict(self._cum_reward)

    def fold(self, inputs: RoundInputs) -> list[Decision]:
        """One round's decisions, in ascending worker order."""
        cum = self._cum_reward
        for w, amount in inputs.rewards.items():
            cum[w] = cum.get(w, 0.0) + amount
        uncertain = set(inputs.uncertain)
        workers = sorted(
            set(inputs.reputations) | set(inputs.scores) | uncertain
        )
        decisions = []
        for w in workers:
            unc = w in uncertain
            score = inputs.scores.get(w)
            margin = None if score is None else score - inputs.threshold
            accepted = None if unc else inputs.accepted.get(w)
            rep = inputs.reputations.get(w, inputs.initial_reputation)
            prev = self._prev_rep.get(w, inputs.initial_reputation)
            decisions.append(
                Decision(
                    round=inputs.round_idx,
                    worker=w,
                    uncertain=unc,
                    threshold=inputs.threshold,
                    budget=inputs.budget,
                    score=score,
                    margin=margin,
                    accepted=accepted,
                    reputation=rep,
                    reputation_prev=prev,
                    reputation_delta=rep - prev,
                    contribution=inputs.contributions.get(w),
                    share=inputs.shares.get(w),
                    b_h=inputs.b_h,
                    reward=inputs.rewards.get(w),
                    cumulative_reward=cum.get(w, 0.0),
                )
            )
        for w, rep in inputs.reputations.items():
            self._prev_rep[w] = rep
        return decisions


def _inputs_from_record(record, config) -> RoundInputs:
    """Adapt one live :class:`FIFLRoundRecord` (worker keys already int)."""
    return RoundInputs(
        round_idx=record.round_idx,
        scores=record.scores,
        accepted=record.accepted,
        uncertain=tuple(record.uncertain),
        reputations=record.reputations,
        contributions=record.contribs,
        shares=record.shares,
        rewards=record.rewards,
        b_h=record.b_h,
        threshold=config.detection.threshold,
        budget=config.budget_per_round,
        initial_reputation=config.initial_reputation,
    )


def collect_decisions(mechanism) -> list[Decision]:
    """Decision lineage from a live mechanism's in-memory round records.

    Covers exactly ``mechanism.records`` — under service history
    compaction (``history_tail``) that is the uncompacted tail, and the
    cumulative-reward column restarts there; reconstruct from the full
    trace (``decisions_from_trace``) when whole-run lineage is needed.
    """
    builder = LineageBuilder()
    decisions: list[Decision] = []
    for record in mechanism.records:
        decisions.extend(builder.fold(_inputs_from_record(record, mechanism.config)))
    return decisions
