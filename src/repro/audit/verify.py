"""Cross-check reconstructed lineage against ledger, store, and snapshots.

``verify_trace`` needs only the JSONL events and proves the trace is
*internally* sound: every ``fifl.round`` carries the attribution
payload, derived quantities obey the mechanism's own arithmetic
(``reward = share x budget`` exactly — both engines compute it as one
multiply), the emitted reputation-delta vectors match the absolute
reputations, and — when the run kept a ledger — the block committed for
each round hashes to *exactly* the payload the trace reconstructs
(JSON round-trips every float bit-for-bit, so the SHA-256 digests must
be equal, not merely close).

``verify_service`` additionally resumes the service from its snapshot
directory and proves lineage *continuity across process lifetimes*: the
snapshot manifest's audit block matches the recomputed rolling
history/reputation digests, the resumed reputation store and cumulative
rewards equal the trace-reconstructed values, the durable ledger equals
the trace's commit stream block-for-block, and replaying the paper's
S4.5 reputation audit over the chain comes back clean.

Every check lands in a :class:`VerifyReport` as pass / fail / skipped
(prerequisite absent — e.g. no ledger configured); ``--strict`` treats
skips as failures so CI can demand the full cross-check actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ledger.audit import audit_reputation
from ..ledger.blockchain import GENESIS_HASH, payload_digest
from .records import AuditError, LineageBuilder
from .reconstruct import (
    decisions_from_trace,
    inputs_from_payload,
    ledger_commits,
    round_payloads,
    skipped_rounds,
)

__all__ = ["Check", "VerifyReport", "verify_trace", "verify_service"]


@dataclass(frozen=True)
class Check:
    """One cross-check outcome."""

    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str

    @property
    def ok(self) -> bool:
        return self.status != "fail"


@dataclass
class VerifyReport:
    """All checks of one verification run."""

    checks: list[Check] = field(default_factory=list)

    def add(self, name: str, ok: bool, detail: str) -> None:
        self.checks.append(Check(name, "pass" if ok else "fail", detail))

    def skip(self, name: str, detail: str) -> None:
        self.checks.append(Check(name, "skip", detail))

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def ok_strict(self) -> bool:
        """Strict: skipped checks count as failures."""
        return all(c.status == "pass" for c in self.checks)

    def failures(self) -> list[Check]:
        return [c for c in self.checks if c.status == "fail"]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "ok_strict": self.ok_strict(),
            "checks": [
                {"name": c.name, "status": c.status, "detail": c.detail}
                for c in self.checks
            ],
        }

    def lines(self) -> list[str]:
        mark = {"pass": "ok  ", "fail": "FAIL", "skip": "skip"}
        rows = [
            f"  [{mark[c.status]}] {c.name:<22} {c.detail}" for c in self.checks
        ]
        rows.append(
            f"verify: {sum(c.status == 'pass' for c in self.checks)} passed, "
            f"{len(self.failures())} failed, "
            f"{sum(c.status == 'skip' for c in self.checks)} skipped"
        )
        return rows


def _ledger_payload(inputs) -> dict:
    """The exact payload shape the mechanism commits per round (S4.5)."""
    outcomes: dict[int, bool | None] = {
        w: inputs.accepted[w] for w in inputs.scores
    }
    for w in inputs.uncertain:
        outcomes[w] = None
    return {
        "round": inputs.round_idx,
        "scores": inputs.scores,
        "accepted": outcomes,
        "reputations": inputs.reputations,
        "contributions": inputs.contributions,
        "rewards": inputs.rewards,
    }


def verify_trace(events: list[dict]) -> VerifyReport:
    """Internal-consistency checks over one (possibly concatenated) trace."""
    report = VerifyReport()
    rounds, forks = round_payloads(events)
    report.add(
        "lineage-fork",
        not forks,
        "no conflicting duplicate rounds" if not forks
        else f"rounds with conflicting payloads: {forks}",
    )
    if not rounds:
        report.skip("audit-payload", "trace contains no fifl.round events")
        return report

    inputs_by_round = {}
    missing = []
    for t in sorted(rounds):
        try:
            inputs_by_round[t] = inputs_from_payload(rounds[t])
        except AuditError:
            missing.append(t)
    report.add(
        "audit-payload",
        not missing,
        f"{len(inputs_by_round)} rounds carry the attribution payload"
        if not missing
        else f"rounds without attribution payload: {missing[:5]}",
    )
    if missing:
        return report

    skipped = skipped_rounds(events)
    lo, hi = min(rounds), max(rounds)
    gaps = [
        t for t in range(lo, hi + 1) if t not in rounds and t not in skipped
    ]
    report.add(
        "round-coverage",
        not gaps,
        f"rounds {lo}..{hi} covered ({len(skipped)} trainer-skipped)"
        if not gaps
        else f"rounds missing from the trace: {gaps[:10]}",
    )

    bad_partition = []
    bad_reward = []
    bad_delta = []
    prev_tele: dict[int, float] = {}
    for t in sorted(inputs_by_round):
        inp = inputs_by_round[t]
        data = rounds[t]
        accepted_count = int(data.get("accepted", -1))
        flagged = data.get("flagged", ())
        if (
            accepted_count != len(inp.scores) - len(flagged)
            or set(inp.uncertain) & set(inp.scores)
        ):
            bad_partition.append(t)
        for w, r in inp.rewards.items():
            share = inp.shares.get(w)
            if share is None or r != share * inp.budget:
                bad_reward.append(t)
                break
        # the emitted delta vector must equal the absolute reputations
        # minus the previous event's (initial value on first appearance),
        # computed with the same single IEEE subtraction the hub used
        delta = data.get("reputation_delta") or {}
        workers = [int(w) for w in delta.get("workers", ())]
        dvals = delta.get("delta", ())
        for w, dv in zip(workers, dvals):
            prev = prev_tele.get(w, inp.initial_reputation)
            if inp.reputations.get(w, prev) - prev != dv:
                bad_delta.append(t)
                break
        prev_tele = dict(inp.reputations)
    report.add(
        "worker-partition",
        not bad_partition,
        "accepted/flagged/uncertain partition the scored set"
        if not bad_partition
        else f"partition violated in rounds {bad_partition[:10]}",
    )
    report.add(
        "reward-arithmetic",
        not bad_reward,
        "reward == share x budget bit-exactly in every round"
        if not bad_reward
        else f"reward != share x budget in rounds {bad_reward[:10]}",
    )
    report.add(
        "reputation-delta",
        not bad_delta,
        "emitted delta vectors match the absolute reputation path"
        if not bad_delta
        else f"delta/absolute mismatch in rounds {bad_delta[:10]}",
    )

    commits = ledger_commits(events)
    if not commits:
        report.skip("ledger-digest", "trace contains no ledger.commit events")
        report.skip("ledger-chain", "trace contains no ledger.commit events")
    else:
        by_round = {
            int(c["round"]): c for c in commits if c.get("round") is not None
        }
        bad_digest = []
        unmatched = []
        for t, inp in inputs_by_round.items():
            commit = by_round.get(t)
            if commit is None:
                unmatched.append(t)
                continue
            if payload_digest(_ledger_payload(inp)) != commit["payload_digest"]:
                bad_digest.append(t)
        ok = not bad_digest and not unmatched
        report.add(
            "ledger-digest",
            ok,
            f"{len(inputs_by_round)} round payloads hash to their "
            f"committed block digests"
            if ok
            else f"digest mismatch in rounds {bad_digest[:10]}, "
            f"rounds without a commit: {unmatched[:10]}",
        )
        prev_hash = GENESIS_HASH
        bad_chain = []
        for i, c in enumerate(commits):
            if int(c["index"]) != i or c["prev_hash"] != prev_hash:
                bad_chain.append(i)
            prev_hash = c["hash"]
        report.add(
            "ledger-chain",
            not bad_chain,
            f"{len(commits)} commits chain contiguously from genesis"
            if not bad_chain
            else f"linkage broken at block indices {bad_chain[:10]}",
        )
    return report


def verify_service(
    events: list[dict], snapshot_dir, report: VerifyReport | None = None
) -> VerifyReport:
    """Continuity checks between a trace and the resumed durable state.

    Expects ``events`` to cover the service's whole life (concatenate
    the trace segments of killed + resumed processes); a partial trace
    fails the cumulative checks by construction.
    """
    from ..service.service import FederationService
    from ..service.snapshot import latest_snapshot, read_manifest

    report = report if report is not None else VerifyReport()
    snap = latest_snapshot(snapshot_dir)
    if snap is None:
        report.skip("snapshot-manifest", f"no snapshots under {snapshot_dir}")
        return report
    service = FederationService.resume(snapshot_dir)
    manifest = read_manifest(snap)

    audit_block = manifest.get("audit")
    if audit_block is None:
        report.skip(
            "snapshot-manifest", f"{snap.name} predates the audit manifest block"
        )
    else:
        expected = {
            "history_digest": service.history_digest(),
            "reputation_digest": service.reputation_digest(),
        }
        if service.ledger is not None:
            expected["ledger_head"] = service.ledger.head_hash()
        bad = [
            k for k, v in expected.items() if audit_block.get(k) != v
        ]
        report.add(
            "snapshot-manifest",
            not bad,
            f"{snap.name} audit digests match the resumed state"
            if not bad
            else f"{snap.name} digests diverge from resumed state: {bad}",
        )

    try:
        decisions = decisions_from_trace(events)
    except AuditError as exc:
        report.add("reputation-store", False, str(exc))
        return report
    if not decisions:
        report.skip("reputation-store", "trace reconstructs no decisions")
        return report

    mech = service.mechanism
    if mech is None:
        report.skip("reputation-store", "service runs without a mechanism")
    else:
        final = {}
        for d in decisions:
            final[d.worker] = d.reputation
        bad_rep = [
            w for w, r in sorted(final.items())
            if mech.reputation.reputation(w) != r
        ]
        report.add(
            "reputation-store",
            not bad_rep,
            f"{len(final)} workers' final trace reputations equal the "
            f"resumed store"
            if not bad_rep
            else f"reputation store diverges for workers {bad_rep[:10]}",
        )

        builder = LineageBuilder()
        decisions_from_trace(events, builder=builder)
        cum = builder.cumulative_rewards()
        live = mech.cumulative_rewards()
        bad_cum = [
            w for w in sorted(set(cum) | set(live))
            if cum.get(w) != live.get(w)
        ]
        report.add(
            "cumulative-rewards",
            not bad_cum,
            "trace-folded reward totals equal the live accumulator "
            "bit-for-bit"
            if not bad_cum
            else f"cumulative rewards diverge for workers {bad_cum[:10]}",
        )

    if service.ledger is None:
        report.skip("ledger-durable", "service runs without a ledger")
        report.skip("reputation-replay", "service runs without a ledger")
        return report

    commits = ledger_commits(events)
    blocks = service.ledger.blocks
    bad_blocks = [
        i for i, c in enumerate(commits)
        if i >= len(blocks) or blocks[i].hash != c["hash"]
    ]
    ok = (
        len(commits) == len(blocks)
        and not bad_blocks
        and service.ledger.is_intact()
    )
    report.add(
        "ledger-durable",
        ok,
        f"durable chain ({len(blocks)} blocks) equals the trace commit "
        f"stream and verifies"
        if ok
        else f"durable ledger diverges (trace commits={len(commits)}, "
        f"blocks={len(blocks)}, mismatched={bad_blocks[:10]}, "
        f"intact={service.ledger.is_intact()})",
    )

    fed = service.config.fed
    unclean = []
    checked = 0
    for w in sorted({d.worker for d in decisions}):
        audit = audit_reputation(
            service.ledger, w, gamma=fed.gamma, initial=0.0
        )
        checked += audit.rounds_checked
        if not audit.clean:
            unclean.append(w)
    report.add(
        "reputation-replay",
        not unclean,
        f"S4.5 replay clean for every worker ({checked} round-checks)"
        if not unclean
        else f"S4.5 replay implicates records for workers {unclean[:10]}",
    )
    return report
