"""``python -m repro.audit`` — interrogate a federation's incentive decisions.

Subcommands (all read one or more JSONL traces; pass a killed run's
trace followed by its resume's trace to audit across process
lifetimes):

* ``explain  TRACE... --worker W --round T`` — decompose one decision
  into its causal inputs (margin vs. threshold, reputation delta path,
  contribution share, budget-scaled reward);
* ``worker   TRACE... --worker W`` — one worker's reward/reputation
  timeline across every round it appeared in;
* ``round    TRACE... --round T`` — the per-worker decision table of
  one round;
* ``fairness TRACE...`` — cumulative Gini/entropy drill-down with
  per-worker attribution and (``--attackers`` / ``--dir``)
  attacker-vs-honest and participation-cohort breakdowns;
* ``verify   TRACE... [--dir SNAPDIR]`` — cross-check the
  reconstructed lineage against the trace's ledger commits and, with
  ``--dir``, the resumed service's reputation store, durable chain,
  and rolling history-digest chain. ``--strict`` fails when any check
  was skipped (exit 1 on any failure).

Exit codes: 0 ok, 1 failed checks, 2 usage/trace errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..telemetry.sinks import read_trace
from .explain import (
    explain_decision,
    explain_lines,
    find_decision,
    round_lines,
    worker_lines,
)
from .fairness import fairness_report
from .records import AuditError
from .reconstruct import (
    cohort_samples,
    decisions_from_trace,
    skipped_rounds,
)
from .verify import verify_service, verify_trace

__all__ = ["main"]


def _read_traces(paths: list[str]) -> list[dict]:
    events: list[dict] = []
    for path in paths:
        events.extend(read_trace(path))
    return events


def _attacker_ids(args) -> set[int] | None:
    ids: set[int] = set()
    if args.attackers:
        ids.update(int(w) for w in args.attackers.split(","))
    if getattr(args, "dir", None):
        from ..service.snapshot import latest_snapshot, load_snapshot

        snap = latest_snapshot(args.dir)
        if snap is not None:
            config, _ = load_snapshot(snap)
            ids.update(int(w) for w in config.attackers)
    return ids if ids else None


def _cmd_explain(args, events) -> int:
    decisions = decisions_from_trace(events)
    d = find_decision(decisions, args.worker, args.round)
    if d is None:
        print(
            f"no decision for worker {args.worker} in round {args.round} "
            f"(not sampled, or round absent from the trace)",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(explain_decision(d), indent=2, sort_keys=True))
    else:
        for line in explain_lines(d):
            print(line)
    return 0


def _cmd_worker(args, events) -> int:
    decisions = decisions_from_trace(events)
    skipped = skipped_rounds(events)
    if args.json:
        rows = [
            d.as_dict()
            for d in decisions
            if d.worker == args.worker
        ]
        print(json.dumps({"worker": args.worker, "decisions": rows,
                          "skipped_rounds": skipped}, indent=2, sort_keys=True))
        return 0
    for line in worker_lines(decisions, args.worker, skipped):
        print(line)
    return 0


def _cmd_round(args, events) -> int:
    decisions = decisions_from_trace(events)
    skipped = skipped_rounds(events)
    if args.json:
        rows = [d.as_dict() for d in decisions if d.round == args.round]
        print(json.dumps({"round": args.round, "decisions": rows},
                         indent=2, sort_keys=True))
        return 0
    for line in round_lines(decisions, args.round, skipped):
        print(line)
    return 0


def _cmd_fairness(args, events) -> int:
    decisions = decisions_from_trace(events)
    report = fairness_report(
        decisions,
        attackers=_attacker_ids(args),
        cohorts=cohort_samples(events) or None,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    cum = report["cumulative"]
    print(
        f"fairness over {report['rounds']} rounds, {report['workers']} "
        f"workers: cumulative reward Gini {cum['reward_gini']:.4f}, "
        f"share entropy {cum['share_entropy']:.4f}"
    )
    print(
        f"{'worker':>6} {'rounds':>7} {'accepted':>9} {'flagged':>8} "
        f"{'uncertain':>10} {'final_rep':>10} {'cum_reward':>11}"
    )
    for row in report["per_worker"]:
        print(
            f"{row['worker']:>6} {row['rounds']:>7} {row['accepted']:>9} "
            f"{row['flagged']:>8} {row['uncertain']:>10} "
            f"{row['final_reputation']:>10.4f} "
            f"{row['cumulative_reward']:>11.4f}"
        )
    groups = report.get("groups")
    if groups:
        for name in ("attacker", "honest"):
            g = groups[name]
            mean = g["reward_mean"]
            print(
                f"{name}: {g['workers']} workers, total reward "
                f"{g['reward_total']:.4f}"
                + (f", mean {mean:.4f}" if mean is not None else "")
                + f", flagged rounds {g['flagged_rounds']}"
            )
        ratio = groups.get("attacker_reward_ratio")
        if ratio is not None:
            print(f"attacker/honest mean-reward ratio: {ratio:.4f}")
    cohorts = report.get("cohorts")
    if cohorts:
        print(
            f"cohorts: {cohorts['sampled_rounds']} sampled rounds over "
            f"population {cohorts['population_size']}, participation "
            f"min/median/max {cohorts['participation_min']}/"
            f"{cohorts['participation_median']}/"
            f"{cohorts['participation_max']}, final coverage "
            f"{cohorts['coverage_final']}"
        )
    return 0


def _cmd_verify(args, events) -> int:
    report = verify_trace(events)
    if args.dir:
        verify_service(events, args.dir, report=report)
    else:
        report.skip("snapshot-manifest", "no --dir given")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in report.lines():
            print(line)
    ok = report.ok_strict() if args.strict else report.ok
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit",
        description="audit a federation's incentive decisions from its trace",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "traces", nargs="+",
            help="JSONL trace file(s); concatenate kill/resume segments",
        )
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")
        return p

    p = add("explain", "decompose one (worker, round) decision")
    p.add_argument("--worker", type=int, required=True)
    p.add_argument("--round", type=int, required=True)
    p.set_defaults(fn=_cmd_explain)

    p = add("worker", "one worker's decision timeline")
    p.add_argument("--worker", type=int, required=True)
    p.set_defaults(fn=_cmd_worker)

    p = add("round", "one round's per-worker decision table")
    p.add_argument("--round", type=int, required=True)
    p.set_defaults(fn=_cmd_round)

    p = add("fairness", "cumulative fairness drill-down")
    p.add_argument(
        "--attackers", default=None,
        help="comma-separated attacker worker ids for the group split",
    )
    p.add_argument(
        "--dir", default=None,
        help="service snapshot dir (attacker ids read from its config)",
    )
    p.set_defaults(fn=_cmd_fairness)

    p = add("verify", "cross-check lineage vs ledger/store/snapshots")
    p.add_argument(
        "--dir", default=None,
        help="service snapshot dir for the continuity checks",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="skipped checks (missing prerequisites) count as failures",
    )
    p.set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    try:
        events = _read_traces(args.traces)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"trace is not valid JSONL ({exc.msg}); the file may be truncated",
            file=sys.stderr,
        )
        return 2
    if not events:
        print("trace contains no events", file=sys.stderr)
        return 2
    try:
        return args.fn(args, events)
    except AuditError as exc:
        print(f"audit error: {exc}", file=sys.stderr)
        return 2
