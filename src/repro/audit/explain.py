"""Query and render decision lineage: explain / worker timeline / round table.

Pure functions over a list of :class:`~repro.audit.records.Decision`
rows (live-collected or trace-reconstructed — identical by contract).
Rendering never recomputes mechanism math; every number printed is a
field of the lineage record, so ``explain`` output *is* the audit
trail, not a re-derivation that could drift from it.
"""

from __future__ import annotations

from .records import AuditError, Decision

__all__ = [
    "find_decision",
    "worker_timeline",
    "round_decisions",
    "explain_decision",
    "explain_lines",
    "worker_lines",
    "round_lines",
]


def find_decision(
    decisions: list[Decision], worker: int, round_idx: int
) -> Decision | None:
    for d in decisions:
        if d.worker == worker and d.round == round_idx:
            return d
    return None


def worker_timeline(decisions: list[Decision], worker: int) -> list[Decision]:
    """One worker's decisions in round order."""
    return sorted(
        (d for d in decisions if d.worker == worker), key=lambda d: d.round
    )


def round_decisions(decisions: list[Decision], round_idx: int) -> list[Decision]:
    """One round's decisions in worker order."""
    return sorted(
        (d for d in decisions if d.round == round_idx), key=lambda d: d.worker
    )


def _verdict(d: Decision) -> str:
    if d.uncertain:
        return "UNCERTAIN"
    if d.accepted is True:
        return "ACCEPTED"
    if d.accepted is False:
        return "FLAGGED"
    return "UNSCORED"


def _fmt(value, digits: int = 6) -> str:
    return "-" if value is None else f"{value:.{digits}g}"


def explain_decision(d: Decision) -> dict:
    """Machine-readable causal decomposition of one decision."""
    return {
        "worker": d.worker,
        "round": d.round,
        "verdict": _verdict(d),
        "detection": {
            "score": d.score,
            "threshold": d.threshold,
            "margin": d.margin,
            "uncertain": d.uncertain,
        },
        "reputation": {
            "previous": d.reputation_prev,
            "current": d.reputation,
            "delta": d.reputation_delta,
        },
        "contribution": {
            "value": d.contribution,
            "baseline_b_h": d.b_h,
            "share": d.share,
        },
        "reward": {
            "budget": d.budget,
            "amount": d.reward,
            "cumulative": d.cumulative_reward,
        },
    }


def explain_lines(d: Decision) -> list[str]:
    """Human-readable causal decomposition of one decision."""
    lines = [f"worker {d.worker} @ round {d.round}: {_verdict(d)}"]
    if d.uncertain:
        lines.append(
            "  detection    upload lost before scoring (uncertain event;"
            " Eq. 10 applies the uncertain decay)"
        )
    else:
        lines.append(
            f"  detection    score {_fmt(d.score)} vs threshold "
            f"{_fmt(d.threshold)} -> margin {_fmt(d.margin)}"
        )
    lines.append(
        f"  reputation   {_fmt(d.reputation_prev)} -> {_fmt(d.reputation)} "
        f"(delta {_fmt(d.reputation_delta)})"
    )
    if d.contribution is not None:
        lines.append(
            f"  contribution C = {_fmt(d.contribution)} "
            f"(baseline b_h = {_fmt(d.b_h)}) -> share {_fmt(d.share)}"
        )
    else:
        lines.append("  contribution not scored this round (no aggregate)")
    if d.reward is not None:
        lines.append(
            f"  reward       share x budget {_fmt(d.budget)} = "
            f"{_fmt(d.reward)} (cumulative {_fmt(d.cumulative_reward)})"
        )
    else:
        lines.append(
            f"  reward       none this round "
            f"(cumulative {_fmt(d.cumulative_reward)})"
        )
    return lines


_TIMELINE_HEADER = (
    f"{'round':>6} {'verdict':>10} {'score':>11} {'margin':>11} "
    f"{'reputation':>11} {'rep_delta':>11} {'share':>11} {'reward':>11} "
    f"{'cum_reward':>11}"
)


def _timeline_row(d: Decision) -> str:
    return (
        f"{d.round:>6} {_verdict(d):>10} {_fmt(d.score, 4):>11} "
        f"{_fmt(d.margin, 4):>11} {_fmt(d.reputation, 4):>11} "
        f"{_fmt(d.reputation_delta, 4):>11} {_fmt(d.share, 4):>11} "
        f"{_fmt(d.reward, 4):>11} {_fmt(d.cumulative_reward, 4):>11}"
    )


def worker_lines(
    decisions: list[Decision],
    worker: int,
    skipped: dict[int, str] | None = None,
) -> list[str]:
    """Timeline table for one worker; notes trainer-skipped rounds."""
    timeline = worker_timeline(decisions, worker)
    if not timeline:
        if skipped:
            return [
                f"worker {worker}: no mechanism decisions on record — the "
                f"trace holds only skipped rounds "
                f"({len(skipped)}: {_skip_summary(skipped)})"
            ]
        raise AuditError(f"worker {worker} appears in no round of the trace")
    flagged = sum(1 for d in timeline if d.flagged)
    uncertain = sum(1 for d in timeline if d.uncertain)
    last = timeline[-1]
    lines = [
        f"worker {worker}: {len(timeline)} rounds "
        f"({flagged} flagged, {uncertain} uncertain), final reputation "
        f"{_fmt(last.reputation)}, cumulative reward "
        f"{_fmt(last.cumulative_reward)}",
        _TIMELINE_HEADER,
    ]
    lines.extend(_timeline_row(d) for d in timeline)
    if skipped:
        lines.append(
            f"(+{len(skipped)} trainer-skipped rounds: {_skip_summary(skipped)})"
        )
    return lines


def _skip_summary(skipped: dict[int, str]) -> str:
    shown = sorted(skipped)[:5]
    parts = ", ".join(f"{t}:{skipped[t]}" for t in shown)
    return parts + (", ..." if len(skipped) > len(shown) else "")


def round_lines(
    decisions: list[Decision],
    round_idx: int,
    skipped: dict[int, str] | None = None,
) -> list[str]:
    """Per-worker table for one round."""
    rows = round_decisions(decisions, round_idx)
    if not rows:
        reason = (skipped or {}).get(round_idx)
        if reason is not None:
            return [
                f"round {round_idx}: skipped by the trainer ({reason}) — "
                f"no mechanism decisions"
            ]
        raise AuditError(f"round {round_idx} not present in the trace")
    accepted = sum(1 for d in rows if d.accepted is True)
    flagged = sum(1 for d in rows if d.flagged)
    uncertain = sum(1 for d in rows if d.uncertain)
    lines = [
        f"round {round_idx}: {len(rows)} workers "
        f"({accepted} accepted, {flagged} flagged, {uncertain} uncertain), "
        f"threshold {_fmt(rows[0].threshold)}, budget {_fmt(rows[0].budget)}, "
        f"b_h {_fmt(rows[0].b_h)}",
        f"{'worker':>6} {'verdict':>10} {'score':>11} {'margin':>11} "
        f"{'reputation':>11} {'rep_delta':>11} {'contrib':>11} "
        f"{'share':>11} {'reward':>11}",
    ]
    for d in rows:
        lines.append(
            f"{d.worker:>6} {_verdict(d):>10} {_fmt(d.score, 4):>11} "
            f"{_fmt(d.margin, 4):>11} {_fmt(d.reputation, 4):>11} "
            f"{_fmt(d.reputation_delta, 4):>11} {_fmt(d.contribution, 4):>11} "
            f"{_fmt(d.share, 4):>11} {_fmt(d.reward, 4):>11}"
        )
    return lines
