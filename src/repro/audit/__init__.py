"""Incentive attribution and audit: queryable per-worker decision lineage.

FIFL's fairness claim is only auditable if every outcome — why worker
``w`` earned reward ``r``, why it was flagged in round ``t`` — can be
decomposed into the causal inputs the mechanism actually used. This
package reconstructs that **decision lineage** from the canonical
telemetry stream (``fifl.round`` attribution payloads), cross-checks it
against the blockchain ledger, the reputation store and the service's
rolling history-digest chain, and renders it via ``python -m
repro.audit`` (``explain`` / ``worker`` / ``round`` / ``fairness`` /
``verify``).

Determinism contract: the offline reconstruction and the live
collection share one fold (:class:`LineageBuilder`), so they agree
byte-for-byte on seeded runs — including across kill/resume boundaries
(concatenate the trace segments). See DESIGN.md §17.
"""

from .explain import (
    explain_decision,
    explain_lines,
    find_decision,
    round_decisions,
    round_lines,
    worker_lines,
    worker_timeline,
)
from .fairness import cumulative_fairness, cumulative_gini, fairness_report
from .records import (
    AuditError,
    Decision,
    LineageBuilder,
    RoundInputs,
    collect_decisions,
    encode_decision,
)
from .reconstruct import (
    cohort_samples,
    decisions_from_trace,
    inputs_from_payload,
    ledger_commits,
    round_payloads,
    skipped_rounds,
)
from .verify import Check, VerifyReport, verify_service, verify_trace

__all__ = [
    "AuditError",
    "Decision",
    "RoundInputs",
    "LineageBuilder",
    "collect_decisions",
    "encode_decision",
    "decisions_from_trace",
    "inputs_from_payload",
    "round_payloads",
    "ledger_commits",
    "skipped_rounds",
    "cohort_samples",
    "find_decision",
    "worker_timeline",
    "round_decisions",
    "explain_decision",
    "explain_lines",
    "worker_lines",
    "round_lines",
    "cumulative_gini",
    "cumulative_fairness",
    "fairness_report",
    "Check",
    "VerifyReport",
    "verify_trace",
    "verify_service",
]
