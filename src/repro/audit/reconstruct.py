"""Rebuild decision lineage offline from a JSONL telemetry trace.

The ``fifl.round`` event is the mechanism's per-round choke point; with
``FIFLConfig.audit`` (the default) it carries the complete attribution
payload — scores, flagged set, absolute reputations, contributions,
shares, rewards, ``b_h``, threshold, budget and the initial reputation —
so the full per-worker decision lineage is a pure function of the trace.
JSON round-trips every float exactly (``repr`` digits), and the
reconstruction funnels through the same :class:`LineageBuilder` as the
live collector, so offline lineage equals live lineage byte-for-byte.

Traces may be concatenations of several process lifetimes (a killed run
plus its resume): rounds are deduplicated by index. Duplicate rounds
with *differing* payloads mean two process lifetimes disagreed about
the same round — a lineage fork — and raise :class:`AuditError`
(``verify`` reports it as a failed check instead of crashing).
"""

from __future__ import annotations

from .records import AuditError, Decision, LineageBuilder, RoundInputs

__all__ = [
    "round_payloads",
    "inputs_from_payload",
    "decisions_from_trace",
    "ledger_commits",
    "skipped_rounds",
    "cohort_samples",
]


def _int_keys(mapping: dict) -> dict:
    """Worker-keyed maps come back from JSON with string keys."""
    return {int(k): v for k, v in mapping.items()}


def _same_payload(a: dict, b: dict) -> bool:
    """Duplicate-round equality over the canonical wire encoding.

    In-memory traces (MemorySink) still hold numpy arrays in side
    channels like the delta vectors; raw dict ``==`` on those is
    ambiguous, and what the contract cares about is the serialized
    payload anyway.
    """
    from ..telemetry.sinks import encode_event

    return encode_event(a) == encode_event(b)


def round_payloads(events: list[dict]) -> tuple[dict[int, dict], list[int]]:
    """``{round: fifl.round data}`` plus the rounds with forked payloads.

    First occurrence wins: a deterministic re-run of a round (resume
    from an older snapshot) reproduces the original payload, so a
    conflicting duplicate is evidence of divergence, not of replay.
    """
    rounds: dict[int, dict] = {}
    forks: list[int] = []
    for ev in events:
        if ev.get("type") != "fifl.round":
            continue
        data = ev.get("data") or {}
        t = int(data["round"])
        if t in rounds:
            if t not in forks and not _same_payload(rounds[t], data):
                forks.append(t)
            continue
        rounds[t] = data
    return rounds, forks


def inputs_from_payload(data: dict) -> RoundInputs:
    """Normalize one ``fifl.round`` event payload into :class:`RoundInputs`."""
    if "reputations" not in data:
        raise AuditError(
            f"round {data.get('round')}: fifl.round event carries no "
            f"attribution payload (trace recorded with FIFLConfig.audit=False)"
        )
    scores = _int_keys(data.get("scores", {}))
    flagged = {int(w) for w in data.get("flagged", ())}
    return RoundInputs(
        round_idx=int(data["round"]),
        scores=scores,
        accepted={w: w not in flagged for w in scores},
        uncertain=tuple(sorted(int(w) for w in data.get("uncertain", ()))),
        reputations=_int_keys(data["reputations"]),
        contributions=_int_keys(data.get("contributions", {})),
        shares=_int_keys(data.get("shares", {})),
        rewards=_int_keys(data.get("rewards", {})),
        b_h=data.get("b_h"),
        threshold=data["threshold"],
        budget=data["budget"],
        initial_reputation=data.get("initial_reputation", 0.0),
    )


def decisions_from_trace(
    events: list[dict], *, builder: LineageBuilder | None = None
) -> list[Decision]:
    """Full decision lineage from a trace's ``fifl.round`` events.

    Rounds fold in ascending order regardless of file order, so
    concatenated kill/resume trace segments reconstruct the same lineage
    as the uninterrupted run. Pass an existing ``builder`` to continue a
    fold (e.g. lineage across separately-read trace segments).
    """
    rounds, forks = round_payloads(events)
    if forks:
        raise AuditError(
            f"lineage fork: rounds {forks} appear with conflicting payloads"
        )
    builder = builder if builder is not None else LineageBuilder()
    decisions: list[Decision] = []
    for t in sorted(rounds):
        decisions.extend(builder.fold(inputs_from_payload(rounds[t])))
    return decisions


def ledger_commits(events: list[dict]) -> list[dict]:
    """``ledger.commit`` payloads in stream order, deduplicated by index.

    As with rounds, the first occurrence of a block index wins and the
    caller (``verify``) checks that duplicates agree.
    """
    seen: dict[int, dict] = {}
    for ev in events:
        if ev.get("type") != "ledger.commit":
            continue
        data = ev.get("data") or {}
        seen.setdefault(int(data["index"]), data)
    return [seen[i] for i in sorted(seen)]


def skipped_rounds(events: list[dict]) -> dict[int, str]:
    """``{round: reason}`` for rounds the trainer skipped entirely."""
    out: dict[int, str] = {}
    for ev in events:
        if ev.get("type") == "trainer.skipped_round":
            data = ev.get("data") or {}
            out.setdefault(int(data["round"]), str(data.get("reason")))
    return out


def cohort_samples(events: list[dict]) -> dict[int, dict]:
    """``{round: population.cohort data}`` (population mode only)."""
    out: dict[int, dict] = {}
    for ev in events:
        if ev.get("type") == "population.cohort":
            data = ev.get("data") or {}
            out.setdefault(int(data["round"]), data)
    return out
