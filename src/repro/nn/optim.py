"""Optimizers operating on flat parameter vectors.

Federated workers hold a :class:`~repro.nn.model.Sequential` model and an
optimizer; the optimizer consumes flat gradient vectors (the same vectors
the server-side mechanism scores) so local training and upload share one
representation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class mapping (params, grad) -> updated params, both flat."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (momentum buffers etc.)."""


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(self, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if params.shape != grad.shape:
            raise ValueError(f"shape mismatch {params.shape} vs {grad.shape}")
        g = grad
        if self.weight_decay:
            g = g + self.weight_decay * params
        if self.momentum:
            if self._velocity is None or self._velocity.shape != g.shape:
                self._velocity = np.zeros_like(g)
            self._velocity *= self.momentum
            self._velocity += g
            g = self._velocity
        return params - self.lr * g

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if params.shape != grad.shape:
            raise ValueError(f"shape mismatch {params.shape} vs {grad.shape}")
        if self._m is None or self._m.shape != grad.shape:
            self._m = np.zeros_like(grad)
            self._v = np.zeros_like(grad)
            self._t = 0
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return params - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0
