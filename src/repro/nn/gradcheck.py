"""Finite-difference gradient verification for the NN substrate.

The FIFL mechanism consumes raw gradient vectors; if backprop were wrong
the whole reproduction would silently measure noise. This module gives an
independent check used by the property tests: analytic gradients from
``Sequential.get_flat_grads`` are compared against central finite
differences of the loss with respect to the flat parameter vector.
"""

from __future__ import annotations

import numpy as np

from .losses import SoftmaxCrossEntropy
from .model import Sequential

__all__ = ["numerical_gradient", "analytic_gradient", "max_relative_error"]


def analytic_gradient(
    model: Sequential, x: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Loss and backprop gradient for one batch (cross-entropy)."""
    loss_fn = SoftmaxCrossEntropy()
    logits = model.forward(x, training=True)
    loss = loss_fn(logits, labels)
    model.backward(loss_fn.backward())
    return loss, model.get_flat_grads()


def numerical_gradient(
    model: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    indices: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient at the current parameters.

    ``indices`` selects which components to probe (probing all of them is
    O(P) forward passes); returns a vector the size of ``indices`` (or the
    full parameter count when None). The model's parameters are restored
    on exit.

    Note: models with batch statistics (BatchNorm) must be probed with the
    same ``training=True`` semantics backprop used, which this does.
    """
    loss_fn = SoftmaxCrossEntropy()
    theta = model.get_flat_params()
    if indices is None:
        indices = np.arange(theta.size)
    grads = np.empty(indices.size, dtype=np.float64)
    try:
        for out_i, idx in enumerate(indices):
            bumped = theta.copy()
            bumped[idx] += eps
            model.set_flat_params(bumped)
            loss_plus = loss_fn(model.forward(x, training=True), labels)
            bumped[idx] -= 2 * eps
            model.set_flat_params(bumped)
            loss_minus = loss_fn(model.forward(x, training=True), labels)
            grads[out_i] = (loss_plus - loss_minus) / (2 * eps)
    finally:
        model.set_flat_params(theta)
    return grads


def max_relative_error(a: np.ndarray, b: np.ndarray, floor: float = 1e-8) -> float:
    """Max of ``|a-b| / max(|a|, |b|, floor)`` — scale-free comparison."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), floor)
    return float(np.max(np.abs(a - b) / denom)) if a.size else 0.0
