"""Model builders mirroring the paper's architectures.

The paper trains LeNet on MNIST and a ResNet on CIFAR10. We provide:

* :func:`build_logreg` — softmax regression, the fastest model for unit
  tests and mechanism-only experiments;
* :func:`build_mlp` — configurable fully connected network;
* :func:`build_lenet` — LeNet-5-style CNN for ``(1, 28, 28)`` input;
* :func:`build_mini_resnet` — small residual CNN for ``(3, 32, 32)`` input.

All builders take a seed (or Generator) so federated workers start from an
identical global model.
"""

from __future__ import annotations

import numpy as np

from .layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
)
from .model import Residual, Sequential

__all__ = ["build_logreg", "build_mlp", "build_lenet", "build_mini_resnet"]


def _as_rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def build_logreg(in_features: int, num_classes: int, seed: int | np.random.Generator = 0) -> Sequential:
    """Multinomial logistic regression (a single Dense layer)."""
    rng = _as_rng(seed)
    return Sequential([Dense(in_features, num_classes, rng)])


def build_mlp(
    in_features: int,
    num_classes: int,
    hidden: tuple[int, ...] = (64,),
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """Fully connected ReLU network with the given hidden widths."""
    rng = _as_rng(seed)
    layers: list = []
    prev = in_features
    for width in hidden:
        layers.append(Dense(prev, width, rng))
        layers.append(ReLU())
        prev = width
    layers.append(Dense(prev, num_classes, rng))
    return Sequential(layers)


def build_lenet(
    num_classes: int = 10,
    in_channels: int = 1,
    image_size: int = 28,
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """LeNet-style CNN: conv-pool-conv-pool-dense, sized for 28x28 input.

    For ``image_size=28``: 28 -> conv5/pad2 -> 28 -> pool2 -> 14 ->
    conv5 -> 10 -> pool2 -> 5, then 16*5*5 -> 120 -> 84 -> classes.
    """
    rng = _as_rng(seed)
    c1, c2 = 6, 16
    s1 = (image_size + 2 * 2 - 5) + 1  # conv1 out (pad=2, k=5)
    s1p = s1 // 2
    s2 = s1p - 5 + 1
    s2p = s2 // 2
    if s2p <= 0:
        raise ValueError(f"image_size={image_size} too small for LeNet")
    return Sequential(
        [
            Conv2d(in_channels, c1, kernel_size=5, rng=rng, padding=2),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(c2 * s2p * s2p, 120, rng),
            ReLU(),
            Dense(120, 84, rng),
            ReLU(),
            Dense(84, num_classes, rng),
        ]
    )


def _res_block(channels: int, rng: np.random.Generator) -> Residual:
    """Two 3x3 convs with batchnorm and an identity shortcut."""
    return Residual(
        body=[
            Conv2d(channels, channels, kernel_size=3, rng=rng, padding=1),
            BatchNorm(channels),
            ReLU(),
            Conv2d(channels, channels, kernel_size=3, rng=rng, padding=1),
            BatchNorm(channels),
        ]
    )


def build_mini_resnet(
    num_classes: int = 10,
    in_channels: int = 3,
    width: int = 16,
    num_blocks: int = 2,
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """Small residual CNN for CIFAR-like ``(3, 32, 32)`` input.

    Stem conv -> ``num_blocks`` residual blocks -> global average pool ->
    linear classifier. Kept deliberately narrow so a full federated round
    runs in seconds on one CPU core while preserving the residual/batchnorm
    structure of the paper's CIFAR10 model.
    """
    rng = _as_rng(seed)
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    layers: list = [
        Conv2d(in_channels, width, kernel_size=3, rng=rng, padding=1),
        BatchNorm(width),
        ReLU(),
        MaxPool2d(2),
    ]
    for _ in range(num_blocks):
        layers.append(_res_block(width, rng))
        layers.append(ReLU())
    layers.extend([GlobalAvgPool2d(), Dense(width, num_classes, rng)])
    return Sequential(layers)
